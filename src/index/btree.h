// ARIES/KVL-style B+Tree over buffer-pool pages.
//
// Latched mode (conventional / logical-only systems): probes crab shared
// latches down the tree; writers take an exclusive latch on the leaf; any
// structure modification (SMO) serializes behind a per-tree SMO mutex and
// re-descends holding exclusive latches — the single-SMO-at-a-time rule of
// ARIES/KVL that Section B of the paper measures.
//
// Latch-free mode (PLP partitions): the subtree is owned by exactly one
// thread, so every latch acquisition and the SMO mutex are skipped, and
// page fixes bypass the buffer-pool critical section.
//
// Persistence: with an IndexLogger attached (durable databases in
// kLoggedPages mode) every page visited by a mutation is PINNED for the
// duration of the operation and every mutation appends a physiological
// WAL record before the pin is released (latch-coupled logging — see
// src/index/persistent/index_log.h). Index pages are then evictable like
// heap pages and crash recovery redoes index history from the log.
//
// The same class also serves as one MRBTree sub-tree; MRBTree performs
// slice (split off a key range) and meld (absorb a neighbor) through the
// methods at the bottom.
#ifndef PLP_INDEX_BTREE_H_
#define PLP_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/index/btree_node.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class IndexLogger;

class BTree {
 public:
  /// Creates an empty tree (root = empty leaf). With a logger the fresh
  /// root's image is logged so restart can materialize it.
  BTree(BufferPool* pool, LatchPolicy policy, IndexLogger* logger = nullptr);
  /// Adopts an existing root page (MRBTree slice/meld and restart
  /// recovery produce these). Never logs the adoption.
  BTree(BufferPool* pool, LatchPolicy policy, PageId root,
        IndexLogger* logger = nullptr);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  PageId root() const { return root_; }
  LatchPolicy latch_policy() const { return policy_; }
  IndexLogger* logger() const { return logger_; }

  /// Unique-key insert. kAlreadyExists on duplicates. `txn` tags the WAL
  /// record when a logger is attached (loser-undo anchor).
  Status Insert(Slice key, Slice value, TxnId txn = kInvalidTxnId);

  /// Exact-match lookup.
  Status Probe(Slice key, std::string* value);

  /// Replaces the value of an existing key.
  Status Update(Slice key, Slice value, TxnId txn = kInvalidTxnId);

  /// Removes a key. Leaves underfull pages in place (no merge on delete,
  /// as in Shore-MT).
  Status Delete(Slice key, TxnId txn = kInvalidTxnId);

  /// In-order scan starting at the first key >= `start`; stops when the
  /// callback returns false.
  Status ScanFrom(Slice start,
                  const std::function<bool(Slice key, Slice value)>& fn);

  /// Levels in the tree (1 = a single leaf).
  int height();

  std::uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  /// Completed structure modification operations (splits).
  std::uint64_t smo_count() const {
    return smo_count_.load(std::memory_order_relaxed);
  }
  /// Nodes touched by probes/inserts (validates "one level shallower").
  std::uint64_t nodes_visited() const {
    return nodes_visited_.load(std::memory_order_relaxed);
  }

  /// Recomputes num_entries from the pages (restart recovery adopts roots
  /// whose entry population only the pages know).
  void RecountEntries();

  // --- MRBTree structural support (callers quiesce the tree first) ------

  /// Post-repartition partition-table provider (persistent mode): the
  /// owning MRBTree computes the (boundary -> root) layout that will hold
  /// once this slice/meld completes, so the tree can log ONE atomic
  /// record carrying both the SMO page images and the routing change —
  /// a crash can never make one durable without the other. The record is
  /// forced before pre-existing pages are freed and before the call
  /// returns (a repartition is durable once it completes).
  using PartitionPayloadFn = std::function<
      std::vector<std::pair<std::string, PageId>>(PageId new_root)>;

  /// Splits off all entries with key >= `split_key` into a new tree
  /// (Appendix A.3.2 "slice"). Entry counts are adjusted on both sides.
  /// `parts` (persistent mode) receives the new right tree's root.
  Status SliceOff(Slice split_key, std::unique_ptr<BTree>* right_out,
                  const PartitionPayloadFn& parts = {});

  /// Absorbs `right`, all of whose keys are >= `boundary_key` and sort
  /// after every key in this tree (Appendix A.3.1 "meld"). On success the
  /// right tree's pages belong to this tree and `right` must be discarded.
  /// `parts` (persistent mode) receives the merged tree's root.
  Status Meld(BTree* right, Slice boundary_key,
              const PartitionPayloadFn& parts = {});

  /// First key in the tree (kNotFound when empty).
  Status MinKey(std::string* out);

  /// A key near the middle of the tree's key population (descends through
  /// middle children). Used to pick split points when rebalancing load.
  Status ApproxMedianKey(std::string* out);

  /// Walks every entry (no latching; for tests and integrity checks).
  void ForEachEntry(const std::function<void(Slice, Slice)>& fn);

  /// Verifies ordering and structural invariants; returns kCorruption on
  /// the first violation (property tests use this).
  Status CheckIntegrity();

  /// Page id of the leaf that would hold `key` (PLP-Leaf uses leaf page
  /// ids as heap-page owner tags, Section 3.3).
  PageId LeafFor(Slice key);

  /// PLP-Leaf callback: invoked for every leaf entry that migrates to a
  /// different leaf page during a split or slice. Receives (key, value,
  /// new_leaf_pid) and returns the replacement value ("" keeps the old
  /// one). The PLP-Leaf engine uses it to COPY the heap record to a page
  /// owned by the new leaf and to refresh the stored RID — the storage-
  /// manager callback mechanism of Section 3.3. The old location is
  /// released through the release hook below only after the index entry
  /// has been re-pointed (and, in persistent mode, the re-point logged):
  /// copy -> re-point -> release gives each moved entry a crash-safe
  /// ordering where every log prefix leaves the record reachable.
  using LeafEntryMovedHook =
      std::function<std::string(Slice key, Slice value, PageId new_leaf)>;
  void set_leaf_moved_hook(LeafEntryMovedHook hook) {
    leaf_moved_hook_ = std::move(hook);
  }
  /// Releases the heap location a moved entry previously pointed at
  /// (receives the old index value). See set_leaf_moved_hook.
  using LeafEntryReleaseHook = std::function<void(Slice old_value)>;
  void set_leaf_moved_release_hook(LeafEntryReleaseHook hook) {
    leaf_moved_release_hook_ = std::move(hook);
  }

  /// Owner tag stamped on pages this tree allocates (see RetagPages).
  void set_owner_tag(std::uint32_t tag) { owner_tag_ = tag; }
  std::uint32_t owner_tag() const { return owner_tag_; }

  /// Tags every page of this tree with `owner` (frame-level tag used by
  /// the page cleaner to delegate cleaning to the owning partition).
  void RetagPages(std::uint32_t owner);

 private:
  /// Pages touched by one structure modification: keeps every new page
  /// pinned until the SMO record is logged and remembers which frames
  /// need an after-image.
  struct SmoScope {
    std::vector<PageRef> refs;      // pins for pages created mid-SMO
    std::vector<Page*> touched;     // frames mutated (deduped by Smo())
    std::vector<PageId> freed;
    void Touch(Page* page) { touched.push_back(page); }
  };

  PageRef FixPage(PageId id);
  PageRef NewNodePage(std::uint16_t level);

  /// Fixes the root with zero page-table lookups once cached: the first
  /// fix marks the root frame sticky (never a steal victim) and caches the
  /// frame pointer, so later fixes just pin. Falls back to FixPage when
  /// swizzling is off or root_ changed (slice/meld, quiesced).
  PageRef FixRoot();
  /// Invalidates the root-frame cache (root_ is about to change) and drops
  /// the old frame's sticky bit.
  void ResetRootCache();

  /// Follows the child reference for `key` out of `parent` (latched by the
  /// caller in latched mode). A swizzled reference resolves straight to
  /// the frame — no page-table lookup; a plain reference fixes through the
  /// pool and then installs a swizzle for the next descent (latched trees
  /// only: the install/unswizzle protocol relies on the parent latch).
  PageRef FixChildFor(Page* parent, Slice key);

  /// Plain PageId behind a possibly-swizzled child reference.
  PageId Plain(PageId ref) const { return pool_->RefToPid(ref); }

  /// Rewrites every swizzled reference in the scope's touched pages back
  /// to plain PageIds — run before their images are encoded into an SMO
  /// record so no tagged PageId ever reaches the WAL.
  void SanitizeScope(SmoScope* scope);

  Status InsertOptimistic(Slice key, Slice value, TxnId txn,
                          bool* needs_smo);
  // protocol: policy-elided SMO serialization — smo_mu_ and the page
  // latches are taken only under LatchPolicy::kLatched (partition-owned
  // trees are single-writer by the PLP ownership discipline), which the
  // analysis cannot follow through the conditional acquire/release.
  Status InsertPessimistic(Slice key, Slice value, TxnId txn)
      PLP_NO_THREAD_SAFETY_ANALYSIS;

  /// Splits `node` (already exclusively owned by the caller), returning
  /// the new right page; `*sep` receives the separator key. The right
  /// page's pin lives in `scope` until the SMO record is logged.
  Page* SplitNode(Page* page, std::string* sep, SmoScope* scope);

  /// Handles a full root in place (the root page id never changes).
  void SplitRoot(Page* root_page, SmoScope* scope);

  /// Logs the scope's after-images and frees in one atomic SMO record
  /// (no-op without a logger).
  void LogSmoScope(SmoScope* scope);

  PageId LeftmostLeaf();
  PageId RightmostLeaf();

  /// Runs the leaf-moved protocol (copy -> re-point -> release) for the
  /// entries [from, count) of `leaf`, which are about to move to
  /// `new_leaf`. Runs BEFORE the tail moves so the re-point records
  /// target the page the entries currently live on — a crash that loses
  /// the SMO record then still replays valid RIDs into the unsplit leaf.
  void ApplyLeafMovedHook(Page* leaf, int from, PageId new_leaf);

  BufferPool* pool_;
  const LatchPolicy policy_;
  PageId root_;
  std::atomic<Page*> root_frame_{nullptr};
  TrackedMutex smo_mu_{CsCategory::kPageLatch};
  IndexLogger* logger_;
  LeafEntryMovedHook leaf_moved_hook_;
  LeafEntryReleaseHook leaf_moved_release_hook_;
  std::uint32_t owner_tag_ = UINT32_MAX;

  std::atomic<std::uint64_t> num_entries_{0};
  std::atomic<std::uint64_t> smo_count_{0};
  std::atomic<std::uint64_t> nodes_visited_{0};
};

}  // namespace plp

#endif  // PLP_INDEX_BTREE_H_
