// Figure 11 (Appendix D): number of heap pages used by each PLP variant,
// normalized to the conventional system, as database size grows, for
// 100B and 1000B records. Evaluated with the analytic fragmentation
// model (validated against real heap files by the test suite and the
// measured point printed at the bottom).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/buffer/buffer_pool.h"
#include "src/storage/fragmentation_model.h"
#include "src/storage/heap_file.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader("Normalized heap page counts per design", "Figure 11");
  const std::uint64_t sizes[] = {1ull << 20, 10ull << 20, 100ull << 20,
                                 1ull << 30, 10ull << 30};
  const char* size_names[] = {"1MB", "10MB", "100MB", "1GB", "10GB"};

  for (std::uint32_t record_size : {100u, 1000u}) {
    std::printf("--- %uB records, %u partitions ---\n", record_size,
                record_size == 100 ? 100 : 10);
    std::printf("%-8s %14s %14s %14s %14s\n", "size", "Conventional",
                "PLP-Regular", "PLP-Partition", "PLP-Leaf");
    for (int i = 0; i < 5; ++i) {
      FragmentationParams p;
      p.db_bytes = sizes[i];
      p.record_size = record_size;
      p.num_partitions = record_size == 100 ? 100 : 10;
      const HeapPageCounts c = ComputeHeapPageCounts(p);
      const double base = static_cast<double>(c.conventional);
      std::printf("%-8s %14.3f %14.3f %14.3f %14.3f\n", size_names[i], 1.0,
                  static_cast<double>(c.plp_regular) / base,
                  static_cast<double>(c.plp_partition) / base,
                  static_cast<double>(c.plp_leaf) / base);
    }
  }

  // Measured validation point: build real heap files at small scale.
  std::printf("\nMeasured validation (5000 x 100B records, 10 owners):\n");
  BufferPool pool;
  HeapFile shared(&pool, HeapMode::kShared);
  HeapFile part(&pool, HeapMode::kPartitionOwned);
  HeapFile leaf(&pool, HeapMode::kLeafOwned);
  const std::string rec(100, 'x');
  Rid rid;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    (void)shared.Insert(rec, &rid);
    (void)part.InsertOwned(static_cast<std::uint32_t>(i % 10), rec, &rid);
    (void)leaf.InsertOwned(static_cast<std::uint32_t>(i / 170), rec, &rid);
  }
  const double base = static_cast<double>(shared.num_pages());
  std::printf("  conventional=%zu  plp-partition=%.3fx  plp-leaf=%.3fx\n",
              shared.num_pages(),
              static_cast<double>(part.num_pages()) / base,
              static_cast<double>(leaf.num_pages()) / base);
  std::printf(
      "\nExpected shape: PLP-Regular == 1.0 everywhere; PLP-Partition\n"
      "overhead vanishes as the database grows; PLP-Leaf pays the largest\n"
      "overhead for small records and much less for 1000B records.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
