// Table 1: repartitioning costs when splitting a partition with 466MB of
// 100B records in half (height-3 index, 170 x 32B entries per node).
// Rows come from the Appendix C cost model; below them, a *measured*
// MRBTree slice on a real (smaller) tree confirms the PLP claim that a
// split moves only the boundary path.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/buffer/buffer_pool.h"
#include "src/common/clock.h"
#include "src/common/key_encoding.h"
#include "src/engine/cost_model.h"
#include "src/index/mrbtree.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "Repartitioning costs, 466MB partition split in half", "Table 1");
  CostModelParams p;
  p.height = 3;
  p.entries_per_node = 170;
  p.m = {85, 85, 85};
  p.record_size = 100;
  p.entry_size = 32;

  for (RepartitionDesign d :
       {RepartitionDesign::kPlpRegular, RepartitionDesign::kPlpLeaf,
        RepartitionDesign::kPlpPartition, RepartitionDesign::kSharedNothing,
        RepartitionDesign::kPlpClustered,
        RepartitionDesign::kSharedNothingClustered}) {
    std::printf("%s\n", FormatCostRow(d, p).c_str());
  }

  // Measured slice on a real MRBTree: 200k entries, split in half.
  BufferPool pool;
  std::unique_ptr<MRBTree> tree;
  (void)MRBTree::Create(&pool, LatchPolicy::kNone, {""}, &tree);
  const std::string rid(6, 'r');
  for (std::uint32_t k = 0; k < 200000; ++k) {
    (void)tree->Insert(KeyU32(k), rid);
  }
  const std::size_t pages_before = pool.num_pages();
  const std::uint64_t t0 = NowNanos();
  (void)tree->Split(KeyU32(100000));
  const std::uint64_t t1 = NowNanos();
  std::printf(
      "\nMeasured MRBTree slice (200k entries split in half): %.2f ms,\n"
      "%zu new pages allocated (boundary path only, tree height %d)\n",
      NanosToMillis(t1 - t0), pool.num_pages() - pages_before,
      tree->subtree(0)->height() + 1);
  std::printf(
      "\nExpected shape: PLP-Regular/-Leaf move KBs; PLP-Partition and\n"
      "Shared-Nothing move the full 233MB; only Shared-Nothing needs\n"
      "millions of index inserts+deletes.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
