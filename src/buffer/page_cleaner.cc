#include "src/buffer/page_cleaner.h"

#include <chrono>

namespace plp {

PageCleaner::PageCleaner(BufferPool* pool, Delegate delegate,
                         std::size_t batch_size)
    : pool_(pool), delegate_(std::move(delegate)), batch_size_(batch_size) {}

PageCleaner::~PageCleaner() { Stop(); }

void PageCleaner::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void PageCleaner::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void PageCleaner::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    if (RunOnce() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

std::size_t PageCleaner::RunOnce() {
  std::size_t handled = 0;
  for (PageId id : pool_->DirtyPages(batch_size_)) {
    if (delegate_ && delegate_(id)) {
      ++handled;  // the owning partition worker will clean it
      continue;
    }
    Page* page = pool_->Fix(id);
    if (page == nullptr) continue;
    CleanPage(page, LatchPolicy::kLatched);
    ++handled;
  }
  pages_cleaned_.fetch_add(handled, std::memory_order_relaxed);
  return handled;
}

void PageCleaner::CleanPage(Page* page, LatchPolicy policy) {
  // Cleaning is a read-only copy of the frame followed by clearing the
  // dirty bit; with a real I/O subsystem the copy would be written back.
  LatchGuard g(&page->latch(), LatchMode::kShared, policy);
  page->MarkClean();
}

}  // namespace plp
