#include "src/engine/record_ops.h"

#include <cstring>

#include "src/txn/recovery.h"

namespace plp {

std::string RidToBytes(Rid rid) {
  std::string out(6, '\0');
  std::memcpy(out.data(), &rid.page_id, 4);
  std::memcpy(out.data() + 4, &rid.slot, 2);
  return out;
}

Rid RidFromBytes(Slice bytes) {
  Rid rid;
  std::memcpy(&rid.page_id, bytes.data(), 4);
  std::memcpy(&rid.slot, bytes.data() + 4, 2);
  return rid;
}

HeapFile::MutationHook SystemHeapLogHook(LogManager* log,
                                         std::uint32_t table_id,
                                         LogType type, std::string image) {
  if (log == nullptr) return {};
  return [log, table_id, type, image = std::move(image)](Page* page,
                                                         SlotId slot) {
    LogRecord rec;
    rec.type = type;
    rec.txn = kInvalidTxnId;  // system record: repeat-history, never undone
    rec.rid = Rid{page->id(), slot};
    rec.table = table_id;
    if (type == LogType::kHeapInsert || type == LogType::kHeapUpdate) {
      rec.redo = image;
    } else {
      rec.undo = image;
    }
    page->StampUpdate(log->Append(rec));
  };
}

void BaseExecContext::LogHeapOpOnPage(LogType type, Page* page, Rid rid,
                                      Slice redo, Slice undo) {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn_->id();
  rec.rid = rid;
  rec.table = table_->id();
  rec.redo.assign(redo.data(), redo.size());
  rec.undo.assign(undo.data(), undo.size());
  const Lsn lsn = log_->Append(rec);
  txn_->set_last_lsn(lsn);
  // WAL bookkeeping on the frame: page_lsn drives the steal barrier,
  // rec_lsn the fuzzy checkpoint's dirty page table. The caller (a
  // HeapFile mutation hook) still pins and exclusively holds the page, so
  // no eviction can steal the modified-but-unstamped frame.
  page->StampUpdate(lsn);
}

HeapFile::MutationHook BaseExecContext::HeapLogHook(LogType type, Slice redo,
                                                    Slice undo) {
  return [this, type, redo, undo](Page* page, SlotId slot) {
    LogHeapOpOnPage(type, page, Rid{page->id(), slot}, redo, undo);
  };
}

void BaseExecContext::LogIndexOp(LogType type, Slice key, Slice value) {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn_->id();
  rec.table = table_->id();
  if (type == LogType::kIndexInsert) {
    rec.redo = RecoveryManager::EncodeIndexOp(key, value);
  } else {
    rec.undo = RecoveryManager::EncodeIndexOp(key, value);
  }
  txn_->set_last_lsn(log_->Append(rec));
}

Status BaseExecContext::PlaceRecord(Slice key, Slice payload, Rid* rid,
                                    const HeapFile::MutationHook& logged) {
  HeapFile* heap = table_->heap();
  switch (heap->mode()) {
    case HeapMode::kShared:
      return heap->Insert(payload, rid, logged);
    case HeapMode::kPartitionOwned:
      return heap->InsertOwned(owner_uid_, payload, rid, logged);
    case HeapMode::kLeafOwned: {
      // The record lands on a page owned by the leaf that will hold its
      // index entry; the storage layer is partition-unaware, so this is
      // the callback into the metadata layer the paper describes (§3.3).
      MRBTree* primary = table_->primary();
      BTree* sub = primary->subtree(primary->PartitionFor(key));
      return heap->InsertOwned(sub->LeafFor(key), payload, rid, logged);
    }
  }
  return Status::Internal("unknown heap mode");
}

Status BaseExecContext::Read(Slice key, std::string* payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kS));
  if (table_->config().clustered) {
    return table_->primary()->Probe(key, payload);
  }
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  return table_->heap()->Get(RidFromBytes(rid_bytes), payload);
}

Status BaseExecContext::InsertClustered(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(table_->primary()->Insert(key, payload, txn_->id()));
  if (!table_->logged_index()) LogIndexOp(LogType::kIndexInsert, key, payload);
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string skey = sec->key_fn(key, payload) + key.ToString();
    PLP_RETURN_IF_ERROR(sec->index->Insert(skey, key));
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string payload_copy = payload.ToString();
  AddUndo([table, key_copy, payload_copy]() {
    PLP_RETURN_IF_ERROR(table->primary()->Delete(key_copy));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Delete(sec->key_fn(key_copy, payload_copy) +
                               key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::UpdateClustered(Slice key, Slice payload) {
  std::string before;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &before));
  PLP_RETURN_IF_ERROR(table_->primary()->Update(key, payload, txn_->id()));
  if (!table_->logged_index()) {
    LogIndexOp(LogType::kIndexDelete, key, before);
    LogIndexOp(LogType::kIndexInsert, key, payload);
  }
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string old_skey = sec->key_fn(key, before) + key.ToString();
    const std::string new_skey = sec->key_fn(key, payload) + key.ToString();
    if (old_skey != new_skey) {
      (void)sec->index->Delete(old_skey);
      PLP_RETURN_IF_ERROR(sec->index->Insert(new_skey, key));
    }
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  AddUndo([table, key_copy, before_copy]() {
    return table->primary()->Update(key_copy, before_copy);
  });
  return Status::OK();
}

Status BaseExecContext::DeleteClustered(Slice key) {
  std::string before;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &before));
  PLP_RETURN_IF_ERROR(table_->primary()->Delete(key, txn_->id()));
  if (!table_->logged_index()) LogIndexOp(LogType::kIndexDelete, key, before);
  for (Table::Secondary* sec : table_->secondaries()) {
    (void)sec->index->Delete(sec->key_fn(key, before) + key.ToString());
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  AddUndo([table, key_copy, before_copy]() {
    return table->primary()->Insert(key_copy, before_copy);
  });
  return Status::OK();
}

Status BaseExecContext::Insert(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return InsertClustered(key, payload);
  Rid rid;
  PLP_RETURN_IF_ERROR(PlaceRecord(
      key, payload, &rid, HeapLogHook(LogType::kHeapInsert, payload, Slice())));

  const std::string rid_bytes = RidToBytes(rid);
  Status st = table_->primary()->Insert(key, rid_bytes, txn_->id());
  if (!st.ok()) {
    // Roll the heap placement back immediately; the key already exists.
    (void)table_->heap()->Delete(
        rid, HeapLogHook(LogType::kHeapDelete, Slice(), payload));
    return st;
  }
  if (!table_->logged_index()) LogIndexOp(LogType::kIndexInsert, key, rid_bytes);

  // Secondary index maintenance (conventional access, Appendix E).
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string skey = sec->key_fn(key, payload) + key.ToString();
    PLP_RETURN_IF_ERROR(sec->index->Insert(skey, key));
  }

  Table* table = table_;
  LogManager* log = log_;
  const std::string key_copy = key.ToString();
  const std::string payload_copy = payload.ToString();
  AddUndo([table, log, key_copy, payload_copy]() {
    std::string rb;
    PLP_RETURN_IF_ERROR(table->primary()->Probe(key_copy, &rb));
    // Compensations are logged as SYSTEM records: an unlogged page change
    // on a clean frame leaves no rec_lsn trace, so a later logged op
    // would pin the dirty interval past the loser's records and the next
    // checkpoint's scan window could miss them — resurrecting the
    // aborted effect from a mid-transaction page steal after a crash.
    PLP_RETURN_IF_ERROR(table->heap()->Delete(
        RidFromBytes(rb),
        SystemHeapLogHook(log, table->id(), LogType::kHeapDelete,
                          payload_copy)));
    PLP_RETURN_IF_ERROR(table->primary()->Delete(key_copy));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Delete(sec->key_fn(key_copy, payload_copy) +
                               key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::Update(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return UpdateClustered(key, payload);
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  const Rid rid = RidFromBytes(rid_bytes);

  std::string before;
  PLP_RETURN_IF_ERROR(table_->heap()->Get(rid, &before));
  PLP_RETURN_IF_ERROR(table_->heap()->Update(
      rid, payload, HeapLogHook(LogType::kHeapUpdate, payload, before)));

  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string old_skey = sec->key_fn(key, before) + key.ToString();
    const std::string new_skey = sec->key_fn(key, payload) + key.ToString();
    if (old_skey != new_skey) {
      (void)sec->index->Delete(old_skey);
      PLP_RETURN_IF_ERROR(sec->index->Insert(new_skey, key));
    }
  }

  Table* table = table_;
  LogManager* log = log_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  const std::uint32_t owner = owner_uid_;
  AddUndo([table, log, key_copy, before_copy, owner]() {
    // The record may have moved since the update (a leaf split's
    // copy->re-point->release can relocate it before this compensation
    // runs), so resolve the CURRENT rid through the index rather than
    // trusting the one captured at update time.
    std::string rb;
    PLP_RETURN_IF_ERROR(table->primary()->Probe(key_copy, &rb));
    const Rid rid = RidFromBytes(rb);
    // Logged system compensation (see the insert-undo comment above).
    Status st = table->heap()->Update(
        rid, before_copy,
        SystemHeapLogHook(log, table->id(), LogType::kHeapUpdate,
                          before_copy));
    if (!st.IsNoSpace()) return st;
    // The page is too full to grow the before-image back in place (other
    // records claimed the freed space). Relocate: free the slot, place
    // the before-image wherever it fits, and re-point the index entry.
    HeapFile* heap = table->heap();
    PLP_RETURN_IF_ERROR(heap->Delete(
        rid, SystemHeapLogHook(log, table->id(), LogType::kHeapDelete,
                               std::string())));
    std::uint32_t restore_owner = owner;
    if (heap->mode() == HeapMode::kLeafOwned) {
      MRBTree* primary = table->primary();
      BTree* sub = primary->subtree(primary->PartitionFor(key_copy));
      restore_owner = sub->LeafFor(key_copy);
    }
    Rid new_rid;
    PLP_RETURN_IF_ERROR(heap->RestoreAt(
        rid, restore_owner, before_copy, &new_rid,
        SystemHeapLogHook(log, table->id(), LogType::kHeapInsert,
                          before_copy)));
    if (!(new_rid == rid)) {
      PLP_RETURN_IF_ERROR(
          table->primary()->Update(key_copy, RidToBytes(new_rid)));
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::Delete(Slice key) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return DeleteClustered(key);
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  const Rid rid = RidFromBytes(rid_bytes);

  std::string before;
  PLP_RETURN_IF_ERROR(table_->heap()->Get(rid, &before));
  PLP_RETURN_IF_ERROR(table_->heap()->Delete(
      rid, HeapLogHook(LogType::kHeapDelete, Slice(), before)));
  PLP_RETURN_IF_ERROR(table_->primary()->Delete(key, txn_->id()));
  if (!table_->logged_index()) LogIndexOp(LogType::kIndexDelete, key, rid_bytes);

  for (Table::Secondary* sec : table_->secondaries()) {
    (void)sec->index->Delete(sec->key_fn(key, before) + key.ToString());
  }

  Table* table = table_;
  LogManager* log = log_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  const std::uint32_t owner = owner_uid_;
  AddUndo([table, log, key_copy, before_copy, owner, rid]() {
    // Logical undo at the original RID whenever the slot is still free
    // (falling back to a fresh placement when it was reused); the
    // restore is logged below as a system record either way.
    HeapFile* heap = table->heap();
    std::uint32_t restore_owner = owner;
    if (heap->mode() == HeapMode::kLeafOwned) {
      MRBTree* primary = table->primary();
      BTree* sub = primary->subtree(primary->PartitionFor(key_copy));
      restore_owner = sub->LeafFor(key_copy);
    }
    Rid new_rid;
    // The restore is logged as a SYSTEM record: the fallback path places
    // the record at a RID the value-based undo of restart recovery could
    // never reproduce, while the index re-point below IS logged — an
    // unlogged restore would leave this committed key dangling after a
    // crash (found by the SMO crash-loop fuzz).
    PLP_RETURN_IF_ERROR(heap->RestoreAt(
        rid, restore_owner, before_copy, &new_rid,
        SystemHeapLogHook(log, table->id(), LogType::kHeapInsert,
                          before_copy)));
    PLP_RETURN_IF_ERROR(
        table->primary()->Insert(key_copy, RidToBytes(new_rid)));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Insert(
          sec->key_fn(key_copy, before_copy) + key_copy, key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::ScanRange(Slice start, Slice end,
                                  const std::function<bool(Slice, Slice)>& fn) {
  Status inner = Status::OK();
  const bool clustered = table_->config().clustered;
  PLP_RETURN_IF_ERROR(
      table_->primary()->ScanFrom(start, [&](Slice key, Slice value) {
        if (!end.empty() && !(key < end)) return false;
        inner = LockRecord(key, LockMode::kS);
        if (!inner.ok()) return false;
        if (clustered) return fn(key, value);
        std::string payload;
        inner = table_->heap()->Get(RidFromBytes(value), &payload);
        if (!inner.ok()) return false;
        return fn(key, payload);
      }));
  return inner;
}

}  // namespace plp
