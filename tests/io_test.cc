// Unit tests for the durable-storage building blocks: disk manager page
// slots, segmented WAL (including torn-tail repair), group commit, the
// checkpoint image codec, and buffer-pool eviction mechanics.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/io/checkpoint.h"
#include "src/io/disk_manager.h"
#include "src/io/wal_storage.h"
#include "src/log/log_manager.h"
#include "src/storage/slotted_page.h"

namespace plp {
namespace {

class IoTest : public ::testing::Test {
 protected:
  IoTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~IoTest() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, DiskManagerRoundTrip) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  EXPECT_FALSE(dm->Contains(1));
  EXPECT_EQ(dm->max_page_id(), 0u);

  std::vector<char> page(kPageSize, 'x');
  PageSlotHeader h;
  h.page_class = 1;
  h.owner_tag = 7;
  h.table_tag = 3;
  h.page_lsn = 1234;
  ASSERT_TRUE(dm->WritePage(5, h, page.data()).ok());
  ASSERT_TRUE(dm->Sync().ok());
  EXPECT_TRUE(dm->Contains(5));
  EXPECT_EQ(dm->max_page_id(), 5u);

  std::vector<char> readback(kPageSize);
  PageSlotHeader rh;
  ASSERT_TRUE(dm->ReadPage(5, &rh, readback.data()).ok());
  EXPECT_EQ(rh.owner_tag, 7u);
  EXPECT_EQ(rh.table_tag, 3u);
  EXPECT_EQ(rh.page_lsn, 1234u);
  EXPECT_EQ(std::memcmp(page.data(), readback.data(), kPageSize), 0);

  EXPECT_TRUE(dm->ReadPage(4, &rh, readback.data()).IsNotFound());
}

TEST_F(IoTest, DiskManagerSurvivesReopen) {
  {
    std::unique_ptr<DiskManager> dm;
    ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
    std::vector<char> page(kPageSize, 'a');
    PageSlotHeader h;
    h.page_lsn = 42;
    ASSERT_TRUE(dm->WritePage(1, h, page.data()).ok());
    ASSERT_TRUE(dm->WritePage(3, h, page.data()).ok());
    ASSERT_TRUE(dm->FreePage(1).ok());
    ASSERT_TRUE(dm->Sync().ok());
  }
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  EXPECT_FALSE(dm->Contains(1));
  EXPECT_TRUE(dm->Contains(3));
  EXPECT_EQ(dm->AllPages().size(), 1u);
}

LogRecord MakeRecord(TxnId txn, const std::string& redo) {
  LogRecord rec;
  rec.type = LogType::kHeapInsert;
  rec.txn = txn;
  rec.rid = Rid{1, 0};
  rec.redo = redo;
  return rec;
}

TEST_F(IoTest, WalSegmentsRollAndScan) {
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), /*segment_size=*/256, &wal).ok());
  std::vector<Lsn> lsns;
  Lsn at = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string bytes = MakeRecord(1, "payload-" + std::to_string(i))
                                  .Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    lsns.push_back(at);
    at += bytes.size();
  }
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_GT(wal->num_segments(), 3u);  // tiny segments must have rolled

  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, lsns[static_cast<std::size_t>(count)]);
    EXPECT_EQ(rec.redo, "payload-" + std::to_string(count));
    ++count;
  }).ok());
  EXPECT_EQ(count, 50);

  // Scan from a mid-stream record boundary.
  count = 0;
  ASSERT_TRUE(wal->ScanFrom(lsns[30], [&](Lsn, const LogRecord&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 20);
}

TEST_F(IoTest, WalReopenContinuesStream) {
  Lsn end;
  {
    std::unique_ptr<WalStorage> wal;
    ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
    const std::string bytes = MakeRecord(1, "first").Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(wal->Sync().ok());
    end = wal->end_lsn();
  }
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
  EXPECT_EQ(wal->end_lsn(), end);
  const std::string bytes = MakeRecord(2, "second").Serialize();
  ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn, const LogRecord& rec) {
    ++count;
    EXPECT_EQ(rec.redo, count == 1 ? "first" : "second");
  }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(IoTest, WalTornTailRepairedOnReopen) {
  std::string full;
  {
    std::unique_ptr<WalStorage> wal;
    ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
    full = MakeRecord(1, "kept").Serialize();
    ASSERT_TRUE(wal->Append(full.data(), full.size()).ok());
    const std::string torn = MakeRecord(2, "torn-away").Serialize();
    // Simulate a crash mid-write: only half the record hits the file.
    ASSERT_TRUE(wal->Append(torn.data(), torn.size() / 2).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
  EXPECT_EQ(wal->end_lsn(), full.size());  // torn bytes dropped
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn, const LogRecord& rec) {
    ++count;
    EXPECT_EQ(rec.redo, "kept");
  }).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(IoTest, GroupCommitBatchesFsyncs) {
  LogConfig config;
  config.wal_dir = Path("wal");
  LogManager log(config);
  ASSERT_TRUE(log.open_status().ok());

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        LogRecord rec;
        rec.type = LogType::kCommit;
        rec.txn = static_cast<TxnId>(t * 1000 + i + 1);
        const Lsn lsn = log.Append(rec);
        log.FlushTo(lsn);  // "commit": must be durable before returning
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(log.flush_requests(), kThreads * kCommitsPerThread);
  EXPECT_GE(log.durable_lsn(), log.next_lsn());
  // The whole point of group commit: far fewer fsyncs than commits.
  EXPECT_LT(log.sync_count(), log.flush_requests());

  int scanned = 0;
  ASSERT_TRUE(log.Scan([&](Lsn, const LogRecord&) { ++scanned; }).ok());
  EXPECT_EQ(scanned, kThreads * kCommitsPerThread);
}

TEST_F(IoTest, CheckpointImageRoundTrip) {
  CheckpointImage img;
  img.dirty_pages = {{3, 100}, {9, 250}};
  img.active_txns = {{11, 90}, {12, 240}};
  img.next_txn_id = 13;
  CheckpointImage::TableSnapshot snap;
  snap.table_id = 0;
  snap.entries = {{"alpha", "rid-1"}, {"beta", std::string("\0\x01", 2)}};
  img.tables.push_back(snap);

  CheckpointImage out;
  ASSERT_TRUE(CheckpointImage::Decode(img.Encode(), &out).ok());
  EXPECT_EQ(out.dirty_pages, img.dirty_pages);
  EXPECT_EQ(out.active_txns, img.active_txns);
  EXPECT_EQ(out.next_txn_id, 13u);
  ASSERT_EQ(out.tables.size(), 1u);
  EXPECT_EQ(out.tables[0].entries, snap.entries);

  EXPECT_EQ(img.ScanStart(300), 90u);  // min of dpt/txn/checkpoint lsns
  EXPECT_EQ(CheckpointImage{}.ScanStart(300), 300u);
}

TEST_F(IoTest, MasterRecordRoundTrip) {
  Lsn lsn = 0;
  EXPECT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).IsNotFound());
  ASSERT_TRUE(WriteMasterRecord(Path("CHECKPOINT"), 777).ok());
  ASSERT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).ok());
  EXPECT_EQ(lsn, 777u);
  ASSERT_TRUE(WriteMasterRecord(Path("CHECKPOINT"), 999).ok());
  ASSERT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).ok());
  EXPECT_EQ(lsn, 999u);
}

TEST_F(IoTest, BufferPoolEvictsCleanAndDirtyHeapPages) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());

  BufferPoolConfig pc;
  pc.frame_budget = 4;
  pc.disk = dm.get();
  BufferPool pool(pc);
  ASSERT_TRUE(pool.evicting());

  // Allocate more heap pages than the budget; write a recognizable
  // payload into each so reloads can be verified.
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    PageRef page = pool.AllocatePage(PageClass::kHeap, /*table_tag=*/0);
    SlottedPage::Init(page->data());
    SlotId slot;
    ASSERT_TRUE(SlottedPage(page->data())
                    .Insert("page-" + std::to_string(i), &slot)
                    .ok());
    page->MarkDirty();
    ids.push_back(page->id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_GT(pool.disk_writes(), 0u);
  EXPECT_LE(pool.num_pages(), 5u);  // soft budget

  // Every page remains readable through the pool (disk read-through).
  for (int i = 0; i < 12; ++i) {
    PageRef page = pool.AcquirePage(ids[static_cast<std::size_t>(i)],
                                    /*tracked=*/true);
    ASSERT_TRUE(page) << i;
    Slice rec;
    ASSERT_TRUE(SlottedPage(page->data()).Get(0, &rec).ok()) << i;
    EXPECT_EQ(rec.ToString(), "page-" + std::to_string(i));
  }
  EXPECT_GT(pool.disk_reads(), 0u);
}

TEST_F(IoTest, PinnedPagesAreNotEvicted) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);

  PageRef pinned = pool.AllocatePage(PageClass::kHeap, 0);
  SlottedPage::Init(pinned->data());
  Page* pinned_raw = pinned.get();
  const PageId pinned_id = pinned->id();
  for (int i = 0; i < 8; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
    p->MarkDirty();
  }
  // The pinned frame survived the churn (same frame, still resident).
  EXPECT_EQ(pool.FixUnlocked(pinned_id), pinned_raw);
}

TEST_F(IoTest, EvictionNotifiesPageCaches) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);
  PageCache cache(&pool);

  std::vector<PageId> evicted;
  pool.RegisterEvictionListener(&evicted, [&evicted](PageId id) {
    evicted.push_back(id);
  });
  for (int i = 0; i < 6; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
    (void)cache.Fix(p->id());
  }
  pool.UnregisterEvictionListener(&evicted);
  EXPECT_FALSE(evicted.empty());
  // Cache entries for evicted ids were dropped: a fresh Fix must go back
  // through the pool and return the *current* frame.
  for (PageId id : evicted) {
    Page* via_cache = cache.Fix(id);
    Page* via_pool = pool.FixUnlocked(id);
    EXPECT_EQ(via_cache, via_pool);
  }
}

TEST_F(IoTest, IndexPagesStayResident) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);

  Page* index_page = pool.NewPage(PageClass::kIndex);
  const PageId index_id = index_page->id();
  for (int i = 0; i < 8; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
  }
  EXPECT_EQ(pool.FixUnlocked(index_id), index_page);
}

}  // namespace
}  // namespace plp
