// Figure 5: throughput of the read-only TATP GetSubscriberData
// transaction as hardware utilization grows, for Conventional, Logical
// and PLP. On this single-core host the thread sweep exercises software
// scalability only; the per-transaction work (latches, lock-manager
// critical sections, index depth) still separates the designs, and the
// PLP > Logical > Conventional ordering should hold at every point.
#include "bench/bench_common.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "GetSubscriberData throughput vs client threads (Ktps)", "Figure 5");
  bench::JsonReporter json("fig5_scaling");
  const int thread_counts[] = {1, 2, 4, 8};
  std::printf("%-12s", "design");
  for (int t : thread_counts) std::printf(" %7dthr", t);
  std::printf("  | unscalable-CS/txn  latches/txn\n");

  for (SystemDesign design :
       {SystemDesign::kConventional, SystemDesign::kLogical,
        SystemDesign::kPlpRegular}) {
    auto engine = bench::MakeEngine(design, 4);
    TatpConfig config;
    config.subscribers = 10000;
    config.partitions = 4;
    TatpWorkload tatp(engine.get(), config);
    if (!tatp.Load().ok()) continue;
    std::printf("%-12s", SystemDesignName(design));
    double unscalable = 0, latches = 0;
    for (int threads : thread_counts) {
      DriverOptions options;
      options.num_threads = threads;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(
          engine.get(),
          [&](Rng& rng) {
            return tatp.GetSubscriberData(tatp.RandomSubscriber(rng));
          },
          options);
      std::printf(" %10.1f", r.ktps());
      std::fflush(stdout);
      json.Add(SystemDesignName(design), threads, r);
      // Unscalable communication per transaction: lock manager, page
      // latching and buffer pool (Section 2.1's taxonomy) — this is what
      // determines the scaling curve on parallel hardware.
      const double inv = 1.0 / static_cast<double>(r.committed);
      unscalable =
          (static_cast<double>(
               r.cs_delta.entries[static_cast<int>(CsCategory::kLockMgr)]) +
           static_cast<double>(
               r.cs_delta.entries[static_cast<int>(CsCategory::kPageLatch)]) +
           static_cast<double>(r.cs_delta.entries[static_cast<int>(
               CsCategory::kBufferPool)])) *
          inv;
      latches = static_cast<double>(r.cs_delta.TotalLatches()) * inv;
    }
    std::printf("  | %17.2f %12.2f\n", unscalable, latches);
    engine->Stop();
  }
  std::printf(
      "\nExpected shape (paper, 16-64 HW contexts): PLP > Logical > Conv.\n"
      "in Ktps, widening with utilization (+22%% Logical, +40%% PLP on\n"
      "x86_64). NOTE: this host exposes a single hardware context, so the\n"
      "partitioned designs pay message-passing context switches with no\n"
      "parallelism to amortize them and raw Ktps inverts. The scaling\n"
      "determinant the paper identifies — unscalable critical sections\n"
      "per transaction (right columns) — does reproduce: PLP removes\n"
      "nearly all of them.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
