// The conventional shared-everything design: whole transactions execute
// against latched pages with centralized locking, optionally sped up with
// Speculative Lock Inheritance (Section 4.1 (a)). To serve the async
// Submit/TxnHandle API the engine runs a submission thread pool of
// `num_workers` executor threads; each pool thread plays the classic
// "worker thread" of the thread-per-transaction design.
#ifndef PLP_ENGINE_CONVENTIONAL_ENGINE_H_
#define PLP_ENGINE_CONVENTIONAL_ENGINE_H_

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/buffer/page_cleaner.h"
#include "src/engine/engine.h"
#include "src/lock/sli.h"
#include "src/sync/latch.h"
#include "src/sync/mpsc_queue.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class ConventionalEngine : public Engine {
 public:
  explicit ConventionalEngine(EngineConfig config);
  ~ConventionalEngine() override;

  Result<Table*> CreateTable(const std::string& name,
                             std::vector<std::string> boundaries,
                             bool clustered = false) override;

  void Start() override;
  void Stop() override;

 protected:
  /// Queues the transaction for a pool thread. Before Start() (or after
  /// Stop()) the transaction runs inline on the submitting thread, which
  /// preserves the historical synchronous behaviour.
  void SubmitImpl(TxnRequest req, TxnToken token) override;

 private:
  struct Job {
    TxnRequest req;
    TxnToken token;
  };

  /// Runs one transaction to commit or abort on the calling thread.
  /// `trace` (when the submission was traced) is handed to the Transaction
  /// so Commit stamps the log-append / fsync-durable stages.
  Status RunSync(TxnRequest& req, TxnTimeline* trace = nullptr);
  void PoolLoop();

  /// Per-executor-thread SLI cache, owned by the engine (so caches cannot
  /// outlive the lock manager they reference); created lazily.
  SliCache* ThreadSli();

  std::atomic<TxnId> next_pseudo_txn_{1ull << 62};
  std::unique_ptr<PageCleaner> cleaner_;

  // Submission pool. The job queue is a client-dispatch queue, not
  // partition message passing, so it is not CS-profiled.
  MpscQueue<Job> jobs_{/*record_cs=*/false};
  std::vector<std::thread> pool_;
  std::atomic<bool> pool_running_{false};

  Mutex sli_mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<SliCache>> sli_caches_
      PLP_GUARDED_BY(sli_mu_);
};

}  // namespace plp

#endif  // PLP_ENGINE_CONVENTIONAL_ENGINE_H_
