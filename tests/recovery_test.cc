// ARIES-lite restart recovery tests: winners replayed, losers rolled back.
#include <gtest/gtest.h>

#include "src/storage/slotted_page.h"
#include "src/txn/recovery.h"

namespace plp {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    LogConfig config;
    config.retain_for_recovery = true;
    log_ = std::make_unique<LogManager>(config);
  }

  void LogOp(TxnId txn, LogType type, Rid rid, std::string redo,
             std::string undo) {
    LogRecord rec;
    rec.type = type;
    rec.txn = txn;
    rec.rid = rid;
    rec.redo = std::move(redo);
    rec.undo = std::move(undo);
    log_->Append(rec);
  }

  void LogCommit(TxnId txn) {
    LogRecord rec;
    rec.type = LogType::kCommit;
    rec.txn = txn;
    log_->Append(rec);
  }

  std::string ReadRecord(BufferPool* pool, Rid rid) {
    Page* page = pool->FixUnlocked(rid.page_id);
    if (page == nullptr) return "<no page>";
    Slice rec;
    if (!SlottedPage(page->data()).Get(rid.slot, &rec).ok()) {
      return "<no record>";
    }
    return rec.ToString();
  }

  std::unique_ptr<LogManager> log_;
};

TEST_F(RecoveryTest, CommittedInsertSurvives) {
  LogOp(1, LogType::kHeapInsert, Rid{10, 0}, "hello", "");
  LogCommit(1);

  BufferPool fresh;  // crash wiped memory
  RecoveryManager rm(log_.get(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(nullptr, &stats).ok());
  EXPECT_EQ(stats.winners, 1u);
  EXPECT_EQ(stats.losers, 0u);
  EXPECT_EQ(ReadRecord(&fresh, Rid{10, 0}), "hello");
}

TEST_F(RecoveryTest, UncommittedInsertRolledBack) {
  LogOp(1, LogType::kHeapInsert, Rid{10, 0}, "loser-data", "");
  // No commit record: loser.
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(nullptr, &stats).ok());
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_EQ(stats.undo_ops, 1u);
  EXPECT_EQ(ReadRecord(&fresh, Rid{10, 0}), "<no record>");
}

TEST_F(RecoveryTest, UpdateUndoRestoresBeforeImage) {
  LogOp(1, LogType::kHeapInsert, Rid{5, 0}, "v1", "");
  LogCommit(1);
  LogOp(2, LogType::kHeapUpdate, Rid{5, 0}, "v2", "v1");
  // txn 2 never commits.
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());
  EXPECT_EQ(ReadRecord(&fresh, Rid{5, 0}), "v1");
}

TEST_F(RecoveryTest, CommittedUpdateWins) {
  LogOp(1, LogType::kHeapInsert, Rid{5, 0}, "v1", "");
  LogCommit(1);
  LogOp(2, LogType::kHeapUpdate, Rid{5, 0}, "v2", "v1");
  LogCommit(2);
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());
  EXPECT_EQ(ReadRecord(&fresh, Rid{5, 0}), "v2");
}

TEST_F(RecoveryTest, DeleteUndoReinsertsRecord) {
  LogOp(1, LogType::kHeapInsert, Rid{7, 2}, "keep-me", "");
  LogCommit(1);
  LogOp(2, LogType::kHeapDelete, Rid{7, 2}, "", "keep-me");
  // txn 2 aborts at crash.
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());
  EXPECT_EQ(ReadRecord(&fresh, Rid{7, 2}), "keep-me");
}

TEST_F(RecoveryTest, CommittedDeleteStaysDeleted) {
  LogOp(1, LogType::kHeapInsert, Rid{7, 2}, "gone", "");
  LogCommit(1);
  LogOp(2, LogType::kHeapDelete, Rid{7, 2}, "", "gone");
  LogCommit(2);
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());
  EXPECT_EQ(ReadRecord(&fresh, Rid{7, 2}), "<no record>");
}

TEST_F(RecoveryTest, IndexReplayedForWinnersOnly) {
  LogRecord rec;
  rec.type = LogType::kIndexInsert;
  rec.txn = 1;
  rec.redo = RecoveryManager::EncodeIndexOp("alpha", "rid-1");
  log_->Append(rec);
  LogCommit(1);

  rec.txn = 2;
  rec.redo = RecoveryManager::EncodeIndexOp("beta", "rid-2");
  log_->Append(rec);  // loser

  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(log_.get(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(&index, &stats).ok());
  EXPECT_EQ(stats.index_ops, 1u);

  std::string value;
  EXPECT_TRUE(index.Probe("alpha", &value).ok());
  EXPECT_EQ(value, "rid-1");
  EXPECT_TRUE(index.Probe("beta", &value).IsNotFound());
}

TEST_F(RecoveryTest, IndexDeleteReplayed) {
  LogRecord rec;
  rec.type = LogType::kIndexInsert;
  rec.txn = 1;
  rec.redo = RecoveryManager::EncodeIndexOp("k", "v");
  log_->Append(rec);
  rec.type = LogType::kIndexDelete;
  rec.redo.clear();
  rec.undo = RecoveryManager::EncodeIndexOp("k", "v");
  log_->Append(rec);
  LogCommit(1);

  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(&index, nullptr).ok());
  std::string value;
  EXPECT_TRUE(index.Probe("k", &value).IsNotFound());
}

TEST_F(RecoveryTest, InterleavedWinnersAndLosers) {
  // t1 commits, t2 aborts, t3 commits; ops interleaved on one page.
  LogOp(1, LogType::kHeapInsert, Rid{3, 0}, "w1", "");
  LogOp(2, LogType::kHeapInsert, Rid{3, 1}, "l1", "");
  LogOp(3, LogType::kHeapInsert, Rid{3, 2}, "w2", "");
  LogOp(2, LogType::kHeapUpdate, Rid{3, 1}, "l1b", "l1");
  LogCommit(1);
  LogCommit(3);

  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(nullptr, &stats).ok());
  EXPECT_EQ(stats.winners, 2u);
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_EQ(ReadRecord(&fresh, Rid{3, 0}), "w1");
  EXPECT_EQ(ReadRecord(&fresh, Rid{3, 1}), "<no record>");
  EXPECT_EQ(ReadRecord(&fresh, Rid{3, 2}), "w2");
}

TEST_F(RecoveryTest, EncodeDecodeIndexOp) {
  const std::string payload = RecoveryManager::EncodeIndexOp("key", "value");
  std::string key, value;
  RecoveryManager::DecodeIndexOp(payload, &key, &value);
  EXPECT_EQ(key, "key");
  EXPECT_EQ(value, "value");
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  LogOp(1, LogType::kHeapInsert, Rid{10, 0}, "hello", "");
  LogCommit(1);
  BufferPool fresh;
  RecoveryManager rm(log_.get(), &fresh);
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());
  ASSERT_TRUE(rm.Recover(nullptr, nullptr).ok());  // run twice
  EXPECT_EQ(ReadRecord(&fresh, Rid{10, 0}), "hello");
}

}  // namespace
}  // namespace plp
