// Table 2: the repartitioning cost model itself, evaluated for trees of
// height 3 and height 4 to show how Shared-Nothing/PLP-Partition costs
// explode with tree height while PLP-Regular/PLP-Leaf stay flat.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/engine/cost_model.h"

namespace plp {
namespace {

void PrintFor(int height) {
  CostModelParams p;
  p.height = height;
  p.entries_per_node = 170;
  p.m.assign(static_cast<std::size_t>(height), 85);
  p.record_size = 100;
  p.entry_size = 32;
  std::printf("--- height %d, n=170 entries/node, m_k=85 ---\n", height);
  for (RepartitionDesign d :
       {RepartitionDesign::kPlpRegular, RepartitionDesign::kPlpLeaf,
        RepartitionDesign::kPlpPartition, RepartitionDesign::kSharedNothing,
        RepartitionDesign::kPlpClustered,
        RepartitionDesign::kSharedNothingClustered}) {
    std::printf("%s\n", FormatCostRow(d, p).c_str());
  }
}

void Run() {
  bench::PrintHeader("Repartitioning cost model across tree heights",
                     "Table 2 (Appendix C)");
  PrintFor(3);
  std::printf("\n");
  PrintFor(4);
  std::printf(
      "\nExpected shape: records moved by PLP-Partition/Shared-Nothing\n"
      "scale with n^(h-1) (prohibitive at height 4: ~412M records);\n"
      "PLP-Regular moves none and PLP-Leaf a single leaf's worth.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
