// Workload tests: TATP, TPC-B, TPC-C-lite and the microbenchmarks run
// correctly on every design; TPC-B money is conserved.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/key_encoding.h"
#include "src/workload/microbench.h"
#include "src/workload/tatp.h"
#include "src/workload/tpcb.h"
#include "src/workload/tpcc.h"
#include "src/workload/workload_driver.h"

namespace plp {
namespace {

std::unique_ptr<Engine> MakeEngine(SystemDesign design) {
  EngineConfig config;
  config.design = design;
  config.num_workers = 2;
  auto created = CreateEngine(config);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  return engine;
}

class TatpAllDesignsTest : public ::testing::TestWithParam<SystemDesign> {};

INSTANTIATE_TEST_SUITE_P(
    Designs, TatpAllDesignsTest,
    ::testing::Values(SystemDesign::kConventional, SystemDesign::kLogical,
                      SystemDesign::kPlpRegular, SystemDesign::kPlpPartition,
                      SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kConventional: return "Conventional";
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
      }
      return "Unknown";
    });

TEST_P(TatpAllDesignsTest, LoadAndRunMix) {
  auto engine = MakeEngine(GetParam());
  TatpConfig config;
  config.subscribers = 500;
  config.partitions = 2;
  TatpWorkload tatp(engine.get(), config);
  ASSERT_TRUE(tatp.Load().ok());

  Table* subscriber = engine->db().GetTable(TatpWorkload::kSubscriber);
  ASSERT_NE(subscriber, nullptr);
  EXPECT_EQ(subscriber->primary()->num_entries(), 500u);

  Rng rng(1);
  int committed = 0;
  for (int i = 0; i < 2000; ++i) {
    TxnRequest req = tatp.NextTransaction(rng);
    if (engine->Execute(req).ok()) ++committed;
  }
  // Most transactions commit (only lock-timeout aborts are possible).
  EXPECT_GT(committed, 1900);
  ASSERT_TRUE(subscriber->primary()->CheckIntegrity().ok());
  engine->Stop();
}

TEST(TatpTest, KeysEncodeHierarchically) {
  // CallFwd keys for one subscriber sort inside the subscriber's range.
  const std::string s_lo = TatpWorkload::CallFwdKey(5, 1, 0);
  const std::string s_hi = TatpWorkload::CallFwdKey(5, 4, 16);
  const std::string next_sub = TatpWorkload::CallFwdKey(6, 1, 0);
  EXPECT_LT(Slice(s_lo), Slice(s_hi));
  EXPECT_LT(Slice(s_hi), Slice(next_sub));
}

TEST(TatpTest, BoundariesCoverKeySpace) {
  auto boundaries = TatpWorkload::BoundariesFor(1000, 4);
  ASSERT_EQ(boundaries.size(), 4u);
  EXPECT_EQ(boundaries[0], "");
  EXPECT_EQ(DecodeU32(boundaries[1]), 251u);
  EXPECT_EQ(DecodeU32(boundaries[2]), 501u);
}

TEST(TatpTest, GetSubscriberDataReadsExistingRow) {
  auto engine = MakeEngine(SystemDesign::kPlpLeaf);
  TatpConfig config;
  config.subscribers = 100;
  config.partitions = 2;
  TatpWorkload tatp(engine.get(), config);
  ASSERT_TRUE(tatp.Load().ok());
  TxnRequest req = tatp.GetSubscriberData(50);
  EXPECT_TRUE(engine->Execute(req).ok());
  engine->Stop();
}

TEST(TatpTest, UpdateLocationChangesVlr) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  TatpConfig config;
  config.subscribers = 100;
  config.partitions = 2;
  TatpWorkload tatp(engine.get(), config);
  ASSERT_TRUE(tatp.Load().ok());
  TxnRequest req = tatp.UpdateLocation(42, 0xDEADBEEF);
  ASSERT_TRUE(engine->Execute(req).ok());

  // Verify through a direct read.
  auto out = std::make_shared<std::string>();
  TxnRequest verify;
  const std::string key = TatpWorkload::SubscriberKey(42);
  verify.Add(0, TatpWorkload::kSubscriber, key, [key, out](ExecContext& ctx) {
    return ctx.Read(key, out.get());
  });
  ASSERT_TRUE(engine->Execute(verify).ok());
  EXPECT_EQ(TatpWorkload::VlrFromRecord(*out), 0xDEADBEEFu);
  engine->Stop();
}

TEST(TatpTest, InsertDeleteHeavyDrivesSmos) {
  auto engine = MakeEngine(SystemDesign::kPlpLeaf);
  TatpConfig config;
  config.subscribers = 2000;
  config.partitions = 2;
  TatpWorkload tatp(engine.get(), config);
  ASSERT_TRUE(tatp.Load().ok());
  Table* cf = engine->db().GetTable(TatpWorkload::kCallFwd);
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    TxnRequest req = tatp.NextInsertDeleteHeavy(rng);
    ASSERT_TRUE(engine->Execute(req).ok());
  }
  ASSERT_TRUE(cf->primary()->CheckIntegrity().ok());
  engine->Stop();
}

class TpcbAllDesignsTest : public ::testing::TestWithParam<SystemDesign> {};

INSTANTIATE_TEST_SUITE_P(
    Designs, TpcbAllDesignsTest,
    ::testing::Values(SystemDesign::kConventional, SystemDesign::kLogical,
                      SystemDesign::kPlpRegular, SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kConventional: return "Conventional";
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
      }
      return "Unknown";
    });

TEST_P(TpcbAllDesignsTest, MoneyIsConserved) {
  auto engine = MakeEngine(GetParam());
  TpcbConfig config;
  config.branches = 4;
  config.tellers_per_branch = 4;
  config.accounts_per_branch = 50;
  config.partitions = 2;
  TpcbWorkload tpcb(engine.get(), config);
  ASSERT_TRUE(tpcb.Load().ok());

  Rng rng(5);
  int committed = 0;
  for (int i = 0; i < 500; ++i) {
    TxnRequest req = tpcb.NextTransaction(rng);
    if (engine->Execute(req).ok()) ++committed;
  }
  EXPECT_GT(committed, 450);

  // Invariant: sum(branch balances) == sum(teller balances)
  //         == sum(account balances) — every delta hit all three.
  auto sum_table = [&](const char* name) {
    std::int64_t total = 0;
    Table* table = engine->db().GetTable(name);
    table->heap()->Scan([&](Rid, Slice rec) {
      total += TpcbWorkload::BalanceOf(rec);
    });
    return total;
  };
  const std::int64_t branches = sum_table(TpcbWorkload::kBranch);
  const std::int64_t tellers = sum_table(TpcbWorkload::kTeller);
  const std::int64_t accounts = sum_table(TpcbWorkload::kAccount);
  EXPECT_EQ(branches, tellers);
  EXPECT_EQ(branches, accounts);
  engine->Stop();
}

TEST(TpcbTest, UnpaddedBranchesShareHeapPages) {
  auto engine = MakeEngine(SystemDesign::kLogical);
  TpcbConfig config;
  config.branches = 64;
  config.tellers_per_branch = 1;
  config.accounts_per_branch = 1;
  config.pad_records = false;
  TpcbWorkload tpcb(engine.get(), config);
  ASSERT_TRUE(tpcb.Load().ok());
  // 64 unpadded 32B branch records fit on one or two heap pages — the
  // false-sharing setup of Figure 7.
  Table* branch = engine->db().GetTable(TpcbWorkload::kBranch);
  EXPECT_LE(branch->heap()->num_pages(), 2u);
  engine->Stop();
}

TEST(TpcbTest, PaddingSpreadsBranches) {
  auto engine = MakeEngine(SystemDesign::kLogical);
  TpcbConfig config;
  config.branches = 16;
  config.tellers_per_branch = 1;
  config.accounts_per_branch = 1;
  config.pad_records = true;
  TpcbWorkload tpcb(engine.get(), config);
  ASSERT_TRUE(tpcb.Load().ok());
  Table* branch = engine->db().GetTable(TpcbWorkload::kBranch);
  EXPECT_GE(branch->heap()->num_pages(), 8u);
  engine->Stop();
}

TEST(TpccTest, LoadAndRunBothTransactions) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  TpccConfig config;
  config.warehouses = 2;
  config.districts_per_wh = 2;
  config.customers_per_district = 20;
  config.items = 100;
  config.partitions = 2;
  TpccWorkload tpcc(engine.get(), config);
  ASSERT_TRUE(tpcc.Load().ok());

  Rng rng(7);
  int committed = 0;
  for (int i = 0; i < 200; ++i) {
    TxnRequest req = tpcc.NextTransaction(rng);
    if (engine->Execute(req).ok()) ++committed;
  }
  EXPECT_GT(committed, 190);
  Table* orders = engine->db().GetTable(TpccWorkload::kOrder);
  EXPECT_GT(orders->primary()->num_entries(), 0u);
  engine->Stop();
}

TEST(MicrobenchTest, ProbeInsertMixRespectsPercentage) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  ProbeInsertConfig config;
  config.initial_rows = 1000;
  config.partitions = 2;
  config.insert_pct = 0;  // pure probes
  ProbeInsertMix micro(engine.get(), config);
  ASSERT_TRUE(micro.Load().ok());
  Table* table = engine->db().GetTable(ProbeInsertMix::kTable);
  const std::uint64_t before = table->primary()->num_entries();
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    TxnRequest req = micro.NextTransaction(rng);
    ASSERT_TRUE(engine->Execute(req).ok());
  }
  EXPECT_EQ(table->primary()->num_entries(), before);

  micro.set_insert_pct(100);  // pure inserts
  for (int i = 0; i < 500; ++i) {
    TxnRequest req = micro.NextTransaction(rng);
    ASSERT_TRUE(engine->Execute(req).ok());
  }
  EXPECT_GT(table->primary()->num_entries(), before);
  engine->Stop();
}

TEST(MicrobenchTest, BalanceProbeSkewTargetsHotRange) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  BalanceProbeConfig config;
  config.subscribers = 1000;
  config.record_size = 100;
  config.partitions = 4;
  BalanceProbe micro(engine.get(), config);
  ASSERT_TRUE(micro.Load().ok());
  micro.SetSkew(true, 0.1);
  Rng rng(11);
  int hot = 0;
  constexpr int kProbes = 2000;
  Table* table = engine->db().GetTable(BalanceProbe::kTable);
  (void)table;
  for (int i = 0; i < kProbes; ++i) {
    TxnRequest req = micro.NextTransaction(rng);
    const std::uint32_t s = DecodeU32(req.phases[0].actions[0].key);
    if (s <= 100) ++hot;
    ASSERT_TRUE(engine->Execute(req).ok());
  }
  // ~50% skewed + ~10% of uniform = ~55%.
  EXPECT_GT(hot, kProbes * 2 / 5);
  engine->Stop();
}

TEST(WorkloadDriverTest, RunsForDurationAndCounts) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  TatpConfig config;
  config.subscribers = 200;
  config.partitions = 2;
  TatpWorkload tatp(engine.get(), config);
  ASSERT_TRUE(tatp.Load().ok());

  DriverOptions options;
  options.num_threads = 2;
  options.duration = std::chrono::milliseconds(200);
  DriverResult result = RunWorkload(
      engine.get(),
      [&](Rng& rng) { return tatp.NextTransaction(rng); }, options);
  EXPECT_GT(result.committed, 100u);
  EXPECT_GT(result.ktps(), 0.0);
  EXPECT_GT(result.cs_per_txn(), 0.0);
  engine->Stop();
}

TEST(WorkloadDriverTest, TimedRunCollectsSamplesAndFiresEvents) {
  auto engine = MakeEngine(SystemDesign::kPlpRegular);
  BalanceProbeConfig config;
  config.subscribers = 500;
  config.record_size = 100;
  config.partitions = 2;
  BalanceProbe micro(engine.get(), config);
  ASSERT_TRUE(micro.Load().ok());

  DriverOptions options;
  options.num_threads = 2;
  options.duration = std::chrono::milliseconds(300);
  ThroughputProbe probe;
  bool event_fired = false;
  DriverResult result = RunWorkloadTimed(
      engine.get(), [&](Rng& rng) { return micro.NextTransaction(rng); },
      options, std::chrono::milliseconds(50), &probe,
      {{std::chrono::milliseconds(100), [&] { event_fired = true; }}});
  EXPECT_TRUE(event_fired);
  EXPECT_GE(probe.samples().size(), 4u);
  EXPECT_GT(result.committed, 0u);
  engine->Stop();
}

}  // namespace
}  // namespace plp
