#!/usr/bin/env python3
"""plp_top: live terminal view over the engine's [stats] JSON lines.

Tails the `[stats] {...}` lines the background reporter prints (set
PLP_STATS_INTERVAL_MS) and renders a refreshing dashboard: throughput,
in-flight transactions, buffer-pool hit rate, fsync latency, and the
flight recorder's top contended latch sites.

Rates are exact per-window deltas: consecutive cumulative snapshots are
subtracted and divided by the reporter's own stats.uptime_ms clock (not
line arrival time, which pipe buffering distorts).

Usage:
  PLP_STATS_INTERVAL_MS=500 ./example_quickstart | tools/plp_top.py
  tools/plp_top.py --file stats.log          # follow a file (tail -f)
  tools/plp_top.py --file stats.log --once   # one-shot, no ANSI refresh
"""

import argparse
import json
import re
import sys
import time

STATS_RE = re.compile(r"^\[stats\] (\{.*\})\s*$")


def follow(path):
    """Yields new lines appended to `path`, like tail -f."""
    with open(path, encoding="utf-8") as f:
        while True:
            line = f.readline()
            if line:
                yield line
            else:
                time.sleep(0.2)


def fmt_count(v):
    if v >= 1_000_000:
        return f"{v / 1_000_000:.1f}M"
    if v >= 10_000:
        return f"{v / 1000:.1f}k"
    return f"{v:.0f}" if isinstance(v, float) else str(v)


def contention_rows(snap):
    """Reassembles contention.<site>.<field> gauges into ranked rows."""
    sites = {}
    for key, value in snap.items():
        if not key.startswith("contention."):
            continue
        try:
            _, site, field = key.split(".", 2)
        except ValueError:
            continue
        sites.setdefault(site, {})[field] = value
    ranked = sorted(
        sites.items(),
        key=lambda kv: kv[1].get("wait_us_total", 0),
        reverse=True,
    )
    return ranked[:5]


def render(prev, cur, lines_seen):
    out = []
    window_ms = cur.get("stats.uptime_ms", 0) - (
        prev.get("stats.uptime_ms", 0) if prev else 0
    )
    dt = window_ms / 1000.0 if window_ms > 0 else None

    def delta(key):
        base = prev.get(key, 0) if prev else 0
        d = cur.get(key, 0) - base
        return d if d >= 0 else cur.get(key, 0)  # Reset() between lines

    def rate(key):
        d = delta(key)
        return f"{d / dt:,.0f}/s" if dt else f"{fmt_count(d)} (no window)"

    commits = delta("txn.commits")
    hits, misses = delta("buffer_pool.hits"), delta("buffer_pool.misses")
    hit_pct = 100.0 * hits / (hits + misses) if hits + misses else 100.0
    fsync = cur.get("log.fsync_us", {})

    out.append(f"plp_top — window {window_ms}ms — snapshot #{lines_seen}")
    out.append(f"  tps        {rate('txn.commits'):>14}   "
               f"(commits {fmt_count(commits)}, aborts {fmt_count(delta('txn.aborts'))})")
    out.append(f"  inflight   {cur.get('admission.inflight', 0):>14}   "
               f"(peak {cur.get('admission.peak_inflight', 0)}, "
               f"limit {cur.get('admission.limit', 0)})")
    out.append(f"  bp hit     {hit_pct:>13.2f}%   "
               f"(hits {fmt_count(hits)}, misses {fmt_count(misses)}, "
               f"evict-wb {fmt_count(delta('buffer_pool.eviction_writebacks'))})")
    out.append(f"  fsync      {rate('log.fsyncs'):>14}   "
               f"(cumulative p99 {fsync.get('p99', 0)}us, "
               f"max {fsync.get('max', 0)}us)")
    out.append(f"  trace drops{fmt_count(cur.get('trace.dropped_events', 0)):>14}")
    rows = contention_rows(cur)
    if rows:
        out.append("  top contended latch sites (cumulative):")
        for site, fields in rows:
            out.append(
                f"    {site:<20} waits={fmt_count(fields.get('waits', 0)):<8} "
                f"total={fmt_count(fields.get('wait_us_total', 0)):>8}us "
                f"p99={fields.get('p99_us', 0)}us"
            )
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", help="read/follow this file instead of stdin")
    parser.add_argument("--once", action="store_true",
                        help="process what's there, print once, exit")
    args = parser.parse_args()

    if args.file:
        source = open(args.file, encoding="utf-8") if args.once \
            else follow(args.file)
    else:
        source = sys.stdin

    prev = None
    cur = None
    lines_seen = 0
    last_height = 0
    try:
        for line in source:
            m = STATS_RE.match(line)
            if not m:
                continue
            try:
                snap = json.loads(m.group(1))
            except json.JSONDecodeError:
                continue
            prev, cur = cur, snap
            lines_seen += 1
            if args.once:
                continue
            block = render(prev, cur, lines_seen)
            # Refresh in place: move the cursor up over the previous block.
            if last_height and sys.stdout.isatty():
                sys.stdout.write(f"\x1b[{last_height}F\x1b[J")
            print("\n".join(block), flush=True)
            last_height = len(block)
    except KeyboardInterrupt:
        return 0
    if args.once and cur is not None:
        print("\n".join(render(prev, cur, lines_seen)))
    elif cur is None:
        print("no [stats] lines seen — run with PLP_STATS_INTERVAL_MS set",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
