// Hierarchical lock modes and their compatibility matrix.
#ifndef PLP_LOCK_LOCK_MODE_H_
#define PLP_LOCK_LOCK_MODE_H_

#include <cstdint>

namespace plp {

enum class LockMode : std::uint8_t { kIS = 0, kIX = 1, kS = 2, kX = 3 };

/// Standard multigranularity compatibility.
inline bool LockCompatible(LockMode a, LockMode b) {
  static constexpr bool kCompat[4][4] = {
      // IS     IX     S      X
      {true, true, true, false},    // IS
      {true, true, false, false},   // IX
      {true, false, true, false},   // S
      {false, false, false, false}  // X
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

/// True when holding `held` already satisfies a request for `wanted`.
inline bool LockCovers(LockMode held, LockMode wanted) {
  if (held == wanted) return true;
  switch (held) {
    case LockMode::kX: return true;
    case LockMode::kS: return wanted == LockMode::kIS;
    case LockMode::kIX: return wanted == LockMode::kIS;
    case LockMode::kIS: return false;
  }
  return false;
}

inline const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kX: return "X";
  }
  return "?";
}

}  // namespace plp

#endif  // PLP_LOCK_LOCK_MODE_H_
