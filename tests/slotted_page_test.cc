// Tests for the slotted heap-page layout, including property-style
// fill/compaction sweeps.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/storage/slotted_page.h"

namespace plp {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(data_) { SlottedPage::Init(data_); }
  char data_[kPageSize];
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitGivesEmptyPage) {
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.live_count(), 0);
  EXPECT_GT(page_.ContiguousFreeSpace(), kPageSize - 64);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  SlotId slot;
  ASSERT_TRUE(page_.Insert("hello", &slot).ok());
  Slice rec;
  ASSERT_TRUE(page_.Get(slot, &rec).ok());
  EXPECT_EQ(rec.ToString(), "hello");
  EXPECT_EQ(page_.live_count(), 1);
}

TEST_F(SlottedPageTest, EmptyRecordRejected) {
  SlotId slot;
  EXPECT_EQ(page_.Insert(Slice(), &slot).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SlottedPageTest, GetMissingSlot) {
  Slice rec;
  EXPECT_TRUE(page_.Get(0, &rec).IsNotFound());
  SlotId slot;
  ASSERT_TRUE(page_.Insert("x", &slot).ok());
  EXPECT_TRUE(page_.Get(slot + 1, &rec).IsNotFound());
}

TEST_F(SlottedPageTest, DeleteLeavesTombstoneAndStableRids) {
  SlotId a, b;
  ASSERT_TRUE(page_.Insert("first", &a).ok());
  ASSERT_TRUE(page_.Insert("second", &b).ok());
  ASSERT_TRUE(page_.Delete(a).ok());
  EXPECT_TRUE(page_.Delete(a).IsNotFound());  // double delete
  Slice rec;
  ASSERT_TRUE(page_.Get(b, &rec).ok());  // other slot untouched
  EXPECT_EQ(rec.ToString(), "second");
  EXPECT_EQ(page_.live_count(), 1);
}

TEST_F(SlottedPageTest, TombstoneSlotReused) {
  SlotId a, b, c;
  ASSERT_TRUE(page_.Insert("one", &a).ok());
  ASSERT_TRUE(page_.Insert("two", &b).ok());
  ASSERT_TRUE(page_.Delete(a).ok());
  ASSERT_TRUE(page_.Insert("three", &c).ok());
  EXPECT_EQ(c, a);  // freed slot recycled
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  SlotId slot;
  ASSERT_TRUE(page_.Insert("0123456789", &slot).ok());
  ASSERT_TRUE(page_.Update(slot, "short").ok());
  Slice rec;
  ASSERT_TRUE(page_.Get(slot, &rec).ok());
  EXPECT_EQ(rec.ToString(), "short");
  // Growing re-allocates on the same page with the same slot id.
  const std::string big(100, 'B');
  ASSERT_TRUE(page_.Update(slot, big).ok());
  ASSERT_TRUE(page_.Get(slot, &rec).ok());
  EXPECT_EQ(rec.ToString(), big);
}

TEST_F(SlottedPageTest, FillUntilNoSpace) {
  const std::string rec(100, 'r');
  SlotId slot;
  int inserted = 0;
  while (page_.Insert(rec, &slot).ok()) ++inserted;
  // ~8KB / (100 + 4) per record.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_FALSE(page_.HasRoomFor(rec.size()));
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  const std::string rec(512, 'r');
  std::vector<SlotId> slots;
  SlotId slot;
  while (page_.Insert(rec, &slot).ok()) slots.push_back(slot);
  // Free every other record, then insert records that only fit after
  // compaction (insert does it internally).
  for (std::size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
  }
  const std::string big(1024, 'B');
  ASSERT_TRUE(page_.Insert(big, &slot).ok());
  Slice out;
  ASSERT_TRUE(page_.Get(slot, &out).ok());
  EXPECT_EQ(out.ToString(), big);
  // Survivors intact after compaction.
  for (std::size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Get(slots[i], &out).ok());
    EXPECT_EQ(out.ToString(), rec);
  }
}

TEST_F(SlottedPageTest, ForEachVisitsLiveOnly) {
  SlotId a, b, c;
  ASSERT_TRUE(page_.Insert("a", &a).ok());
  ASSERT_TRUE(page_.Insert("b", &b).ok());
  ASSERT_TRUE(page_.Insert("c", &c).ok());
  ASSERT_TRUE(page_.Delete(b).ok());
  std::vector<std::string> seen;
  page_.ForEach([&](SlotId, Slice rec) { seen.push_back(rec.ToString()); });
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "c"}));
}

TEST_F(SlottedPageTest, OwnerField) {
  EXPECT_EQ(page_.owner(), 0u);
  page_.set_owner(1234);
  EXPECT_EQ(page_.owner(), 1234u);
}

TEST_F(SlottedPageTest, PutAtCreatesExactSlot) {
  ASSERT_TRUE(page_.PutAt(5, "redo-me").ok());
  EXPECT_EQ(page_.slot_count(), 6);
  EXPECT_EQ(page_.live_count(), 1);
  Slice rec;
  ASSERT_TRUE(page_.Get(5, &rec).ok());
  EXPECT_EQ(rec.ToString(), "redo-me");
  // Intermediate slots are tombstones.
  EXPECT_TRUE(page_.Get(2, &rec).IsNotFound());
}

TEST_F(SlottedPageTest, PutAtReplaces) {
  ASSERT_TRUE(page_.PutAt(0, "v1").ok());
  ASSERT_TRUE(page_.PutAt(0, "v2-longer").ok());
  Slice rec;
  ASSERT_TRUE(page_.Get(0, &rec).ok());
  EXPECT_EQ(rec.ToString(), "v2-longer");
  EXPECT_EQ(page_.live_count(), 1);
}

// Property test: a randomized op sequence against an in-memory model.
TEST_F(SlottedPageTest, RandomOpsMatchModel) {
  Rng rng(2024);
  std::map<SlotId, std::string> model;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t op = rng.Uniform(3);
    if (op == 0) {
      std::string rec(rng.Range(1, 64), static_cast<char>('a' + step % 26));
      SlotId slot;
      Status st = page_.Insert(rec, &slot);
      if (st.ok()) {
        EXPECT_EQ(model.count(slot), 0u);
        model[slot] = rec;
      }
    } else if (op == 1 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      ASSERT_TRUE(page_.Delete(it->first).ok());
      model.erase(it);
    } else if (op == 2 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      std::string rec(rng.Range(1, 64), 'u');
      if (page_.Update(it->first, rec).ok()) it->second = rec;
    }
    if (step % 500 == 0) {
      EXPECT_EQ(page_.live_count(), model.size());
      for (const auto& [slot, expected] : model) {
        Slice rec;
        ASSERT_TRUE(page_.Get(slot, &rec).ok());
        EXPECT_EQ(rec.ToString(), expected);
      }
    }
  }
}

}  // namespace
}  // namespace plp
