// Unit tests for src/common: Slice, Status, Result, key encodings, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/key_encoding.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace plp {
namespace {

TEST(SliceTest, EmptyAndBasics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);

  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  // Unsigned byte comparison: 0xFF > 0x01.
  const char hi[] = {'\xff'};
  const char lo[] = {'\x01'};
  EXPECT_GT(Slice(hi, 1).compare(Slice(lo, 1)), 0);
}

TEST(SliceTest, OperatorsConsistent) {
  Slice a("aa"), b("ab");
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == Slice("aa"));
}

TEST(SliceTest, EmbeddedNulBytesCompare) {
  const char x[] = {'a', '\0', 'b'};
  const char y[] = {'a', '\0', 'c'};
  EXPECT_LT(Slice(x, 3).compare(Slice(y, 3)), 0);
  EXPECT_EQ(Slice(x, 3), Slice(x, 3));
}

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::NotFound("missing row");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing row");

  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    PLP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(KeyEncodingTest, U32RoundTrip) {
  for (std::uint32_t v : {0u, 1u, 255u, 1u << 20, 0xFFFFFFFFu}) {
    EXPECT_EQ(DecodeU32(KeyU32(v)), v);
  }
}

TEST(KeyEncodingTest, U64RoundTrip) {
  for (std::uint64_t v :
       {0ull, 1ull, 1ull << 40, 0xFFFFFFFFFFFFFFFFull}) {
    EXPECT_EQ(DecodeU64(KeyU64(v)), v);
  }
}

TEST(KeyEncodingTest, I64RoundTripIncludingNegatives) {
  const std::vector<std::int64_t> values = {INT64_MIN, -1000000, -1, 0, 1,
                                            INT64_MAX};
  for (std::int64_t v : values) {
    EXPECT_EQ(DecodeI64(KeyI64(v)), v);
  }
}

TEST(KeyEncodingTest, EncodingsPreserveOrder) {
  // Property: encoded keys sort exactly like the source integers.
  std::vector<std::uint64_t> values = {0, 1, 2, 255, 256, 65535, 65536,
                                       1ull << 32, (1ull << 32) + 1,
                                       UINT64_MAX};
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(Slice(KeyU64(values[i - 1])), Slice(KeyU64(values[i])))
        << values[i - 1] << " vs " << values[i];
  }
  std::vector<std::int64_t> signed_values = {INT64_MIN, -65536, -1, 0, 1,
                                             65536, INT64_MAX};
  for (std::size_t i = 1; i < signed_values.size(); ++i) {
    EXPECT_LT(Slice(KeyI64(signed_values[i - 1])),
              Slice(KeyI64(signed_values[i])));
  }
}

TEST(KeyEncodingTest, CompositeKeysOrderLexicographically) {
  auto key = [](std::uint32_t a, std::uint32_t b) {
    KeyBuilder kb;
    kb.AddU32(a).AddU32(b);
    return kb.Take();
  };
  EXPECT_LT(Slice(key(1, 999)), Slice(key(2, 0)));
  EXPECT_LT(Slice(key(1, 5)), Slice(key(1, 6)));
  EXPECT_EQ(key(3, 4).size(), 8u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, SkewsTowardLowIndices) {
  Rng rng(11);
  ZipfianGenerator zipf(1000, 0.99);
  std::uint64_t low = 0, total = 10000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (zipf.Next(rng) < 100) ++low;  // first 10% of the key space
  }
  // With theta=0.99 the head gets far more than its uniform share.
  EXPECT_GT(low, total / 4);
}

TEST(ZipfianTest, StaysInRange) {
  Rng rng(12);
  ZipfianGenerator zipf(50, 0.5);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(rng), 50u);
}

TEST(NuRandTest, StaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = NuRand(rng, 1023, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(TypesTest, RidEqualityAndHash) {
  Rid a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Rid>{}(a), std::hash<Rid>{}(b));
  EXPECT_FALSE(Rid{}.valid());
  EXPECT_TRUE(a.valid());
}

}  // namespace
}  // namespace plp
