// Free-space management for heap files. A centralized structure guarded by
// a metadata critical section — the residual "CATALOG/SPACE" latching that
// remains even under PLP-Leaf (Section 4.2).
#ifndef PLP_STORAGE_FREE_SPACE_MAP_H_
#define PLP_STORAGE_FREE_SPACE_MAP_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/common/types.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class FreeSpaceMap {
 public:
  FreeSpaceMap() : mu_(CsCategory::kMetadata) {}

  /// Returns a page believed to have at least `need` free bytes, or
  /// kInvalidPageId if none is known.
  PageId FindPageWith(std::size_t need);

  /// Records/updates a page's free space estimate.
  void Update(PageId id, std::size_t free_bytes);

  /// Drops a page (freed during repartitioning).
  void Remove(PageId id);

  std::size_t num_tracked();

 private:
  TrackedMutex mu_;
  std::unordered_map<PageId, std::size_t> free_bytes_ PLP_GUARDED_BY(mu_);
};

}  // namespace plp

#endif  // PLP_STORAGE_FREE_SPACE_MAP_H_
