#include "src/metrics/flight_recorder.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/common/clock.h"

namespace plp {

namespace internal {
thread_local std::uint16_t t_trace_site =
    static_cast<std::uint16_t>(TraceSite::kUnknown);
}  // namespace internal

namespace {

// Raw pointer mirror of the function-local singleton so the signal handler
// never runs a guarded static initializer. Set once in Global().
std::atomic<FlightRecorder*> g_recorder{nullptr};

struct TypeDesc {
  const char* name;
  const char* cat;
  char phase;  // 'X' = complete span, 'i' = instant
};

constexpr TypeDesc kTypeDesc[kNumTraceEventTypes] = {
    {"none", "none", 'i'},
    {"latch_wait", "sync", 'X'},
    {"cs_wait", "sync", 'X'},
    {"lock_wait", "sync", 'X'},
    {"wal_fsync", "io", 'X'},
    {"buf_miss", "io", 'X'},
    {"evict_writeback", "io", 'X'},
    {"txn_stage", "txn", 'X'},
    {"partition_phase", "engine", 'i'},
    {"checkpoint", "engine", 'X'},
    {"recovery", "engine", 'X'},
    {"marker", "test", 'i'},
};

constexpr const char* kSiteNames[kNumTraceSites] = {
    "unknown",         "btree_descent",  "btree_smo",
    "buffer_pool_evict", "page_cleaner", "heap_op",
    "partition_table", "lock_table",     "checkpointer",
    "recovery_replay",
};

// Stage-span names for kTxnStage events; indices match the TxnStageId
// values emitted by EmitTxnTimeline (txn_trace.h) and the trace.*_us
// histogram family.
constexpr const char* kTxnStageNames[] = {"admission", "queue", "execute",
                                          "fsync", "callback", "total"};

// --- async-signal-safe formatting helpers (write(2) only) -------------------

void FdWrite(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // best effort: crashing anyway
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void FdWriteStr(int fd, const char* s) { FdWrite(fd, s, std::strlen(s)); }

void FdWriteU64(int fd, std::uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  FdWrite(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

void CrashDumpHandler(int sig) {
  FlightRecorder* fr = g_recorder.load(std::memory_order_acquire);
  if (fr != nullptr) {
    FdWriteStr(STDERR_FILENO, "\n[flight-recorder] fatal signal ");
    FdWriteU64(STDERR_FILENO, static_cast<std::uint64_t>(sig));
    FdWriteStr(STDERR_FILENO, ", dumping black box\n");
    fr->DumpBlackBox(STDERR_FILENO);
  }
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies with the original signal (core dump, sanitizer report, ...).
  ::raise(sig);
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

const char* TraceEventTypeName(TraceEventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kNumTraceEventTypes ? kTypeDesc[i].name : "invalid";
}

const char* TraceSiteName(TraceSite s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kNumTraceSites ? kSiteNames[i] : "invalid";
}

FlightRecorder::FlightRecorder() {
  enabled_.store(EnvU64("PLP_TRACE", 1) != 0, std::memory_order_relaxed);
  wait_threshold_ns_.store(EnvU64("PLP_TRACE_WAIT_NS", 1000),
                           std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked: rings must outlive every recording thread and stay mapped for
  // the signal handler, and thread_local destructor order at process exit
  // is unknowable. Same lifetime pattern as CsProfiler.
  static FlightRecorder* instance = [] {
    auto* fr = new FlightRecorder();
    g_recorder.store(fr, std::memory_order_release);
    return fr;
  }();
  return *instance;
}

// --- per-thread rings -------------------------------------------------------

namespace {

// Releases the ring for recycling when its thread exits. The ring and its
// events stay on the all-rings list (still dumpable post-mortem) until a
// new thread claims it.
struct RingReleaser {
  std::atomic<bool>* active = nullptr;
  ~RingReleaser() {
    if (active != nullptr) active->store(false, std::memory_order_release);
  }
};

}  // namespace

FlightRecorder::ThreadRing* FlightRecorder::LocalRing() {
  thread_local ThreadRing* ring = nullptr;
  thread_local RingReleaser releaser;
  if (ring == nullptr) {
    ring = Global().AcquireRing();
    releaser.active = &ring->active;
  }
  return ring;
}

FlightRecorder::ThreadRing* FlightRecorder::AcquireRing() {
  SpinlockGuard g(reg_lock_);
  // Recycle a retired ring if one exists: thread churn (workload drivers
  // re-create client pools per window) must not grow memory unboundedly.
  for (ThreadRing* r = all_rings_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    if (!r->active.load(std::memory_order_acquire)) {
      for (Slot& s : r->slots) s.seq.store(0, std::memory_order_relaxed);
      r->head.store(0, std::memory_order_relaxed);
      r->tid = next_tid_++;
      r->active.store(true, std::memory_order_release);
      return r;
    }
  }
  auto* r = new ThreadRing();
  r->tid = next_tid_++;
  r->active.store(true, std::memory_order_relaxed);
  // Publish: next is set before the release store, so list traversal from
  // the head sees a fully formed node (signal handlers included).
  r->next = all_rings_.load(std::memory_order_relaxed);
  all_rings_.store(r, std::memory_order_release);
  return r;
}

// --- writers ----------------------------------------------------------------

void FlightRecorder::Emit(TraceEventType type, std::uint64_t ts_ns,
                          std::uint64_t dur_ns, std::uint64_t arg0,
                          std::uint64_t arg1) {
  FlightRecorder& fr = Global();
  if (!fr.enabled_.load(std::memory_order_relaxed)) return;
  ThreadRing* r = LocalRing();
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[h & (kRingSlots - 1)];
  // Seqlock write: odd marks the slot in progress (readers of the evicted
  // generation bail), payload stores are relaxed behind a release fence,
  // the final even seq publishes generation h.
  s.seq.store(2 * h + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts.store(ts_ns, std::memory_order_relaxed);
  s.dur.store(dur_ns, std::memory_order_relaxed);
  s.arg0.store(arg0, std::memory_order_relaxed);
  s.arg1.store(arg1, std::memory_order_relaxed);
  s.meta.store(static_cast<std::uint64_t>(type) |
                   (static_cast<std::uint64_t>(internal::t_trace_site) << 16),
               std::memory_order_relaxed);
  s.seq.store(2 * (h + 1), std::memory_order_release);
  r->head.store(h + 1, std::memory_order_release);
  if (h >= kRingSlots) {
    fr.dropped_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FlightRecorder::RecordSiteWait(std::uint16_t site,
                                    std::uint64_t wait_ns) {
  SiteStats& ss = site_stats_[site < kNumTraceSites ? site : 0];
  ss.count.fetch_add(1, std::memory_order_relaxed);
  ss.total_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  const std::uint64_t wait_us = wait_ns / 1000;
  const auto bucket = static_cast<std::size_t>(
      std::min<std::uint64_t>(std::bit_width(wait_us), 39));
  ss.wait_us_buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = ss.max_wait_ns.load(std::memory_order_relaxed);
  while (prev < wait_ns && !ss.max_wait_ns.compare_exchange_weak(
                               prev, wait_ns, std::memory_order_relaxed)) {
  }
}

void FlightRecorder::RecordLatchWait(PageClass page_class,
                                     std::uint64_t start_ns,
                                     std::uint64_t wait_ns) {
  FlightRecorder& fr = Global();
  if (!fr.enabled_.load(std::memory_order_relaxed)) return;
  fr.RecordSiteWait(internal::t_trace_site, wait_ns);
  if (wait_ns >= fr.wait_threshold_ns_.load(std::memory_order_relaxed)) {
    Emit(TraceEventType::kLatchWait, start_ns, wait_ns, wait_ns,
         static_cast<std::uint64_t>(page_class));
  }
}

void FlightRecorder::RecordCsWait(CsCategory category, std::uint64_t start_ns,
                                  std::uint64_t wait_ns) {
  FlightRecorder& fr = Global();
  if (!fr.enabled_.load(std::memory_order_relaxed)) return;
  fr.RecordSiteWait(internal::t_trace_site, wait_ns);
  if (wait_ns >= fr.wait_threshold_ns_.load(std::memory_order_relaxed)) {
    Emit(TraceEventType::kCsWait, start_ns, wait_ns, wait_ns,
         static_cast<std::uint64_t>(category));
  }
}

// --- readers ----------------------------------------------------------------

void FlightRecorder::CollectRing(const ThreadRing& ring,
                                 std::size_t max_events,
                                 std::vector<CollectedEvent>* out) const {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t window =
      std::min<std::uint64_t>(head, std::min(max_events, kRingSlots));
  for (std::uint64_t e = head - window; e < head; ++e) {
    const Slot& s = ring.slots[e & (kRingSlots - 1)];
    // Seqlock read: accept only if both seq loads agree on generation e.
    // A concurrent writer (odd seq, or a newer generation) means the slot
    // was recycled under us — skip it, never surface torn fields.
    const std::uint64_t expected = 2 * (e + 1);
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != expected) continue;
    CollectedEvent ev;
    ev.ts_ns = s.ts.load(std::memory_order_relaxed);
    ev.dur_ns = s.dur.load(std::memory_order_relaxed);
    ev.arg0 = s.arg0.load(std::memory_order_relaxed);
    ev.arg1 = s.arg1.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != expected) continue;
    const std::uint64_t type = meta & 0xffff;
    if (type == 0 || type >= kNumTraceEventTypes) continue;
    ev.type = static_cast<TraceEventType>(type);
    const std::uint64_t site = (meta >> 16) & 0xffff;
    ev.site = site < kNumTraceSites ? static_cast<TraceSite>(site)
                                    : TraceSite::kUnknown;
    ev.tid = ring.tid;
    out->push_back(ev);
  }
}

std::vector<CollectedEvent> FlightRecorder::Collect() const {
  std::vector<CollectedEvent> out;
  for (const ThreadRing* r = all_rings_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    CollectRing(*r, kRingSlots, &out);
  }
  return out;
}

std::string FlightRecorder::ExportChromeTraceJson() const {
  std::vector<CollectedEvent> events = Collect();
  // Perfetto renders per-track; sort (tid, ts) so each thread's track is
  // monotonic regardless of when span-style events were emitted.
  std::sort(events.begin(), events.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.ts_ns < b.ts_ns;
            });

  std::string json;
  json.reserve(events.size() * 160 + 256);
  json += "{\"traceEvents\":[\n";
  char line[512];

  std::uint32_t last_tid = 0;
  bool first = true;
  auto append_line = [&](const char* text) {
    if (!first) json += ",\n";
    first = false;
    json += text;
  };

  for (const CollectedEvent& ev : events) {
    if (ev.tid != last_tid) {
      last_tid = ev.tid;
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%" PRIu32
                    ",\"args\":{\"name\":\"plp-thread-%" PRIu32 "\"}}",
                    ev.tid, ev.tid);
      append_line(line);
    }
    const TypeDesc& desc = kTypeDesc[static_cast<std::size_t>(ev.type)];
    // Timestamps are microseconds (double); keep nanosecond precision.
    const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
    char args[224];
    switch (ev.type) {
      case TraceEventType::kLatchWait:
        std::snprintf(args, sizeof(args),
                      "{\"site\":\"%s\",\"page_class\":\"%s\",\"wait_ns\":%"
                      PRIu64 "}",
                      TraceSiteName(ev.site),
                      PageClassName(static_cast<PageClass>(
                          ev.arg1 < static_cast<std::uint64_t>(kNumPageClasses)
                              ? ev.arg1
                              : 0)),
                      ev.arg0);
        break;
      case TraceEventType::kCsWait:
        std::snprintf(args, sizeof(args),
                      "{\"site\":\"%s\",\"category\":\"%s\",\"wait_ns\":%"
                      PRIu64 "}",
                      TraceSiteName(ev.site),
                      CsCategoryName(static_cast<CsCategory>(
                          ev.arg1 < static_cast<std::uint64_t>(
                                        kNumCsCategories)
                              ? ev.arg1
                              : 7)),
                      ev.arg0);
        break;
      case TraceEventType::kLockWait:
        std::snprintf(args, sizeof(args),
                      "{\"wait_ns\":%" PRIu64 ",\"granted\":%" PRIu64 "}",
                      ev.arg0, ev.arg1);
        break;
      case TraceEventType::kWalFsync:
        std::snprintf(args, sizeof(args),
                      "{\"batch_bytes\":%" PRIu64 ",\"lsn\":%" PRIu64 "}",
                      ev.arg0, ev.arg1);
        break;
      case TraceEventType::kBufMissStall:
      case TraceEventType::kEvictWriteback:
        std::snprintf(args, sizeof(args),
                      "{\"page\":%" PRIu64 ",\"site\":\"%s\"}", ev.arg0,
                      TraceSiteName(ev.site));
        break;
      case TraceEventType::kTxnStage:
        std::snprintf(args, sizeof(args),
                      "{\"stage\":\"%s\",\"txn\":%" PRIu64 "}",
                      ev.arg0 < 6 ? kTxnStageNames[ev.arg0] : "invalid",
                      ev.arg1);
        break;
      case TraceEventType::kPartitionPhase:
        std::snprintf(args, sizeof(args),
                      "{\"phase\":%" PRIu64 ",\"actions\":%" PRIu64 "}",
                      ev.arg0, ev.arg1);
        break;
      case TraceEventType::kCheckpoint:
        std::snprintf(args, sizeof(args), "{\"payload_bytes\":%" PRIu64 "}",
                      ev.arg0);
        break;
      case TraceEventType::kRecovery:
        std::snprintf(args, sizeof(args),
                      "{\"redo_ops\":%" PRIu64 ",\"undo_ops\":%" PRIu64 "}",
                      ev.arg0, ev.arg1);
        break;
      default:
        std::snprintf(args, sizeof(args),
                      "{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}", ev.arg0,
                      ev.arg1);
        break;
    }
    if (desc.phase == 'X') {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                    "\"tid\":%" PRIu32
                    ",\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
                    desc.name, desc.cat, ev.tid, ts_us, dur_us, args);
    } else {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%.3f,\"args\":%s}",
                    desc.name, desc.cat, ev.tid, ts_us, args);
    }
    append_line(line);
  }

  std::snprintf(line, sizeof(line),
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped_events\":%" PRIu64 "}}\n",
                dropped_events());
  json += line;
  return json;
}

Status FlightRecorder::ExportChromeTrace(const std::string& path) const {
  const std::string json = ExportChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) return Status::Internal("short write to trace file " + path);
  return Status::OK();
}

// --- contention report ------------------------------------------------------

std::vector<ContentionEntry> FlightRecorder::ContentionSnapshot() const {
  std::vector<ContentionEntry> out;
  for (std::size_t i = 0; i < kNumTraceSites; ++i) {
    const SiteStats& ss = site_stats_[i];
    ContentionEntry e;
    e.site = static_cast<TraceSite>(i);
    e.count = ss.count.load(std::memory_order_relaxed);
    if (e.count == 0) continue;
    e.total_wait_ns = ss.total_wait_ns.load(std::memory_order_relaxed);
    e.max_us = ss.max_wait_ns.load(std::memory_order_relaxed) / 1000;
    // Percentiles by rank over the log2 microsecond buckets, reported as
    // bucket ceilings clamped to the observed max (registry convention).
    std::uint64_t buckets[40];
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < 40; ++b) {
      buckets[b] = ss.wait_us_buckets[b].load(std::memory_order_relaxed);
      total += buckets[b];
    }
    auto percentile = [&](double p) -> std::uint64_t {
      const auto rank = static_cast<std::uint64_t>(
          p * static_cast<double>(total) + 0.5);
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < 40; ++b) {
        seen += buckets[b];
        if (seen >= rank && buckets[b] != 0) {
          const std::uint64_t ceiling =
              b >= 1 ? ((1ull << b) - 1) : 0;
          return std::min(ceiling, e.max_us);
        }
      }
      return e.max_us;
    };
    e.p50_us = percentile(0.50);
    e.p99_us = percentile(0.99);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const ContentionEntry& a, const ContentionEntry& b) {
              return a.total_wait_ns > b.total_wait_ns;
            });
  return out;
}

std::string FlightRecorder::ContentionReportText() const {
  const std::vector<ContentionEntry> entries = ContentionSnapshot();
  if (entries.empty()) return "";
  std::string text = "-- contended latch/mutex sites (cumulative) --\n";
  char line[160];
  for (const ContentionEntry& e : entries) {
    std::snprintf(line, sizeof(line),
                  "  %-18s waits=%-8" PRIu64 " total=%" PRIu64
                  "us p50=%" PRIu64 "us p99=%" PRIu64 "us max=%" PRIu64
                  "us\n",
                  TraceSiteName(e.site), e.count, e.total_wait_ns / 1000,
                  e.p50_us, e.p99_us, e.max_us);
    text += line;
  }
  return text;
}

// --- black box --------------------------------------------------------------

void FlightRecorder::DumpBlackBox(int fd, std::size_t per_thread) const {
  FdWriteStr(fd, "=== PLP FLIGHT RECORDER BLACK BOX ===\n");
  FdWriteStr(fd, "dropped_events=");
  FdWriteU64(fd, dropped_events());
  FdWriteStr(fd, "\n");
  for (const ThreadRing* r = all_rings_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    const std::uint64_t window = std::min<std::uint64_t>(
        head, std::min(per_thread, kRingSlots));
    FdWriteStr(fd, "-- thread ");
    FdWriteU64(fd, r->tid);
    FdWriteStr(fd, " (last ");
    FdWriteU64(fd, window);
    FdWriteStr(fd, " of ");
    FdWriteU64(fd, head);
    FdWriteStr(fd, " events) --\n");
    for (std::uint64_t e = head - window; e < head; ++e) {
      const Slot& s = r->slots[e & (kRingSlots - 1)];
      const std::uint64_t expected = 2 * (e + 1);
      if (s.seq.load(std::memory_order_acquire) != expected) continue;
      const std::uint64_t ts = s.ts.load(std::memory_order_relaxed);
      const std::uint64_t dur = s.dur.load(std::memory_order_relaxed);
      const std::uint64_t a0 = s.arg0.load(std::memory_order_relaxed);
      const std::uint64_t a1 = s.arg1.load(std::memory_order_relaxed);
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != expected) continue;
      const std::uint64_t type = meta & 0xffff;
      if (type == 0 || type >= kNumTraceEventTypes) continue;
      FdWriteStr(fd, "  ts=");
      FdWriteU64(fd, ts);
      FdWriteStr(fd, " dur_ns=");
      FdWriteU64(fd, dur);
      FdWriteStr(fd, " ");
      FdWriteStr(fd, kTypeDesc[type].name);
      const std::uint64_t site = (meta >> 16) & 0xffff;
      if (site != 0 && site < kNumTraceSites) {
        FdWriteStr(fd, " site=");
        FdWriteStr(fd, kSiteNames[site]);
      }
      FdWriteStr(fd, " a0=");
      FdWriteU64(fd, a0);
      FdWriteStr(fd, " a1=");
      FdWriteU64(fd, a1);
      FdWriteStr(fd, "\n");
    }
  }
  FdWriteStr(fd, "=== END BLACK BOX ===\n");
}

void FlightRecorder::InstallCrashHandlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    Global();  // ensure g_recorder is set before any handler can fire
    const int signals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};
    for (const int sig : signals) {
      struct sigaction old {};
      if (::sigaction(sig, nullptr, &old) != 0) continue;
      // Leave non-default dispositions alone: sanitizers and death-test
      // harnesses own those signals; clobbering them loses their reports.
      if (old.sa_handler != SIG_DFL || (old.sa_flags & SA_SIGINFO) != 0) {
        continue;
      }
      struct sigaction sa {};
      sa.sa_handler = &CrashDumpHandler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESETHAND | SA_NODEFER;
      ::sigaction(sig, &sa, nullptr);
    }
  });
}

void FlightRecorder::ResetForTest() {
  dropped_total_.store(0, std::memory_order_relaxed);
  for (ThreadRing* r = all_rings_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    for (Slot& s : r->slots) s.seq.store(0, std::memory_order_relaxed);
    r->head.store(0, std::memory_order_relaxed);
  }
  for (SiteStats& ss : site_stats_) {
    ss.count.store(0, std::memory_order_relaxed);
    ss.total_wait_ns.store(0, std::memory_order_relaxed);
    ss.max_wait_ns.store(0, std::memory_order_relaxed);
    for (auto& b : ss.wait_us_buckets) b.store(0, std::memory_order_relaxed);
  }
}

}  // namespace plp
