// A buffer-pool page frame: 8KB of data plus an instrumented latch.
#ifndef PLP_BUFFER_PAGE_H_
#define PLP_BUFFER_PAGE_H_

#include <atomic>
#include <cstring>

#include "src/common/types.h"
#include "src/sync/latch.h"

namespace plp {

/// A page frame. The latch is tagged with the page class so every
/// acquisition lands in the right bucket of the latch breakdown (Figure 2).
class Page {
 public:
  Page(PageId id, PageClass page_class)
      : id_(id), page_class_(page_class), latch_(page_class) {
    std::memset(data_, 0, kPageSize);
  }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  PageId id() const { return id_; }
  PageClass page_class() const { return page_class_; }

  char* data() { return data_; }
  const char* data() const { return data_; }

  Latch& latch() { return latch_; }

  bool dirty() const { return dirty_.load(std::memory_order_relaxed); }
  void MarkDirty() { dirty_.store(true, std::memory_order_relaxed); }
  void MarkClean() { dirty_.store(false, std::memory_order_relaxed); }

  /// Page LSN of the last update (recovery uses it for idempotent redo).
  Lsn page_lsn() const { return page_lsn_.load(std::memory_order_relaxed); }
  void set_page_lsn(Lsn lsn) {
    page_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Frame-level owner tag: which global partition uid owns this page
  /// (UINT32_MAX = unowned). The page cleaner uses it to delegate cleaning
  /// to partition workers (Appendix A.4).
  std::uint32_t owner_tag() const {
    return owner_tag_.load(std::memory_order_relaxed);
  }
  void set_owner_tag(std::uint32_t tag) {
    owner_tag_.store(tag, std::memory_order_relaxed);
  }

 private:
  const PageId id_;
  const PageClass page_class_;
  Latch latch_;
  std::atomic<bool> dirty_{false};
  std::atomic<Lsn> page_lsn_{0};
  std::atomic<std::uint32_t> owner_tag_{UINT32_MAX};
  alignas(64) char data_[kPageSize];
};

}  // namespace plp

#endif  // PLP_BUFFER_PAGE_H_
