#include "src/engine/repartitioner.h"

#include <algorithm>
#include <numeric>

namespace plp {

Repartitioner::Repartitioner(PartitionedEngine* engine,
                             RepartitionerOptions options)
    : engine_(engine), options_(options) {}

Repartitioner::~Repartitioner() { Stop(); }

void Repartitioner::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      RunOnce();
      std::this_thread::sleep_for(options_.interval);
    }
  });
}

void Repartitioner::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

std::vector<std::string> Repartitioner::Plan(Table* table) {
  PartitionManager& pm = engine_->pm();
  const std::vector<std::uint64_t> load = pm.LoadSnapshot(table);
  if (load.size() < 2) {
    // A single partition can still be split if it is the only one and
    // carries enough traffic — but with no sibling to compare against we
    // leave it alone (splitting is only useful to spread across workers,
    // which RegisterTable already did).
    return {};
  }
  const std::uint64_t total =
      std::accumulate(load.begin(), load.end(), std::uint64_t{0});
  if (total < options_.min_samples) return {};
  const double mean = static_cast<double>(total) /
                      static_cast<double>(load.size());
  const auto hot_it = std::max_element(load.begin(), load.end());
  if (static_cast<double>(*hot_it) < options_.imbalance_factor * mean) {
    return {};
  }
  const auto hot =
      static_cast<PartitionId>(std::distance(load.begin(), hot_it));

  // Split the hot partition at its median key and meld the coldest
  // adjacent pair to keep the partition count stable.
  MRBTree* primary = table->primary();
  std::string split_key;
  if (!primary->subtree(hot)->ApproxMedianKey(&split_key).ok()) return {};

  std::vector<std::string> boundaries = pm.Boundaries(table);
  if (std::find(boundaries.begin(), boundaries.end(), split_key) !=
      boundaries.end()) {
    return {};
  }
  boundaries.insert(boundaries.begin() + hot + 1, split_key);

  // Coldest adjacent pair (excluding the two new hot halves).
  std::size_t meld = 0;
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 1; i < load.size(); ++i) {
    if (i == hot || i - 1 == hot) continue;
    const std::uint64_t pair = load[i - 1] + load[i];
    if (pair < best) {
      best = pair;
      meld = i;
    }
  }
  if (best != UINT64_MAX) {
    // Index into the *new* boundary vector: entries after the inserted
    // split shift by one.
    std::size_t idx = meld <= hot ? meld : meld + 1;
    if (idx < boundaries.size() && !boundaries[idx].empty()) {
      boundaries.erase(boundaries.begin() + static_cast<long>(idx));
    }
  }
  return boundaries;
}

int Repartitioner::RunOnce() {
  int rebalanced = 0;
  for (Table* table : engine_->db().tables()) {
    std::vector<std::string> plan = Plan(table);
    if (plan.empty()) continue;
    if (engine_->Repartition(table->name(), plan).ok()) {
      engine_->pm().ResetLoad(table);
      rebalances_.fetch_add(1, std::memory_order_relaxed);
      ++rebalanced;
    }
  }
  return rebalanced;
}

}  // namespace plp
