// ARIES-lite restart recovery over the write-ahead log.
//
// Three passes, in the ARIES spirit adapted to our physiological records:
//  1. Analysis — classify transactions into winners (committed) and losers
//     (active or aborted at the crash).
//  2. Redo — repeat history for heap operations, reproducing exact RIDs
//     via SlottedPage::PutAt and BufferPool::NewPageWithId.
//  3. Undo — roll back loser heap operations newest-first using the undo
//     images. Index operations are replayed logically for winners only
//     (the index is rebuilt, so physical undo is unnecessary).
//
// Two entry points:
//  * Recover()          — the seed's single-index form: whole-log scan into
//    a fresh pool (memory-resident crash simulation).
//  * RecoverDatabase()  — durable restart: starts from the last fuzzy
//    checkpoint (src/io/checkpoint.h), reads log segments from disk,
//    loads index snapshots, redoes history from min(rec_lsn, active
//    begin_lsns), and routes table-scoped records to the right heap
//    file / primary index of a catalog-loaded Database.
//
// Undo is value-based (before-images), not CLR-chained: a runtime abort
// performs logical compensation without logging it, so recovery re-undoes
// from images; a same-RID write by a later committed transaction takes
// precedence (the undo is skipped). CLR logging is a ROADMAP follow-on.
#ifndef PLP_TXN_RECOVERY_H_
#define PLP_TXN_RECOVERY_H_

#include <cstdint>

#include "src/buffer/buffer_pool.h"
#include "src/common/status.h"
#include "src/index/btree.h"
#include "src/io/checkpoint.h"
#include "src/log/log_manager.h"

namespace plp {

class Database;

class RecoveryManager {
 public:
  struct Stats {
    std::uint64_t winners = 0;
    std::uint64_t losers = 0;
    std::uint64_t redo_ops = 0;
    std::uint64_t undo_ops = 0;
    std::uint64_t index_ops = 0;
    Lsn scan_start = 0;
  };

  RecoveryManager(LogManager* log, BufferPool* pool)
      : log_(log), pool_(pool) {}

  /// Rebuilds heap pages (and optionally a primary index) from the log.
  /// `index` may be null. The pool should be fresh (crash wiped memory).
  Status Recover(BTree* index, Stats* stats);

  /// Durable restart over a catalog-loaded Database (tables exist, primary
  /// indexes empty, heap page lists rebuilt from the data file).
  /// `checkpoint_lsn`/`image` come from the master record; pass
  /// has_checkpoint=false for a first start / pre-checkpoint crash.
  Status RecoverDatabase(Database* db, bool has_checkpoint,
                         Lsn checkpoint_lsn, const CheckpointImage& image,
                         Stats* stats);

  /// Serialization helpers shared with the engines' logging sites.
  static std::string EncodeIndexOp(Slice key, Slice value);
  static void DecodeIndexOp(Slice payload, std::string* key,
                            std::string* value);

 private:
  LogManager* log_;
  BufferPool* pool_;
};

}  // namespace plp

#endif  // PLP_TXN_RECOVERY_H_
