// Deterministic random number generation and workload distributions.
#ifndef PLP_COMMON_RNG_H_
#define PLP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace plp {

/// xoshiro256** — fast, high-quality, deterministic PRNG. One instance per
/// worker thread; never shared (no synchronization).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability pct/100.
  bool Percent(unsigned pct) { return Uniform(100) < pct; }

  double NextDouble();  // uniform in [0, 1)

 private:
  std::uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with parameter theta (YCSB-style).
/// Used to model skewed access patterns (Section 4.5 of the paper).
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// TPC-C NURand(A, x, y) non-uniform distribution.
std::uint64_t NuRand(Rng& rng, std::uint64_t a, std::uint64_t x,
                     std::uint64_t y, std::uint64_t c = 42);

}  // namespace plp

#endif  // PLP_COMMON_RNG_H_
