#include "src/lock/sli.h"

// SliCache is header-only; this file anchors the translation unit.
namespace plp {}
