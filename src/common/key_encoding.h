// Order-preserving key encodings: encoded keys compare correctly under
// memcmp, which is the comparison the B+Tree and MRBTree use.
#ifndef PLP_COMMON_KEY_ENCODING_H_
#define PLP_COMMON_KEY_ENCODING_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"

namespace plp {

/// Appends a big-endian encoding of `v` to `out`; unsigned values already
/// sort correctly byte-wise in this form.
void EncodeU32(std::string* out, std::uint32_t v);
void EncodeU64(std::string* out, std::uint64_t v);

/// Signed variant: flips the sign bit so negative values sort first.
void EncodeI64(std::string* out, std::int64_t v);

/// Convenience one-shot encoders.
std::string KeyU32(std::uint32_t v);
std::string KeyU64(std::uint64_t v);
std::string KeyI64(std::int64_t v);

/// Decoders; `in` must hold at least the encoded width at offset 0.
std::uint32_t DecodeU32(Slice in);
std::uint64_t DecodeU64(Slice in);
std::int64_t DecodeI64(Slice in);

/// Composite-key builder: append fixed-width components in significance
/// order; the concatenation remains order-preserving.
class KeyBuilder {
 public:
  KeyBuilder& AddU32(std::uint32_t v) {
    EncodeU32(&buf_, v);
    return *this;
  }
  KeyBuilder& AddU64(std::uint64_t v) {
    EncodeU64(&buf_, v);
    return *this;
  }
  KeyBuilder& AddI64(std::int64_t v) {
    EncodeI64(&buf_, v);
    return *this;
  }
  /// Raw bytes; only order-preserving if fixed-width at this position.
  KeyBuilder& AddBytes(Slice s) {
    buf_.append(s.data(), s.size());
    return *this;
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

}  // namespace plp

#endif  // PLP_COMMON_KEY_ENCODING_H_
