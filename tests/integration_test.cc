// Cross-module integration tests: the paper's headline relationships
// between designs, and end-to-end recovery after a workload.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/key_encoding.h"
#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"
#include "src/txn/recovery.h"
#include "src/workload/tatp.h"
#include "src/workload/workload_driver.h"

namespace plp {
namespace {

struct DesignRun {
  std::uint64_t committed = 0;
  CsCounts cs;
};

DesignRun RunTatp(SystemDesign design, int txns = 3000) {
  EngineConfig config;
  config.design = design;
  config.num_workers = 2;
  auto created = CreateEngine(config);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  TatpConfig tatp_config;
  tatp_config.subscribers = 1000;
  tatp_config.partitions = 2;
  TatpWorkload tatp(engine.get(), tatp_config);
  EXPECT_TRUE(tatp.Load().ok());

  CsProfiler::Global().Reset();
  const CsCounts before = CsProfiler::Global().Collect();
  Rng rng(1);
  DesignRun run;
  for (int i = 0; i < txns; ++i) {
    TxnRequest req = tatp.NextTransaction(rng);
    if (engine->Execute(req).ok()) ++run.committed;
  }
  run.cs = CsProfiler::Global().Collect() - before;
  engine->Stop();
  return run;
}

// Figure 3's shape: page latches per transaction drop monotonically from
// the latched designs to PLP-Regular to PLP-Leaf.
TEST(DesignComparisonTest, PageLatchHierarchy) {
  const DesignRun conv = RunTatp(SystemDesign::kConventional);
  const DesignRun logical = RunTatp(SystemDesign::kLogical);
  const DesignRun plp_reg = RunTatp(SystemDesign::kPlpRegular);
  const DesignRun plp_leaf = RunTatp(SystemDesign::kPlpLeaf);

  auto latches_per_txn = [](const DesignRun& r) {
    return static_cast<double>(r.cs.TotalLatches()) /
           static_cast<double>(r.committed);
  };
  const double conv_l = latches_per_txn(conv);
  const double logical_l = latches_per_txn(logical);
  const double reg_l = latches_per_txn(plp_reg);
  const double leaf_l = latches_per_txn(plp_leaf);

  // Conventional and logical both latch everything.
  EXPECT_GT(conv_l, 0.5 * logical_l);
  // PLP-Regular eliminates index latching: >50% fewer total latches
  // (the paper reports >80% since indexes dominate).
  EXPECT_LT(reg_l, 0.5 * conv_l);
  // PLP-Leaf eliminates heap latching too; only catalog/space remains
  // (paper: ~1% of the initial latching).
  EXPECT_LT(leaf_l, 0.15 * conv_l);

  // Index latches specifically are zero for PLP designs.
  EXPECT_EQ(plp_reg.cs.latches[static_cast<int>(PageClass::kIndex)], 0u);
  EXPECT_EQ(plp_leaf.cs.latches[static_cast<int>(PageClass::kIndex)], 0u);
  EXPECT_EQ(plp_leaf.cs.latches[static_cast<int>(PageClass::kHeap)], 0u);
}

// Figure 1's shape: the partitioned designs eliminate lock-manager
// critical sections, replacing them with message passing.
TEST(DesignComparisonTest, LockingReplacedByMessagePassing) {
  const DesignRun conv = RunTatp(SystemDesign::kConventional);
  const DesignRun plp = RunTatp(SystemDesign::kPlpLeaf);

  const auto lock_idx = static_cast<int>(CsCategory::kLockMgr);
  const auto msg_idx = static_cast<int>(CsCategory::kMessagePassing);
  EXPECT_GT(conv.cs.entries[lock_idx], conv.committed)
      << "conventional acquires multiple locks per txn";
  EXPECT_EQ(plp.cs.entries[lock_idx], 0u)
      << "PLP never touches the lock manager";
  EXPECT_GT(plp.cs.entries[msg_idx], 0u);
}

// Headline claim: PLP-Leaf acquires far fewer contentious critical
// sections per transaction than the conventional design (85% in the
// paper; we check a conservative 50% since contention depends on the
// host's scheduling).
TEST(DesignComparisonTest, TotalCriticalSectionsShrink) {
  // Perf-shape comparison: a heavily loaded host (e.g. ctest -j alongside
  // a build) can skew one run's per-txn counts, so allow a bounded retry
  // before judging the relationship.
  double conv_cs = 0;
  double plp_cs = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const DesignRun conv = RunTatp(SystemDesign::kConventional);
    const DesignRun plp = RunTatp(SystemDesign::kPlpLeaf);
    conv_cs = static_cast<double>(conv.cs.TotalEntries()) /
              static_cast<double>(conv.committed);
    plp_cs = static_cast<double>(plp.cs.TotalEntries()) /
             static_cast<double>(plp.committed);
    if (plp_cs < conv_cs) break;
  }
  EXPECT_LT(plp_cs, conv_cs);
}

// End-to-end durability: run a workload with a retained log, "crash",
// recover into a fresh buffer pool, and verify committed data survived.
TEST(EndToEndRecoveryTest, CommittedWorkSurvivesCrash) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.log.retain_for_recovery = true;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  auto result = engine->CreateTable("t", {""});
  ASSERT_TRUE(result.ok());

  for (std::uint32_t k = 0; k < 200; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, k](ExecContext& ctx) {
      return ctx.Insert(key, "value-" + std::to_string(k));
    });
    ASSERT_TRUE(engine->Execute(req).ok());
  }
  // A transaction that aborts: its writes must not surface after restart.
  {
    TxnRequest req;
    const std::string key = KeyU32(1000);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      PLP_RETURN_IF_ERROR(ctx.Insert(key, "doomed"));
      return Status::Aborted("simulated failure");
    });
    EXPECT_FALSE(engine->Execute(req).ok());
  }
  engine->Stop();

  // "Crash": recover from the log into a fresh pool + index.
  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(engine->db().log(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(&index, &stats).ok());
  EXPECT_GE(stats.winners, 200u);

  std::string rid_bytes;
  for (std::uint32_t k = 0; k < 200; k += 17) {
    ASSERT_TRUE(index.Probe(KeyU32(k), &rid_bytes).ok()) << k;
  }
  EXPECT_TRUE(index.Probe(KeyU32(1000), &rid_bytes).IsNotFound())
      << "aborted transaction's insert must not be recovered";
}

// MRBTree in a conventional system (Appendix B): the engine wires the
// multi-rooted index when asked, and the multi-rooted form probes fewer
// index nodes once the single-rooted equivalent needs an extra level.
TEST(MrbtConventionalTest, EngineHonorsUseMrbt) {
  for (bool use_mrbt : {false, true}) {
    EngineConfig config;
    config.design = SystemDesign::kConventional;
    config.use_mrbt = use_mrbt;
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    auto result =
        engine->CreateTable("t", TatpWorkload::BoundariesFor(20000, 8));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value()->primary()->num_partitions(),
              use_mrbt ? 8u : 1u);
    engine->Stop();
  }
}

TEST(MrbtConventionalTest, MrbtReducesProbeDepth) {
  BufferPool pool;
  std::unique_ptr<MRBTree> single, multi;
  ASSERT_TRUE(
      MRBTree::Create(&pool, LatchPolicy::kLatched, {""}, &single).ok());
  ASSERT_TRUE(MRBTree::Create(&pool, LatchPolicy::kLatched,
                              TatpWorkload::BoundariesFor(300000, 16), &multi)
                  .ok());
  const std::string rid(6, 'r');
  for (std::uint32_t k = 1; k <= 300000; ++k) {
    ASSERT_TRUE(single->Insert(KeyU32(k), rid).ok());
    ASSERT_TRUE(multi->Insert(KeyU32(k), rid).ok());
  }
  const int single_height = single->subtree(0)->height();
  int multi_height = 0;
  for (PartitionId p = 0; p < multi->num_partitions(); ++p) {
    multi_height = std::max(multi_height, multi->subtree(p)->height());
  }
  EXPECT_LT(multi_height, single_height)
      << "partitioned sub-trees must be at least one level shallower";

  // Fewer index nodes are visited per probe through the shallower trees.
  CsProfiler::Global().Reset();
  std::string out;
  ASSERT_TRUE(single->Probe(KeyU32(150000), &out).ok());
  const std::uint64_t single_latches =
      CsProfiler::Global().Collect().latches[static_cast<int>(
          PageClass::kIndex)];
  CsProfiler::Global().Reset();
  ASSERT_TRUE(multi->Probe(KeyU32(150000), &out).ok());
  const std::uint64_t multi_latches =
      CsProfiler::Global().Collect().latches[static_cast<int>(
          PageClass::kIndex)];
  EXPECT_LT(multi_latches, single_latches);
}

}  // namespace
}  // namespace plp
