// Durability overhead: throughput and p99 latency of a TATP-style update
// workload across storage modes — memory-resident (the paper's setup), an
// on-disk WAL with group commit, and WAL plus an evicting buffer pool.
// Quantifies what the new src/io subsystem costs on this host and how
// well group commit amortizes fsyncs across client threads.
//
// A second section compares the two index-durability modes: checkpoint
// bytes written and crash-recovery wall-clock with the legacy full-index
// snapshot vs the persistent (physiologically logged) index.
#include <chrono>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/common/key_encoding.h"
#include "src/io/checkpoint.h"

namespace plp {
namespace {

constexpr std::uint32_t kKeys = 20000;

std::unique_ptr<Engine> MakeDurableEngine(const std::string& data_dir,
                                          std::size_t frame_budget) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  if (!data_dir.empty()) {
    config.db.data_dir = data_dir;
    config.db.frame_budget = frame_budget;
    config.db.txn.durable_commits = true;
  }
  return bench::MakeEngine(config);
}

void Load(Engine* engine) {
  (void)engine->CreateTable("t", {""});
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "payload-" + std::string(100, 'x'));
    });
    (void)engine->Execute(req);
  }
}

TxnRequest UpdateTxn(Rng& rng) {
  const auto k = static_cast<std::uint32_t>(rng.Uniform(kKeys));
  const std::string key = KeyU32(k);
  TxnRequest req;
  req.Add(0, "t", key, [key](ExecContext& ctx) {
    return ctx.Update(key, "updated-" + std::string(100, 'y'));
  });
  return req;
}

void Run() {
  bench::PrintHeader(
      "Durability overhead: in-memory vs WAL group commit vs +eviction",
      "new durable storage subsystem");
  bench::JsonReporter json("durability_overhead");

  const std::string base =
      (std::filesystem::temp_directory_path() / "plp_bench_durability")
          .string();

  struct Mode {
    const char* name;
    bool durable;
    std::size_t frame_budget;
  };
  const Mode modes[] = {
      {"memory", false, 0},
      {"wal-group-commit", true, 0},
      {"wal-evicting", true, 128},
  };

  std::printf("%-18s %8s %10s %10s %10s %10s %10s\n", "mode", "threads",
              "loop", "ktps", "p50us", "p99us", "fsyncs");
  for (const Mode& mode : modes) {
    // Closed-loop Execute clients, then an open-loop pipelined run:
    // 4 clients keeping 256 submissions each in flight shows how well
    // group commit amortizes fsyncs over a deep in-flight window.
    struct Run {
      int threads;
      int depth;
    };
    for (const Run& run : {Run{1, 0}, Run{4, 0}, Run{4, 256}}) {
      std::filesystem::remove_all(base);
      auto engine = MakeDurableEngine(mode.durable ? base : "",
                                      mode.frame_budget);
      Load(engine.get());
      // Window isolation without Reset(): subtracting a baseline snapshot
      // (StatsSnapshot::DeltaSince) drops load-phase noise exactly, where
      // Reset() raced in-flight increments by design.
      const StatsSnapshot baseline = engine->GetStats();
      const std::uint64_t syncs_before = engine->db().log()->sync_count();
      DriverOptions options;
      options.num_threads = run.threads;
      options.pipeline_depth = run.depth;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(engine.get(), UpdateTxn, options);
      const std::uint64_t fsyncs =
          engine->db().log()->sync_count() - syncs_before;
      const StatsSnapshot stats = engine->GetStats().DeltaSince(baseline);
      const bool open_loop = run.depth > 0;
      std::printf("%-18s %8d %10s %10.1f %10.1f %10.1f %10llu\n", mode.name,
                  run.threads, open_loop ? "open" : "closed", r.ktps(),
                  r.p50_us(), r.p99_us(),
                  static_cast<unsigned long long>(fsyncs));
      // Attribution row: where a durable mode's time went. The wal-evicting
      // gap vs wal-group-commit shows up as buffer-pool misses + write-back
      // stalls (every miss faults a page in, every steal writes one out);
      // the wal modes' gap vs memory is the fsync wait.
      const std::uint64_t hits = stats.counter("buffer_pool.hits");
      const std::uint64_t misses = stats.counter("buffer_pool.misses");
      const double miss_pct =
          hits + misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(misses) /
                    static_cast<double>(hits + misses);
      const HistogramSummary* miss_stall =
          stats.histogram("buffer_pool.miss_stall_us");
      const HistogramSummary* wb_stall =
          stats.histogram("buffer_pool.writeback_stall_us");
      const HistogramSummary* fsync_us = stats.histogram("log.fsync_us");
      std::printf(
          "  [metrics] miss%% %.2f | evict-writebacks %llu | "
          "miss-stall-p95 %lluus | wb-stall-p95 %lluus | fsync-p95 %lluus | "
          "batch-bytes-mean %.0f\n",
          miss_pct,
          static_cast<unsigned long long>(
              stats.counter("buffer_pool.eviction_writebacks")),
          static_cast<unsigned long long>(
              miss_stall != nullptr ? miss_stall->p95 : 0),
          static_cast<unsigned long long>(
              wb_stall != nullptr ? wb_stall->p95 : 0),
          static_cast<unsigned long long>(
              fsync_us != nullptr ? fsync_us->p95 : 0),
          stats.histogram("log.sync_batch_bytes") != nullptr
              ? stats.histogram("log.sync_batch_bytes")->mean()
              : 0.0);
      std::fflush(stdout);
      json.Add(std::string(mode.name) + (open_loop ? "-pipelined" : ""),
               run.threads, r, open_loop ? "open-loop" : "closed-loop",
               stats.ToJson());
      engine->Stop();
      (void)engine->db().Close();
    }
  }
  std::filesystem::remove_all(base);
  std::printf(
      "\nExpected shape: WAL mode pays one fsync per commit batch; with\n"
      "more client threads group commit amortizes the fsyncs (fsyncs <<\n"
      "committed txns) and throughput recovers toward memory-resident.\n"
      "Eviction adds page write-back I/O on top: the wal-evicting rows'\n"
      "[metrics] line attributes the gap to buffer_pool.misses (demand\n"
      "page-in stalls) and eviction_writebacks (page steals that must\n"
      "write before reuse), both absent in the unbudgeted modes.\n");

  // --- Restart cost: snapshot vs logged index -------------------------
  std::printf(
      "\nRestart cost by index durability mode (%u keys loaded, then one\n"
      "checkpoint, then a crash + reopen):\n",
      kKeys);
  std::printf("%-16s %14s %12s %10s %10s\n", "index-mode", "ckpt_bytes",
              "recovery_ms", "redo_ops", "index_ops");
  struct IndexMode {
    const char* name;
    IndexDurability mode;
  };
  for (const IndexMode& im : {IndexMode{"snapshot", IndexDurability::kSnapshot},
                              IndexMode{"logged", IndexDurability::kLoggedPages}}) {
    std::filesystem::remove_all(base);
    std::uint64_t ckpt_bytes = 0;
    {
      EngineConfig config;
      config.design = SystemDesign::kConventional;
      config.db.data_dir = base;
      config.db.frame_budget = 256;
      config.db.txn.durable_commits = true;
      config.db.index_durability = im.mode;
      auto engine = bench::MakeEngine(config);
      Load(engine.get());
      const Lsn before = engine->db().log()->next_lsn();
      (void)engine->db().Checkpoint();
      ckpt_bytes = engine->db().log()->next_lsn() - before;
      // A little post-checkpoint work so recovery has a tail to replay.
      Rng rng(42);
      for (int i = 0; i < 500; ++i) {
        TxnRequest req = UpdateTxn(rng);
        (void)engine->Execute(req);
      }
      engine->Stop();
      // Crash: destroy without Close().
    }
    const auto t0 = std::chrono::steady_clock::now();
    EngineConfig config;
    config.design = SystemDesign::kConventional;
    config.db.data_dir = base;
    config.db.frame_budget = 256;
    config.db.txn.durable_commits = true;
    config.db.index_durability = im.mode;
    auto engine = bench::MakeEngine(config);
    const double recovery_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const auto& stats = engine->db().recovery_stats();
    std::printf("%-16s %14llu %12.1f %10llu %10llu\n", im.name,
                static_cast<unsigned long long>(ckpt_bytes), recovery_ms,
                static_cast<unsigned long long>(stats.redo_ops),
                static_cast<unsigned long long>(stats.index_ops));
    std::fflush(stdout);
    engine->Stop();
    (void)engine->db().Close();
  }
  std::filesystem::remove_all(base);
  std::printf(
      "\nExpected shape: the snapshot checkpoint serializes every index\n"
      "entry (bytes grow with the table; restart deserializes them all),\n"
      "while the logged-index checkpoint records only the dirty-page,\n"
      "txn, and partition tables — O(dirty) bytes regardless of index\n"
      "size, with restart replaying just the WAL tail.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
