// Aether-style composable log buffer (Johnson et al., PVLDB 2010, [14] in
// the PLP paper).
//
// Appenders reserve LSN space with a single atomic fetch-add (a composable
// critical section in the paper's taxonomy — queuing appenders combine in
// the LSN space rather than serializing behind a mutex), copy their payload
// into the ring concurrently, and then publish completion in LSN order.
// A flusher drains [flushed, completed) to the backing sink.
#ifndef PLP_LOG_LOG_BUFFER_H_
#define PLP_LOG_LOG_BUFFER_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class LogBuffer {
 public:
  /// `sink` receives flushed byte ranges in LSN order; may be null (bytes
  /// are discarded once flushed — used by memory-resident experiments).
  using Sink = std::function<void(const char* data, std::size_t size)>;

  /// `start_lsn` positions the buffer inside an existing LSN stream (a
  /// reopened on-disk WAL continues where the last run ended).
  explicit LogBuffer(std::size_t capacity, Sink sink = nullptr,
                     Lsn start_lsn = 0);

  LogBuffer(const LogBuffer&) = delete;
  LogBuffer& operator=(const LogBuffer&) = delete;

  /// Appends `payload` and returns its starting LSN. Thread-safe; the
  /// reservation is wait-free unless the ring is full (then the appender
  /// helps flush).
  Lsn Append(Slice payload);

  /// Blocks until everything up to and including `lsn` has reached the sink.
  void FlushTo(Lsn lsn);

  /// Flushes everything appended so far.
  void FlushAll();

  Lsn next_lsn() const { return tail_.load(std::memory_order_acquire); }
  Lsn durable_lsn() const { return flushed_.load(std::memory_order_acquire); }

 private:
  /// Drains [flushed_, completed_) to the sink. Serialized by flush_mu_.
  void FlushSome() PLP_EXCLUDES(flush_mu_);

  const std::size_t capacity_;
  // The ring bytes are NOT guarded by flush_mu_: appenders write their
  // reserved [start, start+n) slice concurrently, disjointness guaranteed
  // by the tail_ fetch-add reservation; the flusher only reads below
  // completed_, which publishes those writes in LSN order.
  std::vector<char> ring_;
  Sink sink_;

  std::atomic<Lsn> tail_{0};       // next LSN to reserve
  std::atomic<Lsn> completed_{0};  // contiguously copied prefix
  std::atomic<Lsn> flushed_{0};    // contiguously flushed prefix
  Mutex flush_mu_;
};

}  // namespace plp

#endif  // PLP_LOG_LOG_BUFFER_H_
