#include "src/engine/record_ops.h"

#include <cstring>

#include "src/txn/recovery.h"

namespace plp {

std::string RidToBytes(Rid rid) {
  std::string out(6, '\0');
  std::memcpy(out.data(), &rid.page_id, 4);
  std::memcpy(out.data() + 4, &rid.slot, 2);
  return out;
}

Rid RidFromBytes(Slice bytes) {
  Rid rid;
  std::memcpy(&rid.page_id, bytes.data(), 4);
  std::memcpy(&rid.slot, bytes.data() + 4, 2);
  return rid;
}

void BaseExecContext::LogHeapOp(LogType type, Rid rid, Slice redo,
                                Slice undo) {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn_->id();
  rec.rid = rid;
  rec.table = table_->id();
  rec.redo.assign(redo.data(), redo.size());
  rec.undo.assign(undo.data(), undo.size());
  const Lsn lsn = log_->Append(rec);
  txn_->set_last_lsn(lsn);
  // WAL bookkeeping on the frame: page_lsn drives the steal barrier,
  // rec_lsn the fuzzy checkpoint's dirty page table. Pinned ref: the
  // frame must not be evicted out from under the stamp.
  PageRef page = table_->heap()->pool()->AcquirePage(rid.page_id,
                                                     /*tracked=*/false);
  if (page) page->StampUpdate(lsn);
}

void BaseExecContext::LogIndexOp(LogType type, Slice key, Slice value) {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn_->id();
  rec.table = table_->id();
  if (type == LogType::kIndexInsert) {
    rec.redo = RecoveryManager::EncodeIndexOp(key, value);
  } else {
    rec.undo = RecoveryManager::EncodeIndexOp(key, value);
  }
  txn_->set_last_lsn(log_->Append(rec));
}

Status BaseExecContext::PlaceRecord(Slice key, Slice payload, Rid* rid) {
  HeapFile* heap = table_->heap();
  switch (heap->mode()) {
    case HeapMode::kShared:
      return heap->Insert(payload, rid);
    case HeapMode::kPartitionOwned:
      return heap->InsertOwned(owner_uid_, payload, rid);
    case HeapMode::kLeafOwned: {
      // The record lands on a page owned by the leaf that will hold its
      // index entry; the storage layer is partition-unaware, so this is
      // the callback into the metadata layer the paper describes (§3.3).
      MRBTree* primary = table_->primary();
      BTree* sub = primary->subtree(primary->PartitionFor(key));
      return heap->InsertOwned(sub->LeafFor(key), payload, rid);
    }
  }
  return Status::Internal("unknown heap mode");
}

Status BaseExecContext::Read(Slice key, std::string* payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kS));
  if (table_->config().clustered) {
    return table_->primary()->Probe(key, payload);
  }
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  return table_->heap()->Get(RidFromBytes(rid_bytes), payload);
}

Status BaseExecContext::InsertClustered(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(table_->primary()->Insert(key, payload));
  LogIndexOp(LogType::kIndexInsert, key, payload);
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string skey = sec->key_fn(key, payload) + key.ToString();
    PLP_RETURN_IF_ERROR(sec->index->Insert(skey, key));
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string payload_copy = payload.ToString();
  AddUndo([table, key_copy, payload_copy]() {
    PLP_RETURN_IF_ERROR(table->primary()->Delete(key_copy));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Delete(sec->key_fn(key_copy, payload_copy) +
                               key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::UpdateClustered(Slice key, Slice payload) {
  std::string before;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &before));
  PLP_RETURN_IF_ERROR(table_->primary()->Update(key, payload));
  LogIndexOp(LogType::kIndexDelete, key, before);
  LogIndexOp(LogType::kIndexInsert, key, payload);
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string old_skey = sec->key_fn(key, before) + key.ToString();
    const std::string new_skey = sec->key_fn(key, payload) + key.ToString();
    if (old_skey != new_skey) {
      (void)sec->index->Delete(old_skey);
      PLP_RETURN_IF_ERROR(sec->index->Insert(new_skey, key));
    }
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  AddUndo([table, key_copy, before_copy]() {
    return table->primary()->Update(key_copy, before_copy);
  });
  return Status::OK();
}

Status BaseExecContext::DeleteClustered(Slice key) {
  std::string before;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &before));
  PLP_RETURN_IF_ERROR(table_->primary()->Delete(key));
  LogIndexOp(LogType::kIndexDelete, key, before);
  for (Table::Secondary* sec : table_->secondaries()) {
    (void)sec->index->Delete(sec->key_fn(key, before) + key.ToString());
  }
  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  AddUndo([table, key_copy, before_copy]() {
    return table->primary()->Insert(key_copy, before_copy);
  });
  return Status::OK();
}

Status BaseExecContext::Insert(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return InsertClustered(key, payload);
  Rid rid;
  PLP_RETURN_IF_ERROR(PlaceRecord(key, payload, &rid));
  LogHeapOp(LogType::kHeapInsert, rid, payload, Slice());

  const std::string rid_bytes = RidToBytes(rid);
  Status st = table_->primary()->Insert(key, rid_bytes);
  if (!st.ok()) {
    // Roll the heap placement back immediately; the key already exists.
    (void)table_->heap()->Delete(rid);
    LogHeapOp(LogType::kHeapDelete, rid, Slice(), payload);
    return st;
  }
  LogIndexOp(LogType::kIndexInsert, key, rid_bytes);

  // Secondary index maintenance (conventional access, Appendix E).
  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string skey = sec->key_fn(key, payload) + key.ToString();
    PLP_RETURN_IF_ERROR(sec->index->Insert(skey, key));
  }

  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string payload_copy = payload.ToString();
  AddUndo([table, key_copy, payload_copy]() {
    std::string rb;
    PLP_RETURN_IF_ERROR(table->primary()->Probe(key_copy, &rb));
    PLP_RETURN_IF_ERROR(table->heap()->Delete(RidFromBytes(rb)));
    PLP_RETURN_IF_ERROR(table->primary()->Delete(key_copy));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Delete(sec->key_fn(key_copy, payload_copy) +
                               key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::Update(Slice key, Slice payload) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return UpdateClustered(key, payload);
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  const Rid rid = RidFromBytes(rid_bytes);

  std::string before;
  PLP_RETURN_IF_ERROR(table_->heap()->Get(rid, &before));
  PLP_RETURN_IF_ERROR(table_->heap()->Update(rid, payload));
  LogHeapOp(LogType::kHeapUpdate, rid, payload, before);

  for (Table::Secondary* sec : table_->secondaries()) {
    const std::string old_skey = sec->key_fn(key, before) + key.ToString();
    const std::string new_skey = sec->key_fn(key, payload) + key.ToString();
    if (old_skey != new_skey) {
      (void)sec->index->Delete(old_skey);
      PLP_RETURN_IF_ERROR(sec->index->Insert(new_skey, key));
    }
  }

  Table* table = table_;
  const std::string before_copy = before;
  AddUndo([table, rid, before_copy]() {
    return table->heap()->Update(rid, before_copy);
  });
  return Status::OK();
}

Status BaseExecContext::Delete(Slice key) {
  PLP_RETURN_IF_ERROR(LockRecord(key, LockMode::kX));
  if (table_->config().clustered) return DeleteClustered(key);
  std::string rid_bytes;
  PLP_RETURN_IF_ERROR(table_->primary()->Probe(key, &rid_bytes));
  const Rid rid = RidFromBytes(rid_bytes);

  std::string before;
  PLP_RETURN_IF_ERROR(table_->heap()->Get(rid, &before));
  PLP_RETURN_IF_ERROR(table_->heap()->Delete(rid));
  LogHeapOp(LogType::kHeapDelete, rid, Slice(), before);
  PLP_RETURN_IF_ERROR(table_->primary()->Delete(key));
  LogIndexOp(LogType::kIndexDelete, key, rid_bytes);

  for (Table::Secondary* sec : table_->secondaries()) {
    (void)sec->index->Delete(sec->key_fn(key, before) + key.ToString());
  }

  Table* table = table_;
  const std::string key_copy = key.ToString();
  const std::string before_copy = before;
  const std::uint32_t owner = owner_uid_;
  AddUndo([table, key_copy, before_copy, owner, rid]() {
    // Logical undo at the original RID whenever the slot is still free:
    // the compensation is not logged, so keeping it the exact inverse of
    // the logged delete lets restart recovery reproduce it from the
    // before-image (see HeapFile::RestoreAt).
    HeapFile* heap = table->heap();
    std::uint32_t restore_owner = owner;
    if (heap->mode() == HeapMode::kLeafOwned) {
      MRBTree* primary = table->primary();
      BTree* sub = primary->subtree(primary->PartitionFor(key_copy));
      restore_owner = sub->LeafFor(key_copy);
    }
    Rid new_rid;
    PLP_RETURN_IF_ERROR(
        heap->RestoreAt(rid, restore_owner, before_copy, &new_rid));
    PLP_RETURN_IF_ERROR(
        table->primary()->Insert(key_copy, RidToBytes(new_rid)));
    for (Table::Secondary* sec : table->secondaries()) {
      (void)sec->index->Insert(
          sec->key_fn(key_copy, before_copy) + key_copy, key_copy);
    }
    return Status::OK();
  });
  return Status::OK();
}

Status BaseExecContext::ScanRange(Slice start, Slice end,
                                  const std::function<bool(Slice, Slice)>& fn) {
  Status inner = Status::OK();
  const bool clustered = table_->config().clustered;
  PLP_RETURN_IF_ERROR(
      table_->primary()->ScanFrom(start, [&](Slice key, Slice value) {
        if (!end.empty() && !(key < end)) return false;
        inner = LockRecord(key, LockMode::kS);
        if (!inner.ok()) return false;
        if (clustered) return fn(key, value);
        std::string payload;
        inner = table_->heap()->Get(RidFromBytes(value), &payload);
        if (!inner.ok()) return false;
        return fn(key, payload);
      }));
  return inner;
}

}  // namespace plp
