// Fuzzy checkpoints.
//
// A checkpoint is one kCheckpoint log record whose payload serializes:
//   * the dirty page table (page id -> rec_lsn, heap and — in
//     persistent-index mode — index pages) — the redo scan can start at
//     min(rec_lsn) instead of the log's beginning;
//   * the active transaction table (txn id -> begin_lsn) — the undo
//     low-water mark, and the seed of loser detection;
//   * per-table MRBTree partition metadata (boundary -> sub-tree root),
//     a few bytes per partition — the baseline restart needs because WAL
//     truncation may have reclaimed the original kPartitionTable records;
//   * the transaction and page id allocators.
// After the record is forced to the WAL, the checkpoint LSN is published
// in the master record file (atomic rename), which restart reads to find
// where to begin.
//
// In persistent-index mode the checkpoint is truly fuzzy: payload size is
// O(dirty pages + active txns + partitions), independent of index size,
// and no quiescing is required. In legacy snapshot mode
// (DatabaseConfig::index_durability == kSnapshot) the payload additionally
// carries a logical snapshot of every table's primary index, which
// requires no concurrent index writers.
#ifndef PLP_IO_CHECKPOINT_H_
#define PLP_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace plp {

struct CheckpointImage {
  /// Log position when the checkpoint started collecting its tables (the
  /// ARIES begin_checkpoint). Activity between this LSN and the record's
  /// own append is not reflected in the tables below, so the restart scan
  /// must start no later than here.
  Lsn begin_lsn = 0;
  std::vector<std::pair<PageId, Lsn>> dirty_pages;       // id -> rec_lsn
  std::vector<std::pair<TxnId, Lsn>> active_txns;        // id -> begin_lsn
  TxnId next_txn_id = 1;
  /// Page-id allocator high-water mark. Restart must allocate fresh pages
  /// (rebuilt index roots) above every id the log can mention; storing
  /// the mark here keeps the restart scan bounded by the checkpoint.
  PageId next_page_id = 1;

  struct TableSnapshot {
    std::uint32_t table_id = 0;
    /// Primary-index entries (key -> value) at checkpoint time.
    std::vector<std::pair<std::string, std::string>> entries;
  };
  /// Legacy snapshot mode only; empty in persistent-index mode (the
  /// acceptance property: no serialized index nodes in the payload).
  std::vector<TableSnapshot> tables;

  struct TablePartitions {
    std::uint32_t table_id = 0;
    /// MRBTree partition metadata: (start_key, sub-tree root page id).
    std::vector<std::pair<std::string, PageId>> parts;
  };
  /// Persistent-index mode: the partition-table baseline per table.
  std::vector<TablePartitions> partitions;

  std::string Encode() const;
  static Status Decode(const std::string& payload, CheckpointImage* out);

  /// Where the restart log scan must begin to cover this checkpoint:
  /// min(checkpoint lsn, dirty-page rec_lsns, active-txn begin_lsns).
  Lsn ScanStart(Lsn checkpoint_lsn) const;
};

/// Master record: the durably-published LSN of the last checkpoint.
/// Written via temp-file + rename so readers never see a torn value.
Status WriteMasterRecord(const std::string& path, Lsn checkpoint_lsn);

/// kNotFound when no checkpoint has ever been published.
Status ReadMasterRecord(const std::string& path, Lsn* checkpoint_lsn);

}  // namespace plp

#endif  // PLP_IO_CHECKPOINT_H_
