#include "src/workload/workload_driver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/metrics/time_breakdown.h"

namespace plp {

namespace {
DriverResult RunInternal(Engine* engine, const TxnFactory& next,
                         const DriverOptions& options,
                         std::chrono::milliseconds sample_interval,
                         ThroughputProbe* probe,
                         std::vector<TimedEvent> events) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> thread_time{0};

  // Flight-recorder wiring: sample every Nth txn per client as traced so
  // kTxnStage spans show up in the exported timeline without paying the
  // timeline allocation on every submission.
  const char* trace_path = std::getenv("PLP_TRACE_PATH");
  int trace_every = options.trace_every;
  if (trace_every == 0 && trace_path != nullptr) trace_every = 64;

  const CsCounts before = CsProfiler::Global().Collect();
  engine->ResetPeakInflight();
  const std::uint64_t t0 = NowNanos();
  if (probe != nullptr) {
    // Probe samples surface in GetStats() alongside the engine's own
    // counters (satellite of the observability layer).
    probe->BindRegistry(engine->metrics());
    probe->Start();
  }

  std::vector<std::thread> clients;
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(options.num_threads));
  clients.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    clients.emplace_back([&, i] {
      Rng rng(options.seed * 1315423911u + static_cast<std::uint64_t>(i));
      auto& local_latencies = latencies[static_cast<std::size_t>(i)];
      const std::uint64_t start = NowNanos();
      if (options.pipeline_depth > 0) {
        // Open loop: keep `pipeline_depth` transactions in flight, reaping
        // the oldest handle whenever the window is full (and draining the
        // window at the end of the run).
        std::deque<std::pair<TxnHandle, std::uint64_t>> window;
        auto reap_front = [&] {
          auto [handle, txn_start] = std::move(window.front());
          window.pop_front();
          const Status st = handle.Wait();
          if (st.ok()) {
            local_latencies.push_back(NowNanos() - txn_start);
            committed.fetch_add(1, std::memory_order_relaxed);
            if (probe != nullptr) probe->Tick();
          } else {
            aborted.fetch_add(1, std::memory_order_relaxed);
          }
        };
        std::uint64_t submitted = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          TxnRequest req = next(rng);
          TxnOptions txn_options;
          txn_options.trace =
              trace_every > 0 &&
              submitted++ % static_cast<std::uint64_t>(trace_every) == 0;
          const std::uint64_t txn_start = NowNanos();
          window.emplace_back(engine->Submit(std::move(req), txn_options),
                              txn_start);
          if (static_cast<int>(window.size()) >= options.pipeline_depth) {
            reap_front();
          }
        }
        while (!window.empty()) reap_front();
      } else {
        std::uint64_t submitted = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          TxnRequest req = next(rng);
          TxnOptions txn_options;
          txn_options.trace =
              trace_every > 0 &&
              submitted++ % static_cast<std::uint64_t>(trace_every) == 0;
          const std::uint64_t txn_start = NowNanos();
          Status st = engine->Submit(std::move(req), txn_options).Wait();
          if (st.ok()) {
            local_latencies.push_back(NowNanos() - txn_start);
            committed.fetch_add(1, std::memory_order_relaxed);
            if (probe != nullptr) probe->Tick();
          } else {
            aborted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      thread_time.fetch_add(NowNanos() - start, std::memory_order_relaxed);
    });
  }

  // Timer/event loop on the coordinating thread.
  std::sort(events.begin(), events.end(),
            [](const TimedEvent& a, const TimedEvent& b) {
              return a.at < b.at;
            });
  std::size_t next_event = 0;
  const auto deadline = std::chrono::steady_clock::now() + options.duration;
  auto next_sample = std::chrono::steady_clock::now() + sample_interval;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (probe != nullptr && now >= next_sample) {
      probe->SampleNow();
      next_sample += sample_interval;
    }
    while (next_event < events.size() &&
           now - (deadline - options.duration) >= events[next_event].at) {
      events[next_event].fn();
      ++next_event;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  if (probe != nullptr) probe->SampleNow();

  DriverResult result;
  result.elapsed_ns = NowNanos() - t0;
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.thread_time_ns = thread_time.load();
  result.peak_inflight = engine->peak_inflight();
  result.cs_delta = CsProfiler::Global().Collect() - before;
  for (auto& local_latencies : latencies) {
    result.latencies_ns.insert(result.latencies_ns.end(),
                               local_latencies.begin(),
                               local_latencies.end());
  }
  std::sort(result.latencies_ns.begin(), result.latencies_ns.end());
  // Publish the window's per-transaction time breakdown so GetStats()
  // snapshots taken after a driver run carry it (breakdown.* gauges).
  PublishBreakdown(engine->metrics(), "breakdown",
                   MakeTimeBreakdown(result.cs_delta, result.committed,
                                     result.thread_time_ns));
  if (trace_path != nullptr) {
    const Status st = engine->DumpTrace(trace_path);
    if (st.ok()) {
      std::fprintf(stderr, "[trace] wrote %s\n", trace_path);
    } else {
      std::fprintf(stderr, "[trace] export failed: %s\n",
                   st.ToString().c_str());
    }
  }
  return result;
}
}  // namespace

DriverResult RunWorkload(Engine* engine, const TxnFactory& next,
                         const DriverOptions& options) {
  return RunInternal(engine, next, options, std::chrono::milliseconds(100),
                     nullptr, {});
}

DriverResult RunWorkloadTimed(Engine* engine, const TxnFactory& next,
                              const DriverOptions& options,
                              std::chrono::milliseconds sample_interval,
                              ThroughputProbe* probe,
                              std::vector<TimedEvent> events) {
  return RunInternal(engine, next, options, sample_interval, probe,
                     std::move(events));
}

}  // namespace plp
