// Clustered-table tests (Appendix C.2): records live in the MRBTree
// leaves; the three PLP variants coincide, and repartitioning moves only
// the boundary leaf's records.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/key_encoding.h"
#include "src/engine/partitioned_engine.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

class ClusteredTest : public ::testing::TestWithParam<SystemDesign> {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = GetParam();
    config.num_workers = 4;
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    engine_ = std::move(created).value();
    engine_->Start();
    auto result = engine_->CreateTable("c", {"", KeyU32(500)},
                                       /*clustered=*/true);
    ASSERT_TRUE(result.ok());
    table_ = result.value();
  }
  void TearDown() override { engine_->Stop(); }

  Status Insert(std::uint32_t k, const std::string& value) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "c", key, [key, value](ExecContext& ctx) {
      return ctx.Insert(key, value);
    });
    return engine_->Execute(req);
  }

  Status Read(std::uint32_t k, std::string* out) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    auto holder = std::make_shared<std::string>();
    req.Add(0, "c", key, [key, holder](ExecContext& ctx) {
      return ctx.Read(key, holder.get());
    });
    Status st = engine_->Execute(req);
    *out = *holder;
    return st;
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(
    Designs, ClusteredTest,
    ::testing::Values(SystemDesign::kConventional, SystemDesign::kLogical,
                      SystemDesign::kPlpRegular, SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kConventional: return "Conventional";
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
        default: return "Other";
      }
    });

TEST_P(ClusteredTest, CrudWithoutHeapFile) {
  ASSERT_TRUE(Insert(10, std::string(200, 'c')).ok());
  std::string out;
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_EQ(out.size(), 200u);
  // No heap pages were ever allocated.
  EXPECT_EQ(table_->heap()->num_pages(), 0u);

  TxnRequest update;
  const std::string key = KeyU32(10);
  update.Add(0, "c", key, [key](ExecContext& ctx) {
    return ctx.Update(key, "updated");
  });
  ASSERT_TRUE(engine_->Execute(update).ok());
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_EQ(out, "updated");

  TxnRequest del;
  del.Add(0, "c", key, [key](ExecContext& ctx) { return ctx.Delete(key); });
  ASSERT_TRUE(engine_->Execute(del).ok());
  EXPECT_FALSE(Read(10, &out).ok());
}

TEST_P(ClusteredTest, AbortUndoesClusteredOps) {
  ASSERT_TRUE(Insert(700, "keep").ok());
  TxnRequest req;
  const std::string k1 = KeyU32(100), k2 = KeyU32(700);
  req.Add(0, "c", k1,
          [k1](ExecContext& ctx) { return ctx.Insert(k1, "new"); });
  req.Add(1, "c", k2,
          [k2](ExecContext& ctx) { return ctx.Insert(k2, "dup"); });
  EXPECT_FALSE(engine_->Execute(req).ok());
  std::string out;
  EXPECT_FALSE(Read(100, &out).ok());
  ASSERT_TRUE(Read(700, &out).ok());
  EXPECT_EQ(out, "keep");
}

TEST_P(ClusteredTest, ScanRangeReturnsPayloads) {
  for (std::uint32_t k = 100; k < 110; ++k) {
    ASSERT_TRUE(Insert(k, "payload-" + std::to_string(k)).ok());
  }
  auto rows = std::make_shared<int>(0);
  TxnRequest req;
  const std::string lo = KeyU32(100), hi = KeyU32(110);
  req.Add(0, "c", lo, [lo, hi, rows](ExecContext& ctx) {
    return ctx.ScanRange(lo, hi, [&](Slice k, Slice payload) {
      EXPECT_EQ(payload.ToString(),
                "payload-" + std::to_string(DecodeU32(k)));
      ++(*rows);
      return true;
    });
  });
  ASSERT_TRUE(engine_->Execute(req).ok());
  EXPECT_EQ(*rows, 10);
}

TEST_P(ClusteredTest, RepartitionMovesOnlyBoundaryLeaf) {
  const std::string payload(100, 'c');
  for (std::uint32_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(Insert(k, payload).ok());
  }
  BufferPool* pool = engine_->db().pool();
  const std::size_t pages_before = pool->num_pages();
  ASSERT_TRUE(
      engine_->Repartition("c", {"", KeyU32(500), KeyU32(1000)}).ok());
  if (GetParam() != SystemDesign::kConventional &&
      GetParam() != SystemDesign::kLogical) {
    // The clustered PLP repartition allocates only the boundary path
    // (Table 1's "PLP (Clustered)" row), plus routing pages.
    EXPECT_LE(pool->num_pages(), pages_before + 8);
  }
  std::string out;
  for (std::uint32_t k = 0; k < 2000; k += 123) {
    ASSERT_TRUE(Read(k, &out).ok()) << k;
  }
  EXPECT_EQ(table_->primary()->num_entries(), 2000u);
  ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
}

TEST(ClusteredPlpTest, LatchFreeAndParallelScan) {
  EngineConfig config;
  config.design = SystemDesign::kPlpRegular;
  config.num_workers = 4;
  PartitionedEngine engine(config);
  engine.Start();
  auto result = engine.CreateTable("c", {"", KeyU32(250), KeyU32(500)},
                                   /*clustered=*/true);
  ASSERT_TRUE(result.ok());

  CsProfiler::Global().Reset();
  for (std::uint32_t k = 0; k < 1000; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "c", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, std::string(64, 'p'));
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  const CsCounts counts = CsProfiler::Global().Collect();
  // Index and heap accesses are fully latch-free; only catalog/space
  // pages (the routing page, cleaned by the page cleaner) may be latched
  // — the residual the paper reports in Section 4.2.
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)], 0u);
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kHeap)], 0u);

  std::vector<std::uint32_t> keys;
  ASSERT_TRUE(engine.ParallelScan("c", [&](Slice key, Slice payload) {
    keys.push_back(DecodeU32(key));
    EXPECT_EQ(payload.size(), 64u);
  }).ok());
  ASSERT_EQ(keys.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(keys[i], i);
  engine.Stop();
}

}  // namespace
}  // namespace plp
