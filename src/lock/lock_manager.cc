#include "src/lock/lock_manager.h"

#include <atomic>
#include <functional>

#include "src/common/clock.h"
#include "src/metrics/flight_recorder.h"
#include "src/sync/cs_profiler.h"

namespace plp {

LockManager::LockManager(MetricsRegistry* metrics) {
  MetricsRegistry* m =
      metrics != nullptr ? metrics : MetricsRegistry::Scratch();
  acquisitions_metric_ = m->counter("lock.acquisitions");
  waits_metric_ = m->counter("lock.waits");
  timeouts_metric_ = m->counter("lock.timeouts");
  wait_us_metric_ = m->histogram("lock.wait_us");
}

LockManager::Bucket& LockManager::BucketFor(const std::string& name) {
  return buckets_[std::hash<std::string>{}(name) % kNumBuckets];
}

bool LockManager::CanGrant(const LockEntry& entry, TxnId txn, LockMode mode) {
  for (const auto& [holder, held] : entry.holders) {
    if (holder == txn) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, const std::string& name, LockMode mode,
                            std::chrono::milliseconds timeout) {
  Bucket& bucket = BucketFor(name);

  // Enter the lock-table critical section (timed manually so the wait is
  // charged to the lock-manager bucket, not a generic mutex).
  std::uint64_t wait_ns = 0;
  const bool contended = bucket.mu.LockTimed(&wait_ns);
  CsProfiler::Record(CsCategory::kLockMgr, contended, wait_ns);
  if (contended) {
    TraceSiteScope site(TraceSite::kLockTable);
    FlightRecorder::RecordCsWait(CsCategory::kLockMgr, NowNanos() - wait_ns,
                                 wait_ns);
  }
  MutexLock lk(bucket.mu, std::adopt_lock);

  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  acquisitions_metric_->Increment();
  LockEntry& entry = bucket.locks[name];

  auto it = entry.holders.find(txn);
  if (it != entry.holders.end() && LockCovers(it->second, mode)) {
    return Status::OK();
  }

  if (!CanGrant(entry, txn, mode)) {
    waits_metric_->Increment();
    const std::uint64_t wait_start = NowNanos();
    entry.waiters++;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    bool granted = true;
    while (!CanGrant(bucket.locks[name], txn, mode)) {
      if (lk.WaitUntil(bucket.cv, deadline) == std::cv_status::timeout) {
        granted = CanGrant(bucket.locks[name], txn, mode);
        break;
      }
    }
    bucket.locks[name].waiters--;
    const std::uint64_t waited_ns = NowNanos() - wait_start;
    wait_us_metric_->Record(waited_ns / 1000);
    {
      TraceSiteScope site(TraceSite::kLockTable);
      FlightRecorder::Emit(TraceEventType::kLockWait, wait_start, waited_ns,
                           waited_ns, granted ? 1 : 0);
    }
    if (!granted) {
      // Deadlock/starvation resolution by timeout: caller aborts.
      timeouts_metric_->Increment();
      return Status::TimedOut("lock wait timeout on " + name);
    }
  }

  LockEntry& final_entry = bucket.locks[name];
  auto& held = final_entry.holders[txn];
  // Keep the strongest of the held/new mode (upgrade path).
  if (held == LockMode::kIS || LockCovers(mode, held)) {
    held = mode;
  } else if (!LockCovers(held, mode)) {
    // Incomparable (S + IX): escalate to X to stay conservative.
    held = LockMode::kX;
  }
  return Status::OK();
}

void LockManager::Release(TxnId txn, const std::string& name) {
  Bucket& bucket = BucketFor(name);
  std::uint64_t wait_ns = 0;
  const bool contended = bucket.mu.LockTimed(&wait_ns);
  CsProfiler::Record(CsCategory::kLockMgr, contended, wait_ns);
  if (contended) {
    TraceSiteScope site(TraceSite::kLockTable);
    FlightRecorder::RecordCsWait(CsCategory::kLockMgr, NowNanos() - wait_ns,
                                 wait_ns);
  }
  {
    MutexLock lk(bucket.mu, std::adopt_lock);
    auto it = bucket.locks.find(name);
    if (it != bucket.locks.end()) {
      it->second.holders.erase(txn);
      if (it->second.holders.empty() && it->second.waiters == 0) {
        bucket.locks.erase(it);
      }
    }
  }
  bucket.cv.notify_all();
}

void LockManager::ReleaseAll(TxnId txn, const std::vector<std::string>& names) {
  for (const std::string& name : names) Release(txn, name);
}

bool LockManager::HasWaiters(const std::string& name) {
  Bucket& bucket = BucketFor(name);
  MutexLock lk(bucket.mu);
  auto it = bucket.locks.find(name);
  return it != bucket.locks.end() && it->second.waiters > 0;
}

std::string TableLockName(std::uint32_t table_id) {
  return "t" + std::to_string(table_id);
}

std::string RecordLockName(std::uint32_t table_id, const std::string& key) {
  return "t" + std::to_string(table_id) + ":" + key;
}

}  // namespace plp
