// Partitioned execution engines: Logical-only (DORA) and the three PLP
// variants share the partition manager and action flow-graph machinery;
// they differ only in the physical layout of each table (index latching,
// MRBTree roots, heap page ownership) and in what repartitioning must do.
#ifndef PLP_ENGINE_PARTITIONED_ENGINE_H_
#define PLP_ENGINE_PARTITIONED_ENGINE_H_

#include "src/buffer/page_cleaner.h"
#include "src/engine/engine.h"
#include "src/engine/partition_manager.h"

namespace plp {

class PartitionedEngine : public Engine {
 public:
  explicit PartitionedEngine(EngineConfig config);
  ~PartitionedEngine() override;

  void Start() override;
  void Stop() override;

  Result<Table*> CreateTable(const std::string& name,
                             std::vector<std::string> boundaries,
                             bool clustered = false) override;

  /// Quiesce -> MRBTree slice/meld (PLP) -> heap ownership fix-up
  /// (PLP-Partition) -> routing swap -> resume (Sections 3.2.1, 4.5).
  Status Repartition(const std::string& table,
                     const std::vector<std::string>& boundaries) override;

  PartitionManager& pm() { return pm_; }

  /// Parallel heap-file scan (Section 3.3): each partition worker scans
  /// the index range it owns and fetches its own heap records latch-free;
  /// the coordinator merges per-partition buffers and invokes `fn` for
  /// every (key, payload), in partition order.
  Status ParallelScan(const std::string& table,
                      const std::function<void(Slice, Slice)>& fn);

  /// Non-partition-aligned secondary index access (Appendix E): the
  /// secondary is probed as a conventional (latched) index to collect the
  /// matching primary keys; each match is then routed to its partition-
  /// owning thread, which performs the record access latch-free. Returns
  /// matched (primary key, payload) pairs for the secondary-key prefix.
  Status SecondaryLookup(const std::string& table,
                         const std::string& index_name, Slice prefix,
                         std::vector<std::pair<std::string, std::string>>*
                             results);

 protected:
  /// Hands the transaction to the partition manager's continuation-driven
  /// pipeline; the token completes on the worker that finishes it. With
  /// no workers running (before Start / after Stop) the submission fails
  /// fast — queueing it would leave the handle unresolved forever.
  void SubmitImpl(TxnRequest req, TxnToken token) override {
    if (!pm_.running()) {
      token.Complete(Status::Internal("PartitionedEngine is not started"));
      return;
    }
    pm_.Submit(std::move(req), std::move(token));
  }

 private:
  bool is_plp() const { return config_.design != SystemDesign::kLogical; }

  /// Stamps index frames and installs PLP-Leaf hooks for all partitions.
  void WirePlpTable(Table* table);

  /// Restart path: re-derives heap-page ownership from the recovered
  /// index for the owned heap modes (stale owner tags / fresh uids).
  void RetagOwnedHeap(Table* table);

  /// Moves heap records whose page owner no longer matches their
  /// partition's uid (PLP-Partition repartitioning cost).
  Status FixHeapOwnership(Table* table, std::uint64_t* moved);

  PartitionManager pm_;
  std::unique_ptr<PageCleaner> cleaner_;
};

}  // namespace plp

#endif  // PLP_ENGINE_PARTITIONED_ENGINE_H_
