#include "src/engine/conventional_engine.h"
#include "src/engine/engine.h"
#include "src/engine/partitioned_engine.h"

namespace plp {

const char* SystemDesignName(SystemDesign d) {
  switch (d) {
    case SystemDesign::kConventional: return "Conv.";
    case SystemDesign::kLogical: return "Logical";
    case SystemDesign::kPlpRegular: return "PLP-Reg";
    case SystemDesign::kPlpPartition: return "PLP-Part";
    case SystemDesign::kPlpLeaf: return "PLP-Leaf";
  }
  return "?";
}

Result<std::unique_ptr<Engine>> CreateEngine(EngineConfig config) {
  if (config.num_workers <= 0) {
    return Status::InvalidArgument("EngineConfig::num_workers must be > 0");
  }
  if (config.max_inflight == 0) {
    return Status::InvalidArgument("EngineConfig::max_inflight must be > 0");
  }
  std::unique_ptr<Engine> engine;
  if (config.design == SystemDesign::kConventional) {
    engine = std::make_unique<ConventionalEngine>(config);
  } else {
    engine = std::make_unique<PartitionedEngine>(config);
  }
  return engine;
}

}  // namespace plp
