#include "src/buffer/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#include "src/common/clock.h"
#include "src/io/disk_manager.h"
#include "src/metrics/flight_recorder.h"

namespace plp {

BufferPool::BufferPool(BufferPoolConfig config) : config_(std::move(config)) {
  shards_.reserve(kNumShards);
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  dir_root_ = std::make_unique<std::atomic<DirChunk*>[]>(kDirRootSize);
  frame_root_ = std::make_unique<std::atomic<FrameChunk*>[]>(kFrameRootSize);
  swizzling_on_ = config_.enable_swizzling &&
                  config_.unswizzle_child != nullptr &&
                  config_.unswizzle_all != nullptr;
  if (config_.disk != nullptr) {
    // Keep the id allocator ahead of everything already on disk.
    next_page_id_.store(config_.disk->max_page_id() + 1,
                        std::memory_order_relaxed);
  }
  metrics_ = config_.metrics;
  MetricsRegistry* m =
      metrics_ != nullptr ? metrics_ : MetricsRegistry::Scratch();
  hits_metric_ = m->counter("buffer_pool.hits");
  misses_metric_ = m->counter("buffer_pool.misses");
  evictions_metric_ = m->counter("buffer_pool.evictions");
  eviction_writebacks_metric_ = m->counter("buffer_pool.eviction_writebacks");
  flush_writebacks_metric_ = m->counter("buffer_pool.flush_writebacks");
  leaked_index_slots_metric_ = m->counter("buffer_pool.leaked_index_slots");
  swizzle_hits_metric_ = m->counter("swizzle.hits");
  swizzle_installs_metric_ = m->counter("swizzle.installs");
  swizzle_unswizzles_metric_ = m->counter("swizzle.unswizzles");
  miss_stall_us_metric_ = m->histogram("buffer_pool.miss_stall_us");
  writeback_stall_us_metric_ = m->histogram("buffer_pool.writeback_stall_us");
  if (metrics_ != nullptr) {
    metrics_->RegisterGaugeProvider(this, [this](const GaugeSink& sink) {
      sink("buffer_pool.resident_pages",
           static_cast<std::int64_t>(num_pages()));
      sink("buffer_pool.frame_budget",
           static_cast<std::int64_t>(config_.frame_budget));
      sink("buffer_pool.dirty_pages",
           static_cast<std::int64_t>(DirtyPageTable().size()));
      sink("buffer_pool.disk_reads", static_cast<std::int64_t>(disk_reads()));
      sink("buffer_pool.disk_writes",
           static_cast<std::int64_t>(disk_writes()));
      sink("buffer_pool.swizzled",
           static_cast<std::int64_t>(swizzled_count()));
      if (config_.disk != nullptr) {
        sink("buffer_pool.free_slots",
             static_cast<std::int64_t>(config_.disk->free_slot_count()));
      }
    });
  }
}

BufferPool::~BufferPool() {
  if (metrics_ != nullptr) metrics_->UnregisterGaugeProvider(this);
#ifndef NDEBUG
  // Pin-discipline trap (debug builds only): by teardown every Pin()
  // must have been paired by its PageRef/PinGuard. A surviving pin means
  // a guard leaked somewhere — in a live pool that frame is silently
  // unevictable forever, so fail loudly here where it is attributable.
  // The flight-recorder black box ships with the abort: the last events
  // per thread usually name the access path that leaked the guard.
  bool leaked_pin = false;
  for (auto& shard : shards_) {
    TrackedMutexLock g(shard->mu);
    for ([[maybe_unused]] auto& [id, page] : shard->pages) {
      if (page->pin_count() != 0) leaked_pin = true;
    }
  }
  if (leaked_pin) {
    FlightRecorder::Global().DumpBlackBox(2);
    assert(!"leaked pin at BufferPool teardown (unpaired Page::Pin)");
  }
#endif
  for (std::size_t i = 0; i < kDirRootSize; ++i) {
    delete dir_root_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kFrameRootSize; ++i) {
    delete frame_root_[i].load(std::memory_order_relaxed);
  }
}

// --- Lock-free directory ---------------------------------------------------

std::atomic<Page*>* BufferPool::DirSlot(PageId id, bool create) {
  const std::size_t hi = id >> kDirChunkBits;
  DirChunk* chunk = dir_root_[hi].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    if (!create) return nullptr;
    MutexLock g(dir_alloc_mu_);
    chunk = dir_root_[hi].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new DirChunk();
      dir_root_[hi].store(chunk, std::memory_order_release);
    }
  }
  return &chunk->slots[id & (kDirChunkSize - 1)];
}

Page* BufferPool::DirLookup(PageId id) const {
  const std::size_t hi = id >> kDirChunkBits;
  DirChunk* chunk = dir_root_[hi].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  // seq_cst: the revalidating load of the pin/fence/revalidate protocol
  // must order against the evictor's retract/fence/pin-check (Dekker).
  return chunk->slots[id & (kDirChunkSize - 1)].load(
      std::memory_order_seq_cst);
}

void BufferPool::DirPublish(PageId id, Page* page) {
  DirSlot(id, /*create=*/true)->store(page, std::memory_order_seq_cst);
}

void BufferPool::DirRetract(PageId id) {
  std::atomic<Page*>* slot = DirSlot(id, /*create=*/false);
  if (slot != nullptr) slot->store(nullptr, std::memory_order_seq_cst);
}

// --- Type-stable frame arena -----------------------------------------------

Page* BufferPool::FrameAt(std::uint32_t idx) const {
  FrameChunk* chunk =
      frame_root_[idx >> kFrameChunkBits].load(std::memory_order_acquire);
  assert(chunk != nullptr);
  return chunk->frames[idx & (kFrameChunkSize - 1)].load(
      std::memory_order_acquire);
}

Page* BufferPool::TakeFrame(PageId id, PageClass page_class) {
  {
    MutexLock g(frames_mu_);
    if (!free_frames_.empty()) {
      Page* frame = free_frames_.back();
      free_frames_.pop_back();
      frame->Reinit(id, page_class);
      return frame;
    }
  }
  auto owned = std::make_unique<Page>(id, page_class);
  Page* frame = owned.get();
  MutexLock g(frames_mu_);
  const std::uint32_t idx = frame_count_;
  if (idx < kFrameRootSize * kFrameChunkSize) {
    const std::size_t hi = idx >> kFrameChunkBits;
    FrameChunk* chunk = frame_root_[hi].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new FrameChunk();
      frame_root_[hi].store(chunk, std::memory_order_release);
    }
    chunk->frames[idx & (kFrameChunkSize - 1)].store(
        frame, std::memory_order_release);
    frame->set_frame_index(idx);
    frame_count_ = idx + 1;
  }
  // else: arena full — the frame works normally but can never be the
  // target of a swizzled reference (kNoFrameIndex).
  owned_frames_.push_back(std::move(owned));
  return frame;
}

void BufferPool::ReturnFrame(Page* frame) {
  MutexLock g(frames_mu_);
  free_frames_.push_back(frame);
}

// ---------------------------------------------------------------------------

void BufferPool::TrackFrame(Page* page) {
  if (!evicting() || !Evictable(page->page_class())) return;
  page->SetRef();
  MutexLock g(clock_mu_);
  clock_.push_back(page->id());
}

Page* BufferPool::NewPage(PageClass page_class) {
  if (evicting()) EnsureBudget();
  PageId id = kInvalidPageId;
  if (config_.disk != nullptr) {
    PageId cand;
    while ((cand = config_.disk->TakeFreeId()) != kInvalidPageId) {
      // A reclaimed slot id may have been re-materialized since the free
      // list was built (recovery replay); skip anything resident or live.
      if (DirLookup(cand) == nullptr && !config_.disk->Contains(cand)) {
        id = cand;
        break;
      }
    }
  }
  if (id == kInvalidPageId) {
    id = next_page_id_.fetch_add(1, std::memory_order_relaxed);
  }
  Page* raw = TakeFrame(id, page_class);
  Shard& shard = ShardFor(id);
  {
    TrackedMutexLock g(shard.mu);
    shard.pages.emplace(id, raw);
    DirPublish(id, raw);
  }
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  TrackFrame(raw);
  return raw;
}

Page* BufferPool::NewPageWithId(PageId id, PageClass page_class) {
  // Keep the allocator ahead of recovered ids.
  PageId expected = next_page_id_.load(std::memory_order_relaxed);
  while (expected <= id && !next_page_id_.compare_exchange_weak(
                               expected, id + 1, std::memory_order_relaxed)) {
  }
  Shard& shard = ShardFor(id);
  {
    TrackedMutexLock g(shard.mu);
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) return it->second;
  }
  if (config_.disk != nullptr) {
    Page* loaded = LoadFromDisk(id, shard);
    if (loaded != nullptr) return loaded;
  }
  if (evicting()) EnsureBudget();
  Page* fresh = TakeFrame(id, page_class);
  Page* raw = nullptr;
  {
    TrackedMutexLock g(shard.mu);
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) {
      raw = it->second;
    } else {
      shard.pages.emplace(id, fresh);
      DirPublish(id, fresh);
    }
  }
  if (raw != nullptr) {
    ReturnFrame(fresh);
    return raw;
  }
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  TrackFrame(fresh);
  return fresh;
}

Page* BufferPool::LoadFromDisk(PageId id, Shard& shard) {
  if (!config_.disk->Contains(id)) return nullptr;
  if (evicting()) EnsureBudget();
  {
    TrackedMutexUnprofiledLock g(shard.mu);
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) return it->second;  // lost the race
  }
  // Read straight into a recycled frame without holding the shard mutex:
  // the frame is invisible until published, and concurrent misses on the
  // same shard no longer serialize behind one pread.
  Page* frame = TakeFrame(id, PageClass::kHeap);
  PageSlotHeader header;
  Status st = config_.disk->ReadPage(id, &header, frame->data());
  if (!st.ok()) {
    ReturnFrame(frame);
    return nullptr;
  }
  frame->SetClass(static_cast<PageClass>(header.page_class));
  frame->set_owner_tag(header.owner_tag);
  frame->set_table_tag(header.table_tag);
  frame->set_page_lsn(header.page_lsn);
  if ((header.flags & kSlotFlagVolatileIndex) != 0) {
    frame->set_volatile_index(true);
  }
  Page* winner = nullptr;
  {
    TrackedMutexUnprofiledLock g(shard.mu);
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) {
      winner = it->second;  // another thread published first
    } else {
      shard.pages.emplace(id, frame);
      DirPublish(id, frame);
      num_pages_.fetch_add(1, std::memory_order_relaxed);
      disk_reads_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (winner != nullptr) {
    ReturnFrame(frame);
    return winner;
  }
  // Outside the shard mutex: TrackFrame takes clock_mu_, and EvictOne
  // acquires shard mutexes while holding clock_mu_ — nesting them here
  // would be an ABBA deadlock.
  TrackFrame(frame);
  return frame;
}

Page* BufferPool::FixInternal(PageId id, bool tracked, bool pin) {
  if (id == kInvalidPageId) return nullptr;
  assert(!IsSwizzledRef(id));
  // Lock-free fast path: resident pages resolve through the directory
  // with no critical section at all. An unpinned fix trusts the caller
  // (memory-resident mode / quiesced access); a pinned fix must survive a
  // racing steal, so it pins first and revalidates the mapping — the
  // evictor retracts the mapping before its own pin check, and both sides
  // fence seq_cst, so at least one of the two observes the other.
  Page* fast = DirLookup(id);
  if (fast != nullptr) {
    if (!pin) {
      hits_metric_->Increment();
      fast->SetRef();
      return fast;
    }
    fast->Pin();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (DirLookup(id) == fast) {
      hits_metric_->Increment();
      fast->SetRef();
      return fast;
    }
    fast->Unpin();  // lost to a concurrent steal; take the slow path
  }
  Shard& shard = ShardFor(id);
  Page* p = nullptr;
  if (tracked) {
    TrackedMutexLock g(shard.mu);
    auto it = shard.pages.find(id);
    p = it == shard.pages.end() ? nullptr : it->second;
    if (p != nullptr && pin) p->Pin();
  } else {
    TrackedMutexUnprofiledLock g(shard.mu);
    auto it = shard.pages.find(id);
    p = it == shard.pages.end() ? nullptr : it->second;
    if (p != nullptr && pin) p->Pin();
  }
  if (p != nullptr) hits_metric_->Increment();
  if (p == nullptr && config_.disk != nullptr) {
    // Miss: the faulting thread pays EnsureBudget (possibly a full
    // eviction round trip) plus the disk read — the stall the
    // miss_stall_us histogram charges to wal-evicting configurations.
    const std::uint64_t miss_start = NowNanos();
    p = LoadFromDisk(id, shard);
    if (p != nullptr) {
      misses_metric_->Increment();
      miss_stall_us_metric_->Record((NowNanos() - miss_start) / 1000);
      FlightRecorder::Emit(TraceEventType::kBufMissStall, miss_start,
                           NowNanos() - miss_start, id, 0);
    }
    if (p != nullptr && pin) {
      // Benign race: the freshly loaded frame could be evicted before this
      // pin lands; re-fix in that case.
      TrackedMutexUnprofiledLock g(shard.mu);
      auto it = shard.pages.find(id);
      if (it == shard.pages.end() || it->second != p) {
        return FixInternal(id, tracked, pin);
      }
      p->Pin();
    }
  }
  if (p != nullptr) p->SetRef();
  return p;
}

Page* BufferPool::Fix(PageId id) {
  return FixInternal(id, /*tracked=*/true, /*pin=*/false);
}

Page* BufferPool::FixUnlocked(PageId id) {
  return FixInternal(id, /*tracked=*/false, /*pin=*/false);
}

PageRef BufferPool::AcquirePage(PageId id, bool tracked) {
  const bool pin = evicting();
  Page* p = FixInternal(id, tracked, pin);
  return PageRef(p, pin && p != nullptr);
}

PageRef BufferPool::AllocatePage(PageClass page_class,
                                 std::uint32_t table_tag,
                                 bool volatile_index) {
  Page* p = NewPage(page_class);
  p->set_table_tag(table_tag);
  if (volatile_index) p->set_volatile_index(true);
  if (evicting()) {
    p->Pin();
    return PageRef(p, /*pinned=*/true);
  }
  return PageRef(p, /*pinned=*/false);
}

void BufferPool::FreePage(PageId id) {
  Page* freed = nullptr;
  Shard& shard = ShardFor(id);
  {
    TrackedMutexLock g(shard.mu);
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) {
      freed = it->second;
      shard.pages.erase(it);
      DirRetract(id);
      num_pages_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (freed != nullptr && swizzling_on_ &&
      freed->page_class() == PageClass::kIndex) {
    // SMO hooks unswizzle before entries move, so a freed internal page
    // should hold no tagged refs — but sanitize defensively (a missed one
    // would leave a child unevictable with a stale marker forever).
    config_.unswizzle_all(freed, this);
    // If a resident parent still holds a tagged ref to the frame being
    // freed, it must be rewritten to the plain id before the frame is
    // recycled — a stale tagged ref would resolve to the recycled frame's
    // next identity. Free sites quiesce/own the tree, so the try-latch
    // inside succeeds; false only means a transient revalidation race.
    while (freed->swizzle_parent() != kInvalidPageId) {
      if (TryUnswizzle(freed)) break;
      std::this_thread::yield();
    }
  }
  if (config_.disk != nullptr) (void)config_.disk->FreePage(id);
  NotifyEvicted(id);
  if (freed != nullptr) ReturnFrame(freed);
}

void BufferPool::EnsureBudget() {
  // Soft budget: concurrent allocators may overshoot by a frame or two.
  while (num_pages_.load(std::memory_order_relaxed) >= config_.frame_budget) {
    if (!EvictOne()) break;  // everything pinned/non-evictable
  }
}

bool BufferPool::TryUnswizzle(Page* child) {
  const PageId parent_pid = child->swizzle_parent();
  if (parent_pid == kInvalidPageId) return true;
  Page* parent = DirLookup(parent_pid);
  if (parent == nullptr) {
    // The parent left the pool; its image was sanitized on the way out,
    // so the marker is stale.
    NoteUnswizzled();
    child->ClearSwizzleParentIf(parent_pid);
    return child->swizzle_parent() == kInvalidPageId;
  }
  PinGuard parent_pin(parent);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (DirLookup(parent_pid) != parent) return false;
  if (parent->page_class() != PageClass::kIndex) {
    // The parent pid was freed and reused by a non-index page (slot
    // reuse); the swizzled entry died with the old page image.
    NoteUnswizzled();
    child->ClearSwizzleParentIf(parent_pid);
    return child->swizzle_parent() == kInvalidPageId;
  }
  // Exclusive parent latch: mutual exclusion with descents resolving the
  // swizzled entry under a shared latch. try-lock only — this runs under
  // the clock sweep's locks and must never wait.
  if (!parent->latch().TryAcquireExclusive()) return false;
  const bool gone =
      config_.unswizzle_child(parent, child->frame_index(), child->id());
  parent->latch().ReleaseExclusive();
  if (!gone) return false;
  NoteUnswizzled();
  child->ClearSwizzleParentIf(parent_pid);
  return child->swizzle_parent() == kInvalidPageId;
}

void BufferPool::UnswizzleForWriteBack(Page* page) {
  if (!swizzling_on_ || page->page_class() != PageClass::kIndex) return;
  config_.unswizzle_all(page, this);
}

bool BufferPool::EvictOne() {
  TraceSiteScope trace_site(TraceSite::kBufferPoolEvict);
  // Phase 1 — select a candidate under clock_mu_ only (no I/O, no shard
  // mutex nesting beyond a brief peek). The candidate is removed from the
  // clock so concurrent evictors pick different victims; it is re-added
  // if the steal is abandoned. The first rotation prefers CLEAN victims:
  // stealing a clean frame is a pure detach, while a dirty steal pays the
  // WAL barrier (a group-commit fsync join) plus a page write in the
  // faulting thread's latency path. The first dirty candidate seen is
  // remembered as a fallback.
  PageId pid = kInvalidPageId;
  Page* candidate = nullptr;
  Lsn lsn_before = 0;
  {
    MutexLock g(clock_mu_);
    const std::size_t initial = clock_.size();
    std::size_t budget = initial * 2;
    std::size_t seen = 0;
    PageId dirty_pid = kInvalidPageId;
    Page* dirty_page = nullptr;
    Lsn dirty_lsn = 0;
    while (budget-- > 0 && !clock_.empty()) {
      const std::size_t idx = clock_hand_ % clock_.size();
      const PageId candidate_pid = clock_[idx];
      Shard& shard = ShardFor(candidate_pid);
      TrackedMutexUnprofiledLock sg(shard.mu);
      auto it = shard.pages.find(candidate_pid);
      if (it == shard.pages.end()) {
        // Frame already gone (FreePage/steal); drop the stale candidate.
        clock_.erase(clock_.begin() + static_cast<std::ptrdiff_t>(idx));
        continue;
      }
      Page* page = it->second;
      ++clock_hand_;
      ++seen;
      if (page->pin_count() > 0) continue;
      if (page->sticky()) continue;  // index roots stay resident
      if (page->TestAndClearRef()) continue;
      if (page->swizzle_parent() != kInvalidPageId) {
        // Lazy unswizzle right before the frame can become a victim:
        // rewrite the parent's entry under its latch (non-blocking).
        if (!TryUnswizzle(page)) continue;
      }
      if (page->dirty() && seen <= initial) {
        if (dirty_pid == kInvalidPageId) {
          dirty_pid = candidate_pid;
          dirty_page = page;
          dirty_lsn = page->page_lsn();
        }
        continue;
      }
      pid = candidate_pid;
      candidate = page;
      lsn_before = page->page_lsn();
      clock_.erase(clock_.begin() + static_cast<std::ptrdiff_t>(idx));
      if (clock_hand_ > 0) --clock_hand_;  // slot vanished under the hand
      break;
    }
    if (pid == kInvalidPageId && dirty_pid != kInvalidPageId) {
      auto pos = std::find(clock_.begin(), clock_.end(), dirty_pid);
      if (pos != clock_.end()) {
        clock_.erase(pos);
        pid = dirty_pid;
        candidate = dirty_page;
        lsn_before = dirty_lsn;
      }
    }
  }
  if (pid == kInvalidPageId) return false;

  // Phase 2 — under the shard mutex: retract the lock-free mapping, fence,
  // then check pins/identity. A concurrent lock-free fix either pinned
  // before our check (we abort and republish) or will revalidate after our
  // retract and fall to the slow path, which needs this mutex. Every
  // mutation path pins first, so a pin_count == 0 frame cannot change
  // while the snapshot copy runs: the image written back is always a
  // consistent state as of `lsn_before` (writing from the live buffer
  // without this protocol could persist a torn, mid-mutation image under
  // a stale page LSN — undetectable by recovery's redo gate). A clean
  // victim is detached right here — no barrier, no I/O. A dirty victim is
  // sanitized (no tagged PageId ever reaches disk), snapshotted, and
  // tentatively marked clean; any racing mutation re-dirties it and
  // phase 3 then aborts the steal, leaving the change resident.
  Shard& shard = ShardFor(pid);
  std::vector<char> image;
  PageSlotHeader header;
  bool snapshot_ok = false;
  bool present_at_snapshot = false;
  bool detached = false;
  bool dirty_now = false;
  bool volatile_index = false;
  Lsn rec_lsn_before = 0;
  {
    TrackedMutexUnprofiledLock sg(shard.mu);
    auto it = shard.pages.find(pid);
    present_at_snapshot = it != shard.pages.end() && it->second == candidate;
    if (present_at_snapshot) {
      DirRetract(pid);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
    snapshot_ok = present_at_snapshot && candidate->pin_count() == 0 &&
                  candidate->page_lsn() == lsn_before &&
                  candidate->swizzle_parent() == kInvalidPageId &&
                  !candidate->sticky();
    if (snapshot_ok) {
      dirty_now = candidate->dirty();
      volatile_index = candidate->volatile_index();
      if (!dirty_now) {
        shard.pages.erase(it);
        detached = true;
      } else {
        rec_lsn_before = candidate->rec_lsn();
        UnswizzleForWriteBack(candidate);
        image.assign(candidate->data(), candidate->data() + kPageSize);
        header.page_class =
            static_cast<std::uint8_t>(candidate->page_class());
        header.owner_tag = candidate->owner_tag();
        header.table_tag = candidate->table_tag();
        header.page_lsn = lsn_before;
        if (volatile_index) header.flags |= kSlotFlagVolatileIndex;
        candidate->MarkClean();  // tentative; racing mutations re-dirty
      }
    } else if (present_at_snapshot) {
      DirPublish(pid, candidate);  // abort: restore the fast path
    }
  }
  if (!snapshot_ok) {
    if (present_at_snapshot) {
      // Raced a pin or an update since selection: the frame stays; put it
      // back on the clock (outside the shard mutex — EvictOne nests the
      // shard mutex inside clock_mu_, never the reverse).
      MutexLock g(clock_mu_);
      clock_.push_back(pid);
    }
    return false;
  }

  Status write_status = Status::OK();
  if (!detached) {
    // WAL rule: the log must be durable up to the snapshot's LSN before
    // the snapshot overwrites the disk copy. No locks held across I/O;
    // the directory stays retracted, so lock-free fixes fall to the slow
    // path (where the frame is still mapped) until phase 3 resolves.
    const std::uint64_t steal_start = NowNanos();
    if (config_.wal_barrier) config_.wal_barrier(lsn_before);
    write_status = config_.disk->WritePage(pid, header, image.data());
    if (write_status.ok()) {
      disk_writes_.fetch_add(1, std::memory_order_relaxed);
      eviction_writebacks_metric_->Increment();
      writeback_stall_us_metric_->Record((NowNanos() - steal_start) / 1000);
      FlightRecorder::Emit(TraceEventType::kEvictWriteback, steal_start,
                           NowNanos() - steal_start, pid, 0);
    }

    // Phase 3 — detach, re-validating under the shard mutex: a pin taken,
    // any re-dirtying mutation (logged or compensation), a fresh swizzle,
    // or a write error aborts the steal and the frame stays resident. A
    // frame freed during the I/O (FreePage race) must not be touched.
    bool still_present = false;
    {
      TrackedMutexUnprofiledLock sg(shard.mu);
      auto it = shard.pages.find(pid);
      still_present = it != shard.pages.end() && it->second == candidate;
      if (still_present && write_status.ok() &&
          candidate->pin_count() == 0 &&
          candidate->page_lsn() == lsn_before && !candidate->dirty() &&
          candidate->swizzle_parent() == kInvalidPageId) {
        shard.pages.erase(it);
        detached = true;
      } else if (still_present) {
        if (!write_status.ok()) {
          // The tentative clean must not survive a failed write-back: the
          // ops since the original rec_lsn are still unflushed, so put
          // that rec_lsn back (even over one a racing mutation CAS'd in —
          // the racing op's interval starts later than the unflushed one).
          candidate->RestoreDirty(rec_lsn_before);
        }
        candidate->SetRef();
        DirPublish(pid, candidate);
      }
    }
    if (!detached) {
      if (still_present) {
        MutexLock g(clock_mu_);
        clock_.push_back(pid);
      }
      return write_status.ok() && !still_present;  // freed = progress
    }
  }
  num_pages_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  evictions_metric_->Increment();
  NotifyEvicted(pid);
  // Recycle the frame. Stale lock-free readers may still transiently pin
  // it; they revalidate against the retracted directory before touching
  // contents, so Reinit on the next TakeFrame is safe.
  ReturnFrame(candidate);
  return true;
}

Status BufferPool::WriteBackNoClean(Page* page) {
  const std::uint64_t write_start = NowNanos();
  // WAL rule: every log record describing this page must be durable
  // before the page image overwrites the disk copy (no-steal of unlogged
  // state). page_lsn covers the newest update.
  if (config_.wal_barrier) config_.wal_barrier(page->page_lsn());
  PageSlotHeader header;
  header.page_class = static_cast<std::uint8_t>(page->page_class());
  header.owner_tag = page->owner_tag();
  header.table_tag = page->table_tag();
  header.page_lsn = page->page_lsn();
  if (page->volatile_index()) header.flags |= kSlotFlagVolatileIndex;
  PLP_RETURN_IF_ERROR(
      config_.disk->WritePage(page->id(), header, page->data()));
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  flush_writebacks_metric_->Increment();
  writeback_stall_us_metric_->Record((NowNanos() - write_start) / 1000);
  return Status::OK();
}

Status BufferPool::WriteBack(Page* page) {
  PLP_RETURN_IF_ERROR(WriteBackNoClean(page));
  page->MarkClean();
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id, LatchPolicy policy) {
  TraceSiteScope trace_site(TraceSite::kPageCleaner);
  if (config_.disk == nullptr) {
    // Memory-resident: cleaning is just clearing the dirty bit.
    Page* page = FixUnlocked(id);
    if (page != nullptr) {
      LatchGuard g(&page->latch(), LatchMode::kShared, policy);
      page->MarkClean();
    }
    return Status::OK();
  }
  PageRef ref = AcquirePage(id, /*tracked=*/false);
  if (!ref) return Status::OK();  // already evicted (hence clean)
  if (!ref->dirty()) return Status::OK();
  if (!Evictable(ref->page_class())) {
    // Volatile classes (catalog; index in snapshot mode) are rebuilt at
    // restart; persisting them would only grow data.db with slots no
    // reopen ever reads.
    LatchGuard g(&ref->latch(), LatchMode::kShared, policy);
    ref->MarkClean();
    return Status::OK();
  }
  // Index pages take the latch exclusively: the in-place unswizzle that
  // sanitizes child refs before the copy must not race shared-latched
  // descents resolving those refs.
  const LatchMode mode =
      swizzling_on_ && ref->page_class() == PageClass::kIndex
          ? LatchMode::kExclusive
          : LatchMode::kShared;
  LatchGuard g(&ref->latch(), mode, policy);
  UnswizzleForWriteBack(ref.get());
  return WriteBack(ref.get());
}

Status BufferPool::FlushAllDirty(LatchPolicy policy) {
  Status result = Status::OK();
  for (auto& shard : shards_) {
    std::vector<PageId> dirty;
    {
      TrackedMutexUnprofiledLock g(shard->mu);
      for (auto& [id, page] : shard->pages) {
        if (page->dirty()) dirty.push_back(id);
      }
    }
    for (PageId id : dirty) {
      Status st = FlushPage(id, policy);
      if (!st.ok() && result.ok()) result = st;
    }
  }
  return result;
}

std::vector<PageId> BufferPool::DirtyPages(std::size_t limit) {
  std::vector<PageId> out;
  for (auto& shard : shards_) {
    TrackedMutexUnprofiledLock g(shard->mu);
    for (auto& [id, page] : shard->pages) {
      if (page->dirty()) {
        out.push_back(id);
        if (out.size() >= limit) return out;
      }
    }
  }
  return out;
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() {
  std::vector<std::pair<PageId, Lsn>> out;
  for (auto& shard : shards_) {
    TrackedMutexUnprofiledLock g(shard->mu);
    for (auto& [id, page] : shard->pages) {
      if (page->dirty() && Evictable(page->page_class())) {
        out.emplace_back(id, page->rec_lsn());
      }
    }
  }
  return out;
}

void BufferPool::RegisterEvictionListener(
    void* token, std::function<void(PageId)> listener) {
  SpinlockGuard g(listeners_mu_);
  listeners_.emplace_back(token, std::move(listener));
}

void BufferPool::UnregisterEvictionListener(void* token) {
  SpinlockGuard g(listeners_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void BufferPool::NotifyEvicted(PageId id) {
  SpinlockGuard g(listeners_mu_);
  for (auto& [token, fn] : listeners_) fn(id);
}

}  // namespace plp
