// Result<T>: a Status or a value (Arrow/abseil StatusOr idiom).
#ifndef PLP_COMMON_RESULT_H_
#define PLP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace plp {

/// Holds either an OK status and a value, or a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PLP_ASSIGN_OR_RETURN(lhs, expr)        \
  auto PLP_CONCAT_(res_, __LINE__) = (expr);   \
  if (!PLP_CONCAT_(res_, __LINE__).ok())       \
    return PLP_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(PLP_CONCAT_(res_, __LINE__)).value()

#define PLP_CONCAT_INNER_(a, b) a##b
#define PLP_CONCAT_(a, b) PLP_CONCAT_INNER_(a, b)

}  // namespace plp

#endif  // PLP_COMMON_RESULT_H_
