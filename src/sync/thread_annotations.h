// Clang Thread Safety Analysis attribute shim (the PLP_THREAD_ANNOTATION_*
// layer). The engine's ownership and latching invariants — which mutex
// guards which member, which functions must (or must not) hold it — are
// written down with these macros so `clang++ -Wthread-safety -Werror`
// proves them at compile time (the CI clang job). GCC and pre-capability
// clangs see empty macros and compile identical code.
//
// Conventions (see docs/static_analysis.md for the full guide):
//  * Capability types: Latch, TrackedMutex, Mutex, SharedMutex, Spinlock
//    (src/sync/latch.h, src/sync/spinlock.h). Raw std::mutex and
//    std::lock_guard/std::unique_lock are confined to src/sync — the
//    analysis cannot see through them (enforced by tools/lint_invariants.py).
//  * Data members annotate the mutex that guards them: PLP_GUARDED_BY for
//    the member itself, PLP_PT_GUARDED_BY for what a pointer member points
//    at.
//  * Functions declare their locking contract: PLP_REQUIRES (caller holds),
//    PLP_ACQUIRE/PLP_RELEASE (this function takes/drops), PLP_TRY_ACQUIRE
//    (conditional), PLP_EXCLUDES (must NOT hold — deadlock guard).
//  * A deliberate lock-free protocol opts out with
//    PLP_NO_THREAD_SAFETY_ANALYSIS plus a comment naming the protocol
//    (e.g. "pin/fence/revalidate"); the lint rejects bare opt-outs.
#ifndef PLP_SYNC_THREAD_ANNOTATIONS_H_
#define PLP_SYNC_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PLP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef PLP_THREAD_ANNOTATION_ATTRIBUTE__
#define PLP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // compiles away on GCC
#endif

/// Type is a capability (lockable). The string names the capability kind in
/// diagnostics ("mutex", "latch", ...).
#define PLP_CAPABILITY(x) PLP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// RAII type that acquires in its constructor and releases in its
/// destructor (std::lock_guard shape).
#define PLP_SCOPED_CAPABILITY \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while the given capability is held.
#define PLP_GUARDED_BY(x) PLP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely).
#define PLP_PT_GUARDED_BY(x) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define PLP_ACQUIRED_BEFORE(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define PLP_ACQUIRED_AFTER(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared).
#define PLP_REQUIRES(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define PLP_REQUIRES_SHARED(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define PLP_ACQUIRE(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define PLP_ACQUIRE_SHARED(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define PLP_RELEASE(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define PLP_RELEASE_SHARED(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either mode (Latch::Release(mode)).
#define PLP_RELEASE_GENERIC(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Conditional acquisition; first argument is the success return value.
#define PLP_TRY_ACQUIRE(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define PLP_TRY_ACQUIRE_SHARED(...)                 \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(                \
      try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant acquire paths).
#define PLP_EXCLUDES(...) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (recovery entry points
/// that are single-threaded by construction).
#define PLP_ASSERT_CAPABILITY(x) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the given capability.
#define PLP_RETURN_CAPABILITY(x) \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opt-out for deliberate lock-free protocols. MUST carry a comment naming
/// the protocol it opts out for (enforced by tools/lint_invariants.py).
#define PLP_NO_THREAD_SAFETY_ANALYSIS \
  PLP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // PLP_SYNC_THREAD_ANNOTATIONS_H_
