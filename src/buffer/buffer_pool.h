// Buffer pool: allocation and id->frame translation for database pages.
//
// The evaluation (like the paper's) runs memory-resident, so frames are
// never evicted; Fix() is a sharded hash lookup whose bucket mutex is a
// buffer-pool critical section, exactly the communication Shore-MT charges
// to its buffer pool. Partition-owned code paths avoid that communication
// with a thread-private PageCache (exclusive ownership makes it safe).
#ifndef PLP_BUFFER_BUFFER_POOL_H_
#define PLP_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/buffer/page.h"
#include "src/common/types.h"
#include "src/sync/latch.h"

namespace plp {

class BufferPool {
 public:
  BufferPool();
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh zeroed page of the given class.
  Page* NewPage(PageClass page_class);

  /// Recovery path: materializes the frame for a specific page id (no-op
  /// when it already exists). Keeps the id allocator ahead of `id`.
  Page* NewPageWithId(PageId id, PageClass page_class);

  /// Translates a page id to its frame; records a buffer-pool critical
  /// section (the bucket lookup). Returns nullptr for freed/unknown ids.
  Page* Fix(PageId id);

  /// Lookup without critical-section accounting — only valid for callers
  /// that own the page exclusively (thread-private caches).
  Page* FixUnlocked(PageId id);

  /// Returns the frame to the pool. The caller must guarantee no other
  /// thread holds a reference.
  void FreePage(PageId id);

  std::size_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }

  /// Up to `limit` currently-dirty page ids (page-cleaner scan).
  std::vector<PageId> DirtyPages(std::size_t limit);

 private:
  static constexpr std::size_t kNumShards = 64;

  struct Shard {
    TrackedMutex mu{CsCategory::kBufferPool};
    std::unordered_map<PageId, std::unique_ptr<Page>> pages;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % kNumShards]; }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<PageId> next_page_id_{1};
  std::atomic<std::size_t> num_pages_{0};
};

/// Thread-private id->frame cache for partition workers (PLP): repeated
/// accesses to owned pages skip the buffer-pool critical section.
class PageCache {
 public:
  explicit PageCache(BufferPool* pool) : pool_(pool) {}

  Page* Fix(PageId id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
    Page* p = pool_->Fix(id);  // one CS on first touch only
    if (p != nullptr) cache_.emplace(id, p);
    return p;
  }

  void Invalidate(PageId id) { cache_.erase(id); }
  void Clear() { cache_.clear(); }

 private:
  BufferPool* pool_;
  std::unordered_map<PageId, Page*> cache_;
};

}  // namespace plp

#endif  // PLP_BUFFER_BUFFER_POOL_H_
