#include "src/txn/txn_manager.h"

namespace plp {

TxnManager::TxnManager(LogManager* log, LockManager* locks,
                       TxnManagerConfig config)
    : log_(log), locks_(locks), config_(config) {}

Transaction* TxnManager::Begin() {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();

  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = id;
  const Lsn begin_lsn = log_->Append(rec);
  raw->set_last_lsn(begin_lsn);
  raw->set_begin_lsn(begin_lsn);

  table_mu_.lock();
  active_.emplace(id, std::move(txn));
  table_mu_.unlock();
  return raw;
}

Status TxnManager::Commit(Transaction* txn) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = txn->id();
  const Lsn lsn = log_->Append(rec);
  txn->set_last_lsn(lsn);
  if (config_.durable_commits) {
    log_->FlushTo(lsn);
  }
  txn->set_state(TxnState::kCommitted);
  if (locks_ != nullptr) {
    locks_->ReleaseAll(txn->id(), txn->held_locks());
  }
  committed_.fetch_add(1, std::memory_order_relaxed);
  Retire(txn);
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  Status undo_status = txn->RunUndo();

  LogRecord rec;
  rec.type = LogType::kAbort;
  rec.txn = txn->id();
  txn->set_last_lsn(log_->Append(rec));
  txn->set_state(TxnState::kAborted);
  if (locks_ != nullptr) {
    locks_->ReleaseAll(txn->id(), txn->held_locks());
  }
  aborted_.fetch_add(1, std::memory_order_relaxed);
  Retire(txn);
  return undo_status;
}

void TxnManager::Retire(Transaction* txn) {
  table_mu_.lock();
  active_.erase(txn->id());
  table_mu_.unlock();
}

std::size_t TxnManager::active_count() {
  table_mu_.lock();
  std::size_t n = active_.size();
  table_mu_.unlock();
  return n;
}

std::vector<std::pair<TxnId, Lsn>> TxnManager::ActiveSnapshot() {
  std::vector<std::pair<TxnId, Lsn>> out;
  table_mu_.lock();
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    out.emplace_back(id, txn->begin_lsn());
  }
  table_mu_.unlock();
  return out;
}

void TxnManager::EnsureNextIdAtLeast(TxnId id) {
  TxnId expected = next_txn_id_.load(std::memory_order_relaxed);
  while (expected < id && !next_txn_id_.compare_exchange_weak(
                              expected, id, std::memory_order_relaxed)) {
  }
}

}  // namespace plp
