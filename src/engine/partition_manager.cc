#include "src/engine/partition_manager.h"

#include <cassert>

#include "src/buffer/page_cleaner.h"
#include "src/common/clock.h"
#include "src/metrics/flight_recorder.h"

namespace plp {

PartitionManager::PartitionManager(Database* db, int num_workers,
                                   CtxFactory factory)
    : db_(db), factory_(std::move(factory)) {
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  MetricsRegistry* m = db_->metrics();
  txns_metric_ = m->counter("partition.txns");
  single_site_metric_ = m->counter("partition.single_site_txns");
  cross_site_metric_ = m->counter("partition.cross_site_txns");
  actions_metric_ = m->counter("partition.actions");
  phases_metric_ = m->counter("partition.phases");
  undo_actions_metric_ = m->counter("partition.undo_actions");
  // Queue depths are sampled, not counted: workers drain them far too fast
  // for per-push accounting to mean anything. Sum + max keeps the gauge set
  // bounded regardless of worker count.
  m->RegisterGaugeProvider(this, [this](const GaugeSink& sink) {
    std::size_t total = 0, deepest = 0, partitions = 0;
    for (const auto& w : workers_) {
      const std::size_t d = w->queue.size();
      total += d;
      if (d > deepest) deepest = d;
    }
    {
      ReaderMutexLock lk(routing_mu_);
      for (const auto& [table, r] : routing_) partitions += r->uids.size();
    }
    sink("partition.queue_depth", static_cast<std::int64_t>(total));
    sink("partition.max_queue_depth", static_cast<std::int64_t>(deepest));
    sink("partition.count", static_cast<std::int64_t>(partitions));
    sink("partition.workers", static_cast<std::int64_t>(workers_.size()));
  });
}

PartitionManager::~PartitionManager() {
  Stop();
  db_->metrics()->UnregisterGaugeProvider(this);
}

void PartitionManager::Start() {
  if (running_.exchange(true)) return;
  for (auto& w : workers_) w->queue.Reopen();  // restart after Stop()
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread =
        std::thread([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

void PartitionManager::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& w : workers_) w->queue.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void PartitionManager::WorkerLoop(int index) {
  Worker& self = *workers_[index];
  for (;;) {
    auto task = self.queue.Pop();
    if (!task.has_value()) return;  // queue closed
    task->fn();
  }
}

void PartitionManager::RegisterTable(Table* table,
                                     std::vector<std::string> boundaries) {
  WriterMutexLock lk(routing_mu_);
  auto routing = std::make_unique<TableRouting>();
  routing->table = table;
  routing->boundaries = std::move(boundaries);
  for (std::size_t i = 0; i < routing->boundaries.size(); ++i) {
    const std::uint32_t uid = next_uid_++;
    routing->uids.push_back(uid);
    worker_by_uid_[uid] =
        static_cast<int>(uid % workers_.size());
    routing->load.push_back(
        std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  routing_[table] = std::move(routing);
}

void PartitionManager::SetRouting(Table* table,
                                  std::vector<std::string> boundaries) {
  WriterMutexLock lk(routing_mu_);
  auto it = routing_.find(table);
  assert(it != routing_.end());
  TableRouting* old = it->second.get();

  auto fresh = std::make_unique<TableRouting>();
  fresh->table = table;
  for (auto& b : boundaries) {
    // Boundaries that survive keep their uid (and hence their worker).
    std::uint32_t uid = 0;
    for (std::size_t i = 0; i < old->boundaries.size(); ++i) {
      if (old->boundaries[i] == b) {
        uid = old->uids[i];
        break;
      }
    }
    if (uid == 0) {
      uid = next_uid_++;
      worker_by_uid_[uid] = static_cast<int>(uid % workers_.size());
    }
    fresh->boundaries.push_back(std::move(b));
    fresh->uids.push_back(uid);
    fresh->load.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  it->second = std::move(fresh);
}

PartitionManager::TableRouting* PartitionManager::RoutingFor(Table* table) {
  auto it = routing_.find(table);
  return it == routing_.end() ? nullptr : it->second.get();
}

PartitionId PartitionManager::RoutePartition(Table* table, Slice key) {
  ReaderMutexLock lk(routing_mu_);
  TableRouting* r = RoutingFor(table);
  assert(r != nullptr && !r->boundaries.empty());
  int lo = 0, hi = static_cast<int>(r->boundaries.size());
  while (lo + 1 < hi) {
    const int mid = (lo + hi) / 2;
    if (Slice(r->boundaries[static_cast<std::size_t>(mid)]) <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<PartitionId>(lo);
}

std::uint32_t PartitionManager::PartitionUid(Table* table, PartitionId p) {
  ReaderMutexLock lk(routing_mu_);
  TableRouting* r = RoutingFor(table);
  assert(r != nullptr && p < r->uids.size());
  return r->uids[p];
}

std::vector<std::string> PartitionManager::Boundaries(Table* table) {
  ReaderMutexLock lk(routing_mu_);
  TableRouting* r = RoutingFor(table);
  return r == nullptr ? std::vector<std::string>{} : r->boundaries;
}

int PartitionManager::WorkerForUid(std::uint32_t uid) {
  ReaderMutexLock lk(routing_mu_);
  auto it = worker_by_uid_.find(uid);
  return it == worker_by_uid_.end() ? -1 : it->second;
}

std::vector<std::uint64_t> PartitionManager::LoadSnapshot(Table* table) {
  ReaderMutexLock lk(routing_mu_);
  TableRouting* r = RoutingFor(table);
  std::vector<std::uint64_t> out;
  if (r != nullptr) {
    out.reserve(r->load.size());
    for (auto& c : r->load) out.push_back(c->load(std::memory_order_relaxed));
  }
  return out;
}

void PartitionManager::ResetLoad(Table* table) {
  ReaderMutexLock lk(routing_mu_);
  TableRouting* r = RoutingFor(table);
  if (r != nullptr) {
    for (auto& c : r->load) c->store(0, std::memory_order_relaxed);
  }
}

/// Per-transaction flow state, shared by the tasks of the current phase.
/// The atomic countdowns are the only cross-worker synchronization: the
/// worker that decrements `remaining` to zero owns the continuation.
struct PartitionManager::TxnFlow {
  TxnRequest req;
  CompletionFn done;  // unset when `token` carries the completion
  TxnToken token;
  Transaction* txn = nullptr;
  std::size_t phase = 0;

  // Current phase (rebuilt by DispatchPhase).
  std::vector<ActionResult> results;
  std::vector<int> assigned_worker;
  std::atomic<int> remaining{0};

  // Accumulated across phases: compensations in execution order with
  // their owning worker, and the first failure seen.
  std::vector<std::pair<int, std::function<Status()>>> undo_log;
  Status failure;
  std::atomic<int> undo_remaining{0};

  // Cross-partition tracking: the first partition uid any action routed
  // to, and whether a later action landed elsewhere. Only touched by the
  // single thread that owns the current phase transition.
  std::uint32_t first_uid = UINT32_MAX;
  bool cross_site = false;
};

void PartitionManager::Submit(TxnRequest req, CompletionFn done) {
  auto flow = std::make_shared<TxnFlow>();
  flow->req = std::move(req);
  flow->done = std::move(done);
  flow->txn = db_->txns()->Begin();
  DispatchPhase(flow);
}

void PartitionManager::Submit(TxnRequest req, TxnToken token) {
  auto flow = std::make_shared<TxnFlow>();
  flow->req = std::move(req);
  flow->token = std::move(token);
  flow->txn = db_->txns()->Begin();
  // Hand the token's stage timeline (if traced) to the Transaction so
  // Commit can stamp log-append and fsync-durable.
  flow->txn->set_trace(flow->token.trace());
  DispatchPhase(flow);
}

void PartitionManager::FinishTxn(const std::shared_ptr<TxnFlow>& flow,
                                 const Status& status) {
  if (flow->done) {
    flow->done(status);
  } else {
    flow->token.Complete(status);
  }
}

void PartitionManager::TallyFlow(const TxnFlow& flow) {
  txns_metric_->Increment();
  if (flow.first_uid == UINT32_MAX) return;  // no routed actions
  if (flow.cross_site) {
    cross_site_metric_->Increment();
  } else {
    single_site_metric_->Increment();
  }
}

Status PartitionManager::Execute(TxnRequest& req) {
  Mutex mu;
  std::condition_variable cv;
  bool finished = false;
  Status result;
  Submit(std::move(req), [&](const Status& st) {
    {
      MutexLock g(mu);
      result = st;
      finished = true;
    }
    cv.notify_one();
  });
  MutexLock lk(mu);
  while (!finished) lk.Wait(cv);
  return result;
}

void PartitionManager::DispatchPhase(const std::shared_ptr<TxnFlow>& flow) {
  while (flow->phase < flow->req.phases.size() &&
         flow->req.phases[flow->phase].actions.empty()) {
    ++flow->phase;
  }
  if (flow->phase >= flow->req.phases.size()) {
    TallyFlow(*flow);
    FinishTxn(flow, db_->txns()->Commit(flow->txn));
    return;
  }

  Phase& phase = flow->req.phases[flow->phase];
  const int n = static_cast<int>(phase.actions.size());
  phases_metric_->Increment();
  actions_metric_->Add(static_cast<std::uint64_t>(n));
  FlightRecorder::Emit(TraceEventType::kPartitionPhase, NowNanos(), 0,
                       flow->phase, static_cast<std::uint64_t>(n));
  flow->results.assign(static_cast<std::size_t>(n), ActionResult{});
  flow->assigned_worker.assign(static_cast<std::size_t>(n), 0);
  flow->remaining.store(n, std::memory_order_relaxed);

  for (int i = 0; i < n; ++i) {
    Action& action = phase.actions[static_cast<std::size_t>(i)];
    Table* table = db_->GetTable(action.table);
    assert(table != nullptr);
    PartitionId p;
    std::uint32_t uid;
    int worker;
    {
      ReaderMutexLock lk(routing_mu_);
      TableRouting* r = RoutingFor(table);
      assert(r != nullptr && !r->boundaries.empty());
      int lo = 0, hi = static_cast<int>(r->boundaries.size());
      while (lo + 1 < hi) {
        const int mid = (lo + hi) / 2;
        if (Slice(r->boundaries[static_cast<std::size_t>(mid)]) <=
            Slice(action.key)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      p = static_cast<PartitionId>(lo);
      uid = r->uids[p];
      r->load[p]->fetch_add(1, std::memory_order_relaxed);
      worker = worker_by_uid_[uid];
    }
    if (flow->first_uid == UINT32_MAX) {
      flow->first_uid = uid;
    } else if (uid != flow->first_uid) {
      flow->cross_site = true;
    }
    flow->assigned_worker[static_cast<std::size_t>(i)] = worker;
    ActionResult* slot = &flow->results[static_cast<std::size_t>(i)];
    ActionFn* fn = &action.fn;
    workers_[static_cast<std::size_t>(worker)]->queue.Push(Task{
        [this, flow, table, p, uid, slot, fn] {
          // First action to run stamps partition-execute (CAS from zero,
          // so later actions of a multi-action txn are no-ops).
          if (TxnTimeline* tl = flow->token.trace()) {
            TxnTimeline::Stamp(tl->execute_ns, NowNanos());
          }
          std::vector<std::function<Status()>> undos;
          auto ctx = factory_(table, p, uid, flow->txn, &undos);
          slot->status = (*fn)(*ctx);
          slot->undos = std::move(undos);
          if (flow->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            FinishPhase(flow);
          }
        }});
  }
}

void PartitionManager::FinishPhase(const std::shared_ptr<TxnFlow>& flow) {
  const int n = static_cast<int>(flow->results.size());
  for (int i = 0; i < n; ++i) {
    ActionResult& res = flow->results[static_cast<std::size_t>(i)];
    for (auto& u : res.undos) {
      flow->undo_log.emplace_back(
          flow->assigned_worker[static_cast<std::size_t>(i)], std::move(u));
    }
    if (!res.status.ok() && flow->failure.ok()) flow->failure = res.status;
  }
  if (!flow->failure.ok()) {
    StartAbort(flow);
    return;
  }
  ++flow->phase;
  DispatchPhase(flow);
}

void PartitionManager::StartAbort(const std::shared_ptr<TxnFlow>& flow) {
  TallyFlow(*flow);
  if (flow->undo_log.empty()) {
    (void)db_->txns()->Abort(flow->txn);
    FinishTxn(flow, flow->failure);
    return;
  }
  undo_actions_metric_->Add(flow->undo_log.size());
  flow->undo_remaining.store(static_cast<int>(flow->undo_log.size()),
                             std::memory_order_relaxed);
  // Newest-first; a worker's queue preserves the reversed order for the
  // compensations it owns.
  for (auto it = flow->undo_log.rbegin(); it != flow->undo_log.rend(); ++it) {
    std::function<Status()>* fn = &it->second;
    workers_[static_cast<std::size_t>(it->first)]->queue.Push(Task{
        [this, flow, fn] {
          (void)(*fn)();
          if (flow->undo_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            (void)db_->txns()->Abort(flow->txn);
            FinishTxn(flow, flow->failure);
          }
        }});
  }
}

void PartitionManager::Quiesce() {
  {
    MutexLock g(quiesce_mu_);
    quiescing_ = true;
    parked_ = 0;
  }
  for (auto& w : workers_) {
    w->queue.Push(Task{[this] {
      MutexLock lk(quiesce_mu_);
      ++parked_;
      quiesce_cv_.notify_all();
      while (quiescing_) lk.Wait(quiesce_cv_);
    }});
  }
  MutexLock lk(quiesce_mu_);
  while (parked_ != static_cast<int>(workers_.size())) lk.Wait(quiesce_cv_);
}

void PartitionManager::Resume() {
  {
    MutexLock g(quiesce_mu_);
    quiescing_ = false;
  }
  quiesce_cv_.notify_all();
}

bool PartitionManager::DelegateClean(PageId pid) {
  BufferPool* pool = db_->pool();
  // Pinned refs while inspecting owner tags: with eviction enabled the
  // frame could otherwise be freed mid-read.
  std::uint32_t tag;
  {
    PageRef page = pool->AcquirePage(pid, /*tracked=*/false);
    if (!page) return true;  // evicted/freed meanwhile: nothing to clean
    tag = page->owner_tag();
  }
  if (tag == UINT32_MAX) return false;  // unowned: cleaner handles it
  if ((tag & kUidBit) == 0) {
    // Leaf-owned heap page: the tag is the owning leaf's page id; that
    // leaf's frame carries the partition uid.
    PageRef leaf = pool->AcquirePage(static_cast<PageId>(tag),
                                     /*tracked=*/false);
    if (!leaf) return false;
    tag = leaf->owner_tag();
    if (tag == UINT32_MAX || (tag & kUidBit) == 0) return false;
  }
  const int worker = WorkerForUid(tag);
  if (worker < 0) return false;
  // Capture the id, not the frame: the task runs later, and the frame
  // may have been evicted (freed) by then.
  SubmitSystemTask(worker, [pool, pid] {
    PageCleaner::CleanPage(pool, pid, LatchPolicy::kNone);
  });
  return true;
}

void PartitionManager::SubmitSystemTask(int worker,
                                        std::function<void()> task) {
  workers_[static_cast<std::size_t>(worker)]->queue.PushHighPriority(
      Task{std::move(task)});
}

}  // namespace plp
