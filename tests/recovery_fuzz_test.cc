// Recovery fuzz: run a randomized workload where transactions commit or
// abort at random, "crash" at an arbitrary point, recover into a fresh
// buffer pool, and compare the recovered index against a reference model
// that applies committed transactions only.
//
// Two flavors:
//  * RecoveryFuzzTest        — the seed's memory-resident form (retained
//    log, fresh pool, single whole-log replay).
//  * DurableRecoveryFuzzTest — a simulated-crash loop over the on-disk
//    WAL + checkpoints: several generations of random transactions, each
//    ended by a crash (or occasionally a clean close) at a random kill
//    point, with fuzzy checkpoints sprinkled at random; every reopen
//    recovers from data file + WAL + checkpoint and is verified against
//    the committed-only model over the whole key space.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/index/btree_node.h"
#include "src/index/persistent/index_log.h"
#include "src/io/disk_manager.h"
#include "src/txn/recovery.h"

namespace plp {
namespace {

// Swizzled child references (IsSwizzledRef — tagged buffer-pool frame
// indexes) are a runtime-only encoding: eviction write-back and the SMO
// logging hooks must sanitize them before any page image leaves the pool.
// Checks every child reference of one index-node image.
void ExpectNoTaggedRefs(const char* page_data, const std::string& what) {
  BTreeNode node(const_cast<char*>(page_data));
  if (node.level() == 0) return;
  EXPECT_FALSE(IsSwizzledRef(node.leftmost_child()))
      << what << ": tagged leftmost child";
  for (int i = 0; i < node.count(); ++i) {
    EXPECT_FALSE(IsSwizzledRef(node.ChildAt(i)))
        << what << ": tagged child in entry " << i;
  }
}

// Scans the surviving WAL (record page ids, partition-table roots, and the
// node images embedded in SMO/repartition payloads) and every live on-disk
// index page for tagged PageIds. Run right after a crash-reopen, before
// the next workload dirties anything.
void VerifyNoSwizzledRefsEscaped(Database* db, int gen) {
  const std::string tag = "gen " + std::to_string(gen);
  (void)db->log()->ScanFrom(0, [&](Lsn lsn, const LogRecord& rec) {
    const std::string what = tag + " lsn " + std::to_string(lsn);
    EXPECT_FALSE(IsSwizzledRef(rec.rid.page_id)) << what << ": tagged rid";
    std::vector<std::pair<PageId, std::string>> images;
    std::vector<std::pair<std::string, PageId>> parts;
    if (rec.type == LogType::kIndexSmo) {
      EXPECT_TRUE(DecodeSmoPayload(rec.redo, &images)) << what;
    } else if (rec.type == LogType::kIndexRepartition) {
      EXPECT_TRUE(DecodeRepartitionPayload(rec.redo, &parts, &images)) << what;
    } else if (rec.type == LogType::kPartitionTable) {
      EXPECT_TRUE(DecodePartitionPayload(rec.redo, &parts)) << what;
    }
    for (const auto& [boundary, root] : parts) {
      EXPECT_FALSE(IsSwizzledRef(root)) << what << ": tagged partition root";
    }
    for (const auto& [pid, image] : images) {
      EXPECT_FALSE(IsSwizzledRef(pid)) << what << ": tagged SMO page id";
      std::vector<char> buf(kPageSize, 0);
      if (ApplyNodeImage(image, buf.data())) {
        ExpectNoTaggedRefs(buf.data(),
                           what + " SMO image of page " + std::to_string(pid));
      }
    }
  });
  DiskManager* disk = db->disk();
  ASSERT_NE(disk, nullptr);
  for (PageId id = 0; id <= disk->max_page_id(); ++id) {
    PageSlotHeader hdr;
    std::vector<char> img(kPageSize);
    if (!disk->ReadPage(id, &hdr, img.data()).ok()) continue;
    if (hdr.magic != DiskManager::kPageMagic) continue;  // free slot
    if (hdr.page_class != static_cast<std::uint8_t>(PageClass::kIndex)) {
      continue;
    }
    ExpectNoTaggedRefs(img.data(), tag + " disk page " + std::to_string(id));
  }
}


// Debug forensics: on a mismatch, dump every WAL record touching the key
// or its rid, with txn resolution markers.
void DumpKeyHistory(Database* db, std::uint32_t k, Rid rid) {
  fprintf(stderr,
          "KEYCTX scan_start=%llu redo=%llu undo=%llu idx=%llu\n",
          (unsigned long long)db->recovery_stats().scan_start,
          (unsigned long long)db->recovery_stats().redo_ops,
          (unsigned long long)db->recovery_stats().undo_ops,
          (unsigned long long)db->recovery_stats().index_ops);
  if (db->disk() != nullptr) {
    PageSlotHeader hdr;
    std::vector<char> img(kPageSize);
    if (db->disk()->ReadPage(rid.page_id, &hdr, img.data()).ok()) {
      fprintf(stderr, "KEYCTX disk page=%u page_lsn=%llu\n", rid.page_id,
              (unsigned long long)hdr.page_lsn);
    }
  }
  const std::string key = KeyU32(k);
  std::map<TxnId, char> resolution;  // C=commit, A=abort
  (void)db->log()->ScanFrom(0, [&](Lsn, const LogRecord& rec) {
    if (rec.type == LogType::kCommit) resolution[rec.txn] = 'C';
    if (rec.type == LogType::kAbort) resolution[rec.txn] = 'A';
  });
  (void)db->log()->ScanFrom(0, [&](Lsn lsn, const LogRecord& rec) {
    bool heap_match =
        (rec.type == LogType::kHeapInsert ||
         rec.type == LogType::kHeapUpdate ||
         rec.type == LogType::kHeapDelete) &&
        rec.rid.page_id == rid.page_id && rec.rid.slot == rid.slot;
    bool idx_match = false;
    if (rec.type == LogType::kIndexLeafInsert ||
        rec.type == LogType::kIndexLeafDelete ||
        rec.type == LogType::kIndexLeafUpdate) {
      std::string rkey, rval;
      DecodeIndexEntry(
          rec.type == LogType::kIndexLeafDelete ? rec.undo : rec.redo, &rkey,
          &rval);
      idx_match = rkey == key;
    }
    if (!heap_match && !idx_match) return;
    char res = rec.txn == kInvalidTxnId ? 'S'
               : resolution.count(rec.txn) ? resolution[rec.txn]
                                           : '?';
    fprintf(stderr,
            "KEYHIST lsn=%llu type=%s txn=%llu(%c) rid=%u/%u redo=%zu undo=%zu\n",
            (unsigned long long)lsn, LogTypeName(rec.type),
            (unsigned long long)rec.txn, res, rec.rid.page_id,
            (unsigned)rec.rid.slot, rec.redo.size(), rec.undo.size());
  });
}

class RecoveryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(RecoveryFuzzTest, RecoveredStateMatchesCommittedModel) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.log.retain_for_recovery = true;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only

  for (int txn_no = 0; txn_no < 400; ++txn_no) {
    const bool doomed = rng.Percent(25);  // 25% of txns abort themselves
    const int ops = static_cast<int>(rng.Range(1, 4));
    std::map<std::uint32_t, std::string> staged = model;
    TxnRequest req;
    bool expect_ok = true;
    for (int op = 0; op < ops; ++op) {
      const auto k = static_cast<std::uint32_t>(rng.Uniform(200));
      const std::string key = KeyU32(k);
      const std::uint64_t kind = rng.Uniform(3);
      if (kind == 0) {
        const std::string value =
            "v" + std::to_string(txn_no) + "-" + std::to_string(op);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          return ctx.Insert(key, value);
        });
        if (exists) {
          expect_ok = false;  // duplicate insert aborts the transaction
        } else {
          staged[k] = value;
        }
      } else if (kind == 1) {
        const std::string value = "u" + std::to_string(txn_no);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          Status st = ctx.Update(key, value);
          return st.IsNotFound() ? Status::OK() : st;  // tolerated miss
        });
        if (exists) staged[k] = value;
      } else {
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key](ExecContext& ctx) {
          Status st = ctx.Delete(key);
          return st.IsNotFound() ? Status::OK() : st;
        });
        if (exists) staged.erase(k);
      }
    }
    if (doomed) {
      req.Add(1, "t", KeyU32(0), [](ExecContext&) {
        return Status::Aborted("fuzz-induced abort");
      });
    }
    Status st = engine->Execute(req);
    if (doomed || !expect_ok) {
      EXPECT_FALSE(st.ok());
    } else if (st.ok()) {
      model = std::move(staged);
    }
  }
  engine->Stop();  // crash point: nothing flushed beyond the log

  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(engine->db().log(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(&index, &stats).ok());

  // The recovered index holds exactly the committed keys; every key's
  // recovered RID points at the record whose heap redo also survived.
  EXPECT_EQ(index.num_entries(), model.size());
  for (const auto& [k, expected] : model) {
    std::string rid_bytes;
    ASSERT_TRUE(index.Probe(KeyU32(k), &rid_bytes).ok()) << k;
    Rid rid;
    std::memcpy(&rid.page_id, rid_bytes.data(), 4);
    std::memcpy(&rid.slot, rid_bytes.data() + 4, 2);
    Page* page = fresh.FixUnlocked(rid.page_id);
    ASSERT_NE(page, nullptr) << k;
  }
  // And no uncommitted key leaked in.
  index.ForEachEntry([&](Slice key, Slice) {
    EXPECT_EQ(model.count(DecodeU32(key)), 1u);
  });
}

class DurableRecoveryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DurableRecoveryFuzzTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_durable_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::remove_all(dir_);
  }
  ~DurableRecoveryFuzzTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, DurableRecoveryFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(DurableRecoveryFuzzTest, CommittedStateSurvivesCrashLoop) {
  constexpr std::uint32_t kKeySpace = 150;
  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only

  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.data_dir = dir_.string();
  config.db.frame_budget = 8;  // force eviction churn during the workload
  config.db.txn.durable_commits = true;

  constexpr int kGenerations = 5;
  for (int gen = 0; gen < kGenerations; ++gen) {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok())
        << "gen " << gen << ": " << engine->db().open_status().ToString();
    if (gen == 0) {
      ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    }

    // Full-key-space verification against the committed-only model:
    // winners must be readable with their exact payloads, and everything
    // else (losers from the previous crash included) must be absent.
    for (std::uint32_t k = 0; k < kKeySpace; ++k) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      auto payload = std::make_shared<std::string>();
      req.Add(0, "t", key, [key, payload](ExecContext& ctx) {
        return ctx.Read(key, payload.get());
      });
      const bool found = engine->Execute(req).ok();
      auto it = model.find(k);
      if (it != model.end()) {
        ASSERT_TRUE(found) << "gen " << gen << ": committed key " << k
                           << " lost in the crash";
        if (found && *payload != it->second) {
          Table* t2 = engine->db().GetTable("t");
          std::string v;
          if (t2->primary()->Probe(key, &v).ok() && v.size() >= 6) {
            Rid rid;
            memcpy(&rid.page_id, v.data(), 4);
            memcpy(&rid.slot, v.data() + 4, 2);
            fprintf(stderr, "MISMATCH gen=%d key=%u rid=%u/%u got=%s want=%s\n",
                    gen, k, rid.page_id, (unsigned)rid.slot, payload->c_str(),
                    it->second.c_str());
            DumpKeyHistory(&engine->db(), k, rid);
          }
        }
        EXPECT_EQ(*payload, it->second) << "gen " << gen << " key " << k;
      } else {
        EXPECT_FALSE(found) << "gen " << gen << ": uncommitted key " << k
                            << " leaked through recovery";
      }
    }

    // A random number of transactions: the kill point of this generation.
    const int txns = static_cast<int>(rng.Range(40, 150));
    for (int txn_no = 0; txn_no < txns; ++txn_no) {
      const bool doomed = rng.Percent(25);
      const int ops = static_cast<int>(rng.Range(1, 4));
      std::map<std::uint32_t, std::string> staged = model;
      TxnRequest req;
      bool expect_ok = true;
      for (int op = 0; op < ops; ++op) {
        const auto k = static_cast<std::uint32_t>(rng.Uniform(kKeySpace));
        const std::string key = KeyU32(k);
        const std::uint64_t kind = rng.Uniform(3);
        if (kind == 0) {
          const std::string value = "v" + std::to_string(gen) + "-" +
                                    std::to_string(txn_no) + "-" +
                                    std::to_string(op);
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            return ctx.Insert(key, value);
          });
          if (exists) {
            expect_ok = false;  // duplicate insert aborts the transaction
          } else {
            staged[k] = value;
          }
        } else if (kind == 1) {
          const std::string value =
              "u" + std::to_string(gen) + "-" + std::to_string(txn_no);
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            Status st = ctx.Update(key, value);
            return st.IsNotFound() ? Status::OK() : st;  // tolerated miss
          });
          if (exists) staged[k] = value;
        } else {
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key](ExecContext& ctx) {
            Status st = ctx.Delete(key);
            return st.IsNotFound() ? Status::OK() : st;
          });
          if (exists) staged.erase(k);
        }
      }
      if (doomed) {
        req.Add(1, "t", KeyU32(0), [](ExecContext&) {
          return Status::Aborted("fuzz-induced abort");
        });
      }
      Status st = engine->Execute(req);
      if (doomed || !expect_ok) {
        EXPECT_FALSE(st.ok());
      } else if (st.ok()) {
        model = std::move(staged);
      }
      // Fuzzy checkpoints at random points mid-workload.
      if (rng.Percent(3)) {
        ASSERT_TRUE(engine->db().Checkpoint().ok());
      }
    }

    engine->Stop();
    if (rng.Percent(25)) {
      // Occasionally shut down cleanly; most generations crash.
      ASSERT_TRUE(engine->db().Close().ok());
    }
  }
}

// Crash-loop fuzz over persistent-index STRUCTURE modifications: a PLP
// engine (latch-free MRBTree) runs random transactions that split leaves,
// plus explicit repartitions (MRBTree slice/meld — the multi-page SMOs),
// then crashes at a random point. Every reopen must recover the index
// purely from WAL redo — committed records reachable with exact payloads,
// partition boundaries intact, structural invariants holding.
class DurableSmoFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DurableSmoFuzzTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_smo_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::remove_all(dir_);
  }
  ~DurableSmoFuzzTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, DurableSmoFuzzTest,
                         ::testing::Values(3, 17, 4242),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(DurableSmoFuzzTest, SplitsAndMergesSurviveCrashLoop) {
  constexpr std::uint32_t kKeySpace = 300;
  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only
  std::vector<std::string> expected_boundaries = {"", KeyU32(kKeySpace / 2)};

  EngineConfig config;
  config.design = SystemDesign::kPlpRegular;
  config.num_workers = 2;
  config.db.data_dir = dir_.string();
  config.db.frame_budget = 24;  // evict index and heap pages mid-workload
  config.db.txn.durable_commits = true;

  constexpr int kGenerations = 4;
  for (int gen = 0; gen < kGenerations; ++gen) {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok())
        << "gen " << gen << ": " << engine->db().open_status().ToString();
    // The whole loop runs with swizzling on (the default): hot descents
    // install tagged refs while evictions, SMOs, and crashes churn them.
    ASSERT_TRUE(engine->db().pool()->swizzling_enabled());
    if (gen == 0) {
      ASSERT_TRUE(engine->CreateTable("t", expected_boundaries).ok());
    }
    Table* table = engine->db().GetTable("t");
    ASSERT_NE(table, nullptr);

    // Nothing tagged may have reached the WAL or data.db: verify every
    // surviving record and on-disk index image before the new workload.
    VerifyNoSwizzledRefsEscaped(&engine->db(), gen);

    // Partition assignments must have survived the previous crash.
    EXPECT_EQ(table->primary()->boundaries(), expected_boundaries)
        << "gen " << gen << ": partition metadata lost in the crash";
    ASSERT_TRUE(table->primary()->CheckIntegrity().ok())
        << "gen " << gen << ": recovered tree violates invariants";

    // Full-key-space verification against the committed-only model.
    for (std::uint32_t k = 0; k < kKeySpace; ++k) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      auto payload = std::make_shared<std::string>();
      req.Add(0, "t", key, [key, payload](ExecContext& ctx) {
        return ctx.Read(key, payload.get());
      });
      const bool found = engine->Execute(req).ok();
      auto it = model.find(k);
      if (it != model.end()) {
        ASSERT_TRUE(found) << "gen " << gen << ": committed key " << k
                           << " unreachable after crash";
        if (found && *payload != it->second) {
          std::string v;
          if (table->primary()->Probe(key, &v).ok() && v.size() >= 6) {
            Rid rid;
            memcpy(&rid.page_id, v.data(), 4);
            memcpy(&rid.slot, v.data() + 4, 2);
            fprintf(stderr, "MISMATCH gen=%d key=%u rid=%u/%u got=%s want=%s\n",
                    gen, k, rid.page_id, (unsigned)rid.slot, payload->c_str(),
                    it->second.c_str());
            DumpKeyHistory(&engine->db(), k, rid);
          }
        }
        EXPECT_EQ(*payload, it->second) << "gen " << gen << " key " << k;
      } else {
        EXPECT_FALSE(found) << "gen " << gen << ": uncommitted key " << k
                            << " leaked through recovery";
      }
    }

    const int txns = static_cast<int>(rng.Range(60, 160));
    for (int txn_no = 0; txn_no < txns; ++txn_no) {
      const bool doomed = rng.Percent(20);
      const int ops = static_cast<int>(rng.Range(1, 4));
      std::map<std::uint32_t, std::string> staged = model;
      TxnRequest req;
      bool expect_ok = true;
      for (int op = 0; op < ops; ++op) {
        const auto k = static_cast<std::uint32_t>(rng.Uniform(kKeySpace));
        const std::string key = KeyU32(k);
        // Bulky values split leaves quickly (crash points land mid-SMO
        // history: between anchors, SMO records, and commits).
        const std::string value = "v" + std::to_string(gen) + "-" +
                                  std::to_string(txn_no) + "-" +
                                  std::string(120, 'x');
        if (rng.Percent(60)) {
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            return ctx.Insert(key, value);
          });
          if (exists) {
            expect_ok = false;
          } else {
            staged[k] = value;
          }
        } else if (rng.Percent(50)) {
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            Status st = ctx.Update(key, value);
            return st.IsNotFound() ? Status::OK() : st;
          });
          if (exists) staged[k] = value;
        } else {
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key](ExecContext& ctx) {
            Status st = ctx.Delete(key);
            return st.IsNotFound() ? Status::OK() : st;
          });
          if (exists) staged.erase(k);
        }
      }
      if (doomed) {
        req.Add(1, "t", KeyU32(0), [](ExecContext&) {
          return Status::Aborted("fuzz-induced abort");
        });
      }
      Status st = engine->Execute(req);
      if (doomed || !expect_ok) {
        EXPECT_FALSE(st.ok());
      } else if (st.ok()) {
        model = std::move(staged);
      }

      // Random repartitions: MRBTree slice/meld are the multi-page SMOs
      // whose atomicity the kIndexSmo record must guarantee across the
      // crash at the end of this generation.
      if (rng.Percent(4)) {
        std::vector<std::string> next = {""};
        const int parts = static_cast<int>(rng.Range(1, 4));
        std::set<std::uint32_t> cuts;
        for (int c = 0; c < parts; ++c) {
          cuts.insert(
              static_cast<std::uint32_t>(rng.Range(1, kKeySpace - 1)));
        }
        for (std::uint32_t c : cuts) next.push_back(KeyU32(c));
        ASSERT_TRUE(engine->Repartition("t", next).ok())
            << "gen " << gen << " txn " << txn_no;
        expected_boundaries = next;
      }
      if (rng.Percent(3)) {
        ASSERT_TRUE(engine->db().Checkpoint().ok());
      }
    }

    engine->Stop();
    if (rng.Percent(20)) {
      ASSERT_TRUE(engine->db().Close().ok());
    }
    // Otherwise: crash (destroy without Close) — possibly with the last
    // repartition's records still unflushed in the WAL tail.
  }

  // One final reopen sweeps the last generation's crash state too.
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  VerifyNoSwizzledRefsEscaped(&engine->db(), kGenerations);
  engine->Stop();
}

}  // namespace
}  // namespace plp
