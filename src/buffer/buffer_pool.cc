#include "src/buffer/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "src/common/clock.h"
#include "src/io/disk_manager.h"

namespace plp {

BufferPool::BufferPool(BufferPoolConfig config) : config_(std::move(config)) {
  shards_.reserve(kNumShards);
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (config_.disk != nullptr) {
    // Keep the id allocator ahead of everything already on disk.
    next_page_id_.store(config_.disk->max_page_id() + 1,
                        std::memory_order_relaxed);
  }
  metrics_ = config_.metrics;
  MetricsRegistry* m =
      metrics_ != nullptr ? metrics_ : MetricsRegistry::Scratch();
  hits_metric_ = m->counter("buffer_pool.hits");
  misses_metric_ = m->counter("buffer_pool.misses");
  evictions_metric_ = m->counter("buffer_pool.evictions");
  eviction_writebacks_metric_ = m->counter("buffer_pool.eviction_writebacks");
  flush_writebacks_metric_ = m->counter("buffer_pool.flush_writebacks");
  leaked_index_slots_metric_ = m->counter("buffer_pool.leaked_index_slots");
  miss_stall_us_metric_ = m->histogram("buffer_pool.miss_stall_us");
  writeback_stall_us_metric_ = m->histogram("buffer_pool.writeback_stall_us");
  if (metrics_ != nullptr) {
    metrics_->RegisterGaugeProvider(this, [this](const GaugeSink& sink) {
      sink("buffer_pool.resident_pages",
           static_cast<std::int64_t>(num_pages()));
      sink("buffer_pool.frame_budget",
           static_cast<std::int64_t>(config_.frame_budget));
      sink("buffer_pool.dirty_pages",
           static_cast<std::int64_t>(DirtyPageTable().size()));
      sink("buffer_pool.disk_reads", static_cast<std::int64_t>(disk_reads()));
      sink("buffer_pool.disk_writes",
           static_cast<std::int64_t>(disk_writes()));
    });
  }
}

BufferPool::~BufferPool() {
  if (metrics_ != nullptr) metrics_->UnregisterGaugeProvider(this);
}

void BufferPool::TrackFrame(Page* page) {
  if (!evicting() || !Evictable(page->page_class())) return;
  page->SetRef();
  std::lock_guard<std::mutex> g(clock_mu_);
  clock_.push_back(page->id());
}

Page* BufferPool::NewPage(PageClass page_class) {
  if (evicting()) EnsureBudget();
  const PageId id = next_page_id_.fetch_add(1, std::memory_order_relaxed);
  auto page = std::make_unique<Page>(id, page_class);
  Page* raw = page.get();
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  shard.pages.emplace(id, std::move(page));
  shard.mu.unlock();
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  TrackFrame(raw);
  return raw;
}

Page* BufferPool::NewPageWithId(PageId id, PageClass page_class) {
  // Keep the allocator ahead of recovered ids.
  PageId expected = next_page_id_.load(std::memory_order_relaxed);
  while (expected <= id && !next_page_id_.compare_exchange_weak(
                               expected, id + 1, std::memory_order_relaxed)) {
  }
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  auto it = shard.pages.find(id);
  if (it != shard.pages.end()) {
    Page* existing = it->second.get();
    shard.mu.unlock();
    return existing;
  }
  shard.mu.unlock();
  if (config_.disk != nullptr) {
    Page* loaded = LoadFromDisk(id, shard);
    if (loaded != nullptr) return loaded;
  }
  if (evicting()) EnsureBudget();
  shard.mu.lock();
  it = shard.pages.find(id);
  if (it != shard.pages.end()) {
    Page* existing = it->second.get();
    shard.mu.unlock();
    return existing;
  }
  auto page = std::make_unique<Page>(id, page_class);
  Page* raw = page.get();
  shard.pages.emplace(id, std::move(page));
  shard.mu.unlock();
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  TrackFrame(raw);
  return raw;
}

Page* BufferPool::LoadFromDisk(PageId id, Shard& shard) {
  if (!config_.disk->Contains(id)) return nullptr;
  if (evicting()) EnsureBudget();
  Page* raw = nullptr;
  {
    std::lock_guard<std::mutex> g(shard.mu.raw());
    auto it = shard.pages.find(id);
    if (it != shard.pages.end()) return it->second.get();  // lost the race
    PageSlotHeader header;
    std::vector<char> image(kPageSize);
    Status st = config_.disk->ReadPage(id, &header, image.data());
    if (!st.ok()) return nullptr;
    // Rebuild the frame with the persisted class/tags.
    auto frame = std::make_unique<Page>(
        id, static_cast<PageClass>(header.page_class));
    std::memcpy(frame->data(), image.data(), kPageSize);
    frame->set_owner_tag(header.owner_tag);
    frame->set_table_tag(header.table_tag);
    frame->set_page_lsn(header.page_lsn);
    raw = frame.get();
    shard.pages.emplace(id, std::move(frame));
    num_pages_.fetch_add(1, std::memory_order_relaxed);
    disk_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  // Outside the shard mutex: TrackFrame takes clock_mu_, and EvictOne
  // acquires shard mutexes while holding clock_mu_ — nesting them here
  // would be an ABBA deadlock.
  TrackFrame(raw);
  return raw;
}

Page* BufferPool::FixInternal(PageId id, bool tracked, bool pin) {
  if (id == kInvalidPageId) return nullptr;
  Shard& shard = ShardFor(id);
  Page* p = nullptr;
  if (tracked) {
    shard.mu.lock();
    auto it = shard.pages.find(id);
    p = it == shard.pages.end() ? nullptr : it->second.get();
    if (p != nullptr && pin) p->Pin();
    shard.mu.unlock();
  } else {
    // No CS accounting: callers own the page exclusively; guard with the
    // raw mutex (rehash safety) but do not charge a critical section.
    std::lock_guard<std::mutex> g(shard.mu.raw());
    auto it = shard.pages.find(id);
    p = it == shard.pages.end() ? nullptr : it->second.get();
    if (p != nullptr && pin) p->Pin();
  }
  if (p != nullptr) hits_metric_->Increment();
  if (p == nullptr && config_.disk != nullptr) {
    // Miss: the faulting thread pays EnsureBudget (possibly a full
    // eviction round trip) plus the disk read — the stall the
    // miss_stall_us histogram charges to wal-evicting configurations.
    const std::uint64_t miss_start = NowNanos();
    p = LoadFromDisk(id, shard);
    if (p != nullptr) {
      misses_metric_->Increment();
      miss_stall_us_metric_->Record((NowNanos() - miss_start) / 1000);
    }
    if (p != nullptr && pin) {
      // Benign race: the freshly loaded frame could be evicted before this
      // pin lands; re-fix in that case.
      std::lock_guard<std::mutex> g(shard.mu.raw());
      auto it = shard.pages.find(id);
      if (it == shard.pages.end() || it->second.get() != p) {
        return FixInternal(id, tracked, pin);
      }
      p->Pin();
    }
  }
  if (p != nullptr) p->SetRef();
  return p;
}

Page* BufferPool::Fix(PageId id) {
  return FixInternal(id, /*tracked=*/true, /*pin=*/false);
}

Page* BufferPool::FixUnlocked(PageId id) {
  return FixInternal(id, /*tracked=*/false, /*pin=*/false);
}

PageRef BufferPool::AcquirePage(PageId id, bool tracked) {
  const bool pin = evicting();
  Page* p = FixInternal(id, tracked, pin);
  return PageRef(p, pin && p != nullptr);
}

PageRef BufferPool::AllocatePage(PageClass page_class,
                                 std::uint32_t table_tag,
                                 bool volatile_index) {
  Page* p = NewPage(page_class);
  p->set_table_tag(table_tag);
  if (volatile_index) p->set_volatile_index(true);
  if (evicting()) {
    p->Pin();
    return PageRef(p, /*pinned=*/true);
  }
  return PageRef(p, /*pinned=*/false);
}

void BufferPool::FreePage(PageId id) {
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  if (shard.pages.erase(id) > 0) {
    num_pages_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.mu.unlock();
  if (config_.disk != nullptr) (void)config_.disk->FreePage(id);
  NotifyEvicted(id);
}

void BufferPool::EnsureBudget() {
  // Soft budget: concurrent allocators may overshoot by a frame or two.
  while (num_pages_.load(std::memory_order_relaxed) >= config_.frame_budget) {
    if (!EvictOne()) break;  // everything pinned/non-evictable
  }
}

bool BufferPool::EvictOne() {
  // Phase 1 — select a candidate under clock_mu_ only (no I/O, no shard
  // mutex nesting beyond a brief peek). The candidate is removed from the
  // clock so concurrent evictors pick different victims; it is re-added
  // if the steal is abandoned.
  PageId pid = kInvalidPageId;
  Page* candidate = nullptr;
  Lsn lsn_before = 0;
  bool was_dirty = false;
  bool volatile_index = false;
  {
    std::lock_guard<std::mutex> g(clock_mu_);
    // Up to two sweeps: the first pass clears reference bits, the second
    // finds a victim unless everything is pinned.
    std::size_t budget = clock_.size() * 2;
    while (budget-- > 0 && !clock_.empty()) {
      const std::size_t idx = clock_hand_ % clock_.size();
      const PageId candidate_pid = clock_[idx];
      Shard& shard = ShardFor(candidate_pid);
      std::lock_guard<std::mutex> sg(shard.mu.raw());
      auto it = shard.pages.find(candidate_pid);
      if (it == shard.pages.end()) {
        // Frame already gone (FreePage); drop the stale candidate.
        clock_.erase(clock_.begin() + static_cast<std::ptrdiff_t>(idx));
        continue;
      }
      Page* page = it->second.get();
      ++clock_hand_;
      if (page->pin_count() > 0) continue;
      if (page->TestAndClearRef()) continue;
      pid = candidate_pid;
      candidate = page;
      lsn_before = page->page_lsn();
      was_dirty = page->dirty();
      volatile_index = page->volatile_index();
      clock_.erase(clock_.begin() + static_cast<std::ptrdiff_t>(idx));
      if (clock_hand_ > 0) --clock_hand_;  // slot vanished under the hand
      break;
    }
  }
  if (pid == kInvalidPageId) return false;

  // Phase 2 — snapshot the page under the shard mutex, then write the
  // SNAPSHOT back. Every mutation path pins first, and pinning goes
  // through the shard mutex, so a pin_count == 0 frame cannot change
  // while the copy runs: the image on disk is always a consistent state
  // as of `lsn_before` (writing from the live buffer without a latch
  // could persist a torn, mid-mutation image under a stale page LSN —
  // undetectable by recovery's redo gate). The frame is tentatively
  // marked clean at snapshot time; any racing mutation re-dirties it and
  // phase 3 then aborts the steal, leaving the change resident.
  Shard& shard = ShardFor(pid);
  std::vector<char> image;
  PageSlotHeader header;
  bool snapshot_ok = false;
  bool present_at_snapshot = false;
  Lsn rec_lsn_before = 0;
  {
    std::lock_guard<std::mutex> sg(shard.mu.raw());
    auto it = shard.pages.find(pid);
    present_at_snapshot =
        it != shard.pages.end() && it->second.get() == candidate;
    snapshot_ok = present_at_snapshot && candidate->pin_count() == 0 &&
                  candidate->page_lsn() == lsn_before;
    if (snapshot_ok && was_dirty) {
      rec_lsn_before = candidate->rec_lsn();
      image.assign(candidate->data(), candidate->data() + kPageSize);
      header.page_class = static_cast<std::uint8_t>(candidate->page_class());
      header.owner_tag = candidate->owner_tag();
      header.table_tag = candidate->table_tag();
      header.page_lsn = lsn_before;
      candidate->MarkClean();  // tentative; racing mutations re-dirty
    }
  }
  if (!snapshot_ok) {
    if (present_at_snapshot) {
      // Raced a pin or an update since selection: the frame stays; put it
      // back on the clock (outside the shard mutex — EvictOne nests the
      // shard mutex inside clock_mu_, never the reverse).
      std::lock_guard<std::mutex> g(clock_mu_);
      clock_.push_back(pid);
    }
    return false;
  }

  Status write_status = Status::OK();
  if (was_dirty) {
    // WAL rule: the log must be durable up to the snapshot's LSN before
    // the snapshot overwrites the disk copy. No locks held across I/O.
    const std::uint64_t steal_start = NowNanos();
    const bool fresh_slot = !config_.disk->Contains(pid);
    if (config_.wal_barrier) config_.wal_barrier(lsn_before);
    write_status = config_.disk->WritePage(pid, header, image.data());
    if (write_status.ok()) {
      disk_writes_.fetch_add(1, std::memory_order_relaxed);
      eviction_writebacks_metric_->Increment();
      writeback_stall_us_metric_->Record((NowNanos() - steal_start) / 1000);
      if (fresh_slot && volatile_index) {
        // First disk slot for an unlogged (secondary) index page: no
        // reopen will ever read it — the known leak, made observable.
        leaked_index_slots_metric_->Increment();
      }
    }
  }

  // Phase 3 — detach, re-validating under the shard mutex: a pin taken,
  // any re-dirtying mutation (logged or compensation), or a write error
  // aborts the steal and the frame stays resident. A frame freed during
  // the I/O (FreePage race) must not be touched at all.
  std::unique_ptr<Page> victim;
  bool still_present = false;
  {
    std::lock_guard<std::mutex> sg(shard.mu.raw());
    auto it = shard.pages.find(pid);
    still_present = it != shard.pages.end() && it->second.get() == candidate;
    if (still_present && write_status.ok() &&
        candidate->pin_count() == 0 &&
        candidate->page_lsn() == lsn_before && !candidate->dirty()) {
      victim = std::move(it->second);
      shard.pages.erase(it);
    } else if (still_present) {
      if (was_dirty && !write_status.ok()) {
        // The tentative clean must not survive a failed write-back: the
        // ops since the original rec_lsn are still unflushed, so put
        // that rec_lsn back (even over one a racing mutation CAS'd in —
        // the racing op's interval starts later than the unflushed one).
        candidate->RestoreDirty(rec_lsn_before);
      }
      candidate->SetRef();  // under the shard mutex: frame cannot be freed
    }
  }
  if (!victim) {
    if (still_present) {
      // Re-register the id only (no frame deref — it may be freed by
      // now); selection tolerates stale clock entries.
      std::lock_guard<std::mutex> g(clock_mu_);
      clock_.push_back(pid);
    }
    return write_status.ok() && !still_present;  // freed counts as progress
  }
  num_pages_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  evictions_metric_->Increment();
  NotifyEvicted(pid);
  return true;
}

Status BufferPool::WriteBackNoClean(Page* page) {
  const std::uint64_t write_start = NowNanos();
  const bool fresh_slot = !config_.disk->Contains(page->id());
  // WAL rule: every log record describing this page must be durable
  // before the page image overwrites the disk copy (no-steal of unlogged
  // state). page_lsn covers the newest update.
  if (config_.wal_barrier) config_.wal_barrier(page->page_lsn());
  PageSlotHeader header;
  header.page_class = static_cast<std::uint8_t>(page->page_class());
  header.owner_tag = page->owner_tag();
  header.table_tag = page->table_tag();
  header.page_lsn = page->page_lsn();
  PLP_RETURN_IF_ERROR(
      config_.disk->WritePage(page->id(), header, page->data()));
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  flush_writebacks_metric_->Increment();
  writeback_stall_us_metric_->Record((NowNanos() - write_start) / 1000);
  if (fresh_slot && page->volatile_index()) {
    // First disk slot for an unlogged (secondary) index page: no reopen
    // will ever read it — the known leak, made observable.
    leaked_index_slots_metric_->Increment();
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Page* page) {
  PLP_RETURN_IF_ERROR(WriteBackNoClean(page));
  page->MarkClean();
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id, LatchPolicy policy) {
  if (config_.disk == nullptr) {
    // Memory-resident: cleaning is just clearing the dirty bit.
    Page* page = FixUnlocked(id);
    if (page != nullptr) {
      LatchGuard g(&page->latch(), LatchMode::kShared, policy);
      page->MarkClean();
    }
    return Status::OK();
  }
  PageRef ref = AcquirePage(id, /*tracked=*/false);
  if (!ref) return Status::OK();  // already evicted (hence clean)
  if (!ref->dirty()) return Status::OK();
  if (!Evictable(ref->page_class())) {
    // Volatile classes (catalog; index in snapshot mode) are rebuilt at
    // restart; persisting them would only grow data.db with slots no
    // reopen ever reads.
    LatchGuard g(&ref->latch(), LatchMode::kShared, policy);
    ref->MarkClean();
    return Status::OK();
  }
  LatchGuard g(&ref->latch(), LatchMode::kShared, policy);
  return WriteBack(ref.get());
}

Status BufferPool::FlushAllDirty(LatchPolicy policy) {
  Status result = Status::OK();
  for (auto& shard : shards_) {
    std::vector<PageId> dirty;
    {
      std::lock_guard<std::mutex> g(shard->mu.raw());
      for (auto& [id, page] : shard->pages) {
        if (page->dirty()) dirty.push_back(id);
      }
    }
    for (PageId id : dirty) {
      Status st = FlushPage(id, policy);
      if (!st.ok() && result.ok()) result = st;
    }
  }
  return result;
}

std::vector<PageId> BufferPool::DirtyPages(std::size_t limit) {
  std::vector<PageId> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> g(shard->mu.raw());
    for (auto& [id, page] : shard->pages) {
      if (page->dirty()) {
        out.push_back(id);
        if (out.size() >= limit) return out;
      }
    }
  }
  return out;
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() {
  std::vector<std::pair<PageId, Lsn>> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> g(shard->mu.raw());
    for (auto& [id, page] : shard->pages) {
      if (page->dirty() && Evictable(page->page_class())) {
        out.emplace_back(id, page->rec_lsn());
      }
    }
  }
  return out;
}

void BufferPool::RegisterEvictionListener(
    void* token, std::function<void(PageId)> listener) {
  std::lock_guard<Spinlock> g(listeners_mu_);
  listeners_.emplace_back(token, std::move(listener));
}

void BufferPool::UnregisterEvictionListener(void* token) {
  std::lock_guard<Spinlock> g(listeners_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void BufferPool::NotifyEvicted(PageId id) {
  std::lock_guard<Spinlock> g(listeners_mu_);
  for (auto& [token, fn] : listeners_) fn(id);
}

}  // namespace plp
