#include "src/sync/cs_profiler.h"

#include <atomic>
#include <mutex>
#include <vector>

namespace plp {

const char* CsCategoryName(CsCategory c) {
  switch (c) {
    case CsCategory::kLockMgr: return "Lock mgr";
    case CsCategory::kPageLatch: return "Page Latches";
    case CsCategory::kBufferPool: return "Bpool";
    case CsCategory::kMetadata: return "Metadata";
    case CsCategory::kLogMgr: return "Log mgr";
    case CsCategory::kXctMgr: return "Xct mgr";
    case CsCategory::kMessagePassing: return "Message passing";
    case CsCategory::kUncategorized: return "Uncategorized";
  }
  return "?";
}

const char* PageClassName(PageClass c) {
  switch (c) {
    case PageClass::kIndex: return "INDEX";
    case PageClass::kHeap: return "HEAP";
    case PageClass::kCatalog: return "CATALOG/SPACE";
  }
  return "?";
}

std::uint64_t CsCounts::TotalEntries() const {
  std::uint64_t t = 0;
  for (auto v : entries) t += v;
  return t;
}

std::uint64_t CsCounts::TotalContended() const {
  std::uint64_t t = 0;
  for (auto v : contended) t += v;
  return t;
}

std::uint64_t CsCounts::TotalLatches() const {
  std::uint64_t t = 0;
  for (auto v : latches) t += v;
  return t;
}

CsCounts& CsCounts::operator+=(const CsCounts& other) {
  for (int i = 0; i < kNumCsCategories; ++i) {
    entries[i] += other.entries[i];
    contended[i] += other.contended[i];
    wait_ns[i] += other.wait_ns[i];
  }
  for (int i = 0; i < kNumPageClasses; ++i) {
    latches[i] += other.latches[i];
    latches_contended[i] += other.latches_contended[i];
    latch_wait_ns[i] += other.latch_wait_ns[i];
  }
  return *this;
}

CsCounts CsCounts::operator-(const CsCounts& other) const {
  CsCounts out;
  for (int i = 0; i < kNumCsCategories; ++i) {
    out.entries[i] = entries[i] - other.entries[i];
    out.contended[i] = contended[i] - other.contended[i];
    out.wait_ns[i] = wait_ns[i] - other.wait_ns[i];
  }
  for (int i = 0; i < kNumPageClasses; ++i) {
    out.latches[i] = latches[i] - other.latches[i];
    out.latches_contended[i] = latches_contended[i] - other.latches_contended[i];
    out.latch_wait_ns[i] = latch_wait_ns[i] - other.latch_wait_ns[i];
  }
  return out;
}

namespace {
std::atomic<bool> g_enabled{true};

struct Registry {
  std::mutex mu;
  std::vector<CsCounts*> live;
  CsCounts retired;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}
}  // namespace

struct CsProfiler::ThreadState {
  CsCounts counts;

  ThreadState() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.push_back(&counts);
  }
  ~ThreadState() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> g(r.mu);
    r.retired += counts;
    for (auto it = r.live.begin(); it != r.live.end(); ++it) {
      if (*it == &counts) {
        r.live.erase(it);
        break;
      }
    }
  }
};

CsProfiler& CsProfiler::Global() {
  static CsProfiler* p = new CsProfiler();
  return *p;
}

CsProfiler::ThreadState& CsProfiler::Local() {
  thread_local ThreadState state;
  return state;
}

void CsProfiler::Record(CsCategory category, bool contended,
                        std::uint64_t wait_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  CsCounts& c = Local().counts;
  c.entries[static_cast<int>(category)]++;
  if (contended) {
    c.contended[static_cast<int>(category)]++;
    c.wait_ns[static_cast<int>(category)] += wait_ns;
  }
}

void CsProfiler::RecordLatch(PageClass page_class, bool contended,
                             std::uint64_t wait_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  CsCounts& c = Local().counts;
  c.entries[static_cast<int>(CsCategory::kPageLatch)]++;
  c.latches[static_cast<int>(page_class)]++;
  if (contended) {
    c.contended[static_cast<int>(CsCategory::kPageLatch)]++;
    c.wait_ns[static_cast<int>(CsCategory::kPageLatch)] += wait_ns;
    c.latches_contended[static_cast<int>(page_class)]++;
    c.latch_wait_ns[static_cast<int>(page_class)] += wait_ns;
  }
}

CsCounts CsProfiler::Collect() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> g(r.mu);
  CsCounts out = r.retired;
  for (CsCounts* c : r.live) out += *c;
  return out;
}

void CsProfiler::Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> g(r.mu);
  r.retired = CsCounts{};
  for (CsCounts* c : r.live) *c = CsCounts{};
}

void CsProfiler::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool CsProfiler::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace plp
