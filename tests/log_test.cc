// Tests for the log record format, the Aether-style log buffer, and the
// log manager scan path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/log/log_buffer.h"
#include "src/log/log_manager.h"
#include "src/log/log_record.h"

namespace plp {
namespace {

TEST(LogRecordTest, SerializeRoundTrip) {
  LogRecord rec;
  rec.type = LogType::kHeapUpdate;
  rec.txn = 77;
  rec.rid = Rid{12, 3};
  rec.redo = "after-image";
  rec.undo = "before-image";

  const std::string bytes = rec.Serialize();
  EXPECT_EQ(bytes.size(), rec.SerializedSize());

  LogRecord parsed;
  std::size_t consumed = 0;
  ASSERT_TRUE(
      LogRecord::Deserialize(bytes.data(), bytes.size(), &parsed, &consumed));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(parsed.type, LogType::kHeapUpdate);
  EXPECT_EQ(parsed.txn, 77u);
  EXPECT_EQ(parsed.rid, (Rid{12, 3}));
  EXPECT_EQ(parsed.redo, "after-image");
  EXPECT_EQ(parsed.undo, "before-image");
}

TEST(LogRecordTest, DeserializeRejectsTruncation) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = 5;
  const std::string bytes = rec.Serialize();
  LogRecord parsed;
  std::size_t consumed;
  EXPECT_FALSE(LogRecord::Deserialize(bytes.data(), bytes.size() - 1, &parsed,
                                      &consumed));
  EXPECT_FALSE(LogRecord::Deserialize(bytes.data(), 3, &parsed, &consumed));
}

TEST(LogRecordTest, EmptyImagesAllowed) {
  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = 1;
  const std::string bytes = rec.Serialize();
  LogRecord parsed;
  std::size_t consumed;
  ASSERT_TRUE(
      LogRecord::Deserialize(bytes.data(), bytes.size(), &parsed, &consumed));
  EXPECT_TRUE(parsed.redo.empty());
  EXPECT_TRUE(parsed.undo.empty());
}

TEST(LogBufferTest, LsnsAreDenseAndOrdered) {
  LogBuffer buf(1 << 16);
  const Lsn a = buf.Append("aaaa");
  const Lsn b = buf.Append("bbbbbb");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(buf.next_lsn(), 10u);
}

TEST(LogBufferTest, SinkReceivesBytesInOrder) {
  std::string sunk;
  LogBuffer buf(1 << 12, [&](const char* d, std::size_t n) {
    sunk.append(d, n);
  });
  buf.Append("hello ");
  buf.Append("world");
  buf.FlushAll();
  EXPECT_EQ(sunk, "hello world");
}

TEST(LogBufferTest, WrapsAroundSmallRing) {
  std::string sunk;
  LogBuffer buf(64, [&](const char* d, std::size_t n) { sunk.append(d, n); });
  std::string expected;
  for (int i = 0; i < 50; ++i) {
    std::string chunk(7, static_cast<char>('a' + (i % 26)));
    buf.Append(chunk);
    expected += chunk;
  }
  buf.FlushAll();
  EXPECT_EQ(sunk, expected);
}

TEST(LogBufferTest, ConcurrentAppendersProduceDisjointLsns) {
  LogBuffer buf(1 << 20);
  constexpr int kThreads = 4, kEach = 2000;
  std::vector<std::vector<Lsn>> lsns(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        lsns[static_cast<std::size_t>(t)].push_back(buf.Append("0123456789"));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<Lsn> all;
  for (auto& v : lsns) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i * 10) << "LSN space must be dense";
  }
}

TEST(LogBufferTest, FlushToMakesPrefixDurable) {
  LogBuffer buf(1 << 12);
  const Lsn lsn = buf.Append("abcdef");
  buf.FlushTo(lsn);
  EXPECT_GT(buf.durable_lsn(), lsn);
}

TEST(LogManagerTest, ScanRequiresRetention) {
  LogManager log;  // retain_for_recovery = false
  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = 1;
  log.Append(rec);
  Status st = log.Scan([](Lsn, const LogRecord&) {});
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST(LogManagerTest, ScanReturnsRecordsInOrder) {
  LogConfig config;
  config.retain_for_recovery = true;
  LogManager log(config);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    LogRecord rec;
    rec.type = LogType::kHeapInsert;
    rec.txn = i;
    rec.rid = Rid{static_cast<PageId>(i), 0};
    rec.redo = "payload" + std::to_string(i);
    log.Append(rec);
  }
  std::vector<TxnId> seen;
  ASSERT_TRUE(log.Scan([&](Lsn, const LogRecord& rec) {
    seen.push_back(rec.txn);
  }).ok());
  EXPECT_EQ(seen, (std::vector<TxnId>{1, 2, 3, 4, 5}));
}

TEST(LogManagerTest, ConcurrentAppendScanConsistent) {
  LogConfig config;
  config.retain_for_recovery = true;
  LogManager log(config);
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        LogRecord rec;
        rec.type = LogType::kHeapInsert;
        rec.txn = static_cast<TxnId>(t + 1);
        rec.redo = std::string(16, static_cast<char>('a' + t));
        log.Append(rec);
      }
    });
  }
  for (auto& th : threads) th.join();
  int count = 0;
  ASSERT_TRUE(log.Scan([&](Lsn, const LogRecord&) { ++count; }).ok());
  EXPECT_EQ(count, kThreads * kEach);
}

}  // namespace
}  // namespace plp
