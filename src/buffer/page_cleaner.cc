#include "src/buffer/page_cleaner.h"

#include <chrono>

namespace plp {

PageCleaner::PageCleaner(BufferPool* pool, Delegate delegate,
                         std::size_t batch_size)
    : pool_(pool), delegate_(std::move(delegate)), batch_size_(batch_size) {}

PageCleaner::~PageCleaner() { Stop(); }

void PageCleaner::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void PageCleaner::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void PageCleaner::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const std::size_t handled = RunOnce();
    // Conventional cleaning in an evicting pool paces adaptively: while
    // the dirty scan keeps returning full batches, faulting threads are
    // racing the cleaner for clean victims — every dirty steal they take
    // instead pays a WAL barrier (group-commit fsync join) in the miss
    // path. Run back-to-back until the backlog drains. Delegating
    // cleaners always sleep: spinning floods the partition queues with
    // duplicate requests for pages whose owner has not gotten to them yet
    // (each push is a message-passing critical section, distorting the
    // per-txn CS counts under load) — and burns a core re-cleaning pages
    // the workload keeps re-dirtying.
    if (!delegate_ && pool_->evicting() && handled >= batch_size_) continue;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::size_t PageCleaner::RunOnce() {
  std::size_t handled = 0;
  for (PageId id : pool_->DirtyPages(batch_size_)) {
    if (delegate_ && delegate_(id)) {
      ++handled;  // the owning partition worker will clean it
      continue;
    }
    CleanPage(pool_, id, LatchPolicy::kLatched);
    ++handled;
  }
  pages_cleaned_.fetch_add(handled, std::memory_order_relaxed);
  return handled;
}

void PageCleaner::CleanPage(BufferPool* pool, PageId id, LatchPolicy policy) {
  // With a disk manager attached the copy is written back (WAL rule
  // included); memory-resident pools just clear the dirty bit. FlushPage
  // re-acquires (and pins) the frame by id, so a concurrent eviction
  // between the caller's dirty scan and this call is a clean no-op.
  (void)pool->FlushPage(id, policy);
}

}  // namespace plp
