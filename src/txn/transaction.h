// Transaction object: state, held locks, undo chain.
#ifndef PLP_TXN_TRANSACTION_H_
#define PLP_TXN_TRANSACTION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/metrics/txn_trace.h"

namespace plp {

enum class TxnState { kActive, kCommitted, kAborted };

const char* TxnStateName(TxnState s);

/// A transaction. Not thread-safe: exactly one thread drives a transaction
/// at a time (in the partitioned designs, ownership passes between
/// partition workers via the action flow graph, never concurrently).
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) { last_lsn_ = lsn; }

  /// LSN of the begin record — the undo low-water mark a fuzzy checkpoint
  /// stores for active transactions.
  Lsn begin_lsn() const { return begin_lsn_; }
  void set_begin_lsn(Lsn lsn) { begin_lsn_ = lsn; }

  /// Locks to release at commit/abort (conventional engine only; the
  /// partitioned designs use thread-local lock state instead).
  std::vector<std::string>& held_locks() { return held_locks_; }

  /// Registers a compensation action; Abort runs them newest-first.
  void AddUndo(std::function<Status()> undo) {
    undo_actions_.push_back(std::move(undo));
  }

  /// Runs and clears the undo chain (newest-first).
  Status RunUndo();

  std::size_t undo_size() const { return undo_actions_.size(); }

  /// Stage timeline of the owning Engine::Submit when the submission was
  /// traced (TxnOptions::trace); lets TxnManager::Commit stamp the
  /// log-append and fsync-durable stages. Not owned; nullptr otherwise.
  TxnTimeline* trace() const { return trace_; }
  void set_trace(TxnTimeline* t) { trace_ = t; }

 private:
  const TxnId id_;
  TxnState state_ = TxnState::kActive;
  Lsn last_lsn_ = kInvalidLsn;
  Lsn begin_lsn_ = kInvalidLsn;
  std::vector<std::string> held_locks_;
  std::vector<std::function<Status()>> undo_actions_;
  TxnTimeline* trace_ = nullptr;
};

}  // namespace plp

#endif  // PLP_TXN_TRANSACTION_H_
