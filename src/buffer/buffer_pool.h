// Buffer pool: allocation and id->frame translation for database pages.
//
// Memory-resident mode (the paper's evaluation, and the default): frames
// are never evicted; Fix() is a sharded hash lookup whose bucket mutex is
// a buffer-pool critical section, exactly the communication Shore-MT
// charges to its buffer pool. Partition-owned code paths avoid that
// communication with a thread-private PageCache (exclusive ownership makes
// it safe).
//
// Durable mode (frame_budget > 0 and a DiskManager): the pool becomes a
// cache over the data file. Misses read the page image back from disk;
// when the budget is exceeded a clock sweep picks an unpinned victim,
// honors the WAL rule (log forced durable up to the victim's page_lsn
// before the steal), writes dirty victims back, and notifies eviction
// listeners so thread-private PageCaches drop the frame. Heap frames are
// always candidates; index frames join them in persistent-index mode
// (`persist_index_pages`, see src/index/persistent) and stay resident in
// legacy snapshot mode. Catalog frames always stay resident (rebuilt on
// restart).
#ifndef PLP_BUFFER_BUFFER_POOL_H_
#define PLP_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/buffer/page.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/spinlock.h"

namespace plp {

class DiskManager;

struct BufferPoolConfig {
  /// Maximum resident frames; 0 = unlimited (memory-resident mode, never
  /// evict). Eviction also requires `disk` to steal dirty pages into.
  std::size_t frame_budget = 0;
  /// Backing store for evicted pages and restart reads. Not owned.
  DiskManager* disk = nullptr;
  /// WAL rule: called with a dirty victim's page_lsn before its frame is
  /// written back; must make the log durable up to that LSN. May be null
  /// (no logging, e.g. unit tests).
  std::function<void(Lsn)> wal_barrier;
  /// Persistent-index mode: index-class frames join the eviction clock,
  /// are written back by FlushPage, and appear in the dirty page table —
  /// exactly like heap frames (their mutations are physiologically
  /// logged, see src/index/persistent). When false (legacy snapshot mode)
  /// index frames stay resident and "cleaning" them is a no-op, because
  /// the index is rebuilt logically at restart.
  bool persist_index_pages = false;
  /// Registry for the buffer_pool.* metrics (hit/miss counters, stall
  /// histograms, residency gauges); nullptr records into
  /// MetricsRegistry::Scratch() and registers no gauge provider.
  MetricsRegistry* metrics = nullptr;
};

class BufferPool;

/// A fixed page reference. In durable mode it holds a pin that blocks
/// eviction for the lifetime of the guard; in memory-resident mode it is a
/// plain pointer. Move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(Page* page, bool pinned) : page_(page), pinned_(pinned) {}
  ~PageRef() { Reset(); }

  PageRef(PageRef&& other) noexcept
      : page_(other.page_), pinned_(other.pinned_) {
    other.page_ = nullptr;
    other.pinned_ = false;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Reset();
      page_ = other.page_;
      pinned_ = other.pinned_;
      other.page_ = nullptr;
      other.pinned_ = false;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void Reset() {
    if (pinned_ && page_ != nullptr) page_->Unpin();
    page_ = nullptr;
    pinned_ = false;
  }

 private:
  Page* page_ = nullptr;
  bool pinned_ = false;
};

class BufferPool {
 public:
  BufferPool() : BufferPool(BufferPoolConfig{}) {}
  explicit BufferPool(BufferPoolConfig config);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// True when the pool runs with a frame budget over a disk file.
  bool evicting() const {
    return config_.frame_budget > 0 && config_.disk != nullptr;
  }

  /// Allocates a fresh zeroed page of the given class.
  Page* NewPage(PageClass page_class);

  /// Recovery path: materializes the frame for a specific page id (no-op
  /// when it already exists — including on disk). Keeps the id allocator
  /// ahead of `id`.
  Page* NewPageWithId(PageId id, PageClass page_class);

  /// Restart path: keeps the id allocator ahead of every id the log or
  /// data file ever used, so fresh allocations (e.g. rebuilt index pages)
  /// never collide with pages recovery is about to replay.
  void EnsureNextPageIdAtLeast(PageId id) {
    PageId expected = next_page_id_.load(std::memory_order_relaxed);
    while (expected < id && !next_page_id_.compare_exchange_weak(
                                expected, id, std::memory_order_relaxed)) {
    }
  }

  /// Current allocator position (checkpointed as the high-water mark).
  PageId peek_next_page_id() const {
    return next_page_id_.load(std::memory_order_relaxed);
  }

  /// Translates a page id to its frame; records a buffer-pool critical
  /// section (the bucket lookup). In durable mode a miss falls through to
  /// the data file. Returns nullptr for freed/unknown ids.
  Page* Fix(PageId id);

  /// Lookup without critical-section accounting — only valid for callers
  /// that own the page exclusively (thread-private caches).
  Page* FixUnlocked(PageId id);

  /// Pin-holding variants for operations that touch page contents while
  /// eviction may run concurrently. `tracked` selects Fix vs FixUnlocked
  /// critical-section accounting.
  PageRef AcquirePage(PageId id, bool tracked);
  /// `volatile_index` marks index pages of unlogged (secondary) trees:
  /// rebuilt from scratch on reopen, so any data.db slot a write-back
  /// allocates for them is dead weight — counted by the
  /// buffer_pool.leaked_index_slots metric (known leak, see ROADMAP).
  PageRef AllocatePage(PageClass page_class, std::uint32_t table_tag,
                       bool volatile_index = false);

  /// Returns the frame to the pool (and frees the disk slot). The caller
  /// must guarantee no other thread holds a reference.
  void FreePage(PageId id);

  std::size_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }

  /// Up to `limit` currently-dirty page ids (page-cleaner scan).
  std::vector<PageId> DirtyPages(std::size_t limit);

  /// (page id, rec_lsn) of every dirty persistable frame (heap, plus
  /// index in persistent-index mode) — the dirty page table of a fuzzy
  /// checkpoint. A rec_lsn of 0 means "unknown, recover from the log
  /// start".
  std::vector<std::pair<PageId, Lsn>> DirtyPageTable();

  /// Writes one resident page back (WAL barrier + disk write + MarkClean).
  /// The frame stays resident. `policy` guards the frame copy: kLatched
  /// takes a shared latch (cleaner threads), kNone trusts the caller's
  /// ownership (partition workers, quiesced shutdown).
  Status FlushPage(PageId id, LatchPolicy policy = LatchPolicy::kLatched);

  /// Writes every dirty frame back (shutdown / sharp checkpoint).
  Status FlushAllDirty(LatchPolicy policy = LatchPolicy::kNone);

  /// Eviction listeners (thread-private PageCache invalidation). `token`
  /// identifies the registration for removal.
  void RegisterEvictionListener(void* token,
                                std::function<void(PageId)> listener);
  void UnregisterEvictionListener(void* token);

  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_reads() const {
    return disk_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_writes() const {
    return disk_writes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumShards = 64;

  struct Shard {
    TrackedMutex mu{CsCategory::kBufferPool};
    std::unordered_map<PageId, std::unique_ptr<Page>> pages;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % kNumShards]; }

  /// Page classes that may be stolen / written back. Heap always;
  /// index only in persistent-index mode; catalog never.
  bool Evictable(PageClass c) const {
    return c == PageClass::kHeap ||
           (c == PageClass::kIndex && config_.persist_index_pages);
  }

  /// Looks the id up in its shard; on miss in durable mode, loads the
  /// image from disk into a fresh frame. `tracked` charges the bucket
  /// mutex as a buffer-pool critical section.
  Page* FixInternal(PageId id, bool tracked, bool pin);

  /// Loads `id` from disk into the shard (caller holds the shard mutex is
  /// NOT required; takes it itself). Returns nullptr if not on disk.
  Page* LoadFromDisk(PageId id, Shard& shard);

  /// Evicts until a new frame fits in the budget. Best-effort: gives up
  /// when every candidate is pinned or referenced.
  void EnsureBudget();

  /// One clock-sweep eviction. Returns false when no victim qualifies.
  bool EvictOne();

  /// Writes a frame image to the data file (honoring the WAL rule).
  /// The NoClean variant leaves the dirty bit for the caller to resolve
  /// (eviction re-validates under the shard mutex first).
  Status WriteBackNoClean(Page* page);
  Status WriteBack(Page* page);

  void NotifyEvicted(PageId id);

  void TrackFrame(Page* page);

  BufferPoolConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<PageId> next_page_id_{1};
  std::atomic<std::size_t> num_pages_{0};

  // Clock sweep over eviction candidates (heap-class frames).
  std::mutex clock_mu_;
  std::vector<PageId> clock_;
  std::size_t clock_hand_ = 0;

  Spinlock listeners_mu_;
  std::vector<std::pair<void*, std::function<void(PageId)>>> listeners_;

  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> disk_reads_{0};
  std::atomic<std::uint64_t> disk_writes_{0};

  // Registry metrics (cached pointers; see BufferPoolConfig::metrics).
  MetricsRegistry* metrics_ = nullptr;  // non-null only when bound
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* eviction_writebacks_metric_ = nullptr;
  Counter* flush_writebacks_metric_ = nullptr;
  Counter* leaked_index_slots_metric_ = nullptr;
  Histogram* miss_stall_us_metric_ = nullptr;
  Histogram* writeback_stall_us_metric_ = nullptr;
};

/// Thread-private id->frame cache for partition workers (PLP): repeated
/// accesses to owned pages skip the buffer-pool critical section. The
/// eviction listener drops entries for stolen frames so the *cache* never
/// serves a stale mapping — but the returned Page* is unpinned, so in
/// durable (evicting) mode it is only safe between the owner's own
/// operations, which re-Fix (and pin) through HeapFile/AcquirePage before
/// touching page contents. The tiny spinlock is uncontended in normal
/// operation (only the owner thread touches the cache) and exists so the
/// evictor's invalidation is safe.
class PageCache {
 public:
  explicit PageCache(BufferPool* pool) : pool_(pool) {
    pool_->RegisterEvictionListener(this, [this](PageId id) {
      std::lock_guard<Spinlock> g(mu_);
      cache_.erase(id);
    });
  }
  ~PageCache() { pool_->UnregisterEvictionListener(this); }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  Page* Fix(PageId id) {
    {
      std::lock_guard<Spinlock> g(mu_);
      auto it = cache_.find(id);
      if (it != cache_.end()) return it->second;
    }
    // Acquire pinned for the insert: the pin blocks eviction between the
    // lookup and the emplace, so the eviction listener cannot fire for
    // this frame before the cache entry exists (which would leave a
    // permanently dangling pointer behind). One CS on first touch only.
    PageRef ref = pool_->AcquirePage(id, /*tracked=*/true);
    Page* p = ref.get();
    if (p != nullptr) {
      std::lock_guard<Spinlock> g(mu_);
      cache_.emplace(id, p);
    }
    return p;
  }

  void Invalidate(PageId id) {
    std::lock_guard<Spinlock> g(mu_);
    cache_.erase(id);
  }
  void Clear() {
    std::lock_guard<Spinlock> g(mu_);
    cache_.clear();
  }

 private:
  BufferPool* pool_;
  Spinlock mu_;
  std::unordered_map<PageId, Page*> cache_;
};

}  // namespace plp

#endif  // PLP_BUFFER_BUFFER_POOL_H_
