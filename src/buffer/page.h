// A buffer-pool page frame: 8KB of data plus an instrumented latch.
#ifndef PLP_BUFFER_PAGE_H_
#define PLP_BUFFER_PAGE_H_

#include <atomic>
#include <cstring>

#include "src/common/types.h"
#include "src/sync/latch.h"

namespace plp {

/// A page frame. The latch is tagged with the page class so every
/// acquisition lands in the right bucket of the latch breakdown (Figure 2).
///
/// Frames are type-stable: once allocated, a Page object lives until the
/// pool is destroyed. Eviction detaches a frame from the mapping table and
/// recycles it through Reinit() for the next page-in. A lock-free reader
/// that loaded a stale directory entry may therefore still dereference the
/// frame safely; its pin/revalidate protocol then detects the recycling.
class Page {
 public:
  static constexpr std::uint32_t kNoFrameIndex = UINT32_MAX;

  Page(PageId id, PageClass page_class)
      : id_(id), page_class_(page_class), latch_(page_class) {
    std::memset(data_, 0, kPageSize);
  }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  /// Repurposes a recycled frame for a new page identity. Caller guarantees
  /// the frame is detached from the mapping table (no new readers) and
  /// unpinned. pin_count_ and frame_index_ survive: transient Pin/Unpin
  /// pairs from stale lock-free readers net to zero, and the frame keeps
  /// its arena slot forever.
  void Reinit(PageId id, PageClass page_class) {
    id_.store(id, std::memory_order_relaxed);
    page_class_.store(page_class, std::memory_order_relaxed);
    latch_.set_page_class(page_class);
    dirty_.store(false, std::memory_order_relaxed);
    page_lsn_.store(0, std::memory_order_relaxed);
    rec_lsn_.store(0, std::memory_order_relaxed);
    ref_.store(false, std::memory_order_relaxed);
    owner_tag_.store(UINT32_MAX, std::memory_order_relaxed);
    table_tag_.store(UINT32_MAX, std::memory_order_relaxed);
    volatile_index_.store(false, std::memory_order_relaxed);
    swizzle_parent_.store(kInvalidPageId, std::memory_order_relaxed);
    sticky_.store(false, std::memory_order_relaxed);
    std::memset(data_, 0, kPageSize);
  }

  PageId id() const { return id_.load(std::memory_order_relaxed); }
  PageClass page_class() const {
    return page_class_.load(std::memory_order_relaxed);
  }
  /// Fixes up the class of a frame recycled before the on-disk slot header
  /// was available (page-in path; the frame is not yet published).
  void SetClass(PageClass page_class) {
    page_class_.store(page_class, std::memory_order_relaxed);
    latch_.set_page_class(page_class);
  }

  /// Position of this frame in the pool's frame arena; set once right after
  /// construction and stable across recycling. kNoFrameIndex means the
  /// frame is outside the arena and can never be swizzled.
  std::uint32_t frame_index() const { return frame_index_; }
  void set_frame_index(std::uint32_t idx) { frame_index_ = idx; }

  /// PageId of the parent index page currently holding a swizzled reference
  /// to this frame (kInvalidPageId = not swizzled). Maintained by the
  /// pool's swizzle install/unswizzle protocol; eviction refuses to steal a
  /// frame whose parent still points at it by frame index.
  PageId swizzle_parent() const {
    return swizzle_parent_.load(std::memory_order_acquire);
  }
  bool TrySetSwizzleParent(PageId parent) {
    PageId expected = kInvalidPageId;
    if (swizzle_parent_.compare_exchange_strong(expected, parent,
                                                std::memory_order_acq_rel)) {
      return true;
    }
    return expected == parent;  // already swizzled under the same parent
  }
  void ClearSwizzleParentIf(PageId parent) {
    PageId expected = parent;
    swizzle_parent_.compare_exchange_strong(expected, kInvalidPageId,
                                            std::memory_order_acq_rel);
  }
  void ClearSwizzleParent() {
    swizzle_parent_.store(kInvalidPageId, std::memory_order_release);
  }

  /// Sticky frames (index roots) are never chosen as steal victims; the
  /// descent fast path caches them without pinning.
  bool sticky() const { return sticky_.load(std::memory_order_acquire); }
  void set_sticky(bool s) { sticky_.store(s, std::memory_order_release); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  Latch& latch() { return latch_; }

  bool dirty() const { return dirty_.load(std::memory_order_relaxed); }
  void MarkDirty() { dirty_.store(true, std::memory_order_relaxed); }
  void MarkClean() {
    dirty_.store(false, std::memory_order_relaxed);
    rec_lsn_.store(0, std::memory_order_relaxed);
  }

  /// Page LSN of the last update (recovery uses it for idempotent redo).
  Lsn page_lsn() const { return page_lsn_.load(std::memory_order_relaxed); }
  void set_page_lsn(Lsn lsn) {
    page_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Recovery LSN: the first update since the page was last clean (the
  /// dirty-page-table entry of a fuzzy checkpoint). 0 while clean.
  Lsn rec_lsn() const { return rec_lsn_.load(std::memory_order_relaxed); }

  /// Re-dirties the frame with a saved recovery LSN after a failed
  /// write-back undoes a tentative MarkClean (eviction). A direct store:
  /// it must also overwrite a rec_lsn that a racing StampUpdate CAS'd in
  /// while the frame was tentatively clean, or the dirty interval that
  /// the failed write left unflushed would no longer be covered.
  void RestoreDirty(Lsn saved_rec_lsn) {
    rec_lsn_.store(saved_rec_lsn, std::memory_order_relaxed);
    dirty_.store(true, std::memory_order_relaxed);
  }

  /// Records a logged update at `lsn`: advances page_lsn, pins rec_lsn to
  /// the first update of the current dirty interval.
  void StampUpdate(Lsn lsn) {
    page_lsn_.store(lsn, std::memory_order_relaxed);
    Lsn expected = 0;
    rec_lsn_.compare_exchange_strong(expected, lsn,
                                     std::memory_order_relaxed);
    dirty_.store(true, std::memory_order_relaxed);
  }

  /// Pin accounting: a pinned frame is never evicted. Fix paths pin when
  /// the pool runs with a frame budget; PageRef releases.
  void Pin() { pin_count_.fetch_add(1, std::memory_order_acq_rel); }
  void Unpin() { pin_count_.fetch_sub(1, std::memory_order_acq_rel); }
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }

  /// Clock-sweep reference bit (second chance).
  bool TestAndClearRef() { return ref_.exchange(false, std::memory_order_relaxed); }
  void SetRef() { ref_.store(true, std::memory_order_relaxed); }

  /// Which heap file (table) allocated this page; persisted in the on-disk
  /// slot header so page lists can be rebuilt at restart. UINT32_MAX for
  /// index/catalog pages.
  std::uint32_t table_tag() const {
    return table_tag_.load(std::memory_order_relaxed);
  }
  void set_table_tag(std::uint32_t tag) {
    table_tag_.store(tag, std::memory_order_relaxed);
  }

  /// Frame-level owner tag: which global partition uid owns this page
  /// (UINT32_MAX = unowned). The page cleaner uses it to delegate cleaning
  /// to partition workers (Appendix A.4).
  std::uint32_t owner_tag() const {
    return owner_tag_.load(std::memory_order_relaxed);
  }
  void set_owner_tag(std::uint32_t tag) {
    owner_tag_.store(tag, std::memory_order_relaxed);
  }

  /// Index page of an unlogged (volatile secondary) tree: rebuilt from
  /// scratch on reopen. Write-backs flag its data-file slot volatile so
  /// eviction/drop and the next open reclaim the slot into the free list
  /// (buffer_pool.leaked_index_slots stays 0). Set at allocation; the flag
  /// itself is persisted in the slot header, not the page image.
  bool volatile_index() const {
    return volatile_index_.load(std::memory_order_relaxed);
  }
  void set_volatile_index(bool v) {
    volatile_index_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<PageId> id_;
  std::atomic<PageClass> page_class_;
  std::uint32_t frame_index_ = kNoFrameIndex;
  Latch latch_;
  std::atomic<bool> dirty_{false};
  std::atomic<Lsn> page_lsn_{0};
  std::atomic<Lsn> rec_lsn_{0};
  std::atomic<int> pin_count_{0};
  std::atomic<bool> ref_{false};
  std::atomic<std::uint32_t> owner_tag_{UINT32_MAX};
  std::atomic<std::uint32_t> table_tag_{UINT32_MAX};
  std::atomic<bool> volatile_index_{false};
  std::atomic<PageId> swizzle_parent_{kInvalidPageId};
  std::atomic<bool> sticky_{false};
  alignas(64) char data_[kPageSize];
};

/// RAII pin over a frame the caller already holds a Page* to: pins on
/// construction, unpins on destruction. For paths that pin transiently
/// around a revalidate/latch window (eviction's pin/fence/revalidate,
/// unswizzle repair) rather than handing a reference out — those use
/// PageRef. Debug builds trap unpaired pins at pool teardown
/// (~BufferPool), so every manual Pin() should live inside one of the
/// two guards.
class PinGuard {
 public:
  explicit PinGuard(Page* page) : page_(page) { page_->Pin(); }
  ~PinGuard() {
    if (page_ != nullptr) page_->Unpin();
  }

  PinGuard(PinGuard&& other) noexcept : page_(other.page_) {
    other.page_ = nullptr;
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;
  PinGuard& operator=(PinGuard&&) = delete;

 private:
  Page* page_;
};

}  // namespace plp

#endif  // PLP_BUFFER_PAGE_H_
