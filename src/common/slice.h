// A non-owning view over a byte range, used for keys and record payloads.
#ifndef PLP_COMMON_SLICE_H_
#define PLP_COMMON_SLICE_H_

#include <cstring>
#include <string>
#include <string_view>

namespace plp {

/// Non-owning reference to a contiguous byte range. Keys are compared as
/// unsigned byte strings, so any order-preserving encoding (see
/// common/key_encoding.h) sorts correctly.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, std::size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way comparison as unsigned byte strings (memcmp order).
  int compare(const Slice& other) const {
    const std::size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
  friend bool operator<(const Slice& a, const Slice& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const Slice& a, const Slice& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const Slice& a, const Slice& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const Slice& a, const Slice& b) {
    return a.compare(b) >= 0;
  }

 private:
  const char* data_;
  std::size_t size_;
};

}  // namespace plp

#endif  // PLP_COMMON_SLICE_H_
