// Partition manager tests: routing, worker ownership, quiesce/resume,
// system-queue priority, and page-cleaning delegation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/common/key_encoding.h"
#include "src/engine/partitioned_engine.h"

namespace plp {
namespace {

class PartitionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = SystemDesign::kPlpPartition;
    config.num_workers = 4;
    engine_ = std::make_unique<PartitionedEngine>(config);
    engine_->Start();
    auto result = engine_->CreateTable(
        "t", {"", KeyU32(250), KeyU32(500), KeyU32(750)});
    ASSERT_TRUE(result.ok());
    table_ = result.value();
  }
  void TearDown() override { engine_->Stop(); }

  std::unique_ptr<PartitionedEngine> engine_;
  Table* table_ = nullptr;
};

TEST_F(PartitionManagerTest, RoutingMatchesBoundaries) {
  PartitionManager& pm = engine_->pm();
  EXPECT_EQ(pm.RoutePartition(table_, KeyU32(0)), 0u);
  EXPECT_EQ(pm.RoutePartition(table_, KeyU32(249)), 0u);
  EXPECT_EQ(pm.RoutePartition(table_, KeyU32(250)), 1u);
  EXPECT_EQ(pm.RoutePartition(table_, KeyU32(750)), 3u);
  EXPECT_EQ(pm.RoutePartition(table_, KeyU32(4000000)), 3u);
}

TEST_F(PartitionManagerTest, UidsAreStableAndDistinct) {
  PartitionManager& pm = engine_->pm();
  std::set<std::uint32_t> uids;
  for (PartitionId p = 0; p < 4; ++p) {
    const std::uint32_t uid = pm.PartitionUid(table_, p);
    EXPECT_TRUE(uid & PartitionManager::kUidBit);
    uids.insert(uid);
  }
  EXPECT_EQ(uids.size(), 4u);
}

TEST_F(PartitionManagerTest, ActionsRunOnOwningWorker) {
  PartitionManager& pm = engine_->pm();
  // Two actions routed to the same partition must see the same thread id;
  // run each twice and compare.
  auto tid1 = std::make_shared<std::thread::id>();
  auto tid2 = std::make_shared<std::thread::id>();
  for (auto [key, holder] :
       {std::make_pair(KeyU32(10), tid1), std::make_pair(KeyU32(20), tid2)}) {
    TxnRequest req;
    const std::string k = key;
    req.Add(0, "t", k, [holder](ExecContext&) {
      *holder = std::this_thread::get_id();
      return Status::OK();
    });
    ASSERT_TRUE(pm.Execute(req).ok());
  }
  EXPECT_EQ(*tid1, *tid2) << "same partition -> same worker thread";
}

TEST_F(PartitionManagerTest, LoadCountersTrackRouting) {
  PartitionManager& pm = engine_->pm();
  pm.ResetLoad(table_);
  for (int i = 0; i < 10; ++i) {
    TxnRequest req;
    const std::string k = KeyU32(100);  // partition 0
    req.Add(0, "t", k, [](ExecContext&) { return Status::OK(); });
    ASSERT_TRUE(pm.Execute(req).ok());
  }
  const auto load = pm.LoadSnapshot(table_);
  ASSERT_EQ(load.size(), 4u);
  EXPECT_EQ(load[0], 10u);
  EXPECT_EQ(load[1] + load[2] + load[3], 0u);
}

TEST_F(PartitionManagerTest, QuiesceParksAllWorkersAndResumeContinues) {
  PartitionManager& pm = engine_->pm();
  pm.Quiesce();
  // Work submitted during quiesce queues behind the blockers.
  std::atomic<bool> ran{false};
  std::thread submitter([&] {
    TxnRequest req;
    const std::string k = KeyU32(1);
    req.Add(0, "t", k, [&ran](ExecContext&) {
      ran = true;
      return Status::OK();
    });
    ASSERT_TRUE(pm.Execute(req).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(ran) << "actions must not run while quiesced";
  pm.Resume();
  submitter.join();
  EXPECT_TRUE(ran);
}

TEST_F(PartitionManagerTest, SystemTasksPreemptQueuedActions) {
  PartitionManager& pm = engine_->pm();
  pm.Quiesce();
  std::vector<int> order;
  std::mutex order_mu;
  std::thread submitter([&] {
    TxnRequest req;
    const std::string k = KeyU32(1);  // partition 0
    req.Add(0, "t", k, [&](ExecContext&) {
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(2);
      return Status::OK();
    });
    ASSERT_TRUE(pm.Execute(req).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const int worker = pm.WorkerForUid(pm.PartitionUid(table_, 0));
  pm.SubmitSystemTask(worker, [&] {
    std::lock_guard<std::mutex> g(order_mu);
    order.push_back(1);
  });
  pm.Resume();
  submitter.join();
  // Give the system task a moment in case of scheduling skew.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::lock_guard<std::mutex> g(order_mu);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1) << "system queue has priority";
}

TEST_F(PartitionManagerTest, DelegateCleanRoutesOwnedHeapPages) {
  // Insert records so partition-owned heap pages exist.
  for (std::uint32_t k = 0; k < 100; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, std::string(100, 'd'));
    });
    ASSERT_TRUE(engine_->Execute(req).ok());
  }
  PartitionManager& pm = engine_->pm();
  BufferPool* pool = engine_->db().pool();
  const auto pages = table_->heap()->AllPages();
  ASSERT_FALSE(pages.empty());
  Page* page = pool->FixUnlocked(pages[0]);
  page->MarkDirty();
  ASSERT_TRUE(pm.DelegateClean(pages[0]));
  // The owning worker cleans it shortly.
  for (int i = 0; i < 100 && page->dirty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(page->dirty());
}

TEST_F(PartitionManagerTest, DelegateCleanRefusesUnownedPages) {
  BufferPool* pool = engine_->db().pool();
  Page* page = pool->NewPage(PageClass::kCatalog);
  EXPECT_FALSE(engine_->pm().DelegateClean(page->id()));
}

TEST_F(PartitionManagerTest, ConcurrentClientsManyPartitions) {
  constexpr int kClients = 8, kEach = 200;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kEach; ++i) {
        const auto k =
            static_cast<std::uint32_t>(c * 10000 + i);
        TxnRequest req;
        const std::string key = KeyU32(k);
        req.Add(0, "t", key, [key](ExecContext& ctx) {
          return ctx.Insert(key, "concurrent");
        });
        if (engine_->Execute(req).ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kEach);
  EXPECT_EQ(table_->primary()->num_entries(),
            static_cast<std::uint64_t>(kClients) * kEach);
  ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
}

}  // namespace
}  // namespace plp
