// Slotted-page record layout used by heap pages and B+Tree nodes.
//
// Layout: a small header, a slot directory growing forward, and record
// cells growing backward from the end of the page. Deleting a record leaves
// a tombstone slot so RIDs of other records remain stable.
#ifndef PLP_STORAGE_SLOTTED_PAGE_H_
#define PLP_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace plp {

/// View over one page's bytes. Does not own the data and performs no
/// synchronization; callers hold the page latch (or own the page).
class SlottedPage {
 public:
  /// Header layout (offsets into the page):
  ///   [0]  u16 slot_count
  ///   [2]  u16 cell_start        lowest used cell byte
  ///   [4]  u16 live_count        non-tombstone slots
  ///   [6]  u16 reserved
  ///   [8]  u32 owner             partition/leaf owner tag (PLP heap modes)
  ///   [12] u32 reserved2
  ///   [16] slot directory: {u16 offset, u16 len} per slot; offset 0 = free
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr std::size_t kSlotSize = 4;

  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats an empty page.
  static void Init(char* data);

  std::uint16_t slot_count() const { return GetU16(0); }
  std::uint16_t live_count() const { return GetU16(4); }

  std::uint32_t owner() const { return GetU32(8); }
  void set_owner(std::uint32_t owner) { PutU32(8, owner); }

  /// Contiguous free bytes (between the slot directory and the cells).
  /// Inserting a new record needs record size + kSlotSize of it unless a
  /// tombstone slot can be reused.
  std::size_t ContiguousFreeSpace() const;

  /// True if `record` fits (considering tombstone reuse).
  bool HasRoomFor(std::size_t record_size) const;

  /// Inserts a record; fails with kNoSpace when it does not fit.
  Status Insert(Slice record, SlotId* slot);

  /// Reads the record in `slot`; kNotFound for tombstones/out of range.
  Status Get(SlotId slot, Slice* out) const;

  /// In-place update if the new value fits in the old cell, otherwise
  /// re-allocates a cell on this page (same slot id). kNoSpace if it
  /// cannot fit even after compaction.
  Status Update(SlotId slot, Slice record);

  /// Tombstones the slot. kNotFound if already free.
  Status Delete(SlotId slot);

  /// Create-or-replace at a fixed slot id, extending the slot directory if
  /// needed (recovery redo must reproduce exact RIDs).
  Status PutAt(SlotId slot, Slice record);

  /// Invokes fn for every live record.
  void ForEach(const std::function<void(SlotId, Slice)>& fn) const;

  /// Rewrites cells to squeeze out holes left by deletes/updates.
  void Compact();

  /// Approximate free bytes counting tombstoned cells (used by the
  /// free-space map).
  std::size_t TotalFreeSpace() const;

 private:
  std::uint16_t GetU16(std::size_t off) const;
  void PutU16(std::size_t off, std::uint16_t v);
  std::uint32_t GetU32(std::size_t off) const;
  void PutU32(std::size_t off, std::uint32_t v);

  std::uint16_t SlotOffset(SlotId s) const {
    return GetU16(kHeaderSize + s * kSlotSize);
  }
  std::uint16_t SlotLen(SlotId s) const {
    return GetU16(kHeaderSize + s * kSlotSize + 2);
  }
  void SetSlot(SlotId s, std::uint16_t off, std::uint16_t len) {
    PutU16(kHeaderSize + s * kSlotSize, off);
    PutU16(kHeaderSize + s * kSlotSize + 2, len);
  }

  std::uint16_t cell_start() const { return GetU16(2); }
  void set_cell_start(std::uint16_t v) { PutU16(2, v); }
  void set_slot_count(std::uint16_t v) { PutU16(0, v); }
  void set_live_count(std::uint16_t v) { PutU16(4, v); }

  char* data_;
};

}  // namespace plp

#endif  // PLP_STORAGE_SLOTTED_PAGE_H_
