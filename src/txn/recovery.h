// ARIES-lite restart recovery over the write-ahead log.
//
// Three passes, in the ARIES spirit adapted to our records:
//  1. Analysis — classify transactions into winners (committed) and losers
//     (active or aborted at the crash). System records (txn ==
//     kInvalidTxnId: SMO images, partition tables, logged compensations,
//     heap moves) are repeat-history-only.
//  2. Redo — repeat winner/system history: heap operations by exact RID
//     (SlottedPage::PutAt, LSN-gated per page; loser heap records are
//     skipped — the undo pass covers them and redoing them could
//     transiently overcommit pages), index operations physiologically
//     (leaf records + SMO/repartition page images; see
//     docs/persistent_index.md). Legacy snapshot mode replays logical
//     index ops for winners on top of the checkpoint snapshot.
//  3. Undo — compensate loser index anchors logically through the
//     recovered trees (logged, crash-safe) and roll back loser heap
//     operations newest-first from before-images; the undone heap pages
//     are flushed before the database opens (those writes are unlogged).
//
// Two entry points:
//  * Recover()          — the seed's single-index form: whole-log scan into
//    a fresh pool (memory-resident crash simulation).
//  * RecoverDatabase()  — durable restart: starts from the last fuzzy
//    checkpoint (src/io/checkpoint.h), reads log segments from disk,
//    adopts the MRBTree partition baseline (or loads index snapshots in
//    legacy mode), redoes history from min(rec_lsn, active begin_lsns),
//    and routes table-scoped records to the right heap file / primary
//    index of a catalog-loaded Database.
//
// Runtime aborts log their compensations as system records; recovery-time
// undo remains value-based (full CLR chains are a ROADMAP follow-on). A
// same-RID write by a later winner takes precedence over a loser's undo.
#ifndef PLP_TXN_RECOVERY_H_
#define PLP_TXN_RECOVERY_H_

#include <cstdint>

#include "src/buffer/buffer_pool.h"
#include "src/common/status.h"
#include "src/index/btree.h"
#include "src/io/checkpoint.h"
#include "src/log/log_manager.h"

namespace plp {

class Database;

class RecoveryManager {
 public:
  struct Stats {
    std::uint64_t winners = 0;
    std::uint64_t losers = 0;
    std::uint64_t redo_ops = 0;
    std::uint64_t undo_ops = 0;
    std::uint64_t index_ops = 0;
    Lsn scan_start = 0;
  };

  RecoveryManager(LogManager* log, BufferPool* pool)
      : log_(log), pool_(pool) {}

  /// Rebuilds heap pages (and optionally a primary index) from the log.
  /// `index` may be null. The pool should be fresh (crash wiped memory).
  Status Recover(BTree* index, Stats* stats);

  /// Durable restart over a catalog-loaded Database (tables exist, primary
  /// indexes empty, heap page lists rebuilt from the data file).
  /// `checkpoint_lsn`/`image` come from the master record; pass
  /// has_checkpoint=false for a first start / pre-checkpoint crash.
  Status RecoverDatabase(Database* db, bool has_checkpoint,
                         Lsn checkpoint_lsn, const CheckpointImage& image,
                         Stats* stats);

  /// Serialization helpers shared with the engines' logging sites.
  static std::string EncodeIndexOp(Slice key, Slice value);
  static void DecodeIndexOp(Slice payload, std::string* key,
                            std::string* value);

 private:
  LogManager* log_;
  BufferPool* pool_;
};

}  // namespace plp

#endif  // PLP_TXN_RECOVERY_H_
