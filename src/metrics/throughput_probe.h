// Windowed throughput sampling for time-series experiments (Figure 8).
#ifndef PLP_METRICS_THROUGHPUT_PROBE_H_
#define PLP_METRICS_THROUGHPUT_PROBE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/metrics/registry.h"

namespace plp {

class ThroughputProbe {
 public:
  struct Sample {
    double at_seconds = 0;   // window end, relative to Start()
    double ktps = 0;         // thousands of transactions per second
  };

  /// Workers call this once per completed transaction.
  void Tick() { count_.fetch_add(1, std::memory_order_relaxed); }

  /// Marks the series origin and clears samples.
  void Start();

  /// Records one window sample; call at a fixed cadence.
  void SampleNow();

  /// Publishes each sample into registry gauges (`<prefix>.window_tps`,
  /// `<prefix>.total_txns`, `<prefix>.samples`) so a GetStats() snapshot
  /// carries the probe's latest window. The hot Tick() path is unchanged;
  /// only SampleNow() (the sampling thread) writes the gauges.
  void BindRegistry(MetricsRegistry* registry,
                    const std::string& prefix = "probe");

  const std::vector<Sample>& samples() const { return samples_; }
  std::uint64_t total() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::uint64_t start_ns_ = 0;
  std::uint64_t last_sample_ns_ = 0;
  std::uint64_t last_count_ = 0;
  std::vector<Sample> samples_;

  // Registry exports; null until BindRegistry.
  Gauge* window_tps_gauge_ = nullptr;
  Gauge* total_gauge_ = nullptr;
  Gauge* samples_gauge_ = nullptr;
};

}  // namespace plp

#endif  // PLP_METRICS_THROUGHPUT_PROBE_H_
