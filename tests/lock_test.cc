// Lock manager and Speculative Lock Inheritance tests.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>

#include "src/lock/lock_manager.h"
#include "src/lock/sli.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

// Compatibility matrix, exhaustively (parameterized property sweep).
class LockCompatTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(AllPairs, LockCompatTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST_P(LockCompatTest, MatrixMatchesTextbook) {
  const auto a = static_cast<LockMode>(std::get<0>(GetParam()));
  const auto b = static_cast<LockMode>(std::get<1>(GetParam()));
  // Symmetric.
  EXPECT_EQ(LockCompatible(a, b), LockCompatible(b, a));
  // X is incompatible with everything.
  if (a == LockMode::kX || b == LockMode::kX) {
    EXPECT_FALSE(LockCompatible(a, b));
  }
  // Intent modes are compatible with each other.
  if ((a == LockMode::kIS || a == LockMode::kIX) &&
      (b == LockMode::kIS || b == LockMode::kIX)) {
    EXPECT_TRUE(LockCompatible(a, b));
  }
  // S conflicts with IX.
  if ((a == LockMode::kS && b == LockMode::kIX) ||
      (a == LockMode::kIX && b == LockMode::kS)) {
    EXPECT_FALSE(LockCompatible(a, b));
  }
}

TEST(LockCoversTest, CoverageRules) {
  EXPECT_TRUE(LockCovers(LockMode::kX, LockMode::kS));
  EXPECT_TRUE(LockCovers(LockMode::kX, LockMode::kIX));
  EXPECT_TRUE(LockCovers(LockMode::kS, LockMode::kIS));
  EXPECT_TRUE(LockCovers(LockMode::kIX, LockMode::kIS));
  EXPECT_FALSE(LockCovers(LockMode::kS, LockMode::kX));
  EXPECT_FALSE(LockCovers(LockMode::kIS, LockMode::kS));
  EXPECT_FALSE(LockCovers(LockMode::kIX, LockMode::kS));
}

TEST(LockManagerTest, GrantAndRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  lm.Release(1, "a");
  ASSERT_TRUE(lm.Acquire(2, "a", LockMode::kX).ok());
  lm.Release(2, "a");
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, "a", LockMode::kS).ok());
  lm.Release(1, "a");
  lm.Release(2, "a");
}

TEST(LockManagerTest, ConflictTimesOut) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  Status st = lm.Acquire(2, "a", LockMode::kX, std::chrono::milliseconds(30));
  EXPECT_TRUE(st.IsTimedOut());
  lm.Release(1, "a");
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  std::thread t([&] {
    Status st =
        lm.Acquire(2, "a", LockMode::kX, std::chrono::milliseconds(2000));
    EXPECT_TRUE(st.ok());
    lm.Release(2, "a");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.Release(1, "a");
  t.join();
}

TEST(LockManagerTest, ReacquireHeldModeIsNoop) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kS).ok());  // covered
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  lm.Release(1, "a");
  // Fully released: another txn can take it.
  ASSERT_TRUE(lm.Acquire(2, "a", LockMode::kX,
                         std::chrono::milliseconds(10)).ok());
}

TEST(LockManagerTest, UpgradeSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());  // upgrade S->X
  Status st = lm.Acquire(2, "a", LockMode::kS, std::chrono::milliseconds(20));
  EXPECT_TRUE(st.IsTimedOut());
  lm.Release(1, "a");
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, "a", LockMode::kS).ok());
  Status st = lm.Acquire(1, "a", LockMode::kX, std::chrono::milliseconds(20));
  EXPECT_TRUE(st.IsTimedOut());  // deadlock-prone upgrade resolved by timeout
  lm.Release(2, "a");
  lm.Release(1, "a");
}

TEST(LockManagerTest, ReleaseAllBatches) {
  LockManager lm;
  std::vector<std::string> names = {"a", "b", "c"};
  for (const auto& n : names) {
    ASSERT_TRUE(lm.Acquire(1, n, LockMode::kX).ok());
  }
  lm.ReleaseAll(1, names);
  for (const auto& n : names) {
    ASSERT_TRUE(lm.Acquire(2, n, LockMode::kX,
                           std::chrono::milliseconds(10)).ok());
  }
}

TEST(LockManagerTest, IntentModesDontConflict) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "t", LockMode::kIX).ok());
  ASSERT_TRUE(lm.Acquire(2, "t", LockMode::kIX).ok());
  ASSERT_TRUE(lm.Acquire(3, "t", LockMode::kIS).ok());
  lm.Release(1, "t");
  lm.Release(2, "t");
  lm.Release(3, "t");
}

TEST(LockManagerTest, AcquisitionsRecordLockMgrCs) {
  CsProfiler::Global().Reset();
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kS).ok());
  lm.Release(1, "a");
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kLockMgr)], 2u);
}

TEST(LockManagerTest, HasWaitersDetection) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX).ok());
  EXPECT_FALSE(lm.HasWaiters("a"));
  std::thread t([&] {
    (void)lm.Acquire(2, "a", LockMode::kX, std::chrono::milliseconds(500));
    lm.Release(2, "a");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.HasWaiters("a"));
  lm.Release(1, "a");
  t.join();
}

TEST(SliTest, InheritedLockSkipsLockManager) {
  LockManager lm;
  SliCache sli(&lm, /*pseudo_txn=*/1ull << 62);
  const std::string name = TableLockName(1);
  ASSERT_TRUE(sli.AcquireAndInherit(name, LockMode::kIX).ok());
  const std::uint64_t acquisitions = lm.num_acquisitions();
  // Covered requests touch no lock-manager state at all.
  EXPECT_TRUE(sli.Covers(name, LockMode::kIX));
  EXPECT_TRUE(sli.Covers(name, LockMode::kIS));
  EXPECT_FALSE(sli.Covers(name, LockMode::kX));
  EXPECT_EQ(lm.num_acquisitions(), acquisitions);
}

TEST(SliTest, ReleaseContendedGivesBackLock) {
  LockManager lm;
  SliCache sli(&lm, 1ull << 62);
  const std::string name = TableLockName(1);
  ASSERT_TRUE(sli.AcquireAndInherit(name, LockMode::kIX).ok());

  std::thread t([&] {
    // Conflicting request (S vs IX) blocks until the inheritor yields.
    Status st =
        lm.Acquire(99, name, LockMode::kS, std::chrono::milliseconds(2000));
    EXPECT_TRUE(st.ok());
    lm.Release(99, name);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sli.ReleaseContended();  // transaction boundary: waiter detected
  t.join();
  EXPECT_EQ(sli.size(), 0u);
}

TEST(SliTest, ReleaseContendedKeepsUncontendedLocks) {
  LockManager lm;
  SliCache sli(&lm, 1ull << 62);
  ASSERT_TRUE(sli.AcquireAndInherit(TableLockName(1), LockMode::kIX).ok());
  ASSERT_TRUE(sli.AcquireAndInherit(TableLockName(2), LockMode::kIS).ok());
  sli.ReleaseContended();
  EXPECT_EQ(sli.size(), 2u);  // nobody was waiting
  sli.ReleaseAll();
  EXPECT_EQ(sli.size(), 0u);
}

TEST(LockNamesTest, Formats) {
  EXPECT_EQ(TableLockName(3), "t3");
  EXPECT_EQ(RecordLockName(3, "key"), "t3:key");
}

}  // namespace
}  // namespace plp
