// Tests for latches, latch policies, tracked mutexes, spinlock and the
// MPSC queue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/cs_profiler.h"
#include "src/sync/latch.h"
#include "src/sync/mpsc_queue.h"
#include "src/sync/spinlock.h"

namespace plp {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override { CsProfiler::Global().Reset(); }
};

TEST_F(SyncTest, LatchRecordsAcquisitionsByClass) {
  Latch latch(PageClass::kIndex);
  latch.AcquireShared();
  latch.ReleaseShared();
  latch.AcquireExclusive();
  latch.ReleaseExclusive();
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)], 2u);
}

TEST_F(SyncTest, LatchAllowsConcurrentReaders) {
  Latch latch(PageClass::kHeap);
  latch.AcquireShared();
  std::atomic<bool> second_got{false};
  std::thread t([&] {
    latch.AcquireShared();
    second_got = true;
    latch.ReleaseShared();
  });
  t.join();
  EXPECT_TRUE(second_got);
  latch.ReleaseShared();
}

TEST_F(SyncTest, ExclusiveBlocksAndCountsContention) {
  Latch latch(PageClass::kHeap);
  latch.AcquireExclusive();
  std::thread t([&] {
    latch.AcquireExclusive();  // must wait -> contended
    latch.ReleaseExclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  latch.ReleaseExclusive();
  t.join();
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_GE(counts.latches_contended[static_cast<int>(PageClass::kHeap)], 1u);
  EXPECT_GT(counts.latch_wait_ns[static_cast<int>(PageClass::kHeap)], 0u);
}

TEST_F(SyncTest, LatchGuardHonorsPolicyNone) {
  Latch latch(PageClass::kIndex);
  {
    LatchGuard g(&latch, LatchMode::kExclusive, LatchPolicy::kNone);
    // No acquisition should have been recorded.
  }
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.TotalLatches(), 0u);
}

TEST_F(SyncTest, LatchGuardEarlyRelease) {
  Latch latch(PageClass::kIndex);
  LatchGuard g(&latch, LatchMode::kExclusive, LatchPolicy::kLatched);
  g.Release();
  // Re-acquirable immediately: not deadlocked on ourselves.
  latch.AcquireExclusive();
  latch.ReleaseExclusive();
}

TEST_F(SyncTest, TrackedMutexCountsCategory) {
  TrackedMutex mu(CsCategory::kMetadata);
  mu.lock();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kMetadata)], 2u);
}

TEST_F(SyncTest, SpinlockMutualExclusion) {
  Spinlock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 10000; ++j) {
        std::lock_guard<Spinlock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST_F(SyncTest, MpscQueueFifoOrder) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST_F(SyncTest, MpscQueueHighPriorityJumpsQueue) {
  MpscQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.PushHighPriority(99);
  EXPECT_EQ(*q.Pop(), 99);
  EXPECT_EQ(*q.Pop(), 1);
}

TEST_F(SyncTest, MpscQueueCloseUnblocksConsumer) {
  MpscQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST_F(SyncTest, MpscQueueMultipleProducers) {
  MpscQueue<int> q;
  constexpr int kProducers = 4, kEach = 2500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) q.Push(1);
    });
  }
  int total = 0;
  for (int i = 0; i < kProducers * kEach; ++i) {
    total += *q.Pop();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total, kProducers * kEach);
}

TEST_F(SyncTest, MessagePassingIsCounted) {
  MpscQueue<int> q;
  q.Push(1);
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kMessagePassing)],
            1u);
}

}  // namespace
}  // namespace plp
