#!/usr/bin/env python3
"""Project-invariant lint: concurrency rules the annotations can't express.

Clang Thread Safety Analysis (see docs/static_analysis.md) checks that
guarded state is touched under its capability. The rules here are the
engine-specific invariants that live *between* modules, where no single
lock annotation can see them:

  R1  Swizzle-tag containment. kSwizzledRefBit-tagged PageIds are a
      runtime-only encoding; any image or record that leaves the buffer
      pool must be sanitized first. The tagging helpers may therefore
      appear only in the modules that implement the protocol and its
      sanitize hooks — never in src/io/ (DiskManager, WAL storage) or
      src/index/persistent/ (IndexLogger), whose write APIs must only
      ever see plain ids.

  R2  memory_order_relaxed allowlist. Relaxed atomics are reserved for
      counters, profilers, and validated-later peeks. A new relaxed
      access requires adding its file here — i.e. a reviewed diff of
      this allowlist — not just compiling.

  R3  Raw latch acquires. Page latches are taken through LatchGuard
      (policy-aware, capability-typed). Direct Acquire*/TryAcquire*
      calls are confined to the files implementing crabbing, eviction's
      try-latch, and the profiler probe.

  R4  No std locking primitives outside src/sync/. The analysis cannot
      see through std::mutex; every engine lock goes through the
      capability-typed wrappers in src/sync/latch.h.

  R5  Every PLP_NO_THREAD_SAFETY_ANALYSIS escape carries a nearby
      "protocol:" comment naming the lock-free protocol it opts out
      for. An escape without a named protocol is just a suppressed
      warning.

Exit status 0 = clean; 1 = violations (one "file:line: [RULE] ..." per
finding). Run from anywhere: paths resolve relative to the repo root.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# --- R1: swizzle-tag containment -------------------------------------------
SWIZZLE_RE = re.compile(
    r"\b(kSwizzledRefBit|SwizzleRef|IsSwizzledRef|SwizzledFrameIndex|"
    r"SwizzledFrame)\b"
)
SWIZZLE_ALLOW = {
    "src/common/types.h",       # the encoding itself
    "src/buffer/buffer_pool.h",  # frame arena, sanitize hooks
    "src/buffer/buffer_pool.cc",
    "src/index/btree.h",        # descent fast path + unswizzle hooks
    "src/index/btree.cc",
    "src/index/btree_node.h",   # tagged child slots (in-memory only)
    "src/index/btree_node.cc",
}
# Directories whose write APIs must never see a tagged id.
SWIZZLE_FORBIDDEN_DIRS = ("src/io/", "src/index/persistent/")

# --- R2: memory_order_relaxed allowlist ------------------------------------
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_ALLOW = {
    # Buffer pool: stat counters, clock-sweep hints, budget soft-peeks
    # (every lock-free read is revalidated under the shard mutex/fence).
    "src/buffer/buffer_pool.h",
    "src/buffer/buffer_pool.cc",
    "src/buffer/page.h",
    "src/buffer/page_cleaner.h",
    "src/buffer/page_cleaner.cc",
    # Engine: gauge snapshots and repartition progress counters.
    "src/engine/engine.cc",
    "src/engine/partition_manager.cc",
    "src/engine/repartitioner.h",
    "src/engine/repartitioner.cc",
    # Index: entry/SMO counters and level peeks revalidated by crabbing.
    "src/index/btree.h",
    "src/index/btree.cc",
    "src/index/btree_node.cc",
    # IO: allocation high-water marks and size gauges.
    "src/io/disk_manager.h",
    "src/io/disk_manager.cc",
    "src/io/wal_storage.cc",
    # Lock/log/txn managers: stat counters and sequence peeks.
    "src/lock/lock_manager.h",
    "src/lock/lock_manager.cc",
    "src/log/log_buffer.cc",
    "src/log/log_manager.h",
    "src/log/log_manager.cc",
    "src/txn/txn_manager.h",
    "src/txn/txn_manager.cc",
    # Metrics/profiling: the whole point is uncoordinated counting.
    # flight_recorder is the seqlock SPSC ring: relaxed payload stores
    # fenced by the seq generation protocol (validated-later reads).
    "src/metrics/flight_recorder.h",
    "src/metrics/flight_recorder.cc",
    "src/metrics/registry.h",
    "src/metrics/registry.cc",
    "src/metrics/throughput_probe.h",
    "src/metrics/throughput_probe.cc",
    "src/metrics/txn_trace.h",
    "src/sync/cs_profiler.cc",
    "src/sync/spinlock.h",
    # Workloads: generator statistics.
    "src/workload/tpcb.cc",
    "src/workload/tpcc.cc",
    "src/workload/workload_driver.cc",
}

# --- R3: raw latch acquires -------------------------------------------------
LATCH_ACQ_RE = re.compile(
    r"\b(?:latch\(\)|latch_)\s*\.\s*(?:Try)?Acquire(?:Shared|Exclusive)?\s*\("
)
LATCH_ACQ_ALLOW = {
    "src/sync/latch.h",              # the implementation
    "src/index/btree.cc",            # latch crabbing (guard-per-level)
    "src/buffer/buffer_pool.cc",     # eviction/unswizzle try-latch
    "src/metrics/time_breakdown.cc",  # contention probe
}

# --- R4: std locking primitives ---------------------------------------------
STD_LOCK_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock)\b"
)
STD_LOCK_ALLOW_DIR = "src/sync/"

# --- R5: NO_TSA escapes need a named protocol --------------------------------
NO_TSA_RE = re.compile(r"\bPLP_NO_THREAD_SAFETY_ANALYSIS\b")
PROTOCOL_RE = re.compile(r"protocol:")
NO_TSA_SKIP = {"src/sync/thread_annotations.h"}  # the macro definition
PROTOCOL_WINDOW = 12  # lines above the escape that may carry the comment


def rel(path: Path) -> str:
    return path.relative_to(REPO).as_posix()


def lint_file(path: Path, findings: list) -> None:
    name = rel(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]

        if SWIZZLE_RE.search(code) and name not in SWIZZLE_ALLOW:
            rule = "R1"
            if name.startswith(SWIZZLE_FORBIDDEN_DIRS):
                detail = ("tagged-PageId symbol in a write-API module; "
                          "sanitize before crossing this boundary")
            else:
                detail = ("tagged-PageId symbol outside the swizzle "
                          "protocol allowlist")
            findings.append((name, i, rule, detail))

        if RELAXED_RE.search(code) and name not in RELAXED_ALLOW:
            findings.append((
                name, i, "R2",
                "memory_order_relaxed outside the allowlist — justify the "
                "ordering and add the file to RELAXED_ALLOW in a reviewed "
                "diff"))

        if LATCH_ACQ_RE.search(code) and name not in LATCH_ACQ_ALLOW:
            findings.append((
                name, i, "R3",
                "raw latch acquire — use LatchGuard (or extend "
                "LATCH_ACQ_ALLOW for a new lock-free protocol)"))

        if STD_LOCK_RE.search(code) and not name.startswith(
                STD_LOCK_ALLOW_DIR):
            findings.append((
                name, i, "R4",
                "std locking primitive invisible to thread-safety "
                "analysis — use the src/sync/latch.h wrappers"))

        if NO_TSA_RE.search(code) and name not in NO_TSA_SKIP:
            lo = max(0, i - 1 - PROTOCOL_WINDOW)
            context = lines[lo:i]
            if not any(PROTOCOL_RE.search(c) for c in context):
                findings.append((
                    name, i, "R5",
                    "PLP_NO_THREAD_SAFETY_ANALYSIS without a nearby "
                    "'protocol:' comment naming the lock-free protocol"))


def main() -> int:
    findings = []
    for path in sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc")):
        lint_file(path, findings)
    for name, line, rule, detail in findings:
        print(f"{name}:{line}: [{rule}] {detail}")
    if findings:
        print(f"\nlint_invariants: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
