#include "src/storage/fragmentation_model.h"

#include <algorithm>

namespace plp {

namespace {
std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

std::uint64_t RecordsPerHeapPage(const FragmentationParams& p) {
  // Each record costs its payload plus one slot-directory entry.
  return p.usable_page_bytes / (p.record_size + 4);
}

HeapPageCounts ComputeHeapPageCounts(const FragmentationParams& p) {
  HeapPageCounts out;
  const std::uint64_t num_records = p.db_bytes / p.record_size;
  const std::uint64_t rpp = RecordsPerHeapPage(p);

  // Conventional and PLP-Regular pack records densely into one heap file.
  out.conventional = CeilDiv(num_records, rpp);
  out.plp_regular = out.conventional;

  // PLP-Partition: each partition packs densely into its own page set; the
  // waste is at most one partially-filled page per partition.
  const std::uint64_t per_part = CeilDiv(num_records, p.num_partitions);
  out.plp_partition = p.num_partitions * CeilDiv(per_part, rpp);

  // PLP-Leaf: each index leaf (holding `leaf_entries` records) owns its own
  // heap pages, so every leaf rounds up independently.
  const std::uint64_t leaves = CeilDiv(num_records, p.leaf_entries);
  const std::uint64_t full_leaf_pages = CeilDiv(p.leaf_entries, rpp);
  out.plp_leaf = leaves * full_leaf_pages;
  return out;
}

double ScanCost(std::uint64_t pages, const ScanTimeParams& t) {
  const std::uint64_t resident_cap = t.bufferpool_bytes / kPageSize;
  const std::uint64_t resident = std::min(pages, resident_cap);
  const std::uint64_t missing = pages - resident;
  return static_cast<double>(resident) * t.mem_page_cost +
         static_cast<double>(missing) * t.io_page_cost;
}

}  // namespace plp
