// Tests for the metrics layer: time breakdowns and throughput probes.
#include <gtest/gtest.h>

#include <thread>

#include "src/metrics/throughput_probe.h"
#include "src/metrics/time_breakdown.h"

namespace plp {
namespace {

TEST(TimeBreakdownTest, CalibrationIsPositiveAndStable) {
  const double a = CalibratedLatchCostNs();
  const double b = CalibratedLatchCostNs();
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);  // memoized
  EXPECT_LT(a, 10000.0);  // an uncontended latch is well under 10us
}

TEST(TimeBreakdownTest, ZeroTransactionsGiveEmptyBreakdown) {
  CsCounts delta;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 0, 1000000);
  EXPECT_EQ(b.total_us, 0.0);
}

TEST(TimeBreakdownTest, ComponentsAttributeCorrectly) {
  CsCounts delta;
  delta.latch_wait_ns[static_cast<int>(PageClass::kIndex)] = 4'000'000;
  delta.latch_wait_ns[static_cast<int>(PageClass::kHeap)] = 2'000'000;
  delta.wait_ns[static_cast<int>(CsCategory::kPageLatch)] = 6'000'000;
  delta.wait_ns[static_cast<int>(CsCategory::kLockMgr)] = 1'000'000;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 1000, 100'000'000);
  EXPECT_DOUBLE_EQ(b.total_us, 100.0);
  EXPECT_DOUBLE_EQ(b.idx_latch_wait_us, 4.0);
  EXPECT_DOUBLE_EQ(b.heap_latch_wait_us, 2.0);
  EXPECT_DOUBLE_EQ(b.lock_wait_us, 1.0);
  EXPECT_DOUBLE_EQ(b.smo_wait_us, 0.0);  // fully classed latch waits
  EXPECT_GT(b.other_us, 0.0);
}

TEST(TimeBreakdownTest, SmoWaitIsUnclassedLatchWait) {
  CsCounts delta;
  // 3ms of page-latch-category waiting, only 1ms attributable to index
  // pages: the remaining 2ms is SMO-mutex serialization.
  delta.wait_ns[static_cast<int>(CsCategory::kPageLatch)] = 3'000'000;
  delta.latch_wait_ns[static_cast<int>(PageClass::kIndex)] = 1'000'000;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 1000, 50'000'000);
  EXPECT_DOUBLE_EQ(b.idx_latch_wait_us, 1.0);
  EXPECT_DOUBLE_EQ(b.smo_wait_us, 2.0);
}

TEST(TimeBreakdownTest, LatchingOverheadScalesWithCount) {
  CsCounts delta;
  delta.latches[static_cast<int>(PageClass::kIndex)] = 10000;
  const TimeBreakdown small = MakeTimeBreakdown(delta, 1000, 100'000'000);
  delta.latches[static_cast<int>(PageClass::kIndex)] = 20000;
  const TimeBreakdown big = MakeTimeBreakdown(delta, 1000, 100'000'000);
  EXPECT_NEAR(big.latching_us, 2 * small.latching_us, 1e-9);
}

TEST(TimeBreakdownTest, FormatContainsAllColumns) {
  const TimeBreakdown b;
  const std::string row = FormatBreakdownRow("TestRow", b);
  for (const char* col : {"TestRow", "total", "idx-wait", "heap-wait",
                          "latching", "lock-wait", "smo-wait", "other"}) {
    EXPECT_NE(row.find(col), std::string::npos) << col;
  }
}

TEST(ThroughputProbeTest, SamplesMeasureWindowRate) {
  ThroughputProbe probe;
  probe.Start();
  for (int i = 0; i < 1000; ++i) probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  probe.SampleNow();
  ASSERT_EQ(probe.samples().size(), 1u);
  const auto& s = probe.samples()[0];
  EXPECT_GT(s.at_seconds, 0.0);
  EXPECT_GT(s.ktps, 0.0);
  // 1000 ticks in ~50ms -> ~20 Ktps.
  EXPECT_NEAR(s.ktps, 20.0, 15.0);
}

TEST(ThroughputProbeTest, SecondWindowCountsOnlyNewTicks) {
  ThroughputProbe probe;
  probe.Start();
  for (int i = 0; i < 100; ++i) probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe.SampleNow();  // no ticks in the second window
  ASSERT_EQ(probe.samples().size(), 2u);
  EXPECT_GT(probe.samples()[0].ktps, 0.0);
  EXPECT_DOUBLE_EQ(probe.samples()[1].ktps, 0.0);
  EXPECT_EQ(probe.total(), 100u);
}

TEST(ThroughputProbeTest, StartResets) {
  ThroughputProbe probe;
  probe.Start();
  probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  probe.SampleNow();
  probe.Start();
  EXPECT_TRUE(probe.samples().empty());
  EXPECT_EQ(probe.total(), 0u);
}

TEST(ThroughputProbeTest, ConcurrentTickers) {
  ThroughputProbe probe;
  probe.Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) probe.Tick();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(probe.total(), 40000u);
}

}  // namespace
}  // namespace plp
