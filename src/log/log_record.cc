#include "src/log/log_record.h"

#include <cstring>

namespace plp {

const char* LogTypeName(LogType t) {
  switch (t) {
    case LogType::kBegin: return "BEGIN";
    case LogType::kCommit: return "COMMIT";
    case LogType::kAbort: return "ABORT";
    case LogType::kHeapInsert: return "HEAP_INSERT";
    case LogType::kHeapUpdate: return "HEAP_UPDATE";
    case LogType::kHeapDelete: return "HEAP_DELETE";
    case LogType::kIndexInsert: return "IDX_INSERT";
    case LogType::kIndexDelete: return "IDX_DELETE";
    case LogType::kCheckpoint: return "CHECKPOINT";
    case LogType::kIndexLeafInsert: return "IDX_LEAF_INSERT";
    case LogType::kIndexLeafDelete: return "IDX_LEAF_DELETE";
    case LogType::kIndexLeafUpdate: return "IDX_LEAF_UPDATE";
    case LogType::kIndexSmo: return "IDX_SMO";
    case LogType::kIndexPageFree: return "IDX_PAGE_FREE";
    case LogType::kPartitionTable: return "PARTITION_TABLE";
    case LogType::kIndexRepartition: return "IDX_REPARTITION";
  }
  return "?";
}

namespace {
void PutU32(std::string* s, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s->append(b, 4);
}
void PutU16(std::string* s, std::uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  s->append(b, 2);
}
void PutU64(std::string* s, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s->append(b, 8);
}
std::uint32_t GetU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint16_t GetU16(const char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint64_t GetU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
}  // namespace

std::string LogRecord::Serialize() const {
  std::string out;
  out.reserve(SerializedSize());
  PutU32(&out, static_cast<std::uint32_t>(SerializedSize()));
  out.push_back(static_cast<char>(type));
  PutU64(&out, txn);
  PutU32(&out, rid.page_id);
  PutU16(&out, rid.slot);
  PutU32(&out, table);
  PutU32(&out, static_cast<std::uint32_t>(redo.size()));
  PutU32(&out, static_cast<std::uint32_t>(undo.size()));
  out.append(redo);
  out.append(undo);
  return out;
}

bool LogRecord::Deserialize(const char* data, std::size_t size, LogRecord* out,
                            std::size_t* consumed) {
  if (size < kHeaderSize) return false;
  const std::uint32_t total = GetU32(data);
  if (total < kHeaderSize || total > size) return false;
  const char* p = data + 4;
  out->type = static_cast<LogType>(*p);
  p += 1;
  out->txn = GetU64(p);
  p += 8;
  out->rid.page_id = GetU32(p);
  p += 4;
  out->rid.slot = GetU16(p);
  p += 2;
  out->table = GetU32(p);
  p += 4;
  const std::uint32_t redo_len = GetU32(p);
  p += 4;
  const std::uint32_t undo_len = GetU32(p);
  p += 4;
  if (kHeaderSize + redo_len + undo_len != total) return false;
  out->redo.assign(p, redo_len);
  p += redo_len;
  out->undo.assign(p, undo_len);
  *consumed = total;
  return true;
}

}  // namespace plp
