#include "src/storage/slotted_page.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace plp {

void SlottedPage::Init(char* data) {
  std::memset(data, 0, kHeaderSize);
  SlottedPage page(data);
  page.set_cell_start(static_cast<std::uint16_t>(kPageSize));
}

std::uint16_t SlottedPage::GetU16(std::size_t off) const {
  std::uint16_t v;
  std::memcpy(&v, data_ + off, 2);
  return v;
}

void SlottedPage::PutU16(std::size_t off, std::uint16_t v) {
  std::memcpy(data_ + off, &v, 2);
}

std::uint32_t SlottedPage::GetU32(std::size_t off) const {
  std::uint32_t v;
  std::memcpy(&v, data_ + off, 4);
  return v;
}

void SlottedPage::PutU32(std::size_t off, std::uint32_t v) {
  std::memcpy(data_ + off, &v, 4);
}

std::size_t SlottedPage::ContiguousFreeSpace() const {
  const std::size_t dir_end = kHeaderSize + slot_count() * kSlotSize;
  const std::size_t start = cell_start();
  return start > dir_end ? start - dir_end : 0;
}

bool SlottedPage::HasRoomFor(std::size_t record_size) const {
  // A tombstone slot can hold the new record if a cell fits.
  const bool has_tombstone = live_count() < slot_count();
  const std::size_t slot_cost = has_tombstone ? 0 : kSlotSize;
  if (ContiguousFreeSpace() >= record_size + slot_cost) return true;
  // Compaction may reclaim dead cells.
  return TotalFreeSpace() >= record_size + slot_cost;
}

std::size_t SlottedPage::TotalFreeSpace() const {
  std::size_t dead = 0;
  const std::uint16_t n = slot_count();
  for (SlotId s = 0; s < n; ++s) {
    if (SlotOffset(s) == 0) continue;
  }
  // Dead bytes = page size - header - directory - live cell bytes.
  std::size_t live_bytes = 0;
  for (SlotId s = 0; s < n; ++s) {
    if (SlotOffset(s) != 0) live_bytes += SlotLen(s);
  }
  (void)dead;
  return kPageSize - kHeaderSize - n * kSlotSize - live_bytes;
}

Status SlottedPage::Insert(Slice record, SlotId* slot) {
  const std::size_t need = record.size();
  if (need == 0) return Status::InvalidArgument("empty record");

  // Find a tombstone slot to reuse, else a new one.
  const std::uint16_t n = slot_count();
  SlotId target = kInvalidSlotId;
  for (SlotId s = 0; s < n; ++s) {
    if (SlotOffset(s) == 0) {
      target = s;
      break;
    }
  }
  const std::size_t slot_cost = (target == kInvalidSlotId) ? kSlotSize : 0;

  if (ContiguousFreeSpace() < need + slot_cost) {
    if (TotalFreeSpace() < need + slot_cost) {
      return Status::NoSpace();
    }
    Compact();
    if (ContiguousFreeSpace() < need + slot_cost) return Status::NoSpace();
  }

  if (target == kInvalidSlotId) {
    target = n;
    set_slot_count(n + 1);
  }

  const std::uint16_t new_start =
      static_cast<std::uint16_t>(cell_start() - need);
  std::memcpy(data_ + new_start, record.data(), need);
  set_cell_start(new_start);
  SetSlot(target, new_start, static_cast<std::uint16_t>(need));
  set_live_count(live_count() + 1);
  *slot = target;
  return Status::OK();
}

Status SlottedPage::Get(SlotId slot, Slice* out) const {
  if (slot >= slot_count() || SlotOffset(slot) == 0) {
    return Status::NotFound();
  }
  *out = Slice(data_ + SlotOffset(slot), SlotLen(slot));
  return Status::OK();
}

Status SlottedPage::Update(SlotId slot, Slice record) {
  if (slot >= slot_count() || SlotOffset(slot) == 0) {
    return Status::NotFound();
  }
  if (record.size() <= SlotLen(slot)) {
    std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
    SetSlot(slot, SlotOffset(slot), static_cast<std::uint16_t>(record.size()));
    return Status::OK();
  }
  // Grow: re-allocate the record's cell on this page. The no-space check
  // runs BEFORE the old cell is freed (counting it as reclaimable): a
  // failed update must leave the record untouched — freeing first would
  // destroy committed data on the NoSpace path, unlogged and unundoable
  // (found by the durable SMO crash-loop fuzz).
  if (TotalFreeSpace() + SlotLen(slot) < record.size()) {
    return Status::NoSpace();
  }
  SetSlot(slot, 0, 0);
  set_live_count(live_count() - 1);
  if (ContiguousFreeSpace() < record.size()) {
    // Cannot fail: after compaction the contiguous region equals the
    // total free space, which the guard above already covered.
    Compact();
  }
  const std::uint16_t new_start =
      static_cast<std::uint16_t>(cell_start() - record.size());
  std::memcpy(data_ + new_start, record.data(), record.size());
  set_cell_start(new_start);
  SetSlot(slot, new_start, static_cast<std::uint16_t>(record.size()));
  set_live_count(live_count() + 1);
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (slot >= slot_count() || SlotOffset(slot) == 0) {
    return Status::NotFound();
  }
  SetSlot(slot, 0, 0);
  set_live_count(live_count() - 1);
  return Status::OK();
}

Status SlottedPage::PutAt(SlotId slot, Slice record) {
  if (record.empty()) return Status::InvalidArgument("empty record");
  // Extend the directory with free slots up to `slot`. Redo replay onto a
  // page whose cells were re-written leaves dead bytes but no contiguous
  // room, so compaction must be attempted before giving up.
  while (slot_count() <= slot) {
    if (ContiguousFreeSpace() < kSlotSize) {
      if (TotalFreeSpace() < kSlotSize) return Status::NoSpace();
      Compact();
      if (ContiguousFreeSpace() < kSlotSize) return Status::NoSpace();
    }
    const std::uint16_t n = slot_count();
    SetSlot(n, 0, 0);
    set_slot_count(n + 1);
  }
  if (SlotOffset(slot) != 0) {
    SetSlot(slot, 0, 0);
    set_live_count(live_count() - 1);
  }
  if (ContiguousFreeSpace() < record.size()) {
    if (TotalFreeSpace() < record.size()) return Status::NoSpace();
    Compact();
    if (ContiguousFreeSpace() < record.size()) return Status::NoSpace();
  }
  const std::uint16_t new_start =
      static_cast<std::uint16_t>(cell_start() - record.size());
  std::memcpy(data_ + new_start, record.data(), record.size());
  set_cell_start(new_start);
  SetSlot(slot, new_start, static_cast<std::uint16_t>(record.size()));
  set_live_count(live_count() + 1);
  return Status::OK();
}

void SlottedPage::ForEach(
    const std::function<void(SlotId, Slice)>& fn) const {
  const std::uint16_t n = slot_count();
  for (SlotId s = 0; s < n; ++s) {
    if (SlotOffset(s) != 0) {
      fn(s, Slice(data_ + SlotOffset(s), SlotLen(s)));
    }
  }
}

void SlottedPage::Compact() {
  struct LiveCell {
    SlotId slot;
    std::string bytes;
  };
  std::vector<LiveCell> cells;
  const std::uint16_t n = slot_count();
  cells.reserve(live_count());
  for (SlotId s = 0; s < n; ++s) {
    if (SlotOffset(s) != 0) {
      cells.push_back({s, std::string(data_ + SlotOffset(s), SlotLen(s))});
    }
  }
  std::uint16_t start = static_cast<std::uint16_t>(kPageSize);
  for (const LiveCell& cell : cells) {
    start = static_cast<std::uint16_t>(start - cell.bytes.size());
    std::memcpy(data_ + start, cell.bytes.data(), cell.bytes.size());
    SetSlot(cell.slot, start, static_cast<std::uint16_t>(cell.bytes.size()));
  }
  set_cell_start(start);
}

}  // namespace plp
