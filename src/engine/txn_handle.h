// Asynchronous-transaction plumbing for Engine::Submit: TxnHandle is the
// client's future-like view of a submitted transaction, TxnToken is the
// engine-internal completion obligation that travels through the worker
// pipeline, and AdmissionGate bounds how many transactions are in flight
// at once (EngineConfig::max_inflight backpressure).
#ifndef PLP_ENGINE_TXN_HANDLE_H_
#define PLP_ENGINE_TXN_HANDLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/metrics/txn_trace.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

/// Dedicated executor for completion callbacks
/// (EngineConfig::dedicated_callback_thread): a worker that committed a
/// transaction hands the user callback off instead of running it inline,
/// so slow callbacks cannot stall partition workers or the submission
/// pool. Completion ordering is preserved per handle: the callback still
/// runs before Wait() observes the transaction as done.
class CallbackExecutor {
 public:
  CallbackExecutor() : thread_([this] { Loop(); }) {}

  ~CallbackExecutor() {
    {
      MutexLock g(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    // Tasks enqueued after the loop exited (or racing the stop) still run:
    // each task resolves a TxnHandle someone may be waiting on. Drained
    // under the lock, run outside it (a task may re-enter Post).
    std::deque<std::function<void()>> leftovers;
    {
      MutexLock g(mu_);
      leftovers.swap(tasks_);
    }
    for (auto& task : leftovers) task();
  }

  CallbackExecutor(const CallbackExecutor&) = delete;
  CallbackExecutor& operator=(const CallbackExecutor&) = delete;

  /// Enqueues a task; false when the executor is stopping (the caller
  /// runs the task inline instead).
  bool Post(std::function<void()> task) {
    {
      MutexLock g(mu_);
      if (stopping_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

 private:
  void Loop() {
    MutexLock lk(mu_);
    for (;;) {
      while (!stopping_ && tasks_.empty()) lk.Wait(cv_);
      if (tasks_.empty() && stopping_) return;
      auto task = std::move(tasks_.front());
      tasks_.pop_front();
      lk.Unlock();
      task();
      lk.Lock();
    }
  }

  Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_ PLP_GUARDED_BY(mu_);
  bool stopping_ PLP_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Counting gate that admits at most `limit` transactions at a time.
/// Submit acquires a slot; completion releases it. Tracks the high-water
/// mark so open-loop drivers can report sustained in-flight depth.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t limit) : limit_(limit == 0 ? 1 : limit) {}

  /// Takes one slot. With `block` waits for room; otherwise fails
  /// immediately when the gate is full. Always fails while the gate is
  /// draining (engine stopping), so blocked submitters cannot starve
  /// WaitIdle forever.
  bool Acquire(bool block) {
    MutexLock lk(mu_);
    if (inflight_ >= limit_ && block && !draining_) {
      // Metrics only on the contended path: the uncontended Acquire never
      // reads the clock.
      const std::uint64_t t0 = NowNanos();
      if (blocked_metric_ != nullptr) blocked_metric_->Increment();
      while (inflight_ >= limit_ && !draining_) lk.Wait(cv_);
      if (wait_metric_ != nullptr) {
        wait_metric_->Record((NowNanos() - t0) / 1000);
      }
    }
    if (inflight_ >= limit_ || draining_) {
      ++rejected_;
      return false;
    }
    ++inflight_;
    ++admitted_;
    if (inflight_ > peak_) peak_ = inflight_;
    return true;
  }

  void Release() {
    std::size_t now;
    {
      MutexLock g(mu_);
      now = --inflight_;
    }
    // One freed slot admits one waiter; the full wakeup is only needed
    // when idle-waiters (drain) might be watching for zero.
    if (now == 0) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  /// Drains the gate: new acquisitions fail from here on (blocked ones
  /// wake and fail), then blocks until every admitted transaction has
  /// completed. Engines call this at the top of Stop() so no completion
  /// is lost to teardown; Start() calls Reopen() to accept work again.
  void WaitIdle() {
    MutexLock lk(mu_);
    draining_ = true;
    cv_.notify_all();
    while (inflight_ != 0) lk.Wait(cv_);
  }

  void Reopen() {
    MutexLock g(mu_);
    draining_ = false;
  }

  std::size_t limit() const { return limit_; }
  std::size_t inflight() const {
    MutexLock g(mu_);
    return inflight_;
  }
  std::size_t peak() const {
    MutexLock g(mu_);
    return peak_;
  }
  void ResetPeak() {
    MutexLock g(mu_);
    peak_ = inflight_;
  }
  std::uint64_t admitted() const {
    MutexLock g(mu_);
    return admitted_;
  }
  std::uint64_t rejected() const {
    MutexLock g(mu_);
    return rejected_;
  }

  /// Wires the contended-acquire metrics (admission.blocked counter and
  /// admission.wait_us histogram). Called once from the Engine constructor
  /// body, before any submission can reach the gate.
  void BindMetrics(Counter* blocked, Histogram* wait_us) {
    blocked_metric_ = blocked;
    wait_metric_ = wait_us;
  }

 private:
  const std::size_t limit_;
  mutable Mutex mu_;
  std::condition_variable cv_;
  bool draining_ PLP_GUARDED_BY(mu_) = false;
  std::size_t inflight_ PLP_GUARDED_BY(mu_) = 0;
  std::size_t peak_ PLP_GUARDED_BY(mu_) = 0;
  std::uint64_t admitted_ PLP_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_ PLP_GUARDED_BY(mu_) = 0;
  // Bound once before any submission can reach the gate (engine ctor).
  Counter* blocked_metric_ = nullptr;
  Histogram* wait_metric_ = nullptr;
};

namespace internal {

/// State shared between a TxnHandle (client side) and the TxnToken that
/// moves through the engine's completion pipeline.
struct TxnShared {
  std::atomic<bool> resolved{false};  // first Complete wins
  Mutex mu;
  std::condition_variable cv;
  bool done PLP_GUARDED_BY(mu) = false;
  Status status PLP_GUARDED_BY(mu);
  std::function<void(const Status&)> callback;
  AdmissionGate* gate = nullptr;      // slot released after completion
  CallbackExecutor* executor = nullptr;  // callback off the worker thread
  /// Stage timeline, allocated only when TxnOptions::trace is set; the
  /// sinks roll the stamped stages into registry histograms at resolution.
  std::unique_ptr<TxnTimeline> trace;
  const TxnTraceSinks* trace_sinks = nullptr;
};

/// Second half of completion: frees the admission slot, then releases
/// waiters. Runs after the callback (inline or on the executor).
inline void FinishTxn(const std::shared_ptr<TxnShared>& s, Status status) {
  if (s->gate != nullptr) s->gate->Release();
  {
    MutexLock g(s->mu);
    s->status = std::move(status);
    s->done = true;
  }
  s->cv.notify_all();
}

/// Resolves the transaction exactly once: runs the completion callback
/// (on the calling thread, or on the engine's dedicated callback executor
/// when configured), then frees the admission slot, then releases
/// waiters. Wait()/TryGet() therefore never report completion before the
/// callback has finished — and once Wait() returns, the admission slot is
/// free, so a wait-then-resubmit never bounces off this transaction's own
/// slot.
inline void ResolveTxn(const std::shared_ptr<TxnShared>& s, Status status) {
  if (s->resolved.exchange(true, std::memory_order_acq_rel)) return;
  if (s->trace != nullptr) {
    TxnTimeline::Stamp(s->trace->complete_ns, NowNanos());
    if (s->trace_sinks != nullptr) s->trace_sinks->Record(*s->trace);
    EmitTimelineSpans(*s->trace);
  }
  if (s->callback && s->executor != nullptr) {
    if (s->executor->Post([s, status] {
          s->callback(status);
          FinishTxn(s, status);
        })) {
      return;
    }
    // Executor already stopping: fall through to inline resolution.
  }
  if (s->callback) s->callback(status);
  FinishTxn(s, std::move(status));
}

}  // namespace internal

/// Future-like view of a transaction submitted with Engine::Submit. Copyable
/// and cheap; all copies observe the same completion.
class TxnHandle {
 public:
  TxnHandle() = default;

  /// False only for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

  /// Blocks until the transaction commits or aborts; returns the final
  /// status. The completion callback (if any) has finished by the time
  /// this returns. Invalid handles return Internal.
  Status Wait() {
    if (!valid()) return Status::Internal("Wait on invalid TxnHandle");
    MutexLock lk(state_->mu);
    while (!state_->done) lk.Wait(state_->cv);
    return state_->status;
  }

  /// Non-blocking probe: true (and fills `out`) once complete.
  bool TryGet(Status* out) {
    if (!valid()) return false;
    MutexLock g(state_->mu);
    if (!state_->done) return false;
    if (out != nullptr) *out = state_->status;
    return true;
  }

  bool done() {
    return TryGet(nullptr);
  }

  /// Stage timeline when the transaction was submitted with
  /// TxnOptions::trace; nullptr otherwise. Stamps are nanosecond
  /// NowNanos() readings; all stamps are final once Wait() returns.
  const TxnTimeline* timeline() const {
    return state_ == nullptr ? nullptr : state_->trace.get();
  }

 private:
  friend class Engine;
  explicit TxnHandle(std::shared_ptr<internal::TxnShared> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::TxnShared> state_;
};

/// Move-only completion obligation handed to an engine's async pipeline.
/// Calling Complete() resolves the paired TxnHandle; dropping a pending
/// token (e.g. a queue destroyed at shutdown) resolves it with Aborted so
/// no submission is ever silently lost.
class TxnToken {
 public:
  TxnToken() = default;
  TxnToken(TxnToken&&) = default;
  TxnToken& operator=(TxnToken&& other) {
    if (this != &other) {
      Abandon();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  TxnToken(const TxnToken&) = delete;
  TxnToken& operator=(const TxnToken&) = delete;
  ~TxnToken() { Abandon(); }

  void Complete(Status status) {
    if (state_ == nullptr) return;
    internal::ResolveTxn(state_, std::move(status));
    state_.reset();
  }

  /// Timeline to stamp as the token moves through the pipeline; nullptr
  /// when the submission was not traced (engines skip all stamping then).
  TxnTimeline* trace() const {
    return state_ == nullptr ? nullptr : state_->trace.get();
  }

 private:
  friend class Engine;
  explicit TxnToken(std::shared_ptr<internal::TxnShared> state)
      : state_(std::move(state)) {}

  void Abandon() {
    if (state_ != nullptr) {
      internal::ResolveTxn(state_,
                           Status::Aborted("engine stopped before execution"));
      state_.reset();
    }
  }

  std::shared_ptr<internal::TxnShared> state_;
};

}  // namespace plp

#endif  // PLP_ENGINE_TXN_HANDLE_H_
