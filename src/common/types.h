// Core identifier and size types shared by every PLP module.
#ifndef PLP_COMMON_TYPES_H_
#define PLP_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace plp {

/// Size of every database page (heap, index, and catalog), in bytes.
inline constexpr std::size_t kPageSize = 8192;

/// Identifies a page within the (single, shared) database file.
using PageId = std::uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Runtime-only pointer-swizzling encoding for parent→child references in
/// resident index pages: the high bit tags the low 31 bits as a buffer-pool
/// frame index instead of a PageId, so hot descents resolve the child with
/// zero page-table lookups. kInvalidPageId also has the high bit set, so the
/// predicate must exclude it. Swizzled refs never reach WAL records or
/// on-disk page images — eviction and SMO logging unswizzle first.
inline constexpr PageId kSwizzledRefBit = 0x80000000u;
inline constexpr PageId SwizzleRef(std::uint32_t frame_index) {
  return kSwizzledRefBit | frame_index;
}
inline constexpr bool IsSwizzledRef(PageId v) {
  return (v & kSwizzledRefBit) != 0 && v != kInvalidPageId;
}
inline constexpr std::uint32_t SwizzledFrameIndex(PageId v) {
  return v & ~kSwizzledRefBit;
}

/// Slot number within a slotted page.
using SlotId = std::uint16_t;
inline constexpr SlotId kInvalidSlotId = std::numeric_limits<SlotId>::max();

/// Transaction identifier.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Log sequence number (byte offset into the log).
using Lsn = std::uint64_t;
inline constexpr Lsn kInvalidLsn = std::numeric_limits<Lsn>::max();

/// Logical partition identifier within one partitioned index.
using PartitionId = std::uint32_t;
inline constexpr PartitionId kInvalidPartitionId =
    std::numeric_limits<PartitionId>::max();

/// Record identifier: the physical address of a record in a heap file.
struct Rid {
  PageId page_id = kInvalidPageId;
  SlotId slot = kInvalidSlotId;

  bool valid() const { return page_id != kInvalidPageId; }
  friend bool operator==(const Rid&, const Rid&) = default;
  friend auto operator<=>(const Rid&, const Rid&) = default;
};

}  // namespace plp

template <>
struct std::hash<plp::Rid> {
  std::size_t operator()(const plp::Rid& rid) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(rid.page_id) << 16) | rid.slot);
  }
};

#endif  // PLP_COMMON_TYPES_H_
