// Unit tests for the durable-storage building blocks: disk manager page
// slots, segmented WAL (including torn-tail repair), group commit, the
// checkpoint image codec, and buffer-pool eviction mechanics.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/key_encoding.h"
#include "src/engine/engine.h"
#include "src/io/checkpoint.h"
#include "src/io/disk_manager.h"
#include "src/io/wal_storage.h"
#include "src/log/log_manager.h"
#include "src/storage/slotted_page.h"

namespace plp {
namespace {

class IoTest : public ::testing::Test {
 protected:
  IoTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~IoTest() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, DiskManagerRoundTrip) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  EXPECT_FALSE(dm->Contains(1));
  EXPECT_EQ(dm->max_page_id(), 0u);

  std::vector<char> page(kPageSize, 'x');
  PageSlotHeader h;
  h.page_class = 1;
  h.owner_tag = 7;
  h.table_tag = 3;
  h.page_lsn = 1234;
  ASSERT_TRUE(dm->WritePage(5, h, page.data()).ok());
  ASSERT_TRUE(dm->Sync().ok());
  EXPECT_TRUE(dm->Contains(5));
  EXPECT_EQ(dm->max_page_id(), 5u);

  std::vector<char> readback(kPageSize);
  PageSlotHeader rh;
  ASSERT_TRUE(dm->ReadPage(5, &rh, readback.data()).ok());
  EXPECT_EQ(rh.owner_tag, 7u);
  EXPECT_EQ(rh.table_tag, 3u);
  EXPECT_EQ(rh.page_lsn, 1234u);
  EXPECT_EQ(std::memcmp(page.data(), readback.data(), kPageSize), 0);

  EXPECT_TRUE(dm->ReadPage(4, &rh, readback.data()).IsNotFound());
}

TEST_F(IoTest, DiskManagerSurvivesReopen) {
  {
    std::unique_ptr<DiskManager> dm;
    ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
    std::vector<char> page(kPageSize, 'a');
    PageSlotHeader h;
    h.page_lsn = 42;
    ASSERT_TRUE(dm->WritePage(1, h, page.data()).ok());
    ASSERT_TRUE(dm->WritePage(3, h, page.data()).ok());
    ASSERT_TRUE(dm->FreePage(1).ok());
    ASSERT_TRUE(dm->Sync().ok());
  }
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  EXPECT_FALSE(dm->Contains(1));
  EXPECT_TRUE(dm->Contains(3));
  EXPECT_EQ(dm->AllPages().size(), 1u);
}

LogRecord MakeRecord(TxnId txn, const std::string& redo) {
  LogRecord rec;
  rec.type = LogType::kHeapInsert;
  rec.txn = txn;
  rec.rid = Rid{1, 0};
  rec.redo = redo;
  return rec;
}

TEST_F(IoTest, WalSegmentsRollAndScan) {
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), /*segment_size=*/256, &wal).ok());
  std::vector<Lsn> lsns;
  Lsn at = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string bytes = MakeRecord(1, "payload-" + std::to_string(i))
                                  .Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    lsns.push_back(at);
    at += bytes.size();
  }
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_GT(wal->num_segments(), 3u);  // tiny segments must have rolled

  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, lsns[static_cast<std::size_t>(count)]);
    EXPECT_EQ(rec.redo, "payload-" + std::to_string(count));
    ++count;
  }).ok());
  EXPECT_EQ(count, 50);

  // Scan from a mid-stream record boundary.
  count = 0;
  ASSERT_TRUE(wal->ScanFrom(lsns[30], [&](Lsn, const LogRecord&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 20);
}

TEST_F(IoTest, WalReopenContinuesStream) {
  Lsn end;
  {
    std::unique_ptr<WalStorage> wal;
    ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
    const std::string bytes = MakeRecord(1, "first").Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(wal->Sync().ok());
    end = wal->end_lsn();
  }
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
  EXPECT_EQ(wal->end_lsn(), end);
  const std::string bytes = MakeRecord(2, "second").Serialize();
  ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn, const LogRecord& rec) {
    ++count;
    EXPECT_EQ(rec.redo, count == 1 ? "first" : "second");
  }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(IoTest, WalTruncateBelowDropsWholeSegments) {
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), /*segment_size=*/256, &wal).ok());
  std::vector<Lsn> lsns;
  Lsn at = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string bytes =
        MakeRecord(1, "payload-" + std::to_string(i)).Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    lsns.push_back(at);
    at += bytes.size();
  }
  ASSERT_TRUE(wal->Sync().ok());
  const std::size_t before = wal->num_segments();
  ASSERT_GT(before, 3u);
  EXPECT_EQ(wal->start_lsn(), 0u);

  // A floor in the middle of the stream removes only segments that end
  // at or below it.
  const Lsn floor = lsns[30];
  const std::size_t removed = wal->TruncateBelow(floor);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(wal->num_segments(), before - removed);
  EXPECT_GT(wal->start_lsn(), 0u);
  EXPECT_LE(wal->start_lsn(), floor)
      << "a segment straddling the floor must survive";

  // Records from the floor on are intact.
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(floor, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, lsns[static_cast<std::size_t>(30 + count)]);
    EXPECT_EQ(rec.redo, "payload-" + std::to_string(30 + count));
    ++count;
  }).ok());
  EXPECT_EQ(count, 20);

  // Truncating everything keeps the newest (append) segment.
  wal->TruncateBelow(at);
  EXPECT_GE(wal->num_segments(), 1u);

  // Appends continue the stream, and a reopen accepts the truncated
  // directory (no gap at the dropped prefix).
  const std::string bytes = MakeRecord(2, "after-truncate").Serialize();
  ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE(wal->Sync().ok());
  wal.reset();
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 256, &wal).ok());
  bool saw_tail = false;
  ASSERT_TRUE(wal->ScanFrom(at, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, at);
    EXPECT_EQ(rec.redo, "after-truncate");
    saw_tail = true;
  }).ok());
  EXPECT_TRUE(saw_tail);
}

// A log record can straddle a segment boundary (the LogBuffer's flush
// sink hands WalStorage arbitrary byte chunks). Truncation that deletes
// the segment holding the record's head leaves the next segment starting
// mid-record: reopen (torn-tail repair) and scans must start at the
// persisted floor, not at the unparseable stored head.
TEST_F(IoTest, WalTruncationSurvivesRecordStraddlingSegmentBoundary) {
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), /*segment_size=*/256, &wal).ok());

  // Fill segment 0 to just under the roll threshold, then append a
  // straddler record in two chunks sized so the first chunk crosses the
  // threshold: the roll happens between the chunks and the straddler's
  // tail opens segment 1 mid-record (exactly what the LogBuffer's
  // arbitrary flush chunking can produce).
  Lsn at = 0;
  const std::string filler = MakeRecord(1, "head-segment").Serialize();
  while (at + filler.size() < 256) {
    ASSERT_TRUE(wal->Append(filler.data(), filler.size()).ok());
    at += filler.size();
  }
  const std::string straddler =
      MakeRecord(2, "straddles-the-roll-" + std::string(64, 's')).Serialize();
  const std::size_t head_chunk = static_cast<std::size_t>(256 - at) + 2;
  ASSERT_LT(head_chunk, straddler.size());
  ASSERT_TRUE(wal->Append(straddler.data(), head_chunk).ok());
  ASSERT_EQ(wal->num_segments(), 1u);
  ASSERT_TRUE(wal->Append(straddler.data() + head_chunk,
                          straddler.size() - head_chunk).ok());
  ASSERT_EQ(wal->num_segments(), 2u) << "tail chunk must open segment 1";
  const Lsn straddler_lsn = at;
  at += straddler.size();

  // Records entirely inside segment 1, then enough to roll further.
  std::vector<std::pair<Lsn, std::string>> tail_records;
  for (int i = 0; i < 20; ++i) {
    const std::string payload = "tail-" + std::to_string(i);
    const std::string bytes = MakeRecord(3, payload).Serialize();
    ASSERT_TRUE(wal->Append(bytes.data(), bytes.size()).ok());
    tail_records.emplace_back(at, payload);
    at += bytes.size();
  }
  ASSERT_TRUE(wal->Sync().ok());

  // Truncate below the first whole record of segment 1. Segment 0 dies;
  // segment 1 survives but starts with the straddler's tail bytes.
  const Lsn floor = tail_records[0].first;
  ASSERT_GT(floor, straddler_lsn);
  ASSERT_EQ(wal->TruncateBelow(floor), 1u);
  EXPECT_LT(wal->start_lsn(), floor) << "segment 1 starts mid-straddler";
  EXPECT_EQ(wal->floor_lsn(), floor);

  // Scans clamp to the floor and parse cleanly.
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, tail_records[static_cast<std::size_t>(count)].first);
    EXPECT_EQ(rec.redo, tail_records[static_cast<std::size_t>(count)].second);
    ++count;
  }).ok());
  EXPECT_EQ(count, 20);

  // Reopen: torn-tail repair must not misparse the mid-record head and
  // wipe the surviving segments.
  wal.reset();
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 256, &wal).ok());
  EXPECT_GE(wal->num_segments(), 1u) << "repair deleted live segments";
  EXPECT_EQ(wal->floor_lsn(), floor) << "floor survives reopen";
  count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn, const LogRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 20) << "all post-floor records must survive reopen";

  // The stream still appends and reads back.
  const std::string more = MakeRecord(4, "after-reopen").Serialize();
  ASSERT_TRUE(wal->Append(more.data(), more.size()).ok());
  bool saw = false;
  ASSERT_TRUE(wal->ScanFrom(at, [&](Lsn lsn, const LogRecord& rec) {
    EXPECT_EQ(lsn, at);
    EXPECT_EQ(rec.redo, "after-reopen");
    saw = true;
  }).ok());
  EXPECT_TRUE(saw);
}

TEST_F(IoTest, WalTornTailRepairedOnReopen) {
  std::string full;
  {
    std::unique_ptr<WalStorage> wal;
    ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
    full = MakeRecord(1, "kept").Serialize();
    ASSERT_TRUE(wal->Append(full.data(), full.size()).ok());
    const std::string torn = MakeRecord(2, "torn-away").Serialize();
    // Simulate a crash mid-write: only half the record hits the file.
    ASSERT_TRUE(wal->Append(torn.data(), torn.size() / 2).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::unique_ptr<WalStorage> wal;
  ASSERT_TRUE(WalStorage::Open(Path("wal"), 1u << 20, &wal).ok());
  EXPECT_EQ(wal->end_lsn(), full.size());  // torn bytes dropped
  int count = 0;
  ASSERT_TRUE(wal->ScanFrom(0, [&](Lsn, const LogRecord& rec) {
    ++count;
    EXPECT_EQ(rec.redo, "kept");
  }).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(IoTest, GroupCommitBatchesFsyncs) {
  LogConfig config;
  config.wal_dir = Path("wal");
  LogManager log(config);
  ASSERT_TRUE(log.open_status().ok());

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        LogRecord rec;
        rec.type = LogType::kCommit;
        rec.txn = static_cast<TxnId>(t * 1000 + i + 1);
        const Lsn lsn = log.Append(rec);
        log.FlushTo(lsn);  // "commit": must be durable before returning
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(log.flush_requests(), kThreads * kCommitsPerThread);
  EXPECT_GE(log.durable_lsn(), log.next_lsn());
  // The whole point of group commit: far fewer fsyncs than commits.
  EXPECT_LT(log.sync_count(), log.flush_requests());

  int scanned = 0;
  ASSERT_TRUE(log.Scan([&](Lsn, const LogRecord&) { ++scanned; }).ok());
  EXPECT_EQ(scanned, kThreads * kCommitsPerThread);
}

TEST_F(IoTest, CheckpointImageRoundTrip) {
  CheckpointImage img;
  img.dirty_pages = {{3, 100}, {9, 250}};
  img.active_txns = {{11, 90}, {12, 240}};
  img.next_txn_id = 13;
  CheckpointImage::TableSnapshot snap;
  snap.table_id = 0;
  snap.entries = {{"alpha", "rid-1"}, {"beta", std::string("\0\x01", 2)}};
  img.tables.push_back(snap);

  CheckpointImage out;
  ASSERT_TRUE(CheckpointImage::Decode(img.Encode(), &out).ok());
  EXPECT_EQ(out.dirty_pages, img.dirty_pages);
  EXPECT_EQ(out.active_txns, img.active_txns);
  EXPECT_EQ(out.next_txn_id, 13u);
  ASSERT_EQ(out.tables.size(), 1u);
  EXPECT_EQ(out.tables[0].entries, snap.entries);

  EXPECT_EQ(img.ScanStart(300), 90u);  // min of dpt/txn/checkpoint lsns
  EXPECT_EQ(CheckpointImage{}.ScanStart(300), 300u);
}

TEST_F(IoTest, MasterRecordRoundTrip) {
  Lsn lsn = 0;
  EXPECT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).IsNotFound());
  ASSERT_TRUE(WriteMasterRecord(Path("CHECKPOINT"), 777).ok());
  ASSERT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).ok());
  EXPECT_EQ(lsn, 777u);
  ASSERT_TRUE(WriteMasterRecord(Path("CHECKPOINT"), 999).ok());
  ASSERT_TRUE(ReadMasterRecord(Path("CHECKPOINT"), &lsn).ok());
  EXPECT_EQ(lsn, 999u);
}

TEST_F(IoTest, BufferPoolEvictsCleanAndDirtyHeapPages) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());

  BufferPoolConfig pc;
  pc.frame_budget = 4;
  pc.disk = dm.get();
  BufferPool pool(pc);
  ASSERT_TRUE(pool.evicting());

  // Allocate more heap pages than the budget; write a recognizable
  // payload into each so reloads can be verified.
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    PageRef page = pool.AllocatePage(PageClass::kHeap, /*table_tag=*/0);
    SlottedPage::Init(page->data());
    SlotId slot;
    ASSERT_TRUE(SlottedPage(page->data())
                    .Insert("page-" + std::to_string(i), &slot)
                    .ok());
    page->MarkDirty();
    ids.push_back(page->id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_GT(pool.disk_writes(), 0u);
  EXPECT_LE(pool.num_pages(), 5u);  // soft budget

  // Every page remains readable through the pool (disk read-through).
  for (int i = 0; i < 12; ++i) {
    PageRef page = pool.AcquirePage(ids[static_cast<std::size_t>(i)],
                                    /*tracked=*/true);
    ASSERT_TRUE(page) << i;
    Slice rec;
    ASSERT_TRUE(SlottedPage(page->data()).Get(0, &rec).ok()) << i;
    EXPECT_EQ(rec.ToString(), "page-" + std::to_string(i));
  }
  EXPECT_GT(pool.disk_reads(), 0u);
}

TEST_F(IoTest, PinnedPagesAreNotEvicted) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);

  PageRef pinned = pool.AllocatePage(PageClass::kHeap, 0);
  SlottedPage::Init(pinned->data());
  Page* pinned_raw = pinned.get();
  const PageId pinned_id = pinned->id();
  for (int i = 0; i < 8; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
    p->MarkDirty();
  }
  // The pinned frame survived the churn (same frame, still resident).
  EXPECT_EQ(pool.FixUnlocked(pinned_id), pinned_raw);
}

TEST_F(IoTest, EvictionNotifiesPageCaches) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);
  PageCache cache(&pool);

  std::vector<PageId> evicted;
  pool.RegisterEvictionListener(&evicted, [&evicted](PageId id) {
    evicted.push_back(id);
  });
  for (int i = 0; i < 6; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
    (void)cache.Fix(p->id());
  }
  pool.UnregisterEvictionListener(&evicted);
  EXPECT_FALSE(evicted.empty());
  // Cache entries for evicted ids were dropped: a fresh Fix must go back
  // through the pool and return the *current* frame.
  for (PageId id : evicted) {
    Page* via_cache = cache.Fix(id);
    Page* via_pool = pool.FixUnlocked(id);
    EXPECT_EQ(via_cache, via_pool);
  }
}

// End-to-end segment reclamation: a clean shutdown (flush + checkpoint)
// publishes a recovery floor above the old segments, which Checkpoint then
// deletes — and a crash-style reopen of the truncated WAL still recovers
// everything.
TEST_F(IoTest, CheckpointTruncatesUnreachableWalSegments) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.data_dir = Path("db");
  config.db.log.segment_size = 4096;
  config.db.txn.durable_commits = true;
  constexpr std::uint32_t kRecords = 300;
  {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok());
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < kRecords; ++k) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      req.Add(0, "t", key, [key](ExecContext& ctx) {
        return ctx.Insert(key, "payload-" + std::string(64, 'p'));
      });
      ASSERT_TRUE(engine->Execute(req).ok()) << k;
    }
    engine->Stop();
    WalStorage* wal = engine->db().log()->wal();
    ASSERT_NE(wal, nullptr);
    const std::size_t before = wal->num_segments();
    ASSERT_GT(before, 3u) << "workload must have rolled several segments";

    // Close flushes every dirty page, so its checkpoint's recovery floor
    // sits just below the checkpoint record: old segments are garbage.
    ASSERT_TRUE(engine->db().Close().ok());
    EXPECT_LT(wal->num_segments(), before);
    EXPECT_GT(wal->start_lsn(), 0u);
  }

  // Crash-style reopen (the Database above was closed cleanly, but the
  // reopen still replays master record + truncated WAL tail).
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok());
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  for (std::uint32_t k = 0; k < kRecords; k += 13) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    auto holder = std::make_shared<std::string>();
    req.Add(0, "t", key, [key, holder](ExecContext& ctx) {
      return ctx.Read(key, holder.get());
    });
    ASSERT_TRUE(engine->Execute(req).ok()) << k;
    EXPECT_EQ(*holder, "payload-" + std::string(64, 'p'));
  }
  engine->Stop();
}

TEST_F(IoTest, IndexPagesStayResident) {
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::Open(Path("data.db"), &dm).ok());
  BufferPoolConfig pc;
  pc.frame_budget = 2;
  pc.disk = dm.get();
  BufferPool pool(pc);

  Page* index_page = pool.NewPage(PageClass::kIndex);
  const PageId index_id = index_page->id();
  for (int i = 0; i < 8; ++i) {
    PageRef p = pool.AllocatePage(PageClass::kHeap, 0);
    SlottedPage::Init(p->data());
  }
  EXPECT_EQ(pool.FixUnlocked(index_id), index_page);
}

}  // namespace
}  // namespace plp
