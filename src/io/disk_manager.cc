#include "src/io/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace plp {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool PreadFull(int fd, char* buf, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buf + done, n - done,
                              static_cast<off_t>(off + done));
    if (r <= 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool PwriteFull(int fd, const char* buf, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pwrite(fd, buf + done, n - done,
                               static_cast<off_t>(off + done));
    if (r < 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Status DiskManager::Open(const std::string& path,
                         std::unique_ptr<DiskManager>* out) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);

  std::unique_ptr<DiskManager> dm(new DiskManager(path, fd));

  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat " + path);
  if (st.st_size == 0) {
    // Fresh file: write the file header block.
    char header[kFileHeaderSize] = {};
    std::uint32_t magic = kFileMagic;
    std::uint32_t version = 1;
    std::uint64_t page_size = kPageSize;
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &version, 4);
    std::memcpy(header + 8, &page_size, 8);
    if (!PwriteFull(fd, header, kFileHeaderSize, 0)) {
      return Errno("write file header");
    }
  } else {
    char header[16];
    if (!PreadFull(fd, header, sizeof(header), 0)) {
      return Errno("read file header");
    }
    std::uint32_t magic;
    std::memcpy(&magic, header, 4);
    if (magic != kFileMagic) {
      return Status::Corruption("bad data-file magic in " + path);
    }
    std::uint64_t page_size;
    std::memcpy(&page_size, header + 8, 8);
    if (page_size != kPageSize) {
      return Status::Corruption("data file has page size " +
                                std::to_string(page_size));
    }
    PLP_RETURN_IF_ERROR(dm->LoadAllocationTable());
  }
  *out = std::move(dm);
  return Status::OK();
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::LoadAllocationTable() {
  // Runs once from Open before the manager is published; the lock is
  // uncontended but keeps the allocation table's guard discipline visible
  // to the thread-safety analysis.
  MutexLock g(table_mu_);
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat");
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  char raw[kSlotHeaderSize];
  for (PageId id = 1; SlotOffset(id) + kSlotHeaderSize <= size; ++id) {
    if (!PreadFull(fd_, raw, kSlotHeaderSize, SlotOffset(id))) {
      return Errno("read slot header");
    }
    scanned_max_ = id;
    PageSlotHeader h;
    std::memcpy(&h, raw, sizeof(h));
    if (h.magic == kPageMagic &&
        (h.flags & kSlotFlagVolatileIndex) != 0) {
      // Slot of an unlogged secondary-index page from the previous run:
      // the tree is rebuilt from scratch, so nothing will ever read it.
      // Reclaim it instead of leaking the slot forever.
      free_ids_.push_back(id);
      continue;
    }
    if (h.magic == kPageMagic) {
      live_.emplace(id, h);
    } else {
      // Freed (or never-written) hole below the file's end: reusable.
      free_ids_.push_back(id);
    }
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, PageSlotHeader* header, char* data) {
  {
    MutexLock g(table_mu_);
    auto it = live_.find(id);
    if (it == live_.end()) {
      return Status::NotFound("page " + std::to_string(id) + " not on disk");
    }
  }
  char buf[kSlotSize];
  if (!PreadFull(fd_, buf, kSlotSize, SlotOffset(id))) {
    return Errno("read page " + std::to_string(id));
  }
  PageSlotHeader h;
  std::memcpy(&h, buf, sizeof(h));
  if (h.magic != kPageMagic) {
    return Status::Corruption("torn page slot " + std::to_string(id));
  }
  if (header != nullptr) *header = h;
  std::memcpy(data, buf + kSlotHeaderSize, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const PageSlotHeader& header,
                              const char* data) {
  if (id == kInvalidPageId || id == 0) {
    return Status::InvalidArgument("bad page id");
  }
  char buf[kSlotSize] = {};
  PageSlotHeader h = header;
  h.magic = kPageMagic;
  std::memcpy(buf, &h, sizeof(h));
  std::memcpy(buf + kSlotHeaderSize, data, kPageSize);
  if (!PwriteFull(fd_, buf, kSlotSize, SlotOffset(id))) {
    return Errno("write page " + std::to_string(id));
  }
  {
    MutexLock g(table_mu_);
    live_[id] = h;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::FreePage(PageId id) {
  {
    MutexLock g(table_mu_);
    if (live_.erase(id) == 0) return Status::OK();  // never persisted
    // Only a live->free transition pushes: a replayed free of an
    // already-reclaimed slot must not enqueue the id twice.
    free_ids_.push_back(id);
  }
  char zero[kSlotHeaderSize] = {};
  if (!PwriteFull(fd_, zero, kSlotHeaderSize, SlotOffset(id))) {
    return Errno("free page " + std::to_string(id));
  }
  return Status::OK();
}

PageId DiskManager::TakeFreeId() {
  if (!reuse_enabled_.load(std::memory_order_acquire)) return kInvalidPageId;
  MutexLock g(table_mu_);
  while (!free_ids_.empty()) {
    const PageId id = free_ids_.back();
    free_ids_.pop_back();
    // Recovery may have re-materialized a reclaimed slot (WAL-tail replay
    // wrote it back live); such entries are stale — drop them.
    if (live_.count(id) == 0) return id;
  }
  return kInvalidPageId;
}

std::size_t DiskManager::free_slot_count() {
  MutexLock g(table_mu_);
  return free_ids_.size();
}

Status DiskManager::Sync() {
  if (::fdatasync(fd_) != 0) return Errno("fdatasync");
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool DiskManager::Contains(PageId id) {
  MutexLock g(table_mu_);
  return live_.count(id) > 0;
}

std::vector<std::pair<PageId, PageSlotHeader>> DiskManager::AllPages() {
  MutexLock g(table_mu_);
  std::vector<std::pair<PageId, PageSlotHeader>> out(live_.begin(),
                                                     live_.end());
  return out;
}

PageId DiskManager::max_page_id() {
  MutexLock g(table_mu_);
  PageId max = scanned_max_;
  for (const auto& [id, h] : live_) max = std::max(max, id);
  return max;
}

}  // namespace plp
