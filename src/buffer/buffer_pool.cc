#include "src/buffer/buffer_pool.h"

namespace plp {

BufferPool::BufferPool() {
  shards_.reserve(kNumShards);
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BufferPool::~BufferPool() = default;

Page* BufferPool::NewPage(PageClass page_class) {
  const PageId id = next_page_id_.fetch_add(1, std::memory_order_relaxed);
  auto page = std::make_unique<Page>(id, page_class);
  Page* raw = page.get();
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  shard.pages.emplace(id, std::move(page));
  shard.mu.unlock();
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

Page* BufferPool::NewPageWithId(PageId id, PageClass page_class) {
  // Keep the allocator ahead of recovered ids.
  PageId expected = next_page_id_.load(std::memory_order_relaxed);
  while (expected <= id && !next_page_id_.compare_exchange_weak(
                               expected, id + 1, std::memory_order_relaxed)) {
  }
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  auto it = shard.pages.find(id);
  if (it != shard.pages.end()) {
    Page* existing = it->second.get();
    shard.mu.unlock();
    return existing;
  }
  auto page = std::make_unique<Page>(id, page_class);
  Page* raw = page.get();
  shard.pages.emplace(id, std::move(page));
  shard.mu.unlock();
  num_pages_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

Page* BufferPool::Fix(PageId id) {
  if (id == kInvalidPageId) return nullptr;
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  auto it = shard.pages.find(id);
  Page* p = it == shard.pages.end() ? nullptr : it->second.get();
  shard.mu.unlock();
  return p;
}

Page* BufferPool::FixUnlocked(PageId id) {
  if (id == kInvalidPageId) return nullptr;
  Shard& shard = ShardFor(id);
  // No CS accounting: callers own the page exclusively, and frames are
  // stable (no eviction), so a racy map read is safe only if no concurrent
  // insert rehashes this shard. Guard with the raw mutex but do not charge
  // a critical section — this models direct pointer access.
  std::lock_guard<std::mutex> g(shard.mu.raw());
  auto it = shard.pages.find(id);
  return it == shard.pages.end() ? nullptr : it->second.get();
}

void BufferPool::FreePage(PageId id) {
  Shard& shard = ShardFor(id);
  shard.mu.lock();
  if (shard.pages.erase(id) > 0) {
    num_pages_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.mu.unlock();
}

std::vector<PageId> BufferPool::DirtyPages(std::size_t limit) {
  std::vector<PageId> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> g(shard->mu.raw());
    for (auto& [id, page] : shard->pages) {
      if (page->dirty()) {
        out.push_back(id);
        if (out.size() >= limit) return out;
      }
    }
  }
  return out;
}

}  // namespace plp
