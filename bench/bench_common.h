// Shared helpers for the figure/table reproduction harnesses.
#ifndef PLP_BENCH_BENCH_COMMON_H_
#define PLP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"
#include "src/workload/workload_driver.h"

namespace plp::bench {

/// Builds and starts an engine for one experiment. Config errors abort
/// the bench (they are programming errors here).
inline std::unique_ptr<Engine> MakeEngine(const EngineConfig& config) {
  auto created = CreateEngine(config);
  if (!created.ok()) {
    std::fprintf(stderr, "CreateEngine(%s): %s\n",
                 SystemDesignName(config.design),
                 created.status().ToString().c_str());
    std::abort();
  }
  auto engine = std::move(created).value();
  engine->Start();
  return engine;
}

inline std::unique_ptr<Engine> MakeEngine(SystemDesign design,
                                          int workers = 4,
                                          bool use_mrbt = false,
                                          bool enable_sli = true) {
  EngineConfig config;
  config.design = design;
  config.num_workers = workers;
  config.use_mrbt = use_mrbt;
  config.enable_sli = enable_sli;
  return MakeEngine(config);
}

/// Scales bench durations via PLP_BENCH_MS (default 300ms per window).
inline std::chrono::milliseconds WindowMs() {
  const char* env = std::getenv("PLP_BENCH_MS");
  return std::chrono::milliseconds(env ? std::atoi(env) : 300);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n  (reproduces %s)\n", title, paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintCsBreakdownRow(const std::string& label,
                                const CsCounts& delta,
                                std::uint64_t committed) {
  if (committed == 0) return;
  const double inv = 1.0 / static_cast<double>(committed);
  std::printf("%-16s", label.c_str());
  for (int c = 0; c < kNumCsCategories; ++c) {
    std::printf(" %9.2f", static_cast<double>(delta.entries[c]) * inv);
  }
  std::printf(" | total %9.2f contended %7.2f\n",
              static_cast<double>(delta.TotalEntries()) * inv,
              static_cast<double>(delta.TotalContended()) * inv);
}

inline void PrintCsBreakdownHeader() {
  std::printf("%-16s", "design");
  for (int c = 0; c < kNumCsCategories; ++c) {
    std::printf(" %9.9s", CsCategoryName(static_cast<CsCategory>(c)));
  }
  std::printf(" |   (CS entries per transaction)\n");
}

/// Machine-readable results for cross-PR perf tracking. Each bench binary
/// creates one reporter; rows accumulate and the destructor writes
/// `BENCH_<bench>.json` (into $PLP_BENCH_JSON_DIR when set, else the
/// working directory):
///   {"bench": "...", "results": [
///     {"name": "...", "threads": N, "ktps": X, "p99_us": Y, ...}, ...]}
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { Write(); }

  /// Records one experiment's result line. `mode` distinguishes closed-
  /// loop (blocking Execute) from open-loop (pipelined Submit) runs;
  /// `inflight` is the admission-gate high-water mark over the window and
  /// the latency percentiles are completion latencies in open-loop mode.
  /// `metrics_json` (optional) is a serialized engine stats snapshot —
  /// StatsSnapshot::ToJson() — attached to the row as a "metrics" object
  /// so perf regressions can be attributed to specific subsystem counters.
  void Add(const std::string& name, int threads, const DriverResult& r,
           const char* mode = "closed-loop",
           const std::string& metrics_json = "") {
    char row[640];
    std::snprintf(
        row, sizeof(row),
        "{\"name\": \"%s\", \"threads\": %d, \"mode\": \"%s\", "
        "\"ktps\": %.3f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"committed\": %llu, \"aborted\": %llu, "
        "\"completed_txns\": %llu, \"inflight\": %llu, "
        "\"cs_per_txn\": %.2f",
        name.c_str(), threads, mode, r.ktps(), r.p50_us(), r.p99_us(),
        static_cast<unsigned long long>(r.committed),
        static_cast<unsigned long long>(r.aborted),
        static_cast<unsigned long long>(r.committed + r.aborted),
        static_cast<unsigned long long>(r.peak_inflight), r.cs_per_txn());
    std::string full(row);
    if (!metrics_json.empty()) {
      full += ", \"metrics\": " + metrics_json;
    }
    full += "}";
    rows_.push_back(std::move(full));
  }

  /// Records a scalar metric (for benches without a driver window).
  void AddMetric(const std::string& name, const std::string& metric,
                 double value) {
    char row[256];
    std::snprintf(row, sizeof(row),
                  "{\"name\": \"%s\", \"%s\": %.4f}", name.c_str(),
                  metric.c_str(), value);
    rows_.emplace_back(row);
  }

  void Write() {
    if (written_ || rows_.empty()) return;
    written_ = true;
    const char* dir = std::getenv("PLP_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                             "BENCH_" + bench_name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\"bench\": \"%s\", \"results\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\n[bench-json] wrote %s (%zu rows)\n", path.c_str(),
                rows_.size());
  }

 private:
  std::string bench_name_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

}  // namespace plp::bench

#endif  // PLP_BENCH_BENCH_COMMON_H_
