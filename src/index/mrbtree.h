// Multi-rooted B+Tree (MRBTree) — the paper's access method (Section 3.1,
// Appendix A).
//
// A partition table maps disjoint key ranges to sub-tree roots; each
// sub-tree is an ordinary B+Tree one level shallower than the equivalent
// single-rooted tree. Structure modifications are confined to a sub-tree,
// so SMOs on different partitions proceed in parallel; repartitioning is a
// metadata operation (slice/meld) that moves almost no data.
#ifndef PLP_INDEX_MRBTREE_H_
#define PLP_INDEX_MRBTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/index/btree.h"
#include "src/index/partition_table.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class IndexLogger;

class MRBTree {
 public:
  /// Creates an MRBTree whose partitions start at the given keys.
  /// `boundaries[0]` must be empty (the -inf partition); each boundary
  /// starts a new partition. One empty sub-tree is allocated per range.
  ///
  /// With `logger`, sub-trees log their pages physiologically and the
  /// partition table is logically logged on create and after every
  /// slice/meld (persistent-index mode). `log_creation = false` builds
  /// restart placeholders: nothing is logged, and the first
  /// AdoptPartitions() call replaces (and frees) the placeholder roots
  /// with the recovered ones.
  static Status Create(BufferPool* pool, LatchPolicy policy,
                       std::vector<std::string> boundaries,
                       std::unique_ptr<MRBTree>* out,
                       IndexLogger* logger = nullptr,
                       bool log_creation = true);

  MRBTree(const MRBTree&) = delete;
  MRBTree& operator=(const MRBTree&) = delete;

  // -- Record operations (route via the ranges map, then delegate) --------
  // `txn` tags the physiological WAL records in persistent-index mode
  // (loser-undo anchors); kInvalidTxnId marks a system/compensation op.
  Status Insert(Slice key, Slice value, TxnId txn = kInvalidTxnId);
  Status Probe(Slice key, std::string* value);
  Status Update(Slice key, Slice value, TxnId txn = kInvalidTxnId);
  Status Delete(Slice key, TxnId txn = kInvalidTxnId);

  /// Cross-partition ordered scan starting at `start`.
  Status ScanFrom(Slice start,
                  const std::function<bool(Slice, Slice)>& fn);

  // -- Partition-aware access (PLP workers use these directly, bypassing
  //    the routing lookup during normal processing) -----------------------
  PartitionId PartitionFor(Slice key) const {
    return table_->PartitionFor(key);
  }
  BTree* subtree(PartitionId p);
  std::size_t num_partitions() const { return table_->NumPartitions(); }
  /// Start key of partition p ("" for partition 0).
  std::string boundary(PartitionId p) const;
  /// All partition start keys, in order.
  std::vector<std::string> boundaries() const;

  // -- Repartitioning (callers quiesce affected partitions first) ---------

  /// Splits the partition containing `split_key` into two at that key
  /// (sub-tree slice + partition-table insert).
  Status Split(Slice split_key);

  /// Melds partition `p` into its left neighbor `p-1`.
  Status Merge(PartitionId p);

  // -- Persistence (persistent-index mode) ---------------------------------

  /// Current (boundary, sub-tree root) pairs — the logically-logged
  /// partition metadata a checkpoint records instead of an index snapshot.
  std::vector<std::pair<std::string, PageId>> PartitionEntries() const;

  /// Restart recovery: replaces the partition layout with recovered
  /// (boundary, root) pairs; sub-trees adopt the given roots. The first
  /// call on a restart placeholder frees the placeholder's empty pages.
  Status AdoptPartitions(
      const std::vector<std::pair<std::string, PageId>>& parts);

  /// Recomputes per-sub-tree entry counters from the pages (after
  /// AdoptPartitions the counters are unknown).
  void RecountEntries();

  // -- Introspection -------------------------------------------------------
  std::uint64_t num_entries() const;
  std::uint64_t smo_count() const;
  PartitionTable& table() { return *table_; }
  IndexLogger* logger() const { return logger_; }
  Status CheckIntegrity();

 private:
  MRBTree(BufferPool* pool, LatchPolicy policy);

  Status PersistTable();

  BufferPool* pool_;
  LatchPolicy policy_;
  IndexLogger* logger_ = nullptr;
  bool placeholder_ = false;  // restart placeholder awaiting adoption
  std::unique_ptr<PartitionTable> table_;

  mutable SharedMutex mu_;  // guards subtrees_/boundaries_ layout
  std::vector<std::string> boundaries_ PLP_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<BTree>> subtrees_ PLP_GUARDED_BY(mu_);
};

}  // namespace plp

#endif  // PLP_INDEX_MRBTREE_H_
