// Repartitioning cost-model tests (Appendix C / Tables 1-2).
#include <gtest/gtest.h>

#include "src/engine/cost_model.h"

namespace plp {
namespace {

CostModelParams PaperParams() {
  // Table 1 setup: height-3 tree, 170 entries of 32B per node, 100B
  // records, a half-node (85 entries) moving at every level of the split
  // path.
  CostModelParams p;
  p.height = 3;
  p.entries_per_node = 170;
  p.m = {85, 85, 85};
  p.record_size = 100;
  p.entry_size = 32;
  return p;
}

TEST(CostModelTest, PlpRegularMovesNoRecords) {
  const RepartitionCost c =
      ComputeRepartitionCost(RepartitionDesign::kPlpRegular, PaperParams());
  EXPECT_EQ(c.records_moved, 0u);
  EXPECT_EQ(c.entries_moved, 255u);  // 3 x 85
  EXPECT_EQ(c.pointer_updates, 7u);  // 2h+1
  EXPECT_EQ(c.primary_updates, 0u);
  EXPECT_EQ(c.secondary_updates, 0u);
  // ~8KB of index entries, matching Table 1.
  EXPECT_NEAR(static_cast<double>(c.bytes_moved(PaperParams())), 8160, 100);
}

TEST(CostModelTest, PlpLeafMovesOneLeafOfRecords) {
  const RepartitionCost c =
      ComputeRepartitionCost(RepartitionDesign::kPlpLeaf, PaperParams());
  EXPECT_EQ(c.records_moved, 85u);  // m1
  EXPECT_EQ(c.pages_read, 1u);
  EXPECT_EQ(c.primary_updates, 85u);
  EXPECT_EQ(c.secondary_updates, 85u);
  // 8.5KB of records (Table 1 reports 8.3KB with slightly different m).
  EXPECT_NEAR(static_cast<double>(c.records_moved * 100), 8500, 100);
}

TEST(CostModelTest, PlpPartitionMovesWholePartition) {
  const RepartitionCost c = ComputeRepartitionCost(
      RepartitionDesign::kPlpPartition, PaperParams());
  // m1 + n^2*(m3-1) + n*(m2-1) = 85 + 170^2*84 + 170*84 = 2441965.
  EXPECT_EQ(c.records_moved, 2441965u);
  // ~233MB of 100B records, matching Table 1's 233MB.
  EXPECT_NEAR(static_cast<double>(c.records_moved) * 100 / 1e6, 244, 15);
  // ~14k heap pages read (Table 1: 14365).
  EXPECT_NEAR(static_cast<double>(c.pages_read), 14364, 30);
  EXPECT_EQ(c.primary_updates, c.records_moved);
}

TEST(CostModelTest, SharedNothingUsesInsertsAndDeletes) {
  const CostModelParams p = PaperParams();
  const RepartitionCost plp =
      ComputeRepartitionCost(RepartitionDesign::kPlpPartition, p);
  const RepartitionCost sn =
      ComputeRepartitionCost(RepartitionDesign::kSharedNothing, p);
  EXPECT_EQ(sn.records_moved, plp.records_moved);
  EXPECT_EQ(sn.primary_updates, 0u);
  EXPECT_EQ(sn.primary_inserts, sn.records_moved);
  EXPECT_EQ(sn.primary_deletes, sn.records_moved);
  EXPECT_EQ(sn.secondary_inserts, sn.records_moved);
  // Index entry movement is a PLP-only benefit.
  EXPECT_EQ(sn.entries_moved, 0u);
}

TEST(CostModelTest, ClusteredPlpMovesLeafRecordsOnly) {
  const RepartitionCost c =
      ComputeRepartitionCost(RepartitionDesign::kPlpClustered, PaperParams());
  EXPECT_EQ(c.records_moved, 85u);      // leaf entries ARE the records
  EXPECT_EQ(c.entries_moved, 170u);     // levels 2..3 only
  EXPECT_EQ(c.secondary_updates, 85u);
  EXPECT_EQ(c.primary_updates, 0u);     // no separate RID index
}

TEST(CostModelTest, ClusteredSharedNothingStillMovesEverything) {
  const RepartitionCost c = ComputeRepartitionCost(
      RepartitionDesign::kSharedNothingClustered, PaperParams());
  EXPECT_EQ(c.records_moved, 2441965u);
  EXPECT_EQ(c.primary_inserts, c.records_moved);
}

TEST(CostModelTest, OrderingMatchesPaperConclusion) {
  // PLP-Regular < PLP-Leaf << PLP-Partition == Shared-Nothing in moved
  // bytes — the paper's Table 1 takeaway.
  const CostModelParams p = PaperParams();
  const auto reg =
      ComputeRepartitionCost(RepartitionDesign::kPlpRegular, p).bytes_moved(p);
  const auto leaf =
      ComputeRepartitionCost(RepartitionDesign::kPlpLeaf, p).bytes_moved(p);
  const auto part = ComputeRepartitionCost(
      RepartitionDesign::kPlpPartition, p).bytes_moved(p);
  EXPECT_LT(reg, leaf);
  EXPECT_LT(leaf, part / 100);
}

TEST(CostModelTest, TallerTreesExplodeSharedNothingCost) {
  // "for a larger heap file with a B+tree of height 4, the repartitioning
  // cost for Shared-Nothing (and PLP-Partition) becomes prohibitive".
  CostModelParams p = PaperParams();
  const auto h3 = ComputeRepartitionCost(
      RepartitionDesign::kSharedNothing, p).records_moved;
  p.height = 4;
  p.m = {85, 85, 85, 85};
  const auto h4 = ComputeRepartitionCost(
      RepartitionDesign::kSharedNothing, p).records_moved;
  EXPECT_GT(h4, h3 * 100);
  // PLP-Leaf stays flat.
  const auto leaf4 = ComputeRepartitionCost(
      RepartitionDesign::kPlpLeaf, p).records_moved;
  EXPECT_EQ(leaf4, 85u);
}

TEST(CostModelTest, FormatRowsAreStable) {
  const CostModelParams p = PaperParams();
  for (RepartitionDesign d :
       {RepartitionDesign::kPlpRegular, RepartitionDesign::kPlpLeaf,
        RepartitionDesign::kPlpPartition, RepartitionDesign::kSharedNothing,
        RepartitionDesign::kPlpClustered,
        RepartitionDesign::kSharedNothingClustered}) {
    const std::string row = FormatCostRow(d, p);
    EXPECT_NE(row.find(RepartitionDesignName(d)), std::string::npos);
    EXPECT_NE(row.find("ptr-upd"), std::string::npos);
  }
}

}  // namespace
}  // namespace plp
