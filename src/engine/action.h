// Transaction requests as directed graphs of actions (Section 3.1).
//
// The partition manager "breaks transactions into directed graphs, passing
// each node to the appropriate thread". We model the graph as a series of
// phases (rendezvous points); the actions inside one phase are independent
// and may run on different partition workers in parallel. Dataflow between
// phases goes through a state object the workload closure captures.
#ifndef PLP_ENGINE_ACTION_H_
#define PLP_ENGINE_ACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/txn/transaction.h"

namespace plp {

/// Partition-local record operations available to an action. Every key the
/// action touches must route to the action's own partition — that is the
/// invariant the partition manager maintains and the reason the PLP
/// implementations can skip latching.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  virtual Status Read(Slice key, std::string* payload) = 0;
  virtual Status Insert(Slice key, Slice payload) = 0;
  virtual Status Update(Slice key, Slice payload) = 0;
  virtual Status Delete(Slice key) = 0;

  /// In-order scan over [start, end); stops early when fn returns false.
  virtual Status ScanRange(Slice start, Slice end,
                           const std::function<bool(Slice, Slice)>& fn) = 0;

  virtual Transaction* txn() = 0;
};

using ActionFn = std::function<Status(ExecContext&)>;

/// One node of the transaction flow graph: runs `fn` against `table`,
/// routed by `key`.
struct Action {
  std::string table;
  std::string key;
  ActionFn fn;
};

/// Actions within a phase are independent; phases run in order with a
/// rendezvous between them.
struct Phase {
  std::vector<Action> actions;
};

class TxnRequest {
 public:
  TxnRequest() = default;

  /// Appends an action to phase `phase` (phases are created on demand).
  void Add(std::size_t phase, std::string table, std::string key,
           ActionFn fn) {
    if (phases.size() <= phase) phases.resize(phase + 1);
    phases[phase].actions.push_back(
        {std::move(table), std::move(key), std::move(fn)});
  }

  std::vector<Phase> phases;
};

/// Outcome of one action, including the compensation closures that must run
/// on the same partition worker if the transaction aborts.
struct ActionResult {
  Status status;
  std::vector<std::function<Status()>> undos;
};

}  // namespace plp

#endif  // PLP_ENGINE_ACTION_H_
