// Critical-section accounting (Section 2 of the paper).
//
// Every critical section in the storage manager is tagged with the service
// that owns it (lock manager, page latching, buffer pool, ...). Entries and
// contended entries are tallied per thread with no shared-cacheline writes on
// the hot path; a collector aggregates across threads. This reproduces the
// measurement infrastructure behind Figures 1, 2 and 3.
#ifndef PLP_SYNC_CS_PROFILER_H_
#define PLP_SYNC_CS_PROFILER_H_

#include <array>
#include <cstdint>
#include <string>

namespace plp {

/// Storage-manager service that owns a critical section (Figure 1 legend).
enum class CsCategory : int {
  kLockMgr = 0,
  kPageLatch = 1,
  kBufferPool = 2,
  kMetadata = 3,     // catalog / free-space management
  kLogMgr = 4,
  kXctMgr = 5,
  kMessagePassing = 6,
  kUncategorized = 7,
};
inline constexpr int kNumCsCategories = 8;

const char* CsCategoryName(CsCategory c);

/// Kind of database page a latch protects (Figures 2 and 3 legend).
enum class PageClass : int {
  kIndex = 0,
  kHeap = 1,
  kCatalog = 2,  // metadata and free-space pages
};
inline constexpr int kNumPageClasses = 3;

const char* PageClassName(PageClass c);

/// Aggregated counters. Plain data; returned by CsProfiler::Collect().
struct CsCounts {
  std::array<std::uint64_t, kNumCsCategories> entries{};
  std::array<std::uint64_t, kNumCsCategories> contended{};
  /// Nanoseconds spent blocked waiting to enter, per category.
  std::array<std::uint64_t, kNumCsCategories> wait_ns{};
  std::array<std::uint64_t, kNumPageClasses> latches{};
  std::array<std::uint64_t, kNumPageClasses> latches_contended{};
  /// Nanoseconds spent blocked on page latches, per page class
  /// ("Idx Latch Cont." / "Heap Latch Cont." in Figures 6 and 7).
  std::array<std::uint64_t, kNumPageClasses> latch_wait_ns{};

  std::uint64_t TotalEntries() const;
  std::uint64_t TotalContended() const;
  std::uint64_t TotalLatches() const;

  CsCounts& operator+=(const CsCounts& other);
  /// Counter-wise difference (for before/after measurement windows).
  CsCounts operator-(const CsCounts& other) const;
};

/// Process-wide profiler. Threads record into thread-local state registered
/// with the singleton; Collect() sums live threads plus retired ones.
class CsProfiler {
 public:
  static CsProfiler& Global();

  CsProfiler(const CsProfiler&) = delete;
  CsProfiler& operator=(const CsProfiler&) = delete;

  /// Records one critical-section entry on the calling thread. `contended`
  /// means the acquirer had to wait (for `wait_ns` nanoseconds).
  static void Record(CsCategory category, bool contended,
                     std::uint64_t wait_ns = 0);

  /// Records a page-latch acquisition (also counts as a kPageLatch entry).
  static void RecordLatch(PageClass page_class, bool contended,
                          std::uint64_t wait_ns = 0);

  /// Sums counters across all threads that ever recorded.
  CsCounts Collect();

  /// Zeroes all counters (live and retired). Call between experiments.
  void Reset();

  /// Globally enable/disable recording (avoids overhead when not measuring).
  static void SetEnabled(bool enabled);
  static bool enabled();

 private:
  CsProfiler() = default;

  struct ThreadState;
  static ThreadState& Local();

  friend struct ThreadStateHolder;
};

}  // namespace plp

#endif  // PLP_SYNC_CS_PROFILER_H_
