#include "src/log/log_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/clock.h"
#include "src/io/wal_storage.h"
#include "src/metrics/flight_recorder.h"

namespace plp {

LogManager::LogManager(LogConfig config) : config_(config) {
  MetricsRegistry* m = config_.metrics != nullptr
                           ? config_.metrics
                           : MetricsRegistry::Scratch();
  appends_metric_ = m->counter("log.appends");
  append_bytes_metric_ = m->counter("log.append_bytes");
  fsyncs_metric_ = m->counter("log.fsyncs");
  truncated_segments_metric_ = m->counter("log.wal_segments_truncated");
  fsync_us_metric_ = m->histogram("log.fsync_us");
  sync_batch_bytes_metric_ = m->histogram("log.sync_batch_bytes");

  Lsn start_lsn = 0;
  LogBuffer::Sink sink;
  if (!config_.wal_dir.empty()) {
    open_status_ =
        WalStorage::Open(config_.wal_dir, config_.segment_size, &wal_);
    if (open_status_.ok()) {
      start_lsn = wal_->end_lsn();
      gc_synced_lsn_ = start_lsn;
      synced_floor_metric_.store(start_lsn, std::memory_order_relaxed);
      WalStorage* wal = wal_.get();
      sink = [wal](const char* data, std::size_t size) {
        // The buffer's flush path is already serialized; surface I/O
        // errors loudly rather than silently dropping log bytes.
        Status st = wal->Append(data, size);
        if (!st.ok()) {
          std::fprintf(stderr, "FATAL: WAL append failed: %s\n",
                       st.ToString().c_str());
          std::abort();
        }
      };
    }
  }
  if (!wal_ && config_.retain_for_recovery) {
    sink = [this](const char* data, std::size_t size) {
      MutexLock g(retained_mu_);
      retained_.append(data, size);
    };
  }
  buffer_ =
      std::make_unique<LogBuffer>(config_.buffer_size, std::move(sink),
                                  start_lsn);
}

LogManager::~LogManager() = default;

Lsn LogManager::Append(const LogRecord& record) {
  std::string bytes = record.Serialize();
  appends_metric_->Increment();
  append_bytes_metric_->Add(bytes.size());
  return buffer_->Append(bytes);
}

Lsn LogManager::durable_lsn() const {
  if (wal_ != nullptr) return wal_->synced_lsn();
  return buffer_->durable_lsn();
}

void LogManager::FlushTo(Lsn lsn) {
  flush_requests_.fetch_add(1, std::memory_order_relaxed);
  if (wal_ == nullptr) {
    buffer_->FlushTo(lsn);
    return;
  }
  if (!config_.group_commit) {
    buffer_->FlushTo(lsn);
    SyncWal(lsn);
    return;
  }
  // Group commit: one leader drains + fsyncs for every waiter whose target
  // is covered; late arrivals become the next round's leader.
  MutexLock lk(gc_mu_);
  while (gc_synced_lsn_ <= lsn) {
    if (!gc_leader_active_) {
      gc_leader_active_ = true;
      lk.Unlock();
      buffer_->FlushTo(lsn);  // bytes reach the wal file (no fsync yet)
      const Lsn written = buffer_->durable_lsn();
      SyncWal(written);
      lk.Lock();
      gc_synced_lsn_ = std::max(gc_synced_lsn_, written);
      gc_leader_active_ = false;
      gc_cv_.notify_all();
    } else {
      lk.Wait(gc_cv_);
    }
  }
}

void LogManager::SyncWal(Lsn lsn) {
  const std::uint64_t t0 = NowNanos();
  Status st = wal_->Sync();
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: WAL sync failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  fsyncs_metric_->Increment();
  fsync_us_metric_->Record((NowNanos() - t0) / 1000);
  // Group-commit batch size: how many new bytes this fsync made durable.
  Lsn prev = synced_floor_metric_.load(std::memory_order_relaxed);
  while (lsn > prev && !synced_floor_metric_.compare_exchange_weak(
                           prev, lsn, std::memory_order_relaxed)) {
  }
  if (lsn > prev) {
    sync_batch_bytes_metric_->Record(lsn - prev);
    FlightRecorder::Emit(TraceEventType::kWalFsync, t0, NowNanos() - t0,
                         lsn - prev, lsn);
  }
}

void LogManager::FlushAll() {
  buffer_->FlushAll();
  if (wal_ != nullptr) {
    SyncWal(buffer_->durable_lsn());
    MutexLock g(gc_mu_);
    gc_synced_lsn_ = std::max(gc_synced_lsn_, buffer_->durable_lsn());
  }
}

Status LogManager::ScanFrom(
    Lsn from, const std::function<void(Lsn, const LogRecord&)>& fn) {
  if (wal_ != nullptr) {
    buffer_->FlushAll();
    return wal_->ScanFrom(from, fn);
  }
  if (!config_.retain_for_recovery) {
    return Status::NotSupported("log not retained; set retain_for_recovery");
  }
  buffer_->FlushAll();
  MutexLock g(retained_mu_);
  std::size_t off = from >= retained_base_ ? from - retained_base_ : 0;
  while (off < retained_.size()) {
    LogRecord rec;
    std::size_t consumed = 0;
    if (!LogRecord::Deserialize(retained_.data() + off, retained_.size() - off,
                                &rec, &consumed)) {
      return Status::Corruption("truncated log record at offset " +
                                std::to_string(off));
    }
    fn(retained_base_ + static_cast<Lsn>(off), rec);
    off += consumed;
  }
  return Status::OK();
}

std::size_t LogManager::TruncateWalBelow(Lsn floor) {
  const std::size_t removed =
      wal_ != nullptr ? wal_->TruncateBelow(floor) : 0;
  if (removed > 0) truncated_segments_metric_->Add(removed);
  return removed;
}

}  // namespace plp
