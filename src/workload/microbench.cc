#include "src/workload/microbench.h"

#include <cstring>

#include "src/common/key_encoding.h"

namespace plp {

Status ProbeInsertMix::Load() {
  std::vector<std::string> boundaries = {""};
  for (int p = 1; p < config_.partitions; ++p) {
    boundaries.push_back(KeyU64(config_.initial_rows * 4 *
                                static_cast<std::uint64_t>(p) /
                                config_.partitions));
  }
  auto r = engine_->CreateTable(kTable, boundaries);
  if (!r.ok()) return r.status();

  Rng rng(config_.seed);
  for (std::uint64_t i = 0; i < config_.initial_rows; ++i) {
    // Spread initial keys over the whole 4x key space so future inserts
    // land everywhere (uniform SMO pressure).
    const std::uint64_t key_val = i * 4;
    TxnRequest req;
    const std::string key = KeyU64(key_val);
    req.Add(0, kTable, key, [key](ExecContext& ctx) {
      std::string payload(64, 'm');
      return ctx.Insert(key, payload);
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  next_key_.store(config_.initial_rows * 4);
  return Status::OK();
}

TxnRequest ProbeInsertMix::NextTransaction(Rng& rng) {
  TxnRequest req;
  if (rng.Uniform(100) < config_.insert_pct) {
    // Insert a fresh key at a random position (odd offsets are unused).
    const std::uint64_t base = rng.Uniform(config_.initial_rows * 4);
    const std::string key = KeyU64(base | 1);
    req.Add(0, kTable, key, [key](ExecContext& ctx) {
      std::string payload(64, 'm');
      Status st = ctx.Insert(key, payload);
      return st.IsAlreadyExists() ? Status::OK() : st;
    });
  } else {
    const std::uint64_t k = rng.Uniform(config_.initial_rows) * 4;
    const std::string key = KeyU64(k);
    req.Add(0, kTable, key, [key](ExecContext& ctx) {
      std::string payload;
      Status st = ctx.Read(key, &payload);
      return st.IsNotFound() ? Status::OK() : st;
    });
  }
  return req;
}

Status BalanceProbe::Load() {
  auto r = engine_->CreateTable(kTable, UniformBoundaries());
  if (!r.ok()) return r.status();
  for (std::uint32_t s = 1; s <= config_.subscribers; ++s) {
    TxnRequest req;
    const std::string key = KeyU32(s);
    const std::uint32_t size = config_.record_size;
    req.Add(0, kTable, key, [key, size](ExecContext& ctx) {
      std::string payload(size, 'a');
      return ctx.Insert(key, payload);
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  return Status::OK();
}

std::vector<std::string> BalanceProbe::UniformBoundaries() const {
  std::vector<std::string> out = {""};
  for (int p = 1; p < config_.partitions; ++p) {
    out.push_back(KeyU32(1 + static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(config_.subscribers) * p /
        config_.partitions)));
  }
  return out;
}

std::vector<std::string> BalanceProbe::HotColdBoundaries(
    double hot_fraction) const {
  // Half the partitions cover the hot prefix, half the cold remainder.
  std::vector<std::string> out = {""};
  const auto hot_end = static_cast<std::uint32_t>(
      static_cast<double>(config_.subscribers) * hot_fraction);
  const int half = config_.partitions / 2;
  for (int p = 1; p < half; ++p) {
    out.push_back(KeyU32(1 + hot_end * static_cast<std::uint32_t>(p) /
                         static_cast<std::uint32_t>(half)));
  }
  out.push_back(KeyU32(1 + hot_end));
  for (int p = 1; p < config_.partitions - half; ++p) {
    out.push_back(KeyU32(1 + hot_end + static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(config_.subscribers - hot_end) * p /
        (config_.partitions - half))));
  }
  return out;
}

TxnRequest BalanceProbe::NextTransaction(Rng& rng) {
  std::uint32_t s;
  if (skewed_.load(std::memory_order_acquire) && rng.Percent(50)) {
    const auto hot_end = static_cast<std::uint32_t>(
        static_cast<double>(config_.subscribers) * hot_fraction_.load());
    s = static_cast<std::uint32_t>(rng.Range(1, std::max(2u, hot_end)));
  } else {
    s = static_cast<std::uint32_t>(rng.Range(1, config_.subscribers));
  }
  TxnRequest req;
  const std::string key = KeyU32(s);
  req.Add(0, kTable, key, [key](ExecContext& ctx) {
    std::string payload;
    return ctx.Read(key, &payload);
  });
  return req;
}

}  // namespace plp
