// Repartitioning tests (Sections 3.2.1, 4.5): engine-level split/merge for
// every design, heap ownership fix-up, and the automatic repartitioner.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/key_encoding.h"
#include "src/engine/partitioned_engine.h"
#include "src/engine/repartitioner.h"
#include "src/storage/slotted_page.h"

namespace plp {
namespace {

class RepartitionTest : public ::testing::TestWithParam<SystemDesign> {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = GetParam();
    config.num_workers = 4;
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    engine_ = std::move(created).value();
    engine_->Start();
    auto result = engine_->CreateTable("t", {"", KeyU32(500)});
    ASSERT_TRUE(result.ok());
    table_ = result.value();
    for (std::uint32_t k = 0; k < 1000; ++k) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      req.Add(0, "t", key, [key](ExecContext& ctx) {
        return ctx.Insert(key, std::string(100, 'r'));
      });
      ASSERT_TRUE(engine_->Execute(req).ok());
    }
  }
  void TearDown() override { engine_->Stop(); }

  Status ReadKey(std::uint32_t k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      std::string out;
      return ctx.Read(key, &out);
    });
    return engine_->Execute(req);
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(
    PartitionedDesigns, RepartitionTest,
    ::testing::Values(SystemDesign::kLogical, SystemDesign::kPlpRegular,
                      SystemDesign::kPlpPartition, SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
        default: return "Other";
      }
    });

TEST_P(RepartitionTest, SplitKeepsAllKeysReadable) {
  ASSERT_TRUE(
      engine_->Repartition("t", {"", KeyU32(250), KeyU32(500)}).ok());
  for (std::uint32_t k = 0; k < 1000; k += 37) {
    ASSERT_TRUE(ReadKey(k).ok()) << "key " << k;
  }
  if (GetParam() != SystemDesign::kLogical) {
    EXPECT_EQ(table_->primary()->num_partitions(), 3u);
    ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
  }
  EXPECT_EQ(table_->primary()->num_entries(), 1000u);
}

TEST_P(RepartitionTest, MergeKeepsAllKeysReadable) {
  ASSERT_TRUE(engine_->Repartition("t", {""}).ok());
  for (std::uint32_t k = 0; k < 1000; k += 37) {
    ASSERT_TRUE(ReadKey(k).ok()) << "key " << k;
  }
  if (GetParam() != SystemDesign::kLogical) {
    EXPECT_EQ(table_->primary()->num_partitions(), 1u);
    ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
  }
}

TEST_P(RepartitionTest, SplitThenWritesContinue) {
  ASSERT_TRUE(
      engine_->Repartition("t", {"", KeyU32(100), KeyU32(500)}).ok());
  for (std::uint32_t k = 2000; k < 2100; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "post-split");
    });
    ASSERT_TRUE(engine_->Execute(req).ok());
  }
  EXPECT_EQ(table_->primary()->num_entries(), 1100u);
}

TEST_P(RepartitionTest, RepeatedRebalanceCycles) {
  for (int round = 0; round < 4; ++round) {
    std::vector<std::string> boundaries = {""};
    for (std::uint32_t b = 100 + static_cast<std::uint32_t>(round) * 50;
         b < 1000; b += 200) {
      boundaries.push_back(KeyU32(b));
    }
    ASSERT_TRUE(engine_->Repartition("t", boundaries).ok());
    for (std::uint32_t k = 0; k < 1000; k += 111) {
      ASSERT_TRUE(ReadKey(k).ok());
    }
  }
  EXPECT_EQ(table_->primary()->num_entries(), 1000u);
}

TEST(RepartitionOwnershipTest, PlpPartitionMovesMismatchedRecords) {
  EngineConfig config;
  config.design = SystemDesign::kPlpPartition;
  config.num_workers = 2;
  PartitionedEngine engine(config);
  engine.Start();
  auto result = engine.CreateTable("t", {""});
  ASSERT_TRUE(result.ok());
  Table* table = result.value();
  for (std::uint32_t k = 0; k < 500; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, std::string(100, 'o'));
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  ASSERT_TRUE(engine.Repartition("t", {"", KeyU32(250)}).ok());

  // After the split every record must live on a page owned by its own
  // partition's uid.
  BufferPool* pool = engine.db().pool();
  MRBTree* primary = table->primary();
  for (PartitionId p = 0; p < 2; ++p) {
    const std::uint32_t uid = engine.pm().PartitionUid(table, p);
    primary->subtree(p)->ForEachEntry([&](Slice, Slice rid_bytes) {
      Rid rid;
      std::memcpy(&rid.page_id, rid_bytes.data(), 4);
      std::memcpy(&rid.slot, rid_bytes.data() + 4, 2);
      Page* page = pool->FixUnlocked(rid.page_id);
      ASSERT_NE(page, nullptr);
      EXPECT_EQ(SlottedPage(page->data()).owner(), uid);
    });
  }
  engine.Stop();
}

TEST(RepartitionerTest, DetectsSkewAndSplitsHotPartition) {
  EngineConfig config;
  config.design = SystemDesign::kPlpRegular;
  config.num_workers = 4;
  PartitionedEngine engine(config);
  engine.Start();
  auto result =
      engine.CreateTable("t", {"", KeyU32(250), KeyU32(500), KeyU32(750)});
  ASSERT_TRUE(result.ok());
  Table* table = result.value();
  for (std::uint32_t k = 0; k < 1000; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "skewed");
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  engine.pm().ResetLoad(table);

  // Hammer partition 0 to fake a hot spot.
  for (int i = 0; i < 3000; ++i) {
    TxnRequest req;
    const std::string key = KeyU32(static_cast<std::uint32_t>(i % 250));
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      std::string out;
      return ctx.Read(key, &out);
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }

  RepartitionerOptions options;
  options.min_samples = 1000;
  options.imbalance_factor = 2.0;
  Repartitioner rebalancer(&engine, options);
  EXPECT_EQ(rebalancer.RunOnce(), 1);
  EXPECT_EQ(rebalancer.rebalances(), 1u);
  // The hot partition [0,250) was split somewhere in the middle.
  const auto boundaries = engine.pm().Boundaries(table);
  bool found_hot_split = false;
  for (const auto& b : boundaries) {
    if (!b.empty() && DecodeU32(b) > 0 && DecodeU32(b) < 250) {
      found_hot_split = true;
    }
  }
  EXPECT_TRUE(found_hot_split);
  // Everything still readable.
  for (std::uint32_t k = 0; k < 1000; k += 97) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      std::string out;
      return ctx.Read(key, &out);
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  engine.Stop();
}

TEST(RepartitionerTest, BalancedLoadLeavesPartitionsAlone) {
  EngineConfig config;
  config.design = SystemDesign::kPlpRegular;
  config.num_workers = 4;
  PartitionedEngine engine(config);
  engine.Start();
  auto result =
      engine.CreateTable("t", {"", KeyU32(250), KeyU32(500), KeyU32(750)});
  ASSERT_TRUE(result.ok());
  for (std::uint32_t k = 0; k < 1000; ++k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "balanced");
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  // Uniform traffic.
  for (int i = 0; i < 4000; ++i) {
    TxnRequest req;
    const std::string key = KeyU32(static_cast<std::uint32_t>(i % 1000));
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      std::string out;
      return ctx.Read(key, &out);
    });
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  Repartitioner rebalancer(&engine);
  EXPECT_EQ(rebalancer.RunOnce(), 0);
  engine.Stop();
}

}  // namespace
}  // namespace plp
