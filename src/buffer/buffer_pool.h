// Buffer pool: allocation and id->frame translation for database pages.
//
// The resident path is lock-free: a chunked directory of atomic Page*
// entries (indexed directly by PageId) resolves fixes without touching the
// per-shard bucket mutexes, which now guard only structural changes
// (page-in, eviction, free) and writer-side iteration. A fix that needs a
// pin uses a pin/fence/revalidate protocol against the evictor's
// retract/fence/pin-check, so a steal and a lock-free fix can never both
// win. Frames are type-stable — evicted frames are recycled through a free
// list, never deleted — so a stale directory read is always safe to
// dereference.
//
// Pointer swizzling (Foster-B-tree lineage, see docs/buffer_pool.md): a
// parent index page whose child is resident may replace the child's PageId
// in its own cell with a tagged frame index (kSwizzledRefBit). Hot B+Tree
// descents then resolve children with zero page-table lookups. Swizzled
// refs are a runtime-only encoding: eviction unswizzles lazily
// (parent-latched) before a frame becomes a steal victim, and every
// write-back/WAL image is sanitized first. The entry-rewrite knowledge
// lives in src/index; the pool calls back through BufferPoolConfig hooks.
//
// Durable mode (frame_budget > 0 and a DiskManager): the pool is a cache
// over the data file. Misses read the page image back from disk; when the
// budget is exceeded a clock sweep picks an unpinned victim — preferring
// clean frames, whose steal is a pure detach — honors the WAL rule for
// dirty victims (log forced durable up to the victim's page_lsn before the
// write-back), and notifies eviction listeners so thread-private
// PageCaches drop the frame. Heap frames are always candidates; index
// frames join them in persistent-index mode (`persist_index_pages`, see
// src/index/persistent) and stay resident in legacy snapshot mode.
// Catalog frames always stay resident (rebuilt on restart).
#ifndef PLP_BUFFER_BUFFER_POOL_H_
#define PLP_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/buffer/page.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/spinlock.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class BufferPool;
class DiskManager;

struct BufferPoolConfig {
  /// Maximum resident frames; 0 = unlimited (memory-resident mode, never
  /// evict). Eviction also requires `disk` to steal dirty pages into.
  std::size_t frame_budget = 0;
  /// Backing store for evicted pages and restart reads. Not owned.
  DiskManager* disk = nullptr;
  /// WAL rule: called with a dirty victim's page_lsn before its frame is
  /// written back; must make the log durable up to that LSN. May be null
  /// (no logging, e.g. unit tests).
  std::function<void(Lsn)> wal_barrier;
  /// Persistent-index mode: index-class frames join the eviction clock,
  /// are written back by FlushPage, and appear in the dirty page table —
  /// exactly like heap frames (their mutations are physiologically
  /// logged, see src/index/persistent). When false (legacy snapshot mode)
  /// index frames stay resident and "cleaning" them is a no-op, because
  /// the index is rebuilt logically at restart.
  bool persist_index_pages = false;
  /// Pointer swizzling for resident index descents. Requires both hooks
  /// below (the cell-rewrite knowledge lives in src/index); silently off
  /// without them.
  bool enable_swizzling = false;
  /// Replaces any swizzled reference to `frame_index` inside `parent`
  /// (an internal index page) with the plain PageId `plain`. Called with
  /// the parent exclusively latched (or provably private). Returns true
  /// when the parent no longer references the frame.
  std::function<bool(Page* parent, std::uint32_t frame_index, PageId plain)>
      unswizzle_child;
  /// Rewrites every swizzled child reference in `page` back to a plain
  /// PageId and clears the children's swizzle markers. Called before any
  /// byte-copy of the page leaves the pool (write-back), with the page
  /// pinned-to-zero under the shard mutex, latched, or quiesced.
  std::function<void(Page* page, BufferPool* pool)> unswizzle_all;
  /// Registry for the buffer_pool.* / swizzle.* metrics; nullptr records
  /// into MetricsRegistry::Scratch() and registers no gauge provider.
  MetricsRegistry* metrics = nullptr;
};

/// A fixed page reference. In durable mode it holds a pin that blocks
/// eviction for the lifetime of the guard; in memory-resident mode it is a
/// plain pointer. Move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(Page* page, bool pinned) : page_(page), pinned_(pinned) {}
  ~PageRef() { Reset(); }

  PageRef(PageRef&& other) noexcept
      : page_(other.page_), pinned_(other.pinned_) {
    other.page_ = nullptr;
    other.pinned_ = false;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Reset();
      page_ = other.page_;
      pinned_ = other.pinned_;
      other.page_ = nullptr;
      other.pinned_ = false;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void Reset() {
    if (pinned_ && page_ != nullptr) page_->Unpin();
    page_ = nullptr;
    pinned_ = false;
  }

 private:
  Page* page_ = nullptr;
  bool pinned_ = false;
};

class BufferPool {
 public:
  BufferPool() : BufferPool(BufferPoolConfig{}) {}
  explicit BufferPool(BufferPoolConfig config);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// True when the pool runs with a frame budget over a disk file.
  bool evicting() const {
    return config_.frame_budget > 0 && config_.disk != nullptr;
  }

  /// True when index descents may install swizzled child references.
  bool swizzling_enabled() const { return swizzling_on_; }

  /// Allocates a fresh zeroed page of the given class, reusing a freed
  /// data-file slot id when the DiskManager has one.
  Page* NewPage(PageClass page_class);

  /// Recovery path: materializes the frame for a specific page id (no-op
  /// when it already exists — including on disk). Keeps the id allocator
  /// ahead of `id`.
  Page* NewPageWithId(PageId id, PageClass page_class);

  /// Restart path: keeps the id allocator ahead of every id the log or
  /// data file ever used, so fresh allocations (e.g. rebuilt index pages)
  /// never collide with pages recovery is about to replay.
  void EnsureNextPageIdAtLeast(PageId id) {
    PageId expected = next_page_id_.load(std::memory_order_relaxed);
    while (expected < id && !next_page_id_.compare_exchange_weak(
                                expected, id, std::memory_order_relaxed)) {
    }
  }

  /// Current allocator position (checkpointed as the high-water mark).
  PageId peek_next_page_id() const {
    return next_page_id_.load(std::memory_order_relaxed);
  }

  /// Translates a page id to its frame. Resident pages resolve through the
  /// lock-free directory with no critical section; only a miss falls back
  /// to the shard mutex and, in durable mode, the data file. Returns
  /// nullptr for freed/unknown ids.
  Page* Fix(PageId id);

  /// Historical alias of Fix for callers that own the page exclusively
  /// (thread-private caches); identical on the lock-free resident path,
  /// and skips critical-section accounting on the miss path.
  Page* FixUnlocked(PageId id);

  /// Pin-holding variants for operations that touch page contents while
  /// eviction may run concurrently. `tracked` selects Fix vs FixUnlocked
  /// critical-section accounting on the miss path.
  PageRef AcquirePage(PageId id, bool tracked);
  /// `volatile_index` marks index pages of unlogged (secondary) trees:
  /// rebuilt from scratch on reopen. Any data.db slot a write-back
  /// allocates for them is flagged volatile on disk, reclaimed into the
  /// free-slot list at the next open, and reused by NewPage — see
  /// docs/buffer_pool.md (the former leak counted by
  /// buffer_pool.leaked_index_slots, which now stays 0).
  PageRef AllocatePage(PageClass page_class, std::uint32_t table_tag,
                       bool volatile_index = false);

  /// Returns the frame to the pool (and frees the disk slot for reuse).
  /// The caller must guarantee no other thread holds a reference.
  void FreePage(PageId id);

  std::size_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }

  /// Up to `limit` currently-dirty page ids (page-cleaner scan).
  std::vector<PageId> DirtyPages(std::size_t limit);

  /// (page id, rec_lsn) of every dirty persistable frame (heap, plus
  /// index in persistent-index mode) — the dirty page table of a fuzzy
  /// checkpoint. A rec_lsn of 0 means "unknown, recover from the log
  /// start".
  std::vector<std::pair<PageId, Lsn>> DirtyPageTable();

  /// Writes one resident page back (WAL barrier + disk write + MarkClean).
  /// The frame stays resident. `policy` guards the frame copy: kLatched
  /// takes a latch (cleaner threads; exclusive for index pages so the
  /// in-place unswizzle is private), kNone trusts the caller's ownership
  /// (partition workers, quiesced shutdown).
  Status FlushPage(PageId id, LatchPolicy policy = LatchPolicy::kLatched);

  /// Writes every dirty frame back (shutdown / sharp checkpoint).
  Status FlushAllDirty(LatchPolicy policy = LatchPolicy::kNone);

  /// Eviction listeners (thread-private PageCache invalidation). `token`
  /// identifies the registration for removal.
  void RegisterEvictionListener(void* token,
                                std::function<void(PageId)> listener);
  void UnregisterEvictionListener(void* token);

  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_reads() const {
    return disk_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_writes() const {
    return disk_writes_.load(std::memory_order_relaxed);
  }

  // --- Swizzling support (called from src/index under page latches) ----

  /// Resolves a swizzled reference to its frame. Only valid while the
  /// parent holding the reference is latched/owned: the unswizzle protocol
  /// rewrites the parent entry before the frame can be stolen, so a
  /// reference observed under the parent latch is always current.
  Page* SwizzledFrame(PageId ref) const {
    return FrameAt(SwizzledFrameIndex(ref));
  }

  /// Plain PageId behind a (possibly swizzled) child reference.
  PageId RefToPid(PageId ref) const {
    return IsSwizzledRef(ref) ? SwizzledFrame(ref)->id() : ref;
  }

  /// Metric taps for the index-layer install/resolve paths.
  void NoteSwizzleHit() { swizzle_hits_metric_->Increment(); }
  void NoteSwizzleInstalled() {
    swizzle_installs_metric_->Increment();
    swizzled_count_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteUnswizzled() {
    swizzle_unswizzles_metric_->Increment();
    swizzled_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  std::uint64_t swizzled_count() const {
    return swizzled_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumShards = 64;

  // Lock-free directory: PageId-indexed chunked table of atomic Page*.
  static constexpr std::size_t kDirChunkBits = 14;
  static constexpr std::size_t kDirChunkSize = std::size_t{1} << kDirChunkBits;
  static constexpr std::size_t kDirRootSize =
      (std::size_t{1} << 32) >> kDirChunkBits;
  struct DirChunk {
    std::atomic<Page*> slots[kDirChunkSize];
  };

  // Frame arena: frame_index-addressed chunked table backing swizzled
  // references. Frames keep their slot for the pool's lifetime.
  static constexpr std::size_t kFrameChunkBits = 10;
  static constexpr std::size_t kFrameChunkSize =
      std::size_t{1} << kFrameChunkBits;
  static constexpr std::size_t kFrameRootSize = 4096;
  struct FrameChunk {
    std::atomic<Page*> frames[kFrameChunkSize];
  };

  struct Shard {
    TrackedMutex mu{CsCategory::kBufferPool};
    // Authoritative mapping; the lock-free directory mirrors it for
    // readers. Values are arena frames owned by `owned_frames_` — never
    // deleted here.
    std::unordered_map<PageId, Page*> pages PLP_GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id) { return *shards_[id % kNumShards]; }

  /// Page classes that may be stolen / written back. Heap always;
  /// index only in persistent-index mode; catalog never.
  bool Evictable(PageClass c) const {
    return c == PageClass::kHeap ||
           (c == PageClass::kIndex && config_.persist_index_pages);
  }

  // Directory ops. Publish/Retract are called under the owning shard
  // mutex, mirroring every map mutation; Lookup is lock-free.
  Page* DirLookup(PageId id) const;
  void DirPublish(PageId id, Page* page);
  void DirRetract(PageId id);
  std::atomic<Page*>* DirSlot(PageId id, bool create);

  // Frame arena / free-list ops.
  Page* FrameAt(std::uint32_t idx) const;
  Page* TakeFrame(PageId id, PageClass page_class);
  void ReturnFrame(Page* frame);

  /// Looks the id up (lock-free fast path, then its shard); on miss in
  /// durable mode, loads the image from disk into a recycled frame.
  /// `tracked` charges the miss-path bucket mutex as a buffer-pool
  /// critical section; resident hits never record one.
  Page* FixInternal(PageId id, bool tracked, bool pin);

  /// Loads `id` from disk. The read runs without the shard mutex (the
  /// frame is invisible until published). Returns nullptr if not on disk.
  Page* LoadFromDisk(PageId id, Shard& shard) PLP_EXCLUDES(shard.mu);

  /// Evicts until a new frame fits in the budget. Best-effort: gives up
  /// when every candidate is pinned or referenced.
  void EnsureBudget() PLP_EXCLUDES(clock_mu_);

  /// One clock-sweep eviction. Returns false when no victim qualifies.
  /// Nests shard mutexes inside clock_mu_ — callers must hold neither.
  bool EvictOne() PLP_EXCLUDES(clock_mu_);

  /// Rewrites the parent entry pointing at `child` back to a plain PageId
  /// (parent latched via try-lock — never blocks). Returns true when the
  /// child is no longer swizzled.
  bool TryUnswizzle(Page* child);

  /// Sanitizes an index page's child entries before a byte-copy leaves
  /// the pool. No-op for non-index pages or when swizzling is off.
  void UnswizzleForWriteBack(Page* page);

  /// Writes a frame image to the data file (honoring the WAL rule).
  /// The NoClean variant leaves the dirty bit for the caller to resolve
  /// (eviction re-validates under the shard mutex first).
  Status WriteBackNoClean(Page* page);
  Status WriteBack(Page* page);

  void NotifyEvicted(PageId id) PLP_EXCLUDES(listeners_mu_);

  /// Adds an evictable frame to the clock. Must run outside the shard
  /// mutex: EvictOne acquires shard mutexes while holding clock_mu_, so
  /// nesting clock_mu_ inside a shard mutex would be an ABBA deadlock.
  void TrackFrame(Page* page) PLP_EXCLUDES(clock_mu_);

  BufferPoolConfig config_;
  bool swizzling_on_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<PageId> next_page_id_{1};
  std::atomic<std::size_t> num_pages_{0};

  std::unique_ptr<std::atomic<DirChunk*>[]> dir_root_;
  Mutex dir_alloc_mu_;

  std::unique_ptr<std::atomic<FrameChunk*>[]> frame_root_;
  Mutex frames_mu_;
  std::uint32_t frame_count_ PLP_GUARDED_BY(frames_mu_) = 0;
  std::vector<std::unique_ptr<Page>> owned_frames_ PLP_GUARDED_BY(frames_mu_);
  std::vector<Page*> free_frames_ PLP_GUARDED_BY(frames_mu_);

  // Clock sweep over eviction candidates (heap-class frames).
  Mutex clock_mu_;
  std::vector<PageId> clock_ PLP_GUARDED_BY(clock_mu_);
  std::size_t clock_hand_ PLP_GUARDED_BY(clock_mu_) = 0;

  Spinlock listeners_mu_;
  std::vector<std::pair<void*, std::function<void(PageId)>>> listeners_
      PLP_GUARDED_BY(listeners_mu_);

  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> disk_reads_{0};
  std::atomic<std::uint64_t> disk_writes_{0};
  std::atomic<std::uint64_t> swizzled_count_{0};

  // Registry metrics (cached pointers; see BufferPoolConfig::metrics).
  MetricsRegistry* metrics_ = nullptr;  // non-null only when bound
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* eviction_writebacks_metric_ = nullptr;
  Counter* flush_writebacks_metric_ = nullptr;
  Counter* leaked_index_slots_metric_ = nullptr;
  Counter* swizzle_hits_metric_ = nullptr;
  Counter* swizzle_installs_metric_ = nullptr;
  Counter* swizzle_unswizzles_metric_ = nullptr;
  Histogram* miss_stall_us_metric_ = nullptr;
  Histogram* writeback_stall_us_metric_ = nullptr;
};

/// Thread-private id->frame cache for partition workers (PLP): repeated
/// accesses to owned pages skip even the lock-free fix. The eviction
/// listener drops entries for stolen frames so the *cache* never serves a
/// stale mapping — but the returned Page* is unpinned, so in durable
/// (evicting) mode it is only safe between the owner's own operations,
/// which re-Fix (and pin) through HeapFile/AcquirePage before touching
/// page contents. The tiny spinlock is uncontended in normal operation
/// (only the owner thread touches the cache) and exists so the evictor's
/// invalidation is safe.
class PageCache {
 public:
  explicit PageCache(BufferPool* pool) : pool_(pool) {
    pool_->RegisterEvictionListener(this, [this](PageId id) {
      SpinlockGuard g(mu_);
      cache_.erase(id);
    });
  }
  ~PageCache() { pool_->UnregisterEvictionListener(this); }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  Page* Fix(PageId id) {
    {
      SpinlockGuard g(mu_);
      auto it = cache_.find(id);
      if (it != cache_.end()) return it->second;
    }
    // Acquire pinned for the insert: the pin blocks eviction between the
    // lookup and the emplace, so the eviction listener cannot fire for
    // this frame before the cache entry exists (which would leave a
    // permanently dangling pointer behind).
    PageRef ref = pool_->AcquirePage(id, /*tracked=*/true);
    Page* p = ref.get();
    if (p != nullptr) {
      SpinlockGuard g(mu_);
      cache_.emplace(id, p);
    }
    return p;
  }

  void Invalidate(PageId id) {
    SpinlockGuard g(mu_);
    cache_.erase(id);
  }
  void Clear() {
    SpinlockGuard g(mu_);
    cache_.clear();
  }

 private:
  BufferPool* pool_;
  Spinlock mu_;
  std::unordered_map<PageId, Page*> cache_ PLP_GUARDED_BY(mu_);
};

}  // namespace plp

#endif  // PLP_BUFFER_BUFFER_POOL_H_
