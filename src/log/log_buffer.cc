#include "src/log/log_buffer.h"

#include <cassert>
#include <cstring>
#include <thread>

#include "src/sync/cs_profiler.h"

namespace plp {

LogBuffer::LogBuffer(std::size_t capacity, Sink sink, Lsn start_lsn)
    : capacity_(capacity), ring_(capacity), sink_(std::move(sink)) {
  assert(capacity_ > 0);
  tail_.store(start_lsn, std::memory_order_relaxed);
  completed_.store(start_lsn, std::memory_order_relaxed);
  flushed_.store(start_lsn, std::memory_order_relaxed);
}

Lsn LogBuffer::Append(Slice payload) {
  const std::size_t n = payload.size();
  assert(n > 0 && n < capacity_);

  // Reserve LSN space. This is the composable critical section: concurrent
  // appenders aggregate through fetch_add instead of queuing on a mutex.
  Lsn start;
  for (;;) {
    start = tail_.load(std::memory_order_relaxed);
    if (start + n - flushed_.load(std::memory_order_acquire) > capacity_) {
      // Ring full: help drain it, then retry.
      FlushSome();
      continue;
    }
    if (tail_.compare_exchange_weak(start, start + n,
                                    std::memory_order_acq_rel)) {
      break;
    }
  }
  CsProfiler::Record(CsCategory::kLogMgr, /*contended=*/false);

  // Copy into the ring (may wrap).
  const std::size_t pos = start % capacity_;
  const std::size_t first = std::min(n, capacity_ - pos);
  std::memcpy(ring_.data() + pos, payload.data(), first);
  if (first < n) {
    std::memcpy(ring_.data(), payload.data() + first, n - first);
  }

  // Publish completion in LSN order (Aether's "pipelined insert").
  Lsn expect = start;
  while (!completed_.compare_exchange_weak(expect, start + n,
                                           std::memory_order_acq_rel)) {
    expect = start;
    std::this_thread::yield();
  }
  return start;
}

void LogBuffer::FlushSome() {
  MutexLock g(flush_mu_);
  const Lsn from = flushed_.load(std::memory_order_acquire);
  const Lsn to = completed_.load(std::memory_order_acquire);
  if (to <= from) return;
  if (sink_) {
    const std::size_t pos = from % capacity_;
    const std::size_t n = to - from;
    const std::size_t first = std::min(n, capacity_ - pos);
    sink_(ring_.data() + pos, first);
    if (first < n) sink_(ring_.data(), n - first);
  }
  flushed_.store(to, std::memory_order_release);
}

void LogBuffer::FlushTo(Lsn lsn) {
  while (flushed_.load(std::memory_order_acquire) <= lsn) {
    FlushSome();
    if (flushed_.load(std::memory_order_acquire) > lsn) break;
    std::this_thread::yield();
  }
}

void LogBuffer::FlushAll() {
  const Lsn target = tail_.load(std::memory_order_acquire);
  while (flushed_.load(std::memory_order_acquire) < target) {
    FlushSome();
  }
}

}  // namespace plp
