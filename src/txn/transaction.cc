#include "src/txn/transaction.h"

namespace plp {

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive: return "ACTIVE";
    case TxnState::kCommitted: return "COMMITTED";
    case TxnState::kAborted: return "ABORTED";
  }
  return "?";
}

Status Transaction::RunUndo() {
  Status first_error = Status::OK();
  for (auto it = undo_actions_.rbegin(); it != undo_actions_.rend(); ++it) {
    Status st = (*it)();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  undo_actions_.clear();
  return first_error;
}

}  // namespace plp
