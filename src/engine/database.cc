#include "src/engine/database.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/clock.h"
#include "src/index/btree_node.h"
#include "src/metrics/flight_recorder.h"
#include "src/io/codec.h"
#include "src/storage/slotted_page.h"

namespace plp {

Table::Table(std::uint32_t id, TableConfig config, BufferPool* pool,
             LogManager* log, bool log_creation)
    : id_(id), config_(std::move(config)), pool_(pool) {
  if (log != nullptr) logger_ = std::make_unique<IndexLogger>(log, id_);
  heap_ = std::make_unique<HeapFile>(pool, config_.heap_mode, id_);
  std::unique_ptr<MRBTree> tree;
  Status st = MRBTree::Create(pool, config_.index_policy,
                              config_.index_boundaries, &tree, logger_.get(),
                              log_creation);
  // TableConfig boundaries are validated by CreateTable before we get here.
  (void)st;
  primary_ = std::move(tree);
}

Status Table::AddSecondary(const std::string& name, SecondaryKeyFn key_fn) {
  if (secondary(name) != nullptr) {
    return Status::AlreadyExists("secondary index " + name);
  }
  auto sec = std::make_unique<Secondary>();
  sec->name = name;
  sec->key_fn = std::move(key_fn);
  // Non-partition-aligned secondary indexes are accessed as in the
  // conventional system: latched, single-rooted (Appendix E).
  sec->index = std::make_unique<BTree>(pool_, LatchPolicy::kLatched);

  // Backfill from whatever the table already holds (non-empty after a
  // durable reopen; secondary indexes are not persisted).
  Status backfill = Status::OK();
  (void)primary_->ScanFrom("", [&](Slice key, Slice value) {
    std::string payload;
    if (config_.clustered) {
      payload.assign(value.data(), value.size());
    } else {
      Rid rid;
      std::memcpy(&rid.page_id, value.data(), 4);
      std::memcpy(&rid.slot, value.data() + 4, 2);
      if (!heap_->Get(rid, &payload).ok()) return true;  // dangling: skip
    }
    const std::string skey =
        sec->key_fn(key, payload) + std::string(key.data(), key.size());
    Status st = sec->index->Insert(skey, key);
    if (!st.ok() && !st.IsAlreadyExists()) {
      backfill = st;
      return false;
    }
    return true;
  });
  PLP_RETURN_IF_ERROR(backfill);

  secondaries_.push_back(std::move(sec));
  return Status::OK();
}

Table::Secondary* Table::secondary(const std::string& name) {
  for (auto& sec : secondaries_) {
    if (sec->name == name) return sec.get();
  }
  return nullptr;
}

std::vector<Table::Secondary*> Table::secondaries() {
  std::vector<Secondary*> out;
  out.reserve(secondaries_.size());
  for (auto& sec : secondaries_) out.push_back(sec.get());
  return out;
}

namespace {

std::unique_ptr<DiskManager> OpenDisk(const DatabaseConfig& config,
                                      Status* status) {
  if (config.data_dir.empty()) return nullptr;
  std::error_code ec;
  std::filesystem::create_directories(config.data_dir, ec);
  if (ec) {
    *status = Status::Internal("mkdir " + config.data_dir + ": " +
                               ec.message());
    return nullptr;
  }
  std::unique_ptr<DiskManager> disk;
  Status st = DiskManager::Open(config.data_dir + "/data.db", &disk);
  if (!st.ok()) {
    *status = st;
    return nullptr;
  }
  return disk;
}

LogConfig MakeLogConfig(const DatabaseConfig& config,
                        MetricsRegistry* metrics) {
  LogConfig log = config.log;
  if (!config.data_dir.empty() && log.wal_dir.empty()) {
    log.wal_dir = config.data_dir + "/wal";
  }
  log.metrics = metrics;
  return log;
}

}  // namespace

Database::Database(DatabaseConfig config)
    : config_(std::move(config)),
      disk_(OpenDisk(config_, &open_status_)),
      pool_([this] {
        BufferPoolConfig pc;
        pc.frame_budget = config_.frame_budget;
        pc.disk = disk_.get();
        pc.metrics = &metrics_;
        pc.persist_index_pages =
            disk_ != nullptr &&
            config_.index_durability == IndexDurability::kLoggedPages;
        if (disk_ != nullptr) {
          // WAL rule for dirty steals; log_ outlives every eviction.
          pc.wal_barrier = [this](Lsn lsn) { log_.FlushTo(lsn); };
        }
        // Every kIndex page in the engine is a BTreeNode, so the node
        // class supplies the pool's cell-rewrite (unswizzle) hooks.
        pc.enable_swizzling = config_.enable_swizzling;
        pc.unswizzle_child = &BTreeNode::UnswizzleChildRef;
        pc.unswizzle_all = &BTreeNode::UnswizzleAll;
        return pc;
      }()),
      log_(MakeLogConfig(config_, &metrics_)),
      locks_(&metrics_),
      txns_(&log_, &locks_, config_.txn, &metrics_) {
  // Post-mortem observability: fatal signals dump the flight-recorder
  // black box before the process dies, and every stats snapshot carries
  // the recorder's drop counter plus the per-site contention ranking.
  FlightRecorder::InstallCrashHandlers();
  metrics_.RegisterGaugeProvider(this, [](const GaugeSink& sink) {
    FlightRecorder& fr = FlightRecorder::Global();
    sink("trace.dropped_events",
         static_cast<std::int64_t>(fr.dropped_events()));
    for (const ContentionEntry& e : fr.ContentionSnapshot()) {
      const std::string base =
          std::string("contention.") + TraceSiteName(e.site);
      sink(base + ".waits", static_cast<std::int64_t>(e.count));
      sink(base + ".wait_us_total",
           static_cast<std::int64_t>(e.total_wait_ns / 1000));
      sink(base + ".p99_us", static_cast<std::int64_t>(e.p99_us));
    }
  });
  if (!open_status_.ok()) return;
  if (!log_.open_status().ok()) {
    open_status_ = log_.open_status();
    return;
  }
  if (durable()) {
    open_status_ = LoadDurableState();
  }
  if (disk_ != nullptr && open_status_.ok()) {
    // Recovery is complete: freed/reclaimed data-file slots can now be
    // handed out without colliding with ids the WAL tail replays.
    disk_->EnableSlotReuse();
  }
}

Database::~Database() { metrics_.UnregisterGaugeProvider(this); }

Status Database::LoadDurableState() {
  // 0a. Checkpoint master record + image (needed before anything else:
  // the image bounds every restart scan).
  bool has_checkpoint = false;
  Lsn checkpoint_lsn = 0;
  CheckpointImage image;
  {
    Status st = ReadMasterRecord(master_path(), &checkpoint_lsn);
    if (st.ok()) {
      Status decode_status =
          Status::Corruption("no checkpoint record at published LSN");
      PLP_RETURN_IF_ERROR(
          log_.ScanFrom(checkpoint_lsn, [&](Lsn lsn, const LogRecord& rec) {
            if (lsn == checkpoint_lsn && rec.type == LogType::kCheckpoint) {
              decode_status = CheckpointImage::Decode(rec.redo, &image);
            }
          }));
      PLP_RETURN_IF_ERROR(decode_status);
      has_checkpoint = true;
    } else if (!st.IsNotFound()) {
      return st;
    }
  }

  // 0b. Page-id high-water mark. The pool already starts past everything
  // in the data file, but pages that were dirtied and never stolen before
  // the crash exist only in the WAL — fresh allocations (the tables'
  // rebuilt index pages) must not collide with ids recovery will replay.
  // The checkpoint stores the allocator mark, so only the (bounded) tail
  // after its scan horizon needs inspection.
  {
    PageId max_logged =
        has_checkpoint && image.next_page_id > 0 ? image.next_page_id - 1 : 0;
    const Lsn tail_start =
        has_checkpoint ? image.ScanStart(checkpoint_lsn) : 0;
    PLP_RETURN_IF_ERROR(log_.ScanFrom(tail_start, [&](Lsn,
                                                      const LogRecord& rec) {
      if (rec.rid.page_id != kInvalidPageId) {
        max_logged = std::max(max_logged, rec.rid.page_id);
      }
    }));
    pool_.EnsureNextPageIdAtLeast(max_logged + 1);
  }

  // 1. Catalog: recreate tables. In snapshot mode the fresh empty indexes
  // ARE the rebuild target; in logged-index mode they are placeholders —
  // nothing is logged for them (restoring_) and recovery adopts the real
  // partition layout from the checkpoint image / kPartitionTable records.
  restoring_ = true;
  {
    std::string blob;
    FILE* f = std::fopen(catalog_path().c_str(), "rb");
    if (f != nullptr) {
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) blob.append(buf, n);
      std::fclose(f);

      io::Reader r(blob.data(), blob.size());
      std::uint32_t count;
      if (!r.U32(&count)) return Status::Corruption("catalog header");
      for (std::uint32_t i = 0; i < count; ++i) {
        TableConfig tc;
        std::uint32_t nb;
        std::uint8_t heap_mode, policy, clustered;
        if (!r.Bytes(&tc.name) || !r.U8(&heap_mode) || !r.U8(&policy) ||
            !r.U8(&clustered)) {
          return Status::Corruption("catalog entry " + std::to_string(i));
        }
        if (!r.U32(&nb)) return Status::Corruption("catalog boundaries");
        tc.index_boundaries.clear();
        for (std::uint32_t b = 0; b < nb; ++b) {
          std::string boundary;
          if (!r.Bytes(&boundary)) {
            return Status::Corruption("catalog boundary bytes");
          }
          tc.index_boundaries.push_back(std::move(boundary));
        }
        tc.heap_mode = static_cast<HeapMode>(heap_mode);
        tc.index_policy = static_cast<LatchPolicy>(policy);
        tc.clustered = clustered != 0;
        Result<Table*> r = CreateTableInternal(std::move(tc),
                                               /*persist=*/false);
        if (!r.ok()) return r.status();
      }
    }
  }

  // 2. Heap page lists from the data file's slot headers.
  {
    auto pages = disk_->AllPages();
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [pid, header] : pages) {
      if (static_cast<PageClass>(header.page_class) != PageClass::kHeap) {
        continue;
      }
      Table* table = nullptr;
      {
        TrackedMutexLock g(catalog_mu_);
        table = header.table_tag < tables_.size()
                    ? tables_[header.table_tag].get()
                    : nullptr;
      }
      if (table != nullptr) {
        table->heap()->AdoptPage(pid, header.owner_tag);
      }
    }
  }

  // 3. Restart recovery (analysis / redo / undo).
  const std::uint64_t recovery_start = NowNanos();
  RecoveryManager rm(&log_, &pool_);
  Status recovered = rm.RecoverDatabase(this, has_checkpoint, checkpoint_lsn,
                                        image, &recovery_stats_);
  restoring_ = false;
  PLP_RETURN_IF_ERROR(recovered);
  metrics_.counter("recovery.runs")->Increment();
  metrics_.counter("recovery.redo_ops")->Add(recovery_stats_.redo_ops);
  metrics_.counter("recovery.undo_ops")->Add(recovery_stats_.undo_ops);
  metrics_.counter("recovery.index_ops")->Add(recovery_stats_.index_ops);
  metrics_.counter("recovery.winners")->Add(recovery_stats_.winners);
  metrics_.counter("recovery.losers")->Add(recovery_stats_.losers);
  metrics_.gauge("recovery.last_duration_us")
      ->Set(static_cast<std::int64_t>((NowNanos() - recovery_start) / 1000));
  {
    TraceSiteScope site(TraceSite::kRecoveryReplay);
    FlightRecorder::Emit(TraceEventType::kRecovery, recovery_start,
                         NowNanos() - recovery_start,
                         recovery_stats_.redo_ops, recovery_stats_.undo_ops);
  }

  // 4. Prime free-space maps for post-restart inserts. (Owned-heap
  // ownership re-tagging happens when the engine attaches the recovered
  // tables — PartitionedEngine::RetagOwnedHeap — since partition uids
  // are an engine concept.)
  {
    TrackedMutexLock g(catalog_mu_);
    for (auto& table : tables_) table->heap()->PrimeFreeSpace();
  }
  return Status::OK();
}

Status Database::PersistCatalog() {
  std::string blob;
  {
    TrackedMutexLock g(catalog_mu_);
    io::PutU32(&blob, static_cast<std::uint32_t>(tables_.size()));
    for (auto& table : tables_) {
      const TableConfig& tc = table->config();
      io::PutBytes(&blob, tc.name);
      blob.push_back(static_cast<char>(tc.heap_mode));
      blob.push_back(static_cast<char>(tc.index_policy));
      blob.push_back(tc.clustered ? 1 : 0);
      io::PutU32(&blob,
                 static_cast<std::uint32_t>(tc.index_boundaries.size()));
      for (const std::string& b : tc.index_boundaries) io::PutBytes(&blob, b);
    }
  }
  // fsync before rename: committed tables must not vanish with the page
  // cache on a power failure while data.db/WAL still reference them.
  return io::AtomicWriteFile(catalog_path(), blob);
}

Result<Table*> Database::CreateTable(TableConfig config) {
  return CreateTableInternal(std::move(config), /*persist=*/durable());
}

Result<Table*> Database::CreateTableInternal(TableConfig config,
                                             bool persist) {
  if (config.name.empty()) {
    return Status::InvalidArgument("table name required");
  }
  if (config.index_boundaries.empty() ||
      !config.index_boundaries.front().empty()) {
    return Status::InvalidArgument(
        "index_boundaries[0] must be the empty (-inf) key");
  }
  Table* raw = nullptr;
  {
    TrackedMutexLock g(catalog_mu_);
    if (by_name_.count(config.name) > 0) {
      return Status::AlreadyExists("table " + config.name);
    }
    const auto id = static_cast<std::uint32_t>(tables_.size());
    auto table = std::make_unique<Table>(
        id, std::move(config), &pool_, logged_index() ? &log_ : nullptr,
        /*log_creation=*/!restoring_);
    raw = table.get();
    tables_.push_back(std::move(table));
    by_name_.emplace(raw->name(), raw);
  }
  if (persist) {
    // Creation-before-catalog ordering (logged-index mode): the table's
    // root images + partition record must be durable before the catalog
    // names the table, or a crash could leave a cataloged table whose
    // partition layout recovery can never adopt.
    if (logged_index()) log_.FlushAll();
    PLP_RETURN_IF_ERROR(PersistCatalog());
  }
  return raw;
}

Table* Database::GetTable(const std::string& name) {
  TrackedMutexLock g(catalog_mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<Table*> Database::tables() {
  TrackedMutexLock g(catalog_mu_);
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (auto& t : tables_) out.push_back(t.get());
  return out;
}

Status Database::Checkpoint() {
  if (!durable()) {
    return Status::NotSupported("checkpoint requires a durable database");
  }
  // One checkpoint at a time: interleaved append/publish/truncate from two
  // callers could publish master records out of order (see checkpoint_mu_).
  MutexLock checkpoint_guard(checkpoint_mu_);
  TraceSiteScope trace_site(TraceSite::kCheckpointer);
  const std::uint64_t checkpoint_start = NowNanos();
  CheckpointImage image;
  // begin_checkpoint first: anything that happens while the tables below
  // are collected (a clean page dirtied, a txn begun) is then covered by
  // the restart scan, which starts no later than this LSN.
  image.begin_lsn = log_.next_lsn();
  image.dirty_pages = pool_.DirtyPageTable();
  image.active_txns = txns_.ActiveSnapshot();
  image.next_txn_id = txns_.peek_next_id();
  image.next_page_id = pool_.peek_next_page_id();

  {
    TrackedMutexLock g(catalog_mu_);
    if (logged_index()) {
      // Persistent index: the payload records only the tiny partition-table
      // baseline per table — page contents are covered by the dirty page
      // table + WAL, so checkpoint cost is O(dirty + txns), independent of
      // index size, and no quiescing is needed (truly fuzzy).
      for (auto& table : tables_) {
        CheckpointImage::TablePartitions parts;
        parts.table_id = table->id();
        parts.parts = table->primary()->PartitionEntries();
        image.partitions.push_back(std::move(parts));
      }
    } else {
      // Legacy snapshot mode: serialize every primary index. The caller
      // must not run concurrent index writers (see src/io/checkpoint.h);
      // readers are fine.
      for (auto& table : tables_) {
        CheckpointImage::TableSnapshot snap;
        snap.table_id = table->id();
        (void)table->primary()->ScanFrom("", [&](Slice k, Slice v) {
          snap.entries.emplace_back(std::string(k.data(), k.size()),
                                    std::string(v.data(), v.size()));
          return true;
        });
        image.tables.push_back(std::move(snap));
      }
    }
  }

  LogRecord rec;
  rec.type = LogType::kCheckpoint;
  rec.redo = image.Encode();
  const Lsn lsn = log_.Append(rec);
  log_.FlushTo(lsn);
  PLP_RETURN_IF_ERROR(WriteMasterRecord(master_path(), lsn));
  // With the master record published, no future restart reads below this
  // checkpoint's recovery floor: reclaim the log segments wholly under it.
  log_.TruncateWalBelow(image.ScanStart(lsn));
  metrics_.counter("checkpoint.count")->Increment();
  metrics_.counter("checkpoint.payload_bytes")->Add(rec.redo.size());
  metrics_.histogram("checkpoint.duration_us")
      ->Record((NowNanos() - checkpoint_start) / 1000);
  FlightRecorder::Emit(TraceEventType::kCheckpoint, checkpoint_start,
                       NowNanos() - checkpoint_start, rec.redo.size(), 0);
  return Status::OK();
}

Status Database::Close() {
  if (!durable()) return Status::OK();
  // One closer runs the shutdown sequence; concurrent latecomers block
  // here and then observe closed_ instead of re-running the flush and
  // final checkpoint (unguarded, two racing closers both saw false).
  MutexLock close_guard(close_mu_);
  if (closed_) return Status::OK();
  log_.FlushAll();
  PLP_RETURN_IF_ERROR(pool_.FlushAllDirty(LatchPolicy::kNone));
  PLP_RETURN_IF_ERROR(disk_->Sync());
  PLP_RETURN_IF_ERROR(Checkpoint());
  closed_ = true;
  return Status::OK();
}

}  // namespace plp
