// The log manager: record-level API over the composable LogBuffer, plus an
// offline scan used by restart recovery.
#ifndef PLP_LOG_LOG_MANAGER_H_
#define PLP_LOG_LOG_MANAGER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/log_buffer.h"
#include "src/log/log_record.h"

namespace plp {

struct LogConfig {
  std::size_t buffer_size = 16u << 20;
  /// When true, flushed bytes are retained in memory and can be scanned by
  /// recovery. When false they are discarded after flush (memory-resident
  /// benchmark mode, as in the paper's evaluation).
  bool retain_for_recovery = false;
};

class LogManager {
 public:
  explicit LogManager(LogConfig config = {});

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends a record; returns its LSN.
  Lsn Append(const LogRecord& record);

  /// Guarantees durability up to `lsn` (inclusive of that record's bytes).
  void FlushTo(Lsn lsn) { buffer_->FlushTo(lsn); }
  void FlushAll() { buffer_->FlushAll(); }

  Lsn durable_lsn() const { return buffer_->durable_lsn(); }
  Lsn next_lsn() const { return buffer_->next_lsn(); }

  /// Scans all retained records in LSN order. Requires
  /// `retain_for_recovery`; flushes first.
  Status Scan(const std::function<void(Lsn, const LogRecord&)>& fn);

 private:
  LogConfig config_;
  std::unique_ptr<LogBuffer> buffer_;
  std::mutex retained_mu_;
  std::string retained_;  // flushed bytes, when retain_for_recovery
};

}  // namespace plp

#endif  // PLP_LOG_LOG_MANAGER_H_
