#include "src/storage/free_space_map.h"

namespace plp {

PageId FreeSpaceMap::FindPageWith(std::size_t need) {
  mu_.lock();
  PageId found = kInvalidPageId;
  for (const auto& [id, free] : free_bytes_) {
    if (free >= need) {
      found = id;
      break;
    }
  }
  mu_.unlock();
  return found;
}

void FreeSpaceMap::Update(PageId id, std::size_t free_bytes) {
  mu_.lock();
  free_bytes_[id] = free_bytes;
  mu_.unlock();
}

void FreeSpaceMap::Remove(PageId id) {
  mu_.lock();
  free_bytes_.erase(id);
  mu_.unlock();
}

std::size_t FreeSpaceMap::num_tracked() {
  mu_.lock();
  std::size_t n = free_bytes_.size();
  mu_.unlock();
  return n;
}

}  // namespace plp
