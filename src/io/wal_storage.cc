#include "src/io/wal_storage.h"

#include "src/io/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace plp {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Status WalStorage::Open(const std::string& dir, std::size_t segment_size,
                        std::unique_ptr<WalStorage>* out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("mkdir " + dir + ": " + ec.message());
  }

  std::unique_ptr<WalStorage> wal(new WalStorage(dir, segment_size));
  bool have_segments = false;
  {
    // Open runs single-threaded, but the lock keeps the analysis able to
    // check the segment table's guard discipline; it is uncontended here.
    MutexLock g(wal->mu_);
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.size() != 20 || name.substr(16) != ".wal") continue;
      Lsn start = 0;
      if (std::sscanf(name.c_str(), "%16lx.wal", &start) != 1) continue;
      Segment seg;
      seg.start = start;
      seg.size = entry.file_size();
      seg.path = entry.path().string();
      wal->segments_.push_back(std::move(seg));
    }
    std::sort(
        wal->segments_.begin(), wal->segments_.end(),
        [](const Segment& a, const Segment& b) { return a.start < b.start; });

    // A prior truncation leaves the stored head possibly mid-record (a
    // record can straddle the boundary into a deleted segment); the FLOOR
    // file remembers the first readable record boundary.
    Lsn floor = 0;
    if (ReadMasterRecord(wal->FloorPath(), &floor).ok()) {
      wal->floor_ = floor;
    }

    // Segments wholly below the floor are truncation leftovers: a crash
    // can persist TruncateBelow's unlinks in any order (FLOOR itself is
    // directory-synced before them), so finish the job here rather than
    // tripping the gap check on a partially-deleted prefix.
    while (wal->segments_.size() > 1 &&
           wal->segments_.front().start + wal->segments_.front().size <=
               wal->floor_) {
      std::error_code rm_ec;
      std::filesystem::remove(wal->segments_.front().path, rm_ec);
      wal->segments_.erase(wal->segments_.begin());
    }

    for (std::size_t i = 1; i < wal->segments_.size(); ++i) {
      if (wal->segments_[i].start !=
          wal->segments_[i - 1].start + wal->segments_[i - 1].size) {
        return Status::Corruption("WAL segment gap before " +
                                  wal->segments_[i].path);
      }
    }

    Lsn end = 0;
    if (!wal->segments_.empty()) {
      end = wal->segments_.back().start + wal->segments_.back().size;
    }
    wal->end_lsn_.store(end, std::memory_order_release);
    have_segments = !wal->segments_.empty();
  }
  if (have_segments) {
    // RepairTornTail scans the stream (ScanFrom takes mu_), so it runs
    // outside the lock.
    PLP_RETURN_IF_ERROR(wal->RepairTornTail());
    MutexLock g(wal->mu_);
    if (!wal->segments_.empty()) {
      PLP_RETURN_IF_ERROR(wal->OpenSegmentForAppend(
          wal->segments_.back().start, wal->segments_.back().size));
    }
  }
  const Lsn end = wal->end_lsn_.load(std::memory_order_acquire);
  wal->synced_lsn_.store(end, std::memory_order_release);
  *out = std::move(wal);
  return Status::OK();
}

Status WalStorage::RepairTornTail() {
  Lsn valid_end = 0;
  PLP_RETURN_IF_ERROR(ScanFrom(0, [](Lsn, const LogRecord&) {}, &valid_end));
  const Lsn end = end_lsn_.load(std::memory_order_acquire);
  if (valid_end >= end) return Status::OK();
  // Drop whole segments past the boundary, then truncate the one holding it.
  while (!segments_.empty() && segments_.back().start >= valid_end) {
    std::error_code ec;
    std::filesystem::remove(segments_.back().path, ec);
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    Segment& seg = segments_.back();
    const std::uint64_t keep = valid_end - seg.start;
    if (keep < seg.size) {
      if (::truncate(seg.path.c_str(), static_cast<off_t>(keep)) != 0) {
        return Errno("truncate " + seg.path);
      }
      seg.size = keep;
    }
  }
  end_lsn_.store(valid_end, std::memory_order_release);
  return Status::OK();
}

WalStorage::~WalStorage() {
  if (fd_ >= 0) ::close(fd_);
}

std::string WalStorage::SegmentPath(Lsn start) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016lx.wal", start);
  return dir_ + "/" + name;
}

std::string WalStorage::FloorPath() const { return dir_ + "/FLOOR"; }

Status WalStorage::OpenSegmentForAppend(Lsn start,
                                        std::uint64_t existing_size) {
  const std::string path = SegmentPath(start);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) return Errno("open " + path);
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  current_start_ = start;
  current_size_ = existing_size;
  return Status::OK();
}

Status WalStorage::RollSegment() {
  // Sync the finished segment before moving on so Sync() only ever needs
  // to touch the current one.
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) return Errno("fdatasync(roll)");
  const Lsn next_start = current_start_ + current_size_;
  PLP_RETURN_IF_ERROR(OpenSegmentForAppend(next_start, 0));
  Segment seg;
  seg.start = next_start;
  seg.size = 0;
  seg.path = SegmentPath(next_start);
  segments_.push_back(std::move(seg));
  return Status::OK();
}

Status WalStorage::Append(const char* data, std::size_t size) {
  MutexLock g(mu_);
  if (fd_ < 0) {
    // First append ever: segment starting at the current end of stream.
    const Lsn start = end_lsn_.load(std::memory_order_relaxed);
    PLP_RETURN_IF_ERROR(OpenSegmentForAppend(start, 0));
    Segment seg;
    seg.start = start;
    seg.size = 0;
    seg.path = SegmentPath(start);
    segments_.push_back(std::move(seg));
  }
  if (current_size_ >= segment_size_) {
    PLP_RETURN_IF_ERROR(RollSegment());
  }
  std::size_t done = 0;
  while (done < size) {
    const ssize_t w = ::write(fd_, data + done, size - done);
    if (w < 0) return Errno("append wal");
    done += static_cast<std::size_t>(w);
  }
  current_size_ += size;
  segments_.back().size = current_size_;
  end_lsn_.fetch_add(size, std::memory_order_acq_rel);
  return Status::OK();
}

Status WalStorage::Sync() {
  MutexLock g(mu_);
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) return Errno("fdatasync");
  synced_lsn_.store(end_lsn_.load(std::memory_order_acquire),
                    std::memory_order_release);
  return Status::OK();
}

Status WalStorage::ScanFrom(
    Lsn from, const std::function<void(Lsn, const LogRecord&)>& fn,
    Lsn* valid_end) {
  std::vector<Segment> segs;
  Lsn end;
  Lsn floor;
  {
    MutexLock g(mu_);
    segs = segments_;
    end = end_lsn_.load(std::memory_order_acquire);
    floor = floor_;
  }

  // A truncated prefix is gone, and the stored head itself may be the
  // tail of a record whose start was truncated away: the scan can only
  // start at the first readable record boundary. Restart scans always
  // begin at a checkpoint's recovery floor, which truncation never
  // passes.
  if (from < floor) from = floor;
  if (!segs.empty() && from < segs.front().start) {
    from = segs.front().start;
  }

  // Stream segments through a carry buffer; records may straddle files.
  std::string carry;
  Lsn carry_lsn = from;  // lsn of carry[0]
  bool positioned = false;
  std::vector<char> buf(1u << 16);
  for (const Segment& seg : segs) {
    if (seg.start + seg.size <= from) continue;
    const int fd = ::open(seg.path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open " + seg.path);
    std::uint64_t off = 0;
    if (!positioned && from > seg.start) {
      off = from - seg.start;
    }
    positioned = true;
    if (::lseek(fd, static_cast<off_t>(off), SEEK_SET) < 0) {
      ::close(fd);
      return Errno("seek " + seg.path);
    }
    for (;;) {
      const ssize_t r = ::read(fd, buf.data(), buf.size());
      if (r < 0) {
        ::close(fd);
        return Errno("read " + seg.path);
      }
      if (r == 0) break;
      carry.append(buf.data(), static_cast<std::size_t>(r));
      // Drain complete records from the carry buffer.
      std::size_t used = 0;
      for (;;) {
        LogRecord rec;
        std::size_t consumed = 0;
        if (!LogRecord::Deserialize(carry.data() + used, carry.size() - used,
                                    &rec, &consumed)) {
          break;
        }
        fn(carry_lsn + used, rec);
        used += consumed;
      }
      carry.erase(0, used);
      carry_lsn += used;
    }
    ::close(fd);
  }
  if (valid_end != nullptr) *valid_end = carry_lsn;
  if (!carry.empty() && valid_end == nullptr) {
    // Torn tail is legitimate only at the very end of the stream.
    if (carry_lsn + carry.size() != end) {
      return Status::Corruption("undecodable WAL bytes at lsn " +
                                std::to_string(carry_lsn));
    }
  }
  return Status::OK();
}

std::size_t WalStorage::num_segments() {
  MutexLock g(mu_);
  return segments_.size();
}

Lsn WalStorage::start_lsn() {
  MutexLock g(mu_);
  return segments_.empty() ? 0 : segments_.front().start;
}

Lsn WalStorage::floor_lsn() {
  MutexLock g(mu_);
  return floor_;
}

std::size_t WalStorage::TruncateBelow(Lsn floor) {
  // Serialize truncations: a racing lower-floor call must not delete
  // files (or overwrite FLOOR) while a higher floor's persist is still
  // in flight.
  MutexLock tg(truncate_mu_);
  Lsn persisted;
  {
    MutexLock g(mu_);
    if (segments_.size() <= 1 ||
        segments_.front().start + segments_.front().size > floor) {
      return 0;  // nothing wholly below the floor
    }
    persisted = floor_;
  }
  // Durably record the floor BEFORE unlinking anything: the first
  // surviving segment may begin mid-record (a record straddling into a
  // deleted segment), so reopen scans must know where parsing can start.
  // WriteMasterRecord fsyncs the directory, ordering the FLOOR install
  // ahead of the unlinks (both are directory operations a crash could
  // otherwise persist in either order). The I/O runs outside mu_ so
  // appends and group-commit syncs are not stalled behind it.
  if (floor > persisted) {
    if (!WriteMasterRecord(FloorPath(), floor).ok()) return 0;
    MutexLock g(mu_);
    floor_ = floor;
  }

  std::vector<Segment> doomed;
  {
    MutexLock g(mu_);
    while (segments_.size() > 1 &&
           segments_.front().start + segments_.front().size <= floor) {
      doomed.push_back(std::move(segments_.front()));
      segments_.erase(segments_.begin());
    }
  }
  std::size_t removed = 0;
  for (const Segment& seg : doomed) {
    std::error_code ec;
    std::filesystem::remove(seg.path, ec);
    if (!ec) ++removed;
  }
  return removed;
}

}  // namespace plp
