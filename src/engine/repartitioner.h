// Load-driven repartitioning (Section 4.5): watches per-partition action
// counts and rebalances by splitting hot partitions and melding cold
// neighbors — cheap under PLP because it is metadata-only (plus bounded
// record movement in the owned heap modes).
#ifndef PLP_ENGINE_REPARTITIONER_H_
#define PLP_ENGINE_REPARTITIONER_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/partitioned_engine.h"

namespace plp {

struct RepartitionerOptions {
  /// Rebalance when max partition load exceeds `imbalance_factor` x mean.
  double imbalance_factor = 2.0;
  /// Background check cadence.
  std::chrono::milliseconds interval{200};
  /// Minimum actions observed before considering a rebalance.
  std::uint64_t min_samples = 1000;
};

class Repartitioner {
 public:
  Repartitioner(PartitionedEngine* engine, RepartitionerOptions options = {});
  ~Repartitioner();

  void Start();
  void Stop();

  /// One inspection pass over all tables; returns the number of tables
  /// rebalanced. Also callable synchronously (tests, benches).
  int RunOnce();

  std::uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

 private:
  /// Decides a new boundary list for `table`, or empty if balanced.
  std::vector<std::string> Plan(Table* table);

  PartitionedEngine* engine_;
  RepartitionerOptions options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> rebalances_{0};
};

}  // namespace plp

#endif  // PLP_ENGINE_REPARTITIONER_H_
