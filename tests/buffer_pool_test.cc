// Tests for the buffer pool and page cleaner.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/page_cleaner.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

TEST(BufferPoolTest, NewPageAssignsUniqueIds) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  Page* b = pool.NewPage(PageClass::kIndex);
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(pool.num_pages(), 2u);
  EXPECT_EQ(a->page_class(), PageClass::kHeap);
  EXPECT_EQ(b->page_class(), PageClass::kIndex);
}

TEST(BufferPoolTest, FixReturnsSameFrame) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  EXPECT_EQ(pool.Fix(a->id()), a);
  EXPECT_EQ(pool.FixUnlocked(a->id()), a);
}

TEST(BufferPoolTest, FixUnknownIdReturnsNull) {
  BufferPool pool;
  EXPECT_EQ(pool.Fix(999), nullptr);
  EXPECT_EQ(pool.Fix(kInvalidPageId), nullptr);
}

TEST(BufferPoolTest, FreePageRemovesFrame) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  const PageId id = a->id();
  pool.FreePage(id);
  EXPECT_EQ(pool.Fix(id), nullptr);
  EXPECT_EQ(pool.num_pages(), 0u);
}

TEST(BufferPoolTest, NewPageWithIdIsIdempotentAndBumpsAllocator) {
  BufferPool pool;
  Page* p = pool.NewPageWithId(100, PageClass::kHeap);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id(), 100u);
  EXPECT_EQ(pool.NewPageWithId(100, PageClass::kHeap), p);
  // Fresh allocations must not collide with the recovered id.
  Page* fresh = pool.NewPage(PageClass::kHeap);
  EXPECT_GT(fresh->id(), 100u);
}

TEST(BufferPoolTest, DirtyPageTracking) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  Page* b = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  (void)b;
  std::vector<PageId> dirty = pool.DirtyPages(10);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], a->id());
}

TEST(BufferPoolTest, FixRecordsBufferPoolCs) {
  CsProfiler::Global().Reset();
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  CsCounts before = CsProfiler::Global().Collect();
  pool.Fix(a->id());
  CsCounts delta = CsProfiler::Global().Collect() - before;
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kBufferPool)], 1u);
  // FixUnlocked models direct pointer access: no critical section.
  before = CsProfiler::Global().Collect();
  pool.FixUnlocked(a->id());
  delta = CsProfiler::Global().Collect() - before;
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kBufferPool)], 0u);
}

TEST(BufferPoolTest, ConcurrentAllocation) {
  BufferPool pool;
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) pool.NewPage(PageClass::kHeap);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.num_pages(), static_cast<std::size_t>(kThreads) * kEach);
}

TEST(PageCleanerTest, CleansDirtyPagesDirectly) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  PageCleaner cleaner(&pool);
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  EXPECT_FALSE(a->dirty());
}

TEST(PageCleanerTest, DelegateReceivesOwnedPages) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  std::vector<PageId> delegated;
  PageCleaner cleaner(&pool, [&](PageId id) {
    delegated.push_back(id);
    return true;
  });
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  ASSERT_EQ(delegated.size(), 1u);
  EXPECT_EQ(delegated[0], a->id());
  // Delegated pages are cleaned by the owner, not the cleaner.
  EXPECT_TRUE(a->dirty());
}

TEST(PageCleanerTest, DeclinedDelegationFallsBackToDirectClean) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kCatalog);
  a->MarkDirty();
  PageCleaner cleaner(&pool, [](PageId) { return false; });
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  EXPECT_FALSE(a->dirty());
}

TEST(PageTest, OwnerTagDefaultsUnowned) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  EXPECT_EQ(a->owner_tag(), UINT32_MAX);
  a->set_owner_tag(7);
  EXPECT_EQ(a->owner_tag(), 7u);
}

}  // namespace
}  // namespace plp
