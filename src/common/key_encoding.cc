#include "src/common/key_encoding.h"

#include <cassert>

namespace plp {

void EncodeU32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v >> 24);
  buf[1] = static_cast<char>(v >> 16);
  buf[2] = static_cast<char>(v >> 8);
  buf[3] = static_cast<char>(v);
  out->append(buf, 4);
}

void EncodeU64(std::string* out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(v >> (56 - 8 * i));
  }
  out->append(buf, 8);
}

void EncodeI64(std::string* out, std::int64_t v) {
  EncodeU64(out, static_cast<std::uint64_t>(v) ^ (1ULL << 63));
}

std::string KeyU32(std::uint32_t v) {
  std::string s;
  EncodeU32(&s, v);
  return s;
}

std::string KeyU64(std::uint64_t v) {
  std::string s;
  EncodeU64(&s, v);
  return s;
}

std::string KeyI64(std::int64_t v) {
  std::string s;
  EncodeI64(&s, v);
  return s;
}

std::uint32_t DecodeU32(Slice in) {
  assert(in.size() >= 4);
  const auto* p = reinterpret_cast<const unsigned char*>(in.data());
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t DecodeU64(Slice in) {
  assert(in.size() >= 8);
  const auto* p = reinterpret_cast<const unsigned char*>(in.data());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

std::int64_t DecodeI64(Slice in) {
  return static_cast<std::int64_t>(DecodeU64(in) ^ (1ULL << 63));
}

}  // namespace plp
