#include "src/metrics/registry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace plp {

namespace internal {
std::size_t MetricThreadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace internal

namespace {
// Bucket index for a value: its bit width, so bucket i holds values in
// [2^(i-1), 2^i) and bucket 0 holds exactly zero.
inline std::size_t BucketFor(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

// Inclusive upper bound of bucket i (the percentile estimate it reports).
inline std::uint64_t BucketCeiling(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

// Recomputes p50/p95/p99 from a summary's buckets by rank, reporting
// bucket ceilings clamped to the summary's max. Shared by the live
// Collect() path and by window deltas (HistogramSummary::DeltaSince).
void FinalizePercentiles(HistogramSummary* s) {
  if (s->count == 0) {
    s->p50 = s->p95 = s->p99 = 0;
    return;
  }
  auto percentile = [&](double q) {
    // Rank of the q-quantile among `count` samples; find the bucket whose
    // cumulative count covers it and report that bucket's ceiling.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(s->count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      seen += s->buckets[i];
      if (seen > rank) {
        const std::uint64_t ceiling = BucketCeiling(i);
        return ceiling < s->max ? ceiling : s->max;
      }
    }
    return s->max;
  };
  s->p50 = percentile(0.50);
  s->p95 = percentile(0.95);
  s->p99 = percentile(0.99);
}
}  // namespace

void Histogram::Record(std::uint64_t value) {
  Stripe& s = stripes_[internal::MetricThreadSlot() % kStripes];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSummary Histogram::Collect() const {
  HistogramSummary out;
  for (const Stripe& s : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }
  FinalizePercentiles(&out);
  return out;
}

HistogramSummary HistogramSummary::DeltaSince(
    const HistogramSummary& base) const {
  // A base that is "ahead" of this summary (snapshots taken out of order,
  // or a Reset between them) clamps to the current cumulative values
  // rather than underflowing.
  if (base.count > count) return *this;
  HistogramSummary d;
  d.count = count - base.count;
  d.sum = sum >= base.sum ? sum - base.sum : 0;
  std::size_t highest = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] =
        buckets[i] >= base.buckets[i] ? buckets[i] - base.buckets[i] : 0;
    if (d.buckets[i] != 0) highest = i;
  }
  // The true window max is unrecoverable from cumulative state; the
  // ceiling of the highest nonzero delta bucket (clamped to the
  // cumulative max) bounds it to within 2x — same precision contract as
  // the percentiles.
  d.max = d.count == 0 ? 0 : std::min(BucketCeiling(highest), max);
  FinalizePercentiles(&d);
  return d;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

StatsSnapshot StatsSnapshot::DeltaSince(const StatsSnapshot& base) const {
  StatsSnapshot d;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    const std::uint64_t b = it == base.counters.end() ? 0 : it->second;
    // A Reset between the snapshots makes the base "ahead"; report the
    // current cumulative value rather than underflowing.
    d.counters[name] = v >= b ? v - b : v;
  }
  // Gauges are levels, not rates: the current reading is the window value.
  d.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    auto it = base.histograms.find(name);
    d.histograms[name] =
        it == base.histograms.end() ? h : h.DeltaSince(it->second);
  }
  return d;
}

std::string StatsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-44s %12" PRIu64 "\n", name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-44s %12" PRId64 "\n", name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-44s count=%" PRIu64 " mean=%.1f p50=%" PRIu64
                  " p95=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.p50, h.p95, h.p99,
                  h.max);
    out += line;
  }
  // Ranked contention section, reassembled from the contention.<site>.*
  // gauges the flight recorder publishes via the Database gauge provider
  // (the registry cannot call the recorder directly: the recorder's
  // header is below latch.h, which this header sits on).
  struct SiteRow {
    std::string site;
    std::int64_t waits = 0;
    std::int64_t wait_us_total = 0;
    std::int64_t p99_us = 0;
  };
  std::map<std::string, SiteRow> rows;
  const std::string prefix = "contention.";
  for (const auto& [name, v] : gauges) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t dot = name.find('.', prefix.size());
    if (dot == std::string::npos) continue;
    const std::string site = name.substr(prefix.size(), dot - prefix.size());
    const std::string field = name.substr(dot + 1);
    SiteRow& row = rows[site];
    row.site = site;
    if (field == "waits") row.waits = v;
    if (field == "wait_us_total") row.wait_us_total = v;
    if (field == "p99_us") row.p99_us = v;
  }
  if (!rows.empty()) {
    std::vector<SiteRow> ranked;
    ranked.reserve(rows.size());
    for (auto& [site, row] : rows) ranked.push_back(std::move(row));
    std::sort(ranked.begin(), ranked.end(),
              [](const SiteRow& a, const SiteRow& b) {
                return a.wait_us_total > b.wait_us_total;
              });
    out += "-- top contended latch sites (by total wait) --\n";
    for (const SiteRow& row : ranked) {
      std::snprintf(line, sizeof(line),
                    "  %-20s waits=%-10" PRId64 " total_us=%-12" PRId64
                    " p99_us=%" PRId64 "\n",
                    row.site.c_str(), row.waits, row.wait_us_total,
                    row.p99_us);
      out += line;
    }
  }
  return out;
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{";
  char buf[320];
  bool first = true;
  auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, v] : counters) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRId64, name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"max\": %" PRIu64 ", \"p50\": %" PRIu64
                  ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64 "}",
                  name.c_str(), h.count, h.sum, h.max, h.p50, h.p95, h.p99);
    out += buf;
  }
  out += "}";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterGaugeProvider(const void* token,
                                            GaugeProvider fn) {
  MutexLock g(mu_);
  providers_.emplace_back(token, std::move(fn));
}

void MetricsRegistry::UnregisterGaugeProvider(const void* token) {
  MutexLock g(mu_);
  std::erase_if(providers_,
                [token](const auto& p) { return p.first == token; });
}

StatsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock g(mu_);
  StatsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Collect();
  }
  GaugeSink sink = [&snap](const std::string& name, std::int64_t value) {
    snap.gauges[name] = value;
  };
  for (const auto& [token, fn] : providers_) fn(sink);
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock g(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry* MetricsRegistry::Scratch() {
  static MetricsRegistry* scratch = new MetricsRegistry();  // leaked: sink
  return scratch;
}

}  // namespace plp
