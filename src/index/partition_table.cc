#include "src/index/partition_table.h"

#include "src/metrics/flight_recorder.h"

#include <cassert>
#include <cstring>

#include "src/common/key_encoding.h"
#include "src/storage/slotted_page.h"

namespace plp {

namespace {
// Routing-page record: [u32 root][key bytes]. The page `owner` field links
// to the next routing page in the chain (kInvalidPageId terminates).
std::string EncodeRoutingEntry(const PartitionTable::Entry& e) {
  std::string rec(reinterpret_cast<const char*>(&e.root), sizeof(PageId));
  rec += e.start_key;
  return rec;
}

PartitionTable::Entry DecodeRoutingEntry(Slice rec) {
  PartitionTable::Entry e;
  std::memcpy(&e.root, rec.data(), sizeof(PageId));
  e.start_key.assign(rec.data() + sizeof(PageId),
                     rec.size() - sizeof(PageId));
  return e;
}
}  // namespace

PartitionTable::PartitionTable(BufferPool* pool) : pool_(pool) {
  Page* page = pool_->NewPage(PageClass::kCatalog);
  SlottedPage::Init(page->data());
  SlottedPage(page->data()).set_owner(kInvalidPageId);
  routing_page_ = page->id();
}

PartitionId PartitionTable::PartitionFor(Slice key) const {
  ReaderMutexLock lk(mu_);
  assert(!entries_.empty());
  // Last entry whose start_key <= key.
  int lo = 0, hi = static_cast<int>(entries_.size());
  while (lo + 1 < hi) {
    const int mid = (lo + hi) / 2;
    if (Slice(entries_[static_cast<std::size_t>(mid)].start_key) <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<PartitionId>(lo);
}

Status PartitionTable::SetEntries(std::vector<Entry> entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("at least one partition required");
  }
  if (!entries.front().start_key.empty()) {
    return Status::InvalidArgument("first partition must start at -inf");
  }
  {
    WriterMutexLock lk(mu_);
    entries_ = std::move(entries);
  }
  return Persist();
}

std::vector<PartitionTable::Entry> PartitionTable::entries() const {
  ReaderMutexLock lk(mu_);
  return entries_;
}

std::size_t PartitionTable::NumPartitions() const {
  ReaderMutexLock lk(mu_);
  return entries_.size();
}

Status PartitionTable::Persist() {
  TraceSiteScope trace_site(TraceSite::kPartitionTable);
  ReaderMutexLock lk(mu_);
  PageId pid = routing_page_;
  std::size_t i = 0;
  while (i < entries_.size()) {
    Page* page = pool_->Fix(pid);
    if (page == nullptr) return Status::Internal("routing page missing");
    LatchGuard g(&page->latch(), LatchMode::kExclusive,
                 LatchPolicy::kLatched);
    SlottedPage::Init(page->data());
    SlottedPage sp(page->data());
    sp.set_owner(kInvalidPageId);
    while (i < entries_.size()) {
      const std::string rec = EncodeRoutingEntry(entries_[i]);
      SlotId slot;
      Status st = sp.Insert(rec, &slot);
      if (st.IsNoSpace()) break;  // chain another routing page
      PLP_RETURN_IF_ERROR(st);
      ++i;
    }
    page->MarkDirty();
    if (i < entries_.size()) {
      Page* next = pool_->NewPage(PageClass::kCatalog);
      SlottedPage::Init(next->data());
      SlottedPage(next->data()).set_owner(kInvalidPageId);
      sp.set_owner(next->id());
      pid = next->id();
    }
  }
  return Status::OK();
}

Status PartitionTable::LoadFromPages() {
  TraceSiteScope trace_site(TraceSite::kPartitionTable);
  std::vector<Entry> loaded;
  PageId pid = routing_page_;
  while (pid != kInvalidPageId) {
    Page* page = pool_->Fix(pid);
    if (page == nullptr) return Status::Corruption("routing chain broken");
    LatchGuard g(&page->latch(), LatchMode::kShared, LatchPolicy::kLatched);
    SlottedPage sp(page->data());
    sp.ForEach([&](SlotId, Slice rec) {
      loaded.push_back(DecodeRoutingEntry(rec));
    });
    pid = sp.owner();
  }
  WriterMutexLock lk(mu_);
  entries_ = std::move(loaded);
  return Status::OK();
}

}  // namespace plp
