#include "src/engine/cost_model.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace plp {

const char* RepartitionDesignName(RepartitionDesign d) {
  switch (d) {
    case RepartitionDesign::kPlpRegular: return "PLP-Regular";
    case RepartitionDesign::kPlpLeaf: return "PLP-Leaf";
    case RepartitionDesign::kPlpPartition: return "PLP-Partition";
    case RepartitionDesign::kSharedNothing: return "Shared-Nothing";
    case RepartitionDesign::kPlpClustered: return "PLP (Clustered)";
    case RepartitionDesign::kSharedNothingClustered:
      return "Shared-Nothing (Clustered)";
  }
  return "?";
}

namespace {
/// M for the designs that move the whole new partition:
/// m1 + sum_{l=0..h-2} n^{h-l-1} * (m_{h-l} - 1).
std::uint64_t FullPartitionRecords(const CostModelParams& p) {
  const auto h = static_cast<std::uint64_t>(p.height);
  std::uint64_t total = p.m[0];
  for (std::uint64_t l = 0; l + 2 <= h; ++l) {
    const std::uint64_t level = h - l;           // h, h-1, ..., 2
    const std::uint64_t moved = p.m[level - 1];  // m_{h-l}
    const double subtree =
        std::pow(static_cast<double>(p.entries_per_node),
                 static_cast<double>(h - l - 1));
    total += static_cast<std::uint64_t>(subtree) * (moved - 1);
  }
  return total;
}

std::uint64_t SumEntries(const CostModelParams& p, int from_level) {
  std::uint64_t sum = 0;
  for (int k = from_level; k <= p.height; ++k) {
    sum += p.m[static_cast<std::size_t>(k - 1)];
  }
  return sum;
}
}  // namespace

RepartitionCost ComputeRepartitionCost(RepartitionDesign design,
                                       const CostModelParams& p) {
  assert(p.m.size() == static_cast<std::size_t>(p.height));
  RepartitionCost c;
  const std::uint64_t h = static_cast<std::uint64_t>(p.height);
  const std::uint64_t n = p.entries_per_node;
  const std::uint64_t m1 = p.m[0];

  switch (design) {
    case RepartitionDesign::kPlpRegular:
      c.entries_moved = SumEntries(p, 1);
      c.pointer_updates = 2 * h + 1;
      break;

    case RepartitionDesign::kPlpLeaf:
      c.records_moved = m1;
      c.entries_moved = SumEntries(p, 1);
      c.reads = c.records_moved;
      c.pages_read = 1;
      c.pointer_updates = 2 * h + 1;
      c.primary_updates = c.records_moved;
      c.secondary_updates = c.records_moved;
      break;

    case RepartitionDesign::kPlpPartition:
      c.records_moved = FullPartitionRecords(p);
      c.entries_moved = SumEntries(p, 1);
      c.reads = c.records_moved;
      c.pages_read = 1 + (c.records_moved - m1) / n;
      c.pointer_updates = 2 * h + 1;
      c.primary_updates = c.records_moved;
      c.secondary_updates = c.records_moved;
      break;

    case RepartitionDesign::kSharedNothing:
      c.records_moved = FullPartitionRecords(p);
      c.reads = c.records_moved;
      c.pages_read = 1 + (c.records_moved - m1) / n;
      c.primary_inserts = c.records_moved;
      c.primary_deletes = c.records_moved;
      c.secondary_inserts = c.records_moved;
      c.secondary_deletes = c.records_moved;
      break;

    case RepartitionDesign::kPlpClustered:
      // Leaf entries *are* the records; only levels >= 2 move entries.
      c.records_moved = m1;
      c.entries_moved = SumEntries(p, 2);
      c.pointer_updates = 2 * h + 1;
      c.secondary_updates = c.records_moved;
      break;

    case RepartitionDesign::kSharedNothingClustered:
      c.records_moved = FullPartitionRecords(p);
      c.primary_inserts = c.records_moved;
      c.primary_deletes = c.records_moved;
      c.secondary_inserts = c.records_moved;
      c.secondary_deletes = c.records_moved;
      break;
  }
  return c;
}

namespace {
std::string HumanBytes(double bytes) {
  char buf[32];
  if (bytes >= 1.0e6) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", bytes / 1.0e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1.0e3);
  }
  return buf;
}

std::string HumanCount(std::uint64_t v) {
  char buf[32];
  if (v >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}
}  // namespace

std::string FormatCostRow(RepartitionDesign design,
                          const CostModelParams& params) {
  const RepartitionCost c = ComputeRepartitionCost(design, params);
  std::string idx_changes;
  if (c.primary_updates > 0) {
    idx_changes = HumanCount(c.primary_updates) + " U";
  } else if (c.primary_inserts > 0) {
    idx_changes = HumanCount(c.primary_inserts) + " I + " +
                  HumanCount(c.primary_deletes) + " D";
  } else {
    idx_changes = "-";
  }
  std::string sec_changes;
  if (c.secondary_updates > 0) {
    sec_changes = HumanCount(c.secondary_updates) + " U";
  } else if (c.secondary_inserts > 0) {
    sec_changes = HumanCount(c.secondary_inserts) + " I + " +
                  HumanCount(c.secondary_deletes) + " D";
  } else {
    sec_changes = "-";
  }

  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%-28s | recs %9s | entries %8s | pages-read %6s | ptr-upd %3llu | "
      "primary %-16s | secondary %-16s",
      RepartitionDesignName(design),
      c.records_moved == 0
          ? "-"
          : HumanBytes(static_cast<double>(c.records_moved) *
                       static_cast<double>(params.record_size))
                .c_str(),
      c.entries_moved == 0
          ? "-"
          : HumanBytes(static_cast<double>(c.entries_moved) *
                       static_cast<double>(params.entry_size))
                .c_str(),
      c.pages_read == 0 ? "-" : HumanCount(c.pages_read).c_str(),
      static_cast<unsigned long long>(c.pointer_updates),
      idx_changes.c_str(), sec_changes.c_str());
  return buf;
}

}  // namespace plp
