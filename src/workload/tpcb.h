// TPC-B — the false-sharing workload (Figure 7).
//
// BRANCH records are tiny and deliberately unpadded, so records from many
// branches (and hence many logical partitions) share heap pages. Designs
// with latched heaps (conventional, logical, PLP-Regular) contend on those
// pages; PLP-Leaf is immune because each heap page belongs to one leaf.
#ifndef PLP_WORKLOAD_TPCB_H_
#define PLP_WORKLOAD_TPCB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace plp {

struct TpcbConfig {
  std::uint32_t branches = 32;
  std::uint32_t tellers_per_branch = 10;
  std::uint32_t accounts_per_branch = 1000;
  int partitions = 4;
  /// Pad branch/teller records onto separate pages (the manual fix the
  /// conventional design needs; off reproduces the paper's experiment).
  bool pad_records = false;
  std::uint64_t seed = 7;
};

class TpcbWorkload {
 public:
  TpcbWorkload(Engine* engine, TpcbConfig config)
      : engine_(engine), config_(config) {}

  Status Load();

  /// The standard TPC-B account-update transaction.
  TxnRequest NextTransaction(Rng& rng);

  const TpcbConfig& config() const { return config_; }

  static std::string BranchKey(std::uint32_t b);
  static std::string TellerKey(std::uint32_t t);
  static std::string AccountKey(std::uint32_t a);
  static std::string HistoryKey(std::uint64_t h);

  static std::int64_t BalanceOf(Slice payload);

  static constexpr const char* kBranch = "tpcb_branch";
  static constexpr const char* kTeller = "tpcb_teller";
  static constexpr const char* kAccount = "tpcb_account";
  static constexpr const char* kHistory = "tpcb_history";

 private:
  std::string BranchRecord(std::uint32_t b) const;

  Engine* engine_;
  TpcbConfig config_;
  std::atomic<std::uint64_t> next_history_{1};
};

}  // namespace plp

#endif  // PLP_WORKLOAD_TPCB_H_
