// Physiological WAL logging for persistent B+Tree pages.
//
// An IndexLogger is attached to every BTree/MRBTree of a durable table
// (DatabaseConfig::index_durability == kLoggedPages). Index nodes then
// behave like heap pages: every mutation appends a WAL record that stamps
// the frame's page LSN (WAL-rule steal barrier + fuzzy-checkpoint rec_lsn),
// so index pages can be evicted and read back, and restart recovery redoes
// index history from the log instead of deserializing a snapshot.
//
// Record kinds (src/log/log_record.h):
//  * kIndexLeafInsert/Delete/Update — one key-level op on one page.
//    Physical to the page (rid.page_id), logical within it (the key is
//    re-located by binary search at redo). Tagged with the mutating
//    transaction: recovery uses the same record as the loser-undo anchor
//    and compensates logically through the tree.
//  * kIndexSmo — ONE record holding trimmed after-images of every page a
//    structure modification (split, root split, slice, meld) touched.
//    Single-record atomicity means a crash can never make half a split
//    durable: either the whole record is in the log or none of it.
//    System-tagged (txn = kInvalidTxnId): SMOs are never undone
//    (nested-top-action semantics — an abort removes the key, not the
//    split).
//  * kIndexPageFree — a page returned to the pool (meld/slice trimming).
//  * kPartitionTable — logical snapshot of an MRBTree's partition table
//    (boundary -> sub-tree root), appended on create and after every
//    slice/meld. Restart rebuilds the multi-rooted metadata from the
//    newest one (the checkpoint image carries a baseline so WAL
//    truncation cannot lose it).
//
// Latch-coupled logging contract: callers append the record while still
// holding the page exclusively (latch or partition ownership) AND pinned,
// which closes the modify->log window — an eviction cannot steal a frame
// between the byte change and the page-LSN stamp because the pin blocks
// the steal and the stamp lands before the pin is released.
#ifndef PLP_INDEX_PERSISTENT_INDEX_LOG_H_
#define PLP_INDEX_PERSISTENT_INDEX_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/buffer/page.h"
#include "src/common/slice.h"
#include "src/common/types.h"
#include "src/log/log_manager.h"

namespace plp {

/// (key, value) payload of a leaf record: [u16 klen][key][value].
std::string EncodeIndexEntry(Slice key, Slice value);
void DecodeIndexEntry(Slice payload, std::string* key, std::string* value);

/// Trimmed after-image of one B+Tree node: the used head (header + slot
/// directory) and the used cell area, skipping the dead middle of the
/// page. Typically well under half a page right after a split.
std::string EncodeNodeImage(const char* page_data);
/// Restores a trimmed image over `page_data` (zeroes the gap). False on a
/// malformed image.
bool ApplyNodeImage(Slice image, char* page_data);

/// kIndexSmo payload: [u32 n] n x ([u32 pid][u32 len][image]).
std::string EncodeSmoPayload(
    const std::vector<std::pair<PageId, std::string>>& images);
bool DecodeSmoPayload(Slice payload,
                      std::vector<std::pair<PageId, std::string>>* out);

/// kPartitionTable payload: [u32 n] n x ([u32 root][u32 klen][start_key]).
std::string EncodePartitionPayload(
    const std::vector<std::pair<std::string, PageId>>& parts);
bool DecodePartitionPayload(
    Slice payload, std::vector<std::pair<std::string, PageId>>* out);

/// kIndexRepartition payload: [bytes partition_payload][bytes smo_payload].
bool DecodeRepartitionPayload(
    Slice payload, std::vector<std::pair<std::string, PageId>>* parts,
    std::vector<std::pair<PageId, std::string>>* images);

// --- Tolerant page-local redo appliers (recovery) -----------------------
// Gated by page LSN at the call site; tolerant of already-applied state
// (an insert anchor logged just before its SMO record may target a page
// whose pre-SMO image has no room — the transaction cannot have committed,
// so dropping the op is correct; see docs/persistent_index.md).
void RedoLeafInsert(char* page_data, Slice key, Slice value);
void RedoLeafDelete(char* page_data, Slice key);
void RedoLeafUpdate(char* page_data, Slice key, Slice value);
/// Formats a freshly-materialized (zeroed) frame as an empty leaf exactly
/// once, so redo never interprets raw zeroes as a node.
void EnsureNodeFormatted(char* page_data);

/// Appends persistent-index records for one table's trees. Thread-safe
/// (LogManager::Append is). Every append stamps the frame via
/// Page::StampUpdate, advancing page_lsn and pinning rec_lsn.
class IndexLogger {
 public:
  IndexLogger(LogManager* log, std::uint32_t table_id)
      : log_(log), table_id_(table_id) {}

  IndexLogger(const IndexLogger&) = delete;
  IndexLogger& operator=(const IndexLogger&) = delete;

  Lsn LeafInsert(TxnId txn, Page* page, Slice key, Slice value);
  Lsn LeafDelete(TxnId txn, Page* page, Slice key, Slice old_value);
  Lsn LeafUpdate(TxnId txn, Page* page, Slice key, Slice new_value,
                 Slice old_value);

  /// One atomic SMO record with the after-image of every touched page.
  /// `pages` may contain duplicates (deduplicated here).
  Lsn Smo(const std::vector<Page*>& pages);

  /// One atomic repartition record: the SMO images of `pages` AND the
  /// post-repartition partition table. Slice/meld use this so no crash
  /// can separate the page moves from the routing change.
  Lsn SmoWithPartitions(
      const std::vector<Page*>& pages,
      const std::vector<std::pair<std::string, PageId>>& parts);

  Lsn PageFree(PageId id);

  Lsn LogPartitionTable(
      const std::vector<std::pair<std::string, PageId>>& parts);

  LogManager* log() { return log_; }
  std::uint32_t table_id() const { return table_id_; }

 private:
  Lsn AppendLeaf(LogType type, TxnId txn, Page* page, std::string redo,
                 std::string undo);

  LogManager* log_;
  const std::uint32_t table_id_;
};

}  // namespace plp

#endif  // PLP_INDEX_PERSISTENT_INDEX_LOG_H_
