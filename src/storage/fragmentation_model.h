// Analytic fragmentation and scan-time model for the PLP heap designs
// (Appendix D, Figures 11 and 12).
//
// PLP-Partition and PLP-Leaf constrain which records may share a heap page,
// which leaves empty space on partially-filled pages. The model computes
// the number of heap pages each design needs and the resulting relative
// scan time with a bounded buffer pool. Unit tests validate the model
// against actually-built heap files.
#ifndef PLP_STORAGE_FRAGMENTATION_MODEL_H_
#define PLP_STORAGE_FRAGMENTATION_MODEL_H_

#include <cstdint>

#include "src/common/types.h"

namespace plp {

struct FragmentationParams {
  std::uint64_t db_bytes = 0;        // total record payload bytes
  std::uint32_t record_size = 100;   // bytes per record
  std::uint32_t num_partitions = 1;  // logical partitions
  std::uint32_t leaf_entries = 170;  // index entries per MRBTree leaf page
  /// Record bytes that fit on one heap page (payload after header + slots).
  std::uint32_t usable_page_bytes =
      static_cast<std::uint32_t>(kPageSize) - 96;
};

struct HeapPageCounts {
  std::uint64_t conventional = 0;
  std::uint64_t plp_regular = 0;
  std::uint64_t plp_partition = 0;
  std::uint64_t plp_leaf = 0;
};

/// Records that fit on one heap page under `p`.
std::uint64_t RecordsPerHeapPage(const FragmentationParams& p);

/// Heap page counts for each design (Figure 11's y axis is each count
/// divided by `conventional`).
HeapPageCounts ComputeHeapPageCounts(const FragmentationParams& p);

struct ScanTimeParams {
  std::uint64_t bufferpool_bytes = 4ull << 30;  // 4GB, as in the paper
  double mem_page_cost = 1.0;    // relative cost to scan a resident page
  double io_page_cost = 100.0;   // relative cost when the page misses
};

/// Relative time to scan `pages` heap pages when only the first
/// `bufferpool_bytes` worth stay resident (Figure 12's model).
double ScanCost(std::uint64_t pages, const ScanTimeParams& t);

}  // namespace plp

#endif  // PLP_STORAGE_FRAGMENTATION_MODEL_H_
