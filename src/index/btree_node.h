// On-page B+Tree node format: sorted slot directory over variable-length
// key/value cells.
#ifndef PLP_INDEX_BTREE_NODE_H_
#define PLP_INDEX_BTREE_NODE_H_

#include <cstdint>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace plp {

class BufferPool;
class Page;

/// View over one index page. Entries are kept in key order via the slot
/// directory (binary-searchable); cells grow backward from the page end.
///
/// Layout:
///   [0]  u16 count          number of entries
///   [2]  u16 cell_start     lowest used cell byte
///   [4]  u16 level          0 = leaf
///   [6]  u16 flags          (reserved)
///   [8]  u32 next           right sibling (leaf chain); kInvalidPageId none
///   [12] u32 leftmost       child for keys < first key (internal nodes)
///   [16] slot directory     u16 cell offset per entry, sorted by key
///   cells: [u16 klen][u16 vlen][key bytes][value bytes][pad]
///
/// Internal-node entries map separator key -> child reference (the child
/// holding keys >= separator); keys below the first separator go to
/// `leftmost`. A child reference is normally a plain PageId, but while the
/// child is resident a latched tree may swizzle it to a tagged buffer-pool
/// frame index (IsSwizzledRef, runtime-only — sanitized before any image
/// leaves the pool). Internal-node cells are padded so the 4-byte value
/// lands 4-aligned: swizzle install CASes an entry under a *shared* parent
/// latch, so concurrent descents must read it atomically.
class BTreeNode {
 public:
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr std::size_t kSlotSize = 2;

  explicit BTreeNode(char* data) : data_(data) {}

  /// Formats an empty node at the given level.
  static void Init(char* data, std::uint16_t level);

  std::uint16_t count() const { return GetU16(0); }
  std::uint16_t level() const { return GetU16(4); }
  bool is_leaf() const { return level() == 0; }

  /// Racy peek at is_leaf(), used to pick a latch mode before this node's
  /// latch is held (callers re-read under the latch, so a stale answer
  /// only costs an over-strong latch). Relaxed atomics keep the
  /// deliberate race defined; Init stores the level field the same way.
  bool is_leaf_relaxed() const;

  PageId next() const { return GetU32(8); }
  void set_next(PageId id) { PutU32(8, id); }

  PageId leftmost_child() const { return GetU32(12); }
  void set_leftmost_child(PageId id) { PutU32(12, id); }

  Slice KeyAt(int i) const;
  Slice ValueAt(int i) const;
  /// Child pointer stored in entry i's value (internal nodes).
  PageId ChildAt(int i) const;

  /// Index of the first entry with key >= `key` (== count() if none).
  int LowerBound(Slice key) const;
  /// Index of the first entry with key > `key`.
  int UpperBound(Slice key) const;
  /// Exact-match index or -1.
  int Find(Slice key) const;

  /// Child to follow when descending for `key`. In a swizzling tree the
  /// result may be a tagged frame reference — callers translate through
  /// BufferPool::RefToPid (or use ChildRefFor to also learn the slot).
  PageId ChildFor(Slice key) const;

  // --- Atomic child-reference accessors (swizzling) --------------------
  // `slot` is an entry index, or -1 for the leftmost pointer. Entry values
  // in internal nodes are 4-byte aligned (WriteCell/Compact pad), so these
  // race safely: install CASes under a shared parent latch while other
  // descents load concurrently; unswizzle stores under the exclusive latch.

  /// Raw reference in `slot` (plain PageId or swizzled frame ref).
  PageId ChildRefAt(int slot) const;
  /// Raw reference to follow when descending for `key`; *slot receives the
  /// entry index (-1 for leftmost) so the caller can install a swizzle.
  PageId ChildRefFor(Slice key, int* slot) const;
  bool CasChildRef(int slot, PageId expected, PageId desired);
  void StoreChildRef(int slot, PageId v);

  /// Buffer-pool unswizzle hooks (wired through BufferPoolConfig so the
  /// cell-rewrite knowledge stays in src/index). UnswizzleAll rewrites
  /// every swizzled reference in `page` back to a plain PageId and clears
  /// the children's markers; UnswizzleChildRef rewrites just the entry
  /// pointing at `frame_index`. Both require the caller to exclude
  /// concurrent readers of `page` (exclusive latch / pin-zero / quiesced).
  static void UnswizzleAll(Page* page, BufferPool* pool);
  static bool UnswizzleChildRef(Page* parent, std::uint32_t frame_index,
                                PageId plain);

  /// Inserts (key, value) at sorted position `pos` (caller computed it via
  /// LowerBound). kNoSpace if it does not fit even after compaction.
  Status InsertAt(int pos, Slice key, Slice value);

  void RemoveAt(int pos);

  /// Replaces entry i's value; re-allocates the cell if the size changes.
  Status SetValueAt(int i, Slice value);

  /// Free bytes available for a new cell (contiguous, before compaction).
  std::size_t ContiguousFreeSpace() const;
  /// Free bytes including dead cells (after compaction).
  std::size_t TotalFreeSpace() const;
  bool HasRoomFor(Slice key, Slice value) const;

  /// Moves entries [from, count) into `dst` (appended; dst must be empty or
  /// its last key must sort before entry `from`). Used by splits.
  void MoveTail(int from, BTreeNode* dst);

  /// Appends all entries of `src` (whose keys all sort after ours).
  /// kNoSpace if they do not fit.
  Status AppendAll(const BTreeNode& src);

  /// Rewrites cells to defragment the cell area.
  void Compact();

  /// Lowest used cell byte (== kPageSize when empty, 0 only on a raw
  /// unformatted frame). The persistent-index image codec uses it to trim
  /// the dead middle of the page out of SMO log records.
  std::uint16_t cell_start() const { return GetU16(2); }

 private:
  std::uint16_t GetU16(std::size_t off) const;
  void PutU16(std::size_t off, std::uint16_t v);
  std::uint32_t GetU32(std::size_t off) const;
  void PutU32(std::size_t off, std::uint32_t v);

  std::uint16_t SlotAt(int i) const {
    return GetU16(kHeaderSize + static_cast<std::size_t>(i) * kSlotSize);
  }
  void SetSlot(int i, std::uint16_t off) {
    PutU16(kHeaderSize + static_cast<std::size_t>(i) * kSlotSize, off);
  }

  void set_cell_start(std::uint16_t v) { PutU16(2, v); }
  void set_count(std::uint16_t v) { PutU16(0, v); }

  /// Byte offset of the 4-byte child reference in `slot` (-1 = leftmost).
  std::size_t ValueOffset(int slot) const;

  /// Writes a cell for (key,value); returns its offset or 0 on no-space.
  std::uint16_t WriteCell(Slice key, Slice value);

  char* data_;
};

}  // namespace plp

#endif  // PLP_INDEX_BTREE_NODE_H_
