#include "src/index/btree.h"

#include <cassert>
#include <cstring>

namespace plp {

namespace {
std::string PidValue(PageId pid) {
  return std::string(reinterpret_cast<const char*>(&pid), sizeof(PageId));
}
}  // namespace

BTree::BTree(BufferPool* pool, LatchPolicy policy)
    : pool_(pool), policy_(policy) {
  Page* root = NewNodePage(/*level=*/0);
  root_ = root->id();
}

BTree::BTree(BufferPool* pool, LatchPolicy policy, PageId root)
    : pool_(pool), policy_(policy), root_(root) {}

Page* BTree::FixPage(PageId id) {
  return policy_ == LatchPolicy::kLatched ? pool_->Fix(id)
                                          : pool_->FixUnlocked(id);
}

Page* BTree::NewNodePage(std::uint16_t level) {
  Page* page = pool_->NewPage(PageClass::kIndex);
  BTreeNode::Init(page->data(), level);
  page->set_owner_tag(owner_tag_);
  return page;
}

PageId BTree::LeafFor(Slice key) {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    cur = FixPage(node.ChildFor(key));
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

void BTree::ApplyLeafMovedHook(Page* right_leaf) {
  if (!leaf_moved_hook_) return;
  BTreeNode node(right_leaf->data());
  for (int i = 0; i < node.count(); ++i) {
    const std::string new_value = leaf_moved_hook_(
        node.KeyAt(i), node.ValueAt(i), right_leaf->id());
    if (!new_value.empty()) {
      Status st = node.SetValueAt(i, new_value);
      assert(st.ok());
      (void)st;
    }
  }
  right_leaf->MarkDirty();
}

void BTree::RetagPages(std::uint32_t owner) {
  owner_tag_ = owner;
  struct Walker {
    BTree* tree;
    std::uint32_t owner;
    void Walk(PageId pid) {
      Page* page = tree->FixPage(pid);
      if (page == nullptr) return;
      page->set_owner_tag(owner);
      BTreeNode node(page->data());
      if (node.is_leaf()) return;
      if (node.leftmost_child() != kInvalidPageId) Walk(node.leftmost_child());
      for (int i = 0; i < node.count(); ++i) Walk(node.ChildAt(i));
    }
  };
  Walker{this, owner}.Walk(root_);
}

int BTree::height() {
  Page* root = FixPage(root_);
  return BTreeNode(root->data()).level() + 1;
}

Status BTree::Insert(Slice key, Slice value) {
  bool needs_smo = false;
  Status st = InsertOptimistic(key, value, &needs_smo);
  if (!needs_smo) return st;
  return InsertPessimistic(key, value);
}

Status BTree::InsertOptimistic(Slice key, Slice value, bool* needs_smo) {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());  // re-read under latch

  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    Page* child = FixPage(node.ChildFor(key));
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = child;
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);

  const int pos = node.LowerBound(key);
  if (pos < node.count() && node.KeyAt(pos) == key) {
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::AlreadyExists();
  }
  Status st = node.InsertAt(pos, key, value);
  if (st.ok()) {
    cur->MarkDirty();
    num_entries_.fetch_add(1, std::memory_order_relaxed);
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::OK();
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  *needs_smo = true;
  return Status::OK();
}

Status BTree::InsertPessimistic(Slice key, Slice value) {
  // ARIES/KVL: one SMO at a time per (sub-)tree.
  const bool latched = policy_ == LatchPolicy::kLatched;
  if (latched) smo_mu_.lock();

  std::vector<Page*> path;
  Page* cur = FixPage(root_);
  if (latched) cur->latch().AcquireExclusive();
  path.push_back(cur);
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    Page* child = FixPage(node.ChildFor(key));
    if (latched) child->latch().AcquireExclusive();
    path.push_back(child);
    cur = child;
    node = BTreeNode(cur->data());
  }

  auto unlock_all = [&] {
    if (latched) {
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        (*it)->latch().ReleaseExclusive();
      }
      smo_mu_.unlock();
    }
  };

  // Re-check for a duplicate inserted since the optimistic pass.
  {
    const int pos = node.LowerBound(key);
    if (pos < node.count() && node.KeyAt(pos) == key) {
      unlock_all();
      return Status::AlreadyExists();
    }
  }

  // Insert, splitting up the path as needed.
  std::string ins_key = key.ToString();
  std::string ins_val = value.ToString();
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    Page* page = path[static_cast<std::size_t>(i)];
    BTreeNode n(page->data());
    const int pos = n.LowerBound(ins_key);
    if (n.InsertAt(pos, ins_key, ins_val).ok()) {
      page->MarkDirty();
      break;
    }
    if (i == 0) {
      // Full root: split in place (the root page id never changes).
      SplitRoot(page);
      BTreeNode r(page->data());
      Page* target = FixPage(r.ChildFor(ins_key));
      BTreeNode tn(target->data());
      Status st = tn.InsertAt(tn.LowerBound(ins_key), ins_key, ins_val);
      assert(st.ok());
      (void)st;
      target->MarkDirty();
      break;
    }
    std::string sep;
    PageId right_pid;
    SplitNode(page, &sep, &right_pid);
    Page* target = Slice(ins_key).compare(sep) >= 0 ? FixPage(right_pid) : page;
    BTreeNode tn(target->data());
    Status st = tn.InsertAt(tn.LowerBound(ins_key), ins_key, ins_val);
    assert(st.ok());
    (void)st;
    target->MarkDirty();
    // Bubble the separator into the parent.
    ins_key = sep;
    ins_val = PidValue(right_pid);
    --i;
  }

  num_entries_.fetch_add(1, std::memory_order_relaxed);
  unlock_all();
  return Status::OK();
}

void BTree::SplitNode(Page* page, std::string* sep, PageId* right_pid) {
  BTreeNode node(page->data());
  const int mid = node.count() / 2;
  Page* right = NewNodePage(node.level());
  BTreeNode rnode(right->data());
  if (node.is_leaf()) {
    node.MoveTail(mid, &rnode);
    *sep = rnode.KeyAt(0).ToString();
    rnode.set_next(node.next());
    node.set_next(right->id());
    ApplyLeafMovedHook(right);
  } else {
    *sep = node.KeyAt(mid).ToString();
    rnode.set_leftmost_child(node.ChildAt(mid));
    node.MoveTail(mid + 1, &rnode);
    node.RemoveAt(mid);
  }
  right->MarkDirty();
  page->MarkDirty();
  *right_pid = right->id();
  smo_count_.fetch_add(1, std::memory_order_relaxed);
}

void BTree::SplitRoot(Page* root_page) {
  BTreeNode node(root_page->data());
  // Clone the root's contents into a fresh left child, split the clone,
  // and turn the root into an internal node over the two halves.
  Page* left = pool_->NewPage(PageClass::kIndex);
  left->set_owner_tag(owner_tag_);
  std::memcpy(left->data(), root_page->data(), kPageSize);
  std::string sep;
  PageId right_pid;
  SplitNode(left, &sep, &right_pid);
  const std::uint16_t new_level = node.level() + 1;
  BTreeNode::Init(root_page->data(), new_level);
  BTreeNode r(root_page->data());
  r.set_leftmost_child(left->id());
  Status st = r.InsertAt(0, sep, PidValue(right_pid));
  assert(st.ok());
  (void)st;
  left->MarkDirty();
  root_page->MarkDirty();
}

Status BTree::Probe(Slice key, std::string* value) {
  Page* cur = FixPage(root_);
  if (policy_ == LatchPolicy::kLatched) cur->latch().AcquireShared();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    Page* child = FixPage(node.ChildFor(key));
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().AcquireShared();
      cur->latch().ReleaseShared();
    }
    cur = child;
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);
  const int pos = node.Find(key);
  Status st = Status::OK();
  if (pos < 0) {
    st = Status::NotFound();
  } else {
    Slice v = node.ValueAt(pos);
    value->assign(v.data(), v.size());
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().ReleaseShared();
  return st;
}

Status BTree::Update(Slice key, Slice value) {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());
  while (!node.is_leaf()) {
    Page* child = FixPage(node.ChildFor(key));
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = child;
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  const int pos = node.Find(key);
  if (pos < 0) {
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::NotFound();
  }
  Status st = node.SetValueAt(pos, value);
  if (st.ok()) cur->MarkDirty();
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  if (st.IsNoSpace()) {
    // Rare: a grown value no longer fits on the leaf. Re-insert through the
    // SMO path (delete + insert; not atomic w.r.t. concurrent readers of
    // this one key, which our single-writer-per-key workloads tolerate).
    PLP_RETURN_IF_ERROR(Delete(key));
    return Insert(key, value);
  }
  return st;
}

Status BTree::Delete(Slice key) {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());
  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    Page* child = FixPage(node.ChildFor(key));
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = child;
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);
  const int pos = node.Find(key);
  Status st = Status::OK();
  if (pos < 0) {
    st = Status::NotFound();
  } else {
    node.RemoveAt(pos);
    cur->MarkDirty();
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  return st;
}

Status BTree::ScanFrom(Slice start,
                       const std::function<bool(Slice, Slice)>& fn) {
  Page* cur = FixPage(root_);
  if (policy_ == LatchPolicy::kLatched) cur->latch().AcquireShared();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    Page* child = FixPage(node.ChildFor(start));
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().AcquireShared();
      cur->latch().ReleaseShared();
    }
    cur = child;
    node = BTreeNode(cur->data());
  }
  int pos = node.LowerBound(start);
  for (;;) {
    if (pos >= node.count()) {
      const PageId next = node.next();
      if (next == kInvalidPageId) break;
      Page* np = FixPage(next);
      if (np == nullptr) break;
      if (policy_ == LatchPolicy::kLatched) {
        np->latch().AcquireShared();
        cur->latch().ReleaseShared();
      }
      cur = np;
      node = BTreeNode(cur->data());
      pos = 0;
      continue;
    }
    if (!fn(node.KeyAt(pos), node.ValueAt(pos))) break;
    ++pos;
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().ReleaseShared();
  return Status::OK();
}

PageId BTree::LeftmostLeaf() {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const PageId child = node.count() > 0 || node.leftmost_child() != kInvalidPageId
                             ? node.leftmost_child()
                             : kInvalidPageId;
    cur = FixPage(child);
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

PageId BTree::RightmostLeaf() {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const PageId child = node.count() > 0 ? node.ChildAt(node.count() - 1)
                                          : node.leftmost_child();
    cur = FixPage(child);
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

Status BTree::SliceOff(plp::Slice split_key, std::unique_ptr<BTree>* right_out) {
  // Recursively split the spine containing `split_key`; entries (and
  // sub-trees) at or above the key move to newly allocated right-side
  // nodes (Appendix A.3.2). Runs quiesced: no latches needed.
  struct Slicer {
    BTree* tree;
    plp::Slice key;

    PageId SlicePage(PageId pid) {
      Page* page = tree->FixPage(pid);
      BTreeNode node(page->data());
      Page* right = tree->NewNodePage(node.level());
      BTreeNode rnode(right->data());
      if (node.is_leaf()) {
        const int pos = node.LowerBound(key);
        node.MoveTail(pos, &rnode);
        rnode.set_next(node.next());
        node.set_next(kInvalidPageId);
        tree->ApplyLeafMovedHook(right);
      } else {
        const int pos = node.UpperBound(key);
        const PageId child =
            pos == 0 ? node.leftmost_child() : node.ChildAt(pos - 1);
        const PageId right_child = SlicePage(child);
        rnode.set_leftmost_child(right_child);
        node.MoveTail(pos, &rnode);
      }
      page->MarkDirty();
      right->MarkDirty();
      return right->id();
    }
  };

  Slicer slicer{this, split_key};
  PageId right_root = slicer.SlicePage(root_);

  // Trim degenerate right-root chains (internal nodes with no separators).
  for (;;) {
    Page* rp = FixPage(right_root);
    BTreeNode rn(rp->data());
    if (rn.is_leaf() || rn.count() > 0) break;
    const PageId only_child = rn.leftmost_child();
    pool_->FreePage(right_root);
    right_root = only_child;
  }

  auto right = std::unique_ptr<BTree>(new BTree(pool_, policy_, right_root));
  // Recount entries on both sides (slice moves a key range wholesale).
  std::uint64_t right_count = 0;
  right->ForEachEntry([&](plp::Slice, plp::Slice) { ++right_count; });
  right->num_entries_.store(right_count, std::memory_order_relaxed);
  num_entries_.fetch_sub(right_count, std::memory_order_relaxed);
  smo_count_.fetch_add(1, std::memory_order_relaxed);
  *right_out = std::move(right);
  return Status::OK();
}

Status BTree::Meld(BTree* right, plp::Slice boundary_key) {
  // Stitch the leaf chains first.
  {
    Page* rl = FixPage(RightmostLeaf());
    BTreeNode rln(rl->data());
    rln.set_next(right->LeftmostLeaf());
    rl->MarkDirty();
  }

  const int hl = height();
  const int hr = right->height();
  Page* lroot = FixPage(root_);
  Page* rroot = FixPage(right->root_);
  BTreeNode ln(lroot->data());
  BTreeNode rn(rroot->data());

  auto fallback_new_root = [&]() {
    const std::uint16_t level =
        static_cast<std::uint16_t>(std::max(hl, hr));
    Page* nroot = NewNodePage(level);
    BTreeNode nn(nroot->data());
    nn.set_leftmost_child(root_);
    Status st = nn.InsertAt(0, boundary_key, PidValue(right->root_));
    assert(st.ok());
    (void)st;
    nroot->MarkDirty();
    root_ = nroot->id();
  };

  if (hl == hr) {
    // Same height: append the right root's entries onto the left root
    // (Appendix A.3.1, case 1).
    bool merged = false;
    if (ln.is_leaf()) {
      merged = ln.AppendAll(rn).ok();
      if (merged) ln.set_next(rn.next());
    } else {
      const std::size_t need = 4 + boundary_key.size() + sizeof(PageId) +
                               BTreeNode::kSlotSize;
      if (ln.TotalFreeSpace() >= need &&
          ln.InsertAt(ln.count(), boundary_key,
                      PidValue(rn.leftmost_child()))
              .ok()) {
        if (ln.AppendAll(rn).ok()) {
          merged = true;
        } else {
          ln.RemoveAt(ln.count() - 1);  // roll back the boundary entry
        }
      }
    }
    if (merged) {
      lroot->MarkDirty();
      pool_->FreePage(right->root_);
    } else {
      fallback_new_root();
    }
  } else if (hl > hr) {
    // Taller left: hang the right root off the left tree's rightmost node
    // at level hr (Appendix A.3.1, case 2).
    Page* cur = lroot;
    BTreeNode node(cur->data());
    while (node.level() > hr) {
      const PageId child = node.count() > 0 ? node.ChildAt(node.count() - 1)
                                            : node.leftmost_child();
      cur = FixPage(child);
      node = BTreeNode(cur->data());
    }
    if (node.InsertAt(node.count(), boundary_key, PidValue(right->root_))
            .ok()) {
      cur->MarkDirty();
    } else {
      fallback_new_root();
    }
  } else {
    // Taller right: hang the left tree off the right tree's leftmost node
    // at level hl (Appendix A.3.1, case 3); the merged root is the right
    // tree's root.
    Page* cur = rroot;
    BTreeNode node(cur->data());
    while (node.level() > hl) {
      cur = FixPage(node.leftmost_child());
      node = BTreeNode(cur->data());
    }
    const PageId old_leftmost = node.leftmost_child();
    if (node.InsertAt(0, boundary_key, PidValue(old_leftmost)).ok()) {
      node.set_leftmost_child(root_);
      cur->MarkDirty();
      root_ = right->root_;
    } else {
      fallback_new_root();
    }
  }

  num_entries_.fetch_add(right->num_entries(), std::memory_order_relaxed);
  smo_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BTree::ApproxMedianKey(std::string* out) {
  Page* cur = FixPage(root_);
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const int mid = node.count() / 2;
    const PageId child = node.count() == 0
                             ? node.leftmost_child()
                             : node.ChildAt(std::max(0, mid - 1));
    cur = FixPage(child);
    node = BTreeNode(cur->data());
  }
  if (node.count() == 0) return Status::NotFound("empty tree");
  *out = node.KeyAt(node.count() / 2).ToString();
  return Status::OK();
}

Status BTree::MinKey(std::string* out) {
  Page* cur = FixPage(LeftmostLeaf());
  for (;;) {
    BTreeNode node(cur->data());
    if (node.count() > 0) {
      *out = node.KeyAt(0).ToString();
      return Status::OK();
    }
    if (node.next() == kInvalidPageId) return Status::NotFound();
    cur = FixPage(node.next());
  }
}

void BTree::ForEachEntry(const std::function<void(plp::Slice, plp::Slice)>& fn) {
  struct Walker {
    BTree* tree;
    const std::function<void(plp::Slice, plp::Slice)>& fn;
    void Walk(PageId pid) {
      Page* page = tree->FixPage(pid);
      BTreeNode node(page->data());
      if (node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) {
          fn(node.KeyAt(i), node.ValueAt(i));
        }
        return;
      }
      if (node.leftmost_child() != kInvalidPageId) Walk(node.leftmost_child());
      for (int i = 0; i < node.count(); ++i) Walk(node.ChildAt(i));
    }
  };
  Walker{this, fn}.Walk(root_);
}

Status BTree::CheckIntegrity() {
  struct Checker {
    BTree* tree;
    Status status = Status::OK();

    void Check(PageId pid, const std::string* lo, const std::string* hi,
               int expected_level) {
      if (!status.ok()) return;
      Page* page = tree->FixPage(pid);
      if (page == nullptr) {
        status = Status::Corruption("dangling child pointer");
        return;
      }
      BTreeNode node(page->data());
      // Levels strictly decrease toward the leaves. (Meld can legitimately
      // hang shorter sub-trees below a node, so equality with parent-1 is
      // not required.)
      if (expected_level >= 0 && node.level() >= expected_level) {
        status = Status::Corruption("level not decreasing");
        return;
      }
      for (int i = 0; i < node.count(); ++i) {
        if (i > 0 && !(node.KeyAt(i - 1) < node.KeyAt(i))) {
          status = Status::Corruption("keys out of order");
          return;
        }
        if (lo && node.KeyAt(i) < plp::Slice(*lo)) {
          status = Status::Corruption("key below lower bound");
          return;
        }
        if (hi && !(node.KeyAt(i) < plp::Slice(*hi))) {
          status = Status::Corruption("key above upper bound");
          return;
        }
      }
      if (node.is_leaf()) return;
      if (node.leftmost_child() == kInvalidPageId) {
        status = Status::Corruption("internal node without leftmost child");
        return;
      }
      // leftmost child: keys in [lo, key0)
      {
        std::string first = node.count() > 0 ? node.KeyAt(0).ToString() : "";
        Check(node.leftmost_child(), lo,
              node.count() > 0 ? &first : hi, node.level());
      }
      for (int i = 0; i < node.count(); ++i) {
        std::string this_key = node.KeyAt(i).ToString();
        std::string next_key =
            i + 1 < node.count() ? node.KeyAt(i + 1).ToString() : "";
        Check(node.ChildAt(i), &this_key,
              i + 1 < node.count() ? &next_key : hi, node.level());
      }
    }
  };
  Checker checker{this};
  checker.Check(root_, nullptr, nullptr, -1);
  return checker.status;
}

}  // namespace plp
