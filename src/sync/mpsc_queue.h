// Multi-producer single-consumer queue used for partition input queues.
//
// Enqueues are the "message passing" communication of the logically
// partitioned designs — a fixed-contention critical section in the paper's
// taxonomy (Section 2.1) — and are recorded as such.
#ifndef PLP_SYNC_MPSC_QUEUE_H_
#define PLP_SYNC_MPSC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "src/sync/cs_profiler.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

template <typename T>
class MpscQueue {
 public:
  /// `record_cs` controls whether pushes count as message-passing critical
  /// sections. Partition input queues (the default) are the paper's
  /// fixed-contention communication; client-dispatch queues (the
  /// conventional engine's submission pool) pass false so the conventional
  /// design keeps reporting zero message passing.
  explicit MpscQueue(bool record_cs = true) : record_cs_(record_cs) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  void Push(T item) {
    {
      const bool contended = mu_.LockNoteContended();
      if (record_cs_) {
        CsProfiler::Record(CsCategory::kMessagePassing, contended);
      }
      items_.push_back(std::move(item));
      mu_.unlock();
    }
    cv_.notify_one();
  }

  /// System-queue push (Appendix A.4): high-priority items jump the queue
  /// so page-cleaning requests are served before normal actions.
  void PushHighPriority(T item) {
    {
      const bool contended = mu_.LockNoteContended();
      if (record_cs_) {
        CsProfiler::Record(CsCategory::kMessagePassing, contended);
      }
      items_.push_front(std::move(item));
      mu_.unlock();
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or Close() is called.
  /// Returns nullopt only after close with an empty queue.
  std::optional<T> Pop() {
    MutexLock lk(mu_);
    while (items_.empty() && !closed_) lk.Wait(cv_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens a closed queue (consumer-pool restart). The caller must have
  /// joined every consumer that observed the close first.
  void Reopen() {
    MutexLock lk(mu_);
    closed_ = false;
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return items_.size();
  }

 private:
  const bool record_cs_ = true;
  mutable Mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_ PLP_GUARDED_BY(mu_);
  bool closed_ PLP_GUARDED_BY(mu_) = false;
};

}  // namespace plp

#endif  // PLP_SYNC_MPSC_QUEUE_H_
