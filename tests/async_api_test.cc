// Asynchronous transaction API tests: Submit/TxnHandle semantics,
// admission-control backpressure, completion callbacks, and an open-loop
// stress run (N client threads x M in-flight handles) across all five
// system designs — including aborts whose undo closures execute while
// other transactions are pipelined behind them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/key_encoding.h"
#include "src/engine/engine.h"

namespace plp {
namespace {

class AsyncApiTest : public ::testing::TestWithParam<SystemDesign> {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = GetParam();
    config.num_workers = 4;
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    engine_ = std::move(created).value();
    engine_->Start();
    auto result = engine_->CreateTable(
        "t", {"", KeyU32(250000), KeyU32(500000), KeyU32(750000)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    table_ = result.value();
  }

  void TearDown() override { engine_->Stop(); }

  static TxnRequest InsertTxn(std::uint32_t k, const std::string& value) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, value](ExecContext& ctx) {
      return ctx.Insert(key, value);
    });
    return req;
  }

  Status ReadKey(std::uint32_t k, std::string* out) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    auto holder = std::make_shared<std::string>();
    req.Add(0, "t", key, [key, holder](ExecContext& ctx) {
      return ctx.Read(key, holder.get());
    });
    Status st = engine_->Execute(req);
    *out = *holder;
    return st;
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, AsyncApiTest,
    ::testing::Values(SystemDesign::kConventional, SystemDesign::kLogical,
                      SystemDesign::kPlpRegular, SystemDesign::kPlpPartition,
                      SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kConventional: return "Conventional";
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
      }
      return "Unknown";
    });

TEST_P(AsyncApiTest, SubmitWaitCommits) {
  TxnHandle h = engine_->Submit(InsertTxn(1, "v"));
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(h.Wait().ok());
  // Wait is idempotent.
  EXPECT_TRUE(h.Wait().ok());
  std::string out;
  ASSERT_TRUE(ReadKey(1, &out).ok());
  EXPECT_EQ(out, "v");
}

TEST_P(AsyncApiTest, TryGetEventuallyObservesCompletion) {
  TxnHandle h = engine_->Submit(InsertTxn(2, "v"));
  Status st;
  while (!h.TryGet(&st)) std::this_thread::yield();
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(h.done());
}

TEST_P(AsyncApiTest, CallbackRunsOnceBeforeWaitReturns) {
  std::atomic<int> calls{0};
  Status seen;
  TxnOptions options;
  options.on_complete = [&](const Status& st) {
    seen = st;
    calls.fetch_add(1);
  };
  TxnHandle h = engine_->Submit(InsertTxn(3, "v"), std::move(options));
  EXPECT_TRUE(h.Wait().ok());
  EXPECT_EQ(calls.load(), 1) << "callback fired before Wait returned";
  EXPECT_TRUE(seen.ok());
}

TEST_P(AsyncApiTest, FailedTxnReportsStatusThroughHandle) {
  ASSERT_TRUE(engine_->Submit(InsertTxn(4, "v")).Wait().ok());
  TxnHandle h = engine_->Submit(InsertTxn(4, "dup"));
  EXPECT_TRUE(h.Wait().IsAlreadyExists());
}

TEST_P(AsyncApiTest, ExecuteIsAWrapperOverSubmitWait) {
  TxnRequest req = InsertTxn(5, "v");
  EXPECT_TRUE(engine_->Execute(req).ok());
  std::string out;
  ASSERT_TRUE(ReadKey(5, &out).ok());
  EXPECT_EQ(out, "v");
}

// A full admission gate with OnFull::kRetry resolves the handle
// immediately with Status::Retry instead of blocking.
TEST_P(AsyncApiTest, BackpressureRetryWhenGateFull) {
  EngineConfig config;
  config.design = GetParam();
  config.num_workers = 1;
  config.max_inflight = 1;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok());
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("g", {""}).ok());

  // Occupy the only slot with an action that parks until released.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool parked = false;
  TxnRequest blocker;
  const std::string key = KeyU32(1);
  blocker.Add(0, "g", key, [&](ExecContext&) {
    {
      std::lock_guard<std::mutex> g(mu);
      parked = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    return Status::OK();
  });
  TxnHandle held = engine->Submit(std::move(blocker));
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return parked; });
  }

  auto insert_g = [](std::uint32_t k) {
    TxnRequest req;
    const std::string gkey = KeyU32(k);
    req.Add(0, "g", gkey, [gkey](ExecContext& ctx) {
      return ctx.Insert(gkey, "v");
    });
    return req;
  };
  TxnOptions options;
  options.on_full = TxnOptions::OnFull::kRetry;
  TxnHandle rejected = engine->Submit(insert_g(2), std::move(options));
  Status st;
  ASSERT_TRUE(rejected.TryGet(&st)) << "kRetry handle resolves immediately";
  EXPECT_TRUE(st.IsRetry()) << st.ToString();
  EXPECT_GE(engine->submissions_rejected(), 1u);

  {
    std::lock_guard<std::mutex> g(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(held.Wait().ok());

  // With the slot free the same submission is admitted.
  TxnOptions retry_again;
  retry_again.on_full = TxnOptions::OnFull::kRetry;
  EXPECT_TRUE(
      engine->Submit(insert_g(2), std::move(retry_again)).Wait().ok());
  engine->Stop();
}

// OnFull::kBlock parks the submitter until a slot frees.
TEST_P(AsyncApiTest, BackpressureBlockWaitsForSlot) {
  EngineConfig config;
  config.design = GetParam();
  config.num_workers = 1;
  config.max_inflight = 1;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok());
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("g", {""}).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool parked = false;
  TxnRequest blocker;
  const std::string key = KeyU32(1);
  blocker.Add(0, "g", key, [&](ExecContext&) {
    {
      std::lock_guard<std::mutex> g(mu);
      parked = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    return Status::OK();
  });
  TxnHandle held = engine->Submit(std::move(blocker));
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return parked; });
  }

  std::atomic<bool> second_done{false};
  std::thread submitter([&] {
    TxnRequest req;
    const std::string gkey = KeyU32(2);
    req.Add(0, "g", gkey, [gkey](ExecContext& ctx) {
      return ctx.Insert(gkey, "v");
    });
    Status st = engine->Submit(std::move(req)).Wait();
    EXPECT_TRUE(st.ok()) << st.ToString();
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load()) << "second Submit must wait for the slot";

  {
    std::lock_guard<std::mutex> g(mu);
    release = true;
  }
  cv.notify_all();
  submitter.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_TRUE(held.Wait().ok());
  engine->Stop();
}

// Open-loop stress: N client threads each keep M handles in flight.
// Every submission must complete exactly once (callback count == handle
// count == submissions) with the expected per-handle outcome.
TEST_P(AsyncApiTest, StressClientsTimesInflightNoLostCompletions) {
  constexpr int kClients = 4;
  constexpr int kDepth = 64;
  constexpr int kPerClient = 500;

  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<TxnHandle> window;
      window.reserve(kDepth);
      auto drain = [&] {
        for (TxnHandle& h : window) {
          Status st = h.Wait();
          EXPECT_TRUE(st.ok()) << st.ToString();
          if (st.ok()) committed.fetch_add(1, std::memory_order_relaxed);
        }
        window.clear();
      };
      for (int i = 0; i < kPerClient; ++i) {
        const auto k = static_cast<std::uint32_t>(c * 1000000 + i);
        TxnOptions options;
        options.on_complete = [&callbacks](const Status&) {
          callbacks.fetch_add(1, std::memory_order_relaxed);
        };
        window.push_back(
            engine_->Submit(InsertTxn(k, "stress"), std::move(options)));
        if (static_cast<int>(window.size()) >= kDepth) drain();
      }
      drain();
    });
  }
  for (auto& t : clients) t.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(callbacks.load(), expected) << "lost or duplicated completions";
  EXPECT_EQ(committed.load(), expected);
  EXPECT_EQ(table_->primary()->num_entries(), expected);
  ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
  EXPECT_EQ(engine_->inflight(), 0u);
}

// Aborts under pipelining: transactions whose second phase fails must run
// their undo closures (on the owning workers for partitioned designs)
// while unrelated pipelined transactions race past them.
TEST_P(AsyncApiTest, AbortUnderPipeliningRunsUndoClosures) {
  // The poison key every aborting transaction collides with.
  ASSERT_TRUE(engine_->Submit(InsertTxn(999999, "poison")).Wait().ok());

  constexpr int kTxns = 200;
  std::vector<TxnHandle> handles;
  handles.reserve(2 * kTxns);
  for (int i = 0; i < kTxns; ++i) {
    // Aborting txn: phase 0 inserts a unique key (generating an undo
    // closure), phase 1 hits the duplicate and fails.
    const auto doomed = static_cast<std::uint32_t>(500000 + i);
    TxnRequest bad;
    const std::string k1 = KeyU32(doomed), k2 = KeyU32(999999);
    bad.Add(0, "t", k1,
            [k1](ExecContext& ctx) { return ctx.Insert(k1, "doomed"); });
    bad.Add(1, "t", k2,
            [k2](ExecContext& ctx) { return ctx.Insert(k2, "dup"); });
    handles.push_back(engine_->Submit(std::move(bad)));
    // Interleaved committing txn.
    handles.push_back(engine_->Submit(
        InsertTxn(static_cast<std::uint32_t>(100000 + i), "survivor")));
  }

  int aborted = 0, ok = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const Status st = handles[i].Wait();
    if (i % 2 == 0) {
      // The duplicate makes the txn abort; under heavy lock contention the
      // conventional design may instead fall to a deadlock victim — either
      // way it must not commit.
      EXPECT_FALSE(st.ok());
      EXPECT_TRUE(st.IsAlreadyExists() || st.IsAborted() || st.IsTimedOut())
          << st.ToString();
      ++aborted;
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
      ++ok;
    }
  }
  EXPECT_EQ(aborted, kTxns);
  EXPECT_EQ(ok, kTxns);

  // Undo closures removed every doomed insert; survivors remain.
  std::string out;
  for (int i = 0; i < kTxns; i += 17) {
    EXPECT_FALSE(
        ReadKey(static_cast<std::uint32_t>(500000 + i), &out).ok())
        << "undo closure did not run for " << i;
    EXPECT_TRUE(ReadKey(static_cast<std::uint32_t>(100000 + i), &out).ok());
  }
  ASSERT_TRUE(ReadKey(999999, &out).ok());
  EXPECT_EQ(out, "poison");
}

// Stop() + Start() must yield a working engine again (the submission
// queues reopen).
TEST_P(AsyncApiTest, EngineRestartsAfterStop) {
  ASSERT_TRUE(engine_->Submit(InsertTxn(50, "before")).Wait().ok());
  engine_->Stop();
  engine_->Start();
  ASSERT_TRUE(engine_->Submit(InsertTxn(51, "after")).Wait().ok());
  std::string out;
  ASSERT_TRUE(ReadKey(50, &out).ok());
  ASSERT_TRUE(ReadKey(51, &out).ok());
  EXPECT_EQ(out, "after");
}

// Submitting to an engine that was never started must not hang: the
// conventional design runs inline; partitioned designs fail fast (their
// partition discipline needs the workers).
TEST_P(AsyncApiTest, SubmitWithoutStartResolvesPromptly) {
  EngineConfig config;
  config.design = GetParam();
  config.num_workers = 2;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok());
  auto engine = std::move(created).value();
  // No Start(). CreateTable works (catalog only)...
  ASSERT_TRUE(engine->CreateTable("g", {""}).ok());
  TxnRequest req;
  const std::string key = KeyU32(1);
  req.Add(0, "g", key,
          [key](ExecContext& ctx) { return ctx.Insert(key, "v"); });
  const Status st = engine->Submit(std::move(req)).Wait();
  if (GetParam() == SystemDesign::kConventional) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  } else {
    EXPECT_FALSE(st.ok());
  }
  engine->Stop();
}

TEST_P(AsyncApiTest, TraceStampsMonotonicTimeline) {
  TxnOptions options;
  options.trace = true;
  TxnHandle h = engine_->Submit(InsertTxn(61, "traced"), std::move(options));
  ASSERT_TRUE(h.Wait().ok());

  const TxnTimeline* t = h.timeline();
  ASSERT_NE(t, nullptr);
  const std::uint64_t submit = t->submit_ns.load();
  const std::uint64_t admitted = t->admitted_ns.load();
  const std::uint64_t execute = t->execute_ns.load();
  const std::uint64_t append = t->append_ns.load();
  const std::uint64_t complete = t->complete_ns.load();
  EXPECT_GT(submit, 0u);
  EXPECT_GE(admitted, submit);
  EXPECT_GE(execute, admitted);
  EXPECT_GE(append, execute);  // commit record followed the action
  EXPECT_GE(complete, append);
  // Non-durable config: the fsync-durable stage is never reached.
  EXPECT_EQ(t->durable_ns.load(), 0u);

  // The stage sinks fed the registry histograms.
  const StatsSnapshot stats = engine_->GetStats();
  const HistogramSummary* total = stats.histogram("trace.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->count, 1u);
  const HistogramSummary* fsync = stats.histogram("trace.fsync_us");
  ASSERT_NE(fsync, nullptr);
  EXPECT_EQ(fsync->count, 0u);
}

TEST_P(AsyncApiTest, UntracedSubmissionsCarryNoTimeline) {
  TxnHandle h = engine_->Submit(InsertTxn(62, "plain"));
  ASSERT_TRUE(h.Wait().ok());
  EXPECT_EQ(h.timeline(), nullptr);
}

TEST_P(AsyncApiTest, StatsAdmissionBalancesAfterDrain) {
  constexpr int kTxns = 64;
  std::vector<TxnHandle> handles;
  handles.reserve(kTxns);
  for (int i = 0; i < kTxns; ++i) {
    handles.push_back(engine_->Submit(InsertTxn(
        static_cast<std::uint32_t>(1000 + i), "v")));
  }
  for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
  const StatsSnapshot stats = engine_->GetStats();
  // admitted == completed + in-flight, and the window has drained.
  EXPECT_EQ(stats.gauge("admission.admitted"), kTxns);
  EXPECT_EQ(stats.gauge("admission.inflight"), 0);
  EXPECT_EQ(stats.gauge("admission.rejected"), 0);
  EXPECT_EQ(stats.counter("txn.begins"),
            stats.counter("txn.commits") + stats.counter("txn.aborts"));
  EXPECT_GE(stats.counter("txn.commits"), static_cast<std::uint64_t>(kTxns));
}

// --- Dedicated callback executor (EngineConfig::dedicated_callback_thread)

TEST(CallbackExecutorTest, CallbacksRunOnOneDedicatedThread) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.num_workers = 4;
  config.dedicated_callback_thread = true;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

  constexpr int kTxns = 64;
  std::mutex mu;
  std::vector<std::thread::id> callback_threads;
  std::atomic<int> fired{0};
  std::vector<TxnHandle> handles;
  const std::thread::id submitter = std::this_thread::get_id();
  for (int i = 0; i < kTxns; ++i) {
    TxnRequest req;
    const std::string key = KeyU32(static_cast<std::uint32_t>(i));
    req.Add(0, "t", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "v");
    });
    TxnOptions options;
    options.on_complete = [&](const Status& st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::lock_guard<std::mutex> g(mu);
      callback_threads.push_back(std::this_thread::get_id());
      fired.fetch_add(1);
    };
    handles.push_back(engine->Submit(std::move(req), options));
  }
  for (auto& h : handles) {
    // Wait() must not return before the callback has run.
    const int before_wait = fired.load();
    ASSERT_TRUE(h.Wait().ok());
    (void)before_wait;
  }
  EXPECT_EQ(fired.load(), kTxns);
  std::lock_guard<std::mutex> g(mu);
  ASSERT_EQ(callback_threads.size(), static_cast<std::size_t>(kTxns));
  // All callbacks ran on the same thread, and not on the submitter.
  for (const auto& id : callback_threads) {
    EXPECT_EQ(id, callback_threads.front());
    EXPECT_NE(id, submitter);
  }
  engine->Stop();
}

TEST(CallbackExecutorTest, WaitObservesCallbackCompletion) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.num_workers = 2;
  config.dedicated_callback_thread = true;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok());
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

  // A deliberately slow callback: Wait() must block until it finishes.
  std::atomic<bool> callback_done{false};
  TxnRequest req;
  const std::string key = KeyU32(1);
  req.Add(0, "t", key, [key](ExecContext& ctx) {
    return ctx.Insert(key, "v");
  });
  TxnOptions options;
  options.on_complete = [&](const Status&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    callback_done.store(true);
  };
  TxnHandle h = engine->Submit(std::move(req), options);
  ASSERT_TRUE(h.Wait().ok());
  EXPECT_TRUE(callback_done.load())
      << "Wait() returned before the executor ran the callback";
  engine->Stop();
}

TEST(EngineConfigValidationTest, RejectsNonPositiveWorkers) {
  EngineConfig config;
  config.num_workers = 0;
  auto created = CreateEngine(config);
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  config.num_workers = -3;
  EXPECT_FALSE(CreateEngine(config).ok());
}

TEST(EngineConfigValidationTest, RejectsZeroMaxInflight) {
  EngineConfig config;
  config.max_inflight = 0;
  auto created = CreateEngine(config);
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineConfigValidationTest, AcceptsValidConfig) {
  EngineConfig config;
  config.num_workers = 2;
  config.max_inflight = 16;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_NE(created.value(), nullptr);
}

}  // namespace
}  // namespace plp
