// Page cleaner (Section A.4 of the paper).
//
// Conventional and logically-partitioned systems run cleaner threads that
// latch arbitrary dirty pages. Under PLP that would break the one-thread-
// per-page invariant, so the cleaner instead *delegates*: it hands each
// dirty page's id to the owning partition through its high-priority system
// queue, and the partition worker cleans its own pages.
#ifndef PLP_BUFFER_PAGE_CLEANER_H_
#define PLP_BUFFER_PAGE_CLEANER_H_

#include <atomic>
#include <functional>
#include <thread>

#include "src/buffer/buffer_pool.h"

namespace plp {

class PageCleaner {
 public:
  /// Routes a dirty page to its owning partition worker. Returns true if
  /// the page was delegated; false means the cleaner should clean it
  /// directly (page not owned by any partition, e.g. catalog pages).
  using Delegate = std::function<bool(PageId)>;

  /// `delegate` may be null (fully conventional cleaning).
  PageCleaner(BufferPool* pool, Delegate delegate = nullptr,
              std::size_t batch_size = 64);
  ~PageCleaner();

  PageCleaner(const PageCleaner&) = delete;
  PageCleaner& operator=(const PageCleaner&) = delete;

  void Start();
  void Stop();

  /// One cleaning pass; also callable synchronously from tests.
  /// Returns the number of pages cleaned or delegated.
  std::size_t RunOnce();

  /// Cleans one page in the conventional way: latch, write back (through
  /// the pool's disk manager when one is attached, honoring the WAL rule),
  /// clear dirty. Also used by partition workers to serve delegated
  /// requests (they call it with kNone since they own the page). Takes an
  /// id, not a frame: the frame may have been evicted since the caller
  /// saw it (an evicted frame is clean on disk — nothing to do).
  static void CleanPage(BufferPool* pool, PageId id, LatchPolicy policy);

  std::uint64_t pages_cleaned() const {
    return pages_cleaned_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  BufferPool* pool_;
  Delegate delegate_;
  std::size_t batch_size_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> pages_cleaned_{0};
};

}  // namespace plp

#endif  // PLP_BUFFER_PAGE_CLEANER_H_
