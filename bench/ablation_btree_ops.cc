// Ablation: per-operation cost of B+Tree probes and inserts with and
// without page latching (the "latching overhead" component of the PLP
// argument, independent of contention), plus the MRBTree routing cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/buffer/buffer_pool.h"
#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/index/mrbtree.h"
#include "src/sync/cs_profiler.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

struct TreeFixture {
  BufferPool pool;
  std::unique_ptr<BTree> tree;

  explicit TreeFixture(LatchPolicy policy, std::uint32_t n = 100000) {
    CsProfiler::SetEnabled(false);  // measure the raw mechanism
    tree = std::make_unique<BTree>(&pool, policy);
    const std::string rid(6, 'r');
    for (std::uint32_t k = 0; k < n; ++k) {
      (void)tree->Insert(KeyU32(k), rid);
    }
  }
  ~TreeFixture() { CsProfiler::SetEnabled(true); }
};

void BM_BTreeProbe(benchmark::State& state) {
  TreeFixture f(state.range(0) == 0 ? LatchPolicy::kLatched
                                    : LatchPolicy::kNone);
  Rng rng(1);
  std::string value;
  for (auto _ : state) {
    const auto k = static_cast<std::uint32_t>(rng.Uniform(100000));
    benchmark::DoNotOptimize(f.tree->Probe(KeyU32(k), &value));
  }
  state.SetLabel(state.range(0) == 0 ? "latched" : "latch-free");
}
BENCHMARK(BM_BTreeProbe)->Arg(0)->Arg(1);

void BM_BTreeInsert(benchmark::State& state) {
  TreeFixture f(state.range(0) == 0 ? LatchPolicy::kLatched
                                    : LatchPolicy::kNone,
                /*n=*/1000);
  std::uint32_t next = 1000000;
  const std::string rid(6, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->Insert(KeyU32(next++), rid));
  }
  state.SetLabel(state.range(0) == 0 ? "latched" : "latch-free");
}
BENCHMARK(BM_BTreeInsert)->Arg(0)->Arg(1);

void BM_MrbtRouteAndProbe(benchmark::State& state) {
  CsProfiler::SetEnabled(false);
  BufferPool pool;
  std::unique_ptr<MRBTree> tree;
  (void)MRBTree::Create(&pool, LatchPolicy::kNone,
                        TatpWorkload::BoundariesFor(
                            100000, static_cast<int>(state.range(0))),
                        &tree);
  const std::string rid(6, 'r');
  for (std::uint32_t k = 1; k <= 100000; ++k) {
    (void)tree->Insert(KeyU32(k), rid);
  }
  Rng rng(2);
  std::string value;
  for (auto _ : state) {
    const auto k = static_cast<std::uint32_t>(rng.Range(1, 100000));
    benchmark::DoNotOptimize(tree->Probe(KeyU32(k), &value));
  }
  CsProfiler::SetEnabled(true);
  state.SetLabel(std::to_string(state.range(0)) + " roots");
}
BENCHMARK(BM_MrbtRouteAndProbe)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace plp
