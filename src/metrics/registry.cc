#include "src/metrics/registry.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace plp {

namespace internal {
std::size_t MetricThreadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace internal

namespace {
// Bucket index for a value: its bit width, so bucket i holds values in
// [2^(i-1), 2^i) and bucket 0 holds exactly zero.
inline std::size_t BucketFor(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

// Inclusive upper bound of bucket i (the percentile estimate it reports).
inline std::uint64_t BucketCeiling(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}
}  // namespace

void Histogram::Record(std::uint64_t value) {
  Stripe& s = stripes_[internal::MetricThreadSlot() % kStripes];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSummary Histogram::Collect() const {
  std::uint64_t merged[kBuckets] = {};
  HistogramSummary out;
  for (const Stripe& s : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }
  if (out.count == 0) return out;
  auto percentile = [&](double q) {
    // Rank of the q-quantile among `count` samples; find the bucket whose
    // cumulative count covers it and report that bucket's ceiling.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(out.count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += merged[i];
      if (seen > rank) {
        const std::uint64_t ceiling = BucketCeiling(i);
        return ceiling < out.max ? ceiling : out.max;
      }
    }
    return out.max;
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  out.p99 = percentile(0.99);
  return out;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::string StatsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-44s %12" PRIu64 "\n", name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-44s %12" PRId64 "\n", name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-44s count=%" PRIu64 " mean=%.1f p50=%" PRIu64
                  " p95=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.p50, h.p95, h.p99,
                  h.max);
    out += line;
  }
  return out;
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{";
  char buf[320];
  bool first = true;
  auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, v] : counters) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRId64, name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"max\": %" PRIu64 ", \"p50\": %" PRIu64
                  ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64 "}",
                  name.c_str(), h.count, h.sum, h.max, h.p50, h.p95, h.p99);
    out += buf;
  }
  out += "}";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock g(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterGaugeProvider(const void* token,
                                            GaugeProvider fn) {
  MutexLock g(mu_);
  providers_.emplace_back(token, std::move(fn));
}

void MetricsRegistry::UnregisterGaugeProvider(const void* token) {
  MutexLock g(mu_);
  std::erase_if(providers_,
                [token](const auto& p) { return p.first == token; });
}

StatsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock g(mu_);
  StatsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Collect();
  }
  GaugeSink sink = [&snap](const std::string& name, std::int64_t value) {
    snap.gauges[name] = value;
  };
  for (const auto& [token, fn] : providers_) fn(sink);
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock g(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry* MetricsRegistry::Scratch() {
  static MetricsRegistry* scratch = new MetricsRegistry();  // leaked: sink
  return scratch;
}

}  // namespace plp
