// Figure 6: time breakdown per transaction for an insert/delete-heavy
// workload on the TATP CALL_FORWARDING table. Splits cause SMOs and
// index-latch contention in the conventional and logical designs; PLP
// eliminates both the latch waits and the SMO serialization.
#include "bench/bench_common.h"
#include "src/metrics/time_breakdown.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "Time breakdown per txn, insert/delete-heavy CallFwd workload",
      "Figure 6");
  for (int threads : {2, 4, 8}) {
    std::printf("--- %d client threads ---\n", threads);
    for (SystemDesign design :
         {SystemDesign::kConventional, SystemDesign::kLogical,
          SystemDesign::kPlpRegular, SystemDesign::kPlpLeaf}) {
      // Conventional is thread-per-transaction: size its submission pool
      // to the widest client sweep so it never caps closed-loop
      // concurrency below the paper's baseline.
      auto engine = bench::MakeEngine(
          design, design == SystemDesign::kConventional ? 8 : 4);
      TatpConfig config;
      config.subscribers = 5000;
      config.partitions = 4;
      TatpWorkload tatp(engine.get(), config);
      if (!tatp.Load().ok()) continue;
      DriverOptions options;
      options.num_threads = threads;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(
          engine.get(),
          [&](Rng& rng) { return tatp.NextInsertDeleteHeavy(rng); },
          options);
      TimeBreakdown b =
          MakeTimeBreakdown(r.cs_delta, r.committed, r.thread_time_ns);
      const double inv = 1.0 / static_cast<double>(r.committed);
      std::printf(
          "%s | idx-latch/txn %6.2f (contended %5.3f) smo %5.3f/txn\n",
          FormatBreakdownRow(SystemDesignName(design), b).c_str(),
          static_cast<double>(
              r.cs_delta.latches[static_cast<int>(PageClass::kIndex)]) *
              inv,
          static_cast<double>(r.cs_delta.latches_contended[static_cast<int>(
              PageClass::kIndex)]) *
              inv,
          static_cast<double>(
              r.cs_delta.contended[static_cast<int>(CsCategory::kPageLatch)]) *
              inv);
      engine->Stop();
    }
  }
  std::printf(
      "\nExpected shape: Conv./Logical spend 15-20%% of their time in\n"
      "idx-wait + smo-wait at high thread counts; the PLP rows show zero\n"
      "index latch waits.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
