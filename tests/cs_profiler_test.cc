// Tests for the critical-section profiler — the measurement substrate
// behind Figures 1-3.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

class CsProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { CsProfiler::Global().Reset(); }
};

TEST_F(CsProfilerTest, RecordsEntriesPerCategory) {
  CsProfiler::Record(CsCategory::kLockMgr, false);
  CsProfiler::Record(CsCategory::kLockMgr, true, 100);
  CsProfiler::Record(CsCategory::kLogMgr, false);

  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kLockMgr)], 2u);
  EXPECT_EQ(counts.contended[static_cast<int>(CsCategory::kLockMgr)], 1u);
  EXPECT_EQ(counts.wait_ns[static_cast<int>(CsCategory::kLockMgr)], 100u);
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kLogMgr)], 1u);
  EXPECT_EQ(counts.TotalEntries(), 3u);
  EXPECT_EQ(counts.TotalContended(), 1u);
}

TEST_F(CsProfilerTest, LatchCountsByPageClass) {
  CsProfiler::RecordLatch(PageClass::kIndex, false);
  CsProfiler::RecordLatch(PageClass::kIndex, true, 50);
  CsProfiler::RecordLatch(PageClass::kHeap, false);
  CsProfiler::RecordLatch(PageClass::kCatalog, false);

  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)], 2u);
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kHeap)], 1u);
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kCatalog)], 1u);
  EXPECT_EQ(counts.TotalLatches(), 4u);
  // Latches also count as page-latch critical sections.
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kPageLatch)], 4u);
  EXPECT_EQ(counts.latch_wait_ns[static_cast<int>(PageClass::kIndex)], 50u);
}

TEST_F(CsProfilerTest, AggregatesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) {
        CsProfiler::Record(CsCategory::kBufferPool, false);
      }
    });
  }
  for (auto& t : threads) t.join();
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kBufferPool)],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(CsProfilerTest, RetiredThreadCountsSurvive) {
  std::thread t([] { CsProfiler::Record(CsCategory::kXctMgr, false); });
  t.join();  // thread-local state folded into retired counts
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kXctMgr)], 1u);
}

TEST_F(CsProfilerTest, ResetZeroesEverything) {
  CsProfiler::Record(CsCategory::kMetadata, true, 10);
  CsProfiler::RecordLatch(PageClass::kHeap, true, 20);
  CsProfiler::Global().Reset();
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.TotalEntries(), 0u);
  EXPECT_EQ(counts.TotalLatches(), 0u);
  EXPECT_EQ(counts.TotalContended(), 0u);
}

TEST_F(CsProfilerTest, DisabledRecordingIsDropped) {
  CsProfiler::SetEnabled(false);
  CsProfiler::Record(CsCategory::kLockMgr, false);
  CsProfiler::SetEnabled(true);
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.entries[static_cast<int>(CsCategory::kLockMgr)], 0u);
}

TEST_F(CsProfilerTest, DeltaSubtraction) {
  CsProfiler::Record(CsCategory::kLockMgr, false);
  CsCounts before = CsProfiler::Global().Collect();
  CsProfiler::Record(CsCategory::kLockMgr, true, 7);
  CsProfiler::Record(CsCategory::kLogMgr, false);
  CsCounts delta = CsProfiler::Global().Collect() - before;
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kLockMgr)], 1u);
  EXPECT_EQ(delta.contended[static_cast<int>(CsCategory::kLockMgr)], 1u);
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kLogMgr)], 1u);
}

TEST_F(CsProfilerTest, CategoryAndClassNames) {
  EXPECT_STREQ(CsCategoryName(CsCategory::kLockMgr), "Lock mgr");
  EXPECT_STREQ(CsCategoryName(CsCategory::kPageLatch), "Page Latches");
  EXPECT_STREQ(PageClassName(PageClass::kIndex), "INDEX");
  EXPECT_STREQ(PageClassName(PageClass::kHeap), "HEAP");
}

}  // namespace
}  // namespace plp
