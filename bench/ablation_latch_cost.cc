// Ablation: the raw cost of one page-latch acquisition — the per-access
// overhead PLP removes even in the absence of contention (Section 3.2.2
// "latching contention and overhead").
#include <benchmark/benchmark.h>

#include "src/sync/cs_profiler.h"
#include "src/sync/latch.h"

namespace plp {
namespace {

void BM_LatchSharedUncontended(benchmark::State& state) {
  CsProfiler::SetEnabled(state.range(0) == 1);
  Latch latch(PageClass::kIndex);
  for (auto _ : state) {
    latch.AcquireShared();
    latch.ReleaseShared();
  }
  CsProfiler::SetEnabled(true);
  state.SetLabel(state.range(0) == 1 ? "with-profiling" : "no-profiling");
}
BENCHMARK(BM_LatchSharedUncontended)->Arg(0)->Arg(1);

void BM_LatchExclusiveUncontended(benchmark::State& state) {
  CsProfiler::SetEnabled(false);
  Latch latch(PageClass::kHeap);
  for (auto _ : state) {
    latch.AcquireExclusive();
    latch.ReleaseExclusive();
  }
  CsProfiler::SetEnabled(true);
}
BENCHMARK(BM_LatchExclusiveUncontended);

void BM_LatchSharedContended(benchmark::State& state) {
  static Latch* latch = nullptr;
  if (state.thread_index() == 0) {
    CsProfiler::SetEnabled(false);
    latch = new Latch(PageClass::kIndex);
  }
  for (auto _ : state) {
    latch->AcquireShared();
    benchmark::ClobberMemory();
    latch->ReleaseShared();
  }
  if (state.thread_index() == 0) {
    delete latch;
    latch = nullptr;
    CsProfiler::SetEnabled(true);
  }
}
BENCHMARK(BM_LatchSharedContended)->Threads(1)->Threads(4)->Threads(8);

// The latch-free alternative: what a PLP partition pays instead.
void BM_NoLatch(benchmark::State& state) {
  Latch latch(PageClass::kIndex);
  for (auto _ : state) {
    LatchGuard g(&latch, LatchMode::kShared, LatchPolicy::kNone);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_NoLatch);

}  // namespace
}  // namespace plp
