// Instrumented page latches and categorized mutexes — the engine's
// capability-typed synchronization layer.
//
// Every lockable type here is a clang thread-safety capability
// (src/sync/thread_annotations.h): shared state annotates the capability
// that guards it with PLP_GUARDED_BY, and `clang++ -Wthread-safety`
// machine-checks the discipline. Raw std::mutex / std::lock_guard /
// std::unique_lock are confined to this directory — the analysis cannot
// see through them — so engine code always locks through these wrappers
// (enforced by tools/lint_invariants.py).
#ifndef PLP_SYNC_LATCH_H_
#define PLP_SYNC_LATCH_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/metrics/flight_recorder.h"
#include "src/sync/cs_profiler.h"
#include "src/sync/thread_annotations.h"

namespace plp {

/// Latch acquisition mode.
enum class LatchMode { kShared, kExclusive };

/// Whether an access method acquires page latches. Partition-owned
/// structures in PLP run with kNone: exactly one thread touches the pages,
/// so no physical synchronization is required (Section 3.2.2).
enum class LatchPolicy { kLatched, kNone };

/// Reader-writer page latch with contention instrumentation. Every
/// acquisition is recorded against the page class it protects.
///
/// As a capability, the latch models *ownership*, not just physical
/// locking: under LatchPolicy::kNone a LatchGuard still confers the
/// capability without touching the mutex — the partition-ownership
/// discipline is what makes the access safe, and the annotations document
/// exactly which accesses rely on it.
class PLP_CAPABILITY("latch") Latch {
 public:
  explicit Latch(PageClass page_class = PageClass::kCatalog)
      : page_class_(page_class) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void set_page_class(PageClass c) { page_class_ = c; }
  PageClass page_class() const { return page_class_; }

  void AcquireShared() PLP_ACQUIRE_SHARED() {
    if (mu_.try_lock_shared()) {
      CsProfiler::RecordLatch(page_class_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock_shared();
    const std::uint64_t wait_ns = NowNanos() - t0;
    CsProfiler::RecordLatch(page_class_, /*contended=*/true, wait_ns);
    FlightRecorder::RecordLatchWait(page_class_, t0, wait_ns);
  }
  void ReleaseShared() PLP_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AcquireExclusive() PLP_ACQUIRE() {
    if (mu_.try_lock()) {
      CsProfiler::RecordLatch(page_class_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock();
    const std::uint64_t wait_ns = NowNanos() - t0;
    CsProfiler::RecordLatch(page_class_, /*contended=*/true, wait_ns);
    FlightRecorder::RecordLatchWait(page_class_, t0, wait_ns);
  }
  void ReleaseExclusive() PLP_RELEASE() { mu_.unlock(); }

  /// Non-blocking exclusive acquisition, for paths that must never wait on
  /// a latch while holding pool-internal locks (eviction-time unswizzle).
  bool TryAcquireExclusive() PLP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    CsProfiler::RecordLatch(page_class_, /*contended=*/false);
    return true;
  }

  /// Mode-dispatched acquire/release. The analysis cannot type a
  /// runtime-chosen mode, so the contract is declared as the stronger
  /// (exclusive) capability and Release is generic; the bodies opt out.
  // protocol: runtime latch-mode dispatch (crabbing picks shared vs
  // exclusive per level; exclusive-acquire contract is the safe over-
  // approximation for the analysis).
  void Acquire(LatchMode mode) PLP_ACQUIRE() PLP_NO_THREAD_SAFETY_ANALYSIS {
    if (mode == LatchMode::kShared) {
      AcquireShared();
    } else {
      AcquireExclusive();
    }
  }
  // protocol: runtime latch-mode dispatch (see Acquire).
  void Release(LatchMode mode) PLP_RELEASE_GENERIC()
      PLP_NO_THREAD_SAFETY_ANALYSIS {
    if (mode == LatchMode::kShared) {
      ReleaseShared();
    } else {
      ReleaseExclusive();
    }
  }

 private:
  std::shared_mutex mu_;
  PageClass page_class_;
};

/// RAII guard honoring a LatchPolicy: under kNone the acquisition is skipped
/// entirely — the code path the paper makes possible. To the analysis the
/// guard *always* confers the latch capability: kNone means the partition-
/// ownership discipline (one worker per partition) substitutes for the
/// physical latch, which is precisely the invariant the annotations encode.
class PLP_SCOPED_CAPABILITY LatchGuard {
 public:
  // protocol: policy-elided latching — under LatchPolicy::kNone ownership
  // substitutes for the physical acquire (Section 3.2.2).
  LatchGuard(Latch* latch, LatchMode mode,
             LatchPolicy policy) PLP_ACQUIRE(latch)
      : latch_(policy == LatchPolicy::kLatched ? latch : nullptr),
        mode_(mode) {
    if (latch_ != nullptr) latch_->Acquire(mode_);
  }
  ~LatchGuard() PLP_RELEASE() { ReleaseImpl(); }

  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

  /// Early release (used by latch crabbing).
  void Release() PLP_RELEASE() { ReleaseImpl(); }

 private:
  // protocol: policy-elided latching (see constructor) — the physical
  // release only happens when the physical acquire did.
  void ReleaseImpl() PLP_NO_THREAD_SAFETY_ANALYSIS {
    if (latch_ != nullptr) {
      latch_->Release(mode_);
      latch_ = nullptr;
    }
  }

  Latch* latch_;
  LatchMode mode_;
};

/// Mutex whose acquisitions are tallied under a CsCategory; protects
/// internal storage-manager state (lock-table buckets, buffer-pool shards,
/// the transaction table, catalog structures, ...).
class PLP_CAPABILITY("mutex") TrackedMutex {
 public:
  explicit TrackedMutex(CsCategory category) : category_(category) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() PLP_ACQUIRE() {
    if (mu_.try_lock()) {
      CsProfiler::Record(category_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock();
    const std::uint64_t wait_ns = NowNanos() - t0;
    CsProfiler::Record(category_, /*contended=*/true, wait_ns);
    FlightRecorder::RecordCsWait(category_, t0, wait_ns);
  }
  void unlock() PLP_RELEASE() { mu_.unlock(); }
  bool try_lock() PLP_TRY_ACQUIRE(true) {
    bool ok = mu_.try_lock();
    if (ok) CsProfiler::Record(category_, false);
    return ok;
  }

  /// Access to the raw mutex for condition-variable waits; the caller is
  /// responsible for recording the entry.
  std::mutex& raw() { return mu_; }
  CsCategory category() const { return category_; }

 private:
  std::mutex mu_;
  CsCategory category_;
};

/// Scoped lock over a TrackedMutex (profiled acquire, capability-visible).
class PLP_SCOPED_CAPABILITY TrackedMutexLock {
 public:
  explicit TrackedMutexLock(TrackedMutex& mu) PLP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~TrackedMutexLock() PLP_RELEASE() { mu_.unlock(); }

  TrackedMutexLock(const TrackedMutexLock&) = delete;
  TrackedMutexLock& operator=(const TrackedMutexLock&) = delete;

 private:
  TrackedMutex& mu_;
};

/// Scoped lock over a TrackedMutex that bypasses the profiler tally —
/// for internal paths whose cost is charged elsewhere (buffer-pool miss
/// internals). Confers the same capability as TrackedMutexLock.
class PLP_SCOPED_CAPABILITY TrackedMutexUnprofiledLock {
 public:
  explicit TrackedMutexUnprofiledLock(TrackedMutex& mu) PLP_ACQUIRE(mu)
      : mu_(mu) {
    mu_.raw().lock();
  }
  ~TrackedMutexUnprofiledLock() PLP_RELEASE() { mu_.raw().unlock(); }

  TrackedMutexUnprofiledLock(const TrackedMutexUnprofiledLock&) = delete;
  TrackedMutexUnprofiledLock& operator=(const TrackedMutexUnprofiledLock&) =
      delete;

 private:
  TrackedMutex& mu_;
};

/// Annotated plain mutex (uninstrumented internal state: coordinator
/// flags, side tables, registries). The capability-layer replacement for a
/// bare std::mutex member.
class PLP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLP_ACQUIRE() { mu_.lock(); }
  void unlock() PLP_RELEASE() { mu_.unlock(); }
  bool try_lock() PLP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Acquires, reporting whether the fast-path try-lock missed (critical-
  /// section contention accounting; MpscQueue's message-passing tally).
  bool LockNoteContended() PLP_ACQUIRE() {
    if (mu_.try_lock()) return false;
    mu_.lock();
    return true;
  }

  /// Acquires, reporting whether the fast path missed and how long the
  /// contended path waited (lock-table bucket accounting).
  bool LockTimed(std::uint64_t* wait_ns) PLP_ACQUIRE() {
    *wait_ns = 0;
    if (mu_.try_lock()) return false;
    const std::uint64_t t0 = NowNanos();
    mu_.lock();
    *wait_ns = NowNanos() - t0;
    return true;
  }

  /// Raw handle for condition-variable waits inside MutexLock only.
  std::mutex& raw() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex with condition-variable support. Relockable:
/// Unlock()/Lock() let loop bodies drop the mutex (CallbackExecutor), and
/// Wait* methods run a std::condition_variable wait while the analysis
/// keeps treating the capability as held (the wait reacquires before
/// returning, so guarded accesses between waits are safe).
///
/// Predicate waits are deliberately absent: a predicate lambda is analyzed
/// as a separate function that cannot see the held capability, so callers
/// write `while (!pred) lk.Wait(cv);` — same semantics, checkable.
class PLP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PLP_ACQUIRE(mu) : mu_(mu), lk_(mu.raw()) {}
  /// Adopts a mutex the caller already locked (e.g. via LockTimed).
  MutexLock(Mutex& mu, std::adopt_lock_t) PLP_REQUIRES(mu)
      : mu_(mu), lk_(mu.raw(), std::adopt_lock) {}
  ~MutexLock() PLP_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() PLP_RELEASE() { lk_.unlock(); }
  void Lock() PLP_ACQUIRE() { lk_.lock(); }

  void Wait(std::condition_variable& cv) { cv.wait(lk_); }
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      std::condition_variable& cv,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lk_, deadline);
  }
  template <class Rep, class Period>
  std::cv_status WaitFor(std::condition_variable& cv,
                         const std::chrono::duration<Rep, Period>& dur) {
    return cv.wait_for(lk_, dur);
  }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Annotated reader-writer mutex (routing tables, partition tables).
class PLP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PLP_ACQUIRE() { mu_.lock(); }
  void unlock() PLP_RELEASE() { mu_.unlock(); }
  void lock_shared() PLP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() PLP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Shared (reader) scoped lock over SharedMutex.
class PLP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) PLP_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() PLP_RELEASE() {
    if (held_) mu_.unlock_shared();
  }

  /// Early release, e.g. to drop the read lock before blocking I/O.
  void Unlock() PLP_RELEASE() {
    mu_.unlock_shared();
    held_ = false;
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
  bool held_ = true;
};

/// Exclusive (writer) scoped lock over SharedMutex.
class PLP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) PLP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() PLP_RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Early release, e.g. to persist outside the layout critical section.
  void Unlock() PLP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
  bool held_ = true;
};

}  // namespace plp

#endif  // PLP_SYNC_LATCH_H_
