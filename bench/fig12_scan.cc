// Figure 12 (Appendix D): time to scan the whole heap file for each PLP
// variant, normalized to the conventional system, with a 4GB buffer pool.
// While everything is memory-resident the designs tie (same live
// records); at 10GB the extra pages of PLP-Leaf turn into extra I/O.
// The resident regime is *measured* on real heap files; the 10GB point
// uses the scan-cost model with a 100:1 I/O-to-memory page cost, the
// substitution for the paper's disk subsystem.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/buffer/buffer_pool.h"
#include "src/common/clock.h"
#include "src/storage/fragmentation_model.h"
#include "src/storage/heap_file.h"

namespace plp {
namespace {

double MeasureScanNs(HeapFile* heap) {
  const std::uint64_t t0 = NowNanos();
  std::uint64_t bytes = 0;
  heap->Scan([&](Rid, Slice rec) { bytes += rec.size(); });
  const std::uint64_t t1 = NowNanos();
  return static_cast<double>(t1 - t0) + static_cast<double>(bytes) * 0;
}

void Run() {
  bench::PrintHeader("Normalized heap scan time per design", "Figure 12");

  // Measured, memory-resident (50k x 100B records).
  std::printf("Measured (memory-resident, 50000 x 100B records):\n");
  BufferPool pool;
  HeapFile shared(&pool, HeapMode::kShared);
  HeapFile part(&pool, HeapMode::kPartitionOwned);
  HeapFile leaf(&pool, HeapMode::kLeafOwned);
  const std::string rec(100, 'x');
  Rid rid;
  for (std::uint64_t i = 0; i < 50000; ++i) {
    (void)shared.Insert(rec, &rid);
    (void)part.InsertOwned(static_cast<std::uint32_t>(i % 100), rec, &rid);
    (void)leaf.InsertOwned(static_cast<std::uint32_t>(i / 170), rec, &rid);
  }
  const double base = MeasureScanNs(&shared);
  std::printf("  Conventional 1.000  PLP-Regular 1.000  "
              "PLP-Partition %.3f  PLP-Leaf %.3f\n",
              MeasureScanNs(&part) / base, MeasureScanNs(&leaf) / base);

  // Modeled across database sizes with a 4GB buffer pool.
  std::printf("\nModeled (4GB buffer pool, 100B records, I/O cost 100x):\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "size", "Conventional",
              "PLP-Regular", "PLP-Partition", "PLP-Leaf");
  const std::uint64_t sizes[] = {1ull << 20, 10ull << 20, 100ull << 20,
                                 1ull << 30, 10ull << 30};
  const char* size_names[] = {"1MB", "10MB", "100MB", "1GB", "10GB"};
  ScanTimeParams t;
  for (int i = 0; i < 5; ++i) {
    FragmentationParams p;
    p.db_bytes = sizes[i];
    p.record_size = 100;
    p.num_partitions = 100;
    const HeapPageCounts c = ComputeHeapPageCounts(p);
    const double base_cost = ScanCost(c.conventional, t);
    std::printf("%-8s %14.3f %14.3f %14.3f %14.3f\n", size_names[i], 1.0,
                ScanCost(c.plp_regular, t) / base_cost,
                ScanCost(c.plp_partition, t) / base_cost,
                ScanCost(c.plp_leaf, t) / base_cost);
  }
  std::printf(
      "\nExpected shape: all designs ~1.0 while resident (1MB-1GB); at\n"
      "10GB PLP-Leaf pays ~1.6x from extra I/O (paper: +60%%).\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
