// Bank audit scenario: TPC-B-style transfers with a consistency audit and
// a crash-recovery drill. Demonstrates that PLP keeps full transactional
// semantics (atomic multi-table transactions, WAL, restart recovery) —
// it is still a shared-everything system with one log.
//
//   $ ./example_bank_audit
#include <cstdio>

#include "src/engine/engine.h"
#include "src/txn/recovery.h"
#include "src/workload/tpcb.h"
#include "src/workload/workload_driver.h"

using namespace plp;  // NOLINT — example brevity

int main() {
  EngineConfig config;
  config.design = SystemDesign::kPlpLeaf;
  config.num_workers = 4;
  config.db.log.retain_for_recovery = true;  // keep the WAL for the drill
  auto created = CreateEngine(config);
  if (!created.ok()) {
    std::fprintf(stderr, "create engine: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(created).value();
  engine->Start();

  TpcbConfig tpcb_config;
  tpcb_config.branches = 8;
  tpcb_config.tellers_per_branch = 10;
  tpcb_config.accounts_per_branch = 500;
  tpcb_config.partitions = 4;
  TpcbWorkload tpcb(engine.get(), tpcb_config);
  if (Status st = tpcb.Load(); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  DriverOptions options;
  options.num_threads = 4;
  options.duration = std::chrono::milliseconds(1000);
  DriverResult r = RunWorkload(
      engine.get(), [&](Rng& rng) { return tpcb.NextTransaction(rng); },
      options);
  std::printf("ran %llu transfer transactions (%.1f Ktps)\n",
              static_cast<unsigned long long>(r.committed), r.ktps());

  // Audit: each transfer adds the same delta to one account, one teller
  // and one branch, so the three sums must agree exactly.
  auto sum_table = [&](const char* name) {
    std::int64_t total = 0;
    engine->db().GetTable(name)->heap()->Scan(
        [&](Rid, Slice rec) { total += TpcbWorkload::BalanceOf(rec); });
    return total;
  };
  const std::int64_t branches = sum_table(TpcbWorkload::kBranch);
  const std::int64_t tellers = sum_table(TpcbWorkload::kTeller);
  const std::int64_t accounts = sum_table(TpcbWorkload::kAccount);
  std::printf("audit: branches=%lld tellers=%lld accounts=%lld -> %s\n",
              static_cast<long long>(branches),
              static_cast<long long>(tellers),
              static_cast<long long>(accounts),
              (branches == tellers && tellers == accounts) ? "CONSISTENT"
                                                           : "BROKEN!");

  // Crash drill: rebuild the ACCOUNT heap into a fresh buffer pool from
  // the write-ahead log and re-run the account-side audit.
  engine->Stop();
  BufferPool fresh;
  RecoveryManager recovery(engine->db().log(), &fresh);
  RecoveryManager::Stats stats;
  if (Status st = recovery.Recover(nullptr, &stats); !st.ok()) {
    std::fprintf(stderr, "recovery: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "recovery drill: %llu winners, %llu losers, %llu redo ops, "
      "%llu undo ops\n",
      static_cast<unsigned long long>(stats.winners),
      static_cast<unsigned long long>(stats.losers),
      static_cast<unsigned long long>(stats.redo_ops),
      static_cast<unsigned long long>(stats.undo_ops));
  std::printf("(committed transfers were replayed; in-flight ones rolled "
              "back)\n");
  return 0;
}
