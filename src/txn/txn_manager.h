// Transaction manager: begin/commit/abort over the WAL and lock manager.
#ifndef PLP_TXN_TXN_MANAGER_H_
#define PLP_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"
#include "src/txn/transaction.h"

namespace plp {

struct TxnManagerConfig {
  /// Force the commit record to the log sink before acknowledging. The
  /// paper's evaluation runs memory-resident (no synchronous I/O), so
  /// benchmarks leave this off; recovery tests turn it on.
  bool durable_commits = false;
};

class TxnManager {
 public:
  /// `metrics` receives the txn.* counters and the active-txn gauge
  /// provider; nullptr records into MetricsRegistry::Scratch().
  TxnManager(LogManager* log, LockManager* locks,
             TxnManagerConfig config = {}, MetricsRegistry* metrics = nullptr);
  ~TxnManager();

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction and logs its begin record.
  Transaction* Begin();

  /// Logs commit, optionally flushes, releases locks, retires the txn.
  Status Commit(Transaction* txn);

  /// Runs the undo chain, logs abort, releases locks, retires the txn.
  Status Abort(Transaction* txn);

  std::size_t active_count();

  /// Snapshot of active transactions (id, begin_lsn) — the active-txn
  /// table of a fuzzy checkpoint.
  std::vector<std::pair<TxnId, Lsn>> ActiveSnapshot();

  /// Restart path: keeps the id allocator ahead of recovered txn ids.
  void EnsureNextIdAtLeast(TxnId id);

  TxnId peek_next_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }
  std::uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  std::uint64_t aborted() const {
    return aborted_.load(std::memory_order_relaxed);
  }

  LogManager* log() { return log_; }
  LockManager* locks() { return locks_; }

 private:
  void Retire(Transaction* txn);

  LogManager* log_;
  LockManager* locks_;
  TxnManagerConfig config_;

  std::atomic<TxnId> next_txn_id_{1};
  TrackedMutex table_mu_{CsCategory::kXctMgr};
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_
      PLP_GUARDED_BY(table_mu_);

  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};

  // Registry metrics (cached pointers; see the constructor).
  MetricsRegistry* metrics_ = nullptr;  // non-null only when bound
  Counter* begins_metric_ = nullptr;
  Counter* commits_metric_ = nullptr;
  Counter* aborts_metric_ = nullptr;
};

}  // namespace plp

#endif  // PLP_TXN_TXN_MANAGER_H_
