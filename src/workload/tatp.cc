#include "src/workload/tatp.h"

#include <memory>

#include "src/common/key_encoding.h"

namespace plp {

namespace {
constexpr std::size_t kSubscriberRecordSize = 100;
constexpr std::size_t kSmallRecordSize = 40;

std::string FixedRecord(std::size_t size, std::uint32_t tag) {
  std::string rec(size, 'x');
  EncodeU32(&rec, tag);  // appended tag keeps records distinguishable
  rec.resize(size);
  std::memcpy(rec.data(), &tag, sizeof(tag));
  return rec;
}
}  // namespace

std::string TatpWorkload::SubscriberKey(std::uint32_t s_id) {
  return KeyU32(s_id);
}

std::string TatpWorkload::AccessInfoKey(std::uint32_t s_id,
                                        std::uint8_t ai_type) {
  KeyBuilder kb;
  kb.AddU32(s_id);
  kb.AddBytes(Slice(reinterpret_cast<const char*>(&ai_type), 1));
  return kb.Take();
}

std::string TatpWorkload::FacilityKey(std::uint32_t s_id,
                                      std::uint8_t sf_type) {
  KeyBuilder kb;
  kb.AddU32(s_id);
  kb.AddBytes(Slice(reinterpret_cast<const char*>(&sf_type), 1));
  return kb.Take();
}

std::string TatpWorkload::CallFwdKey(std::uint32_t s_id, std::uint8_t sf_type,
                                     std::uint8_t start_time) {
  KeyBuilder kb;
  kb.AddU32(s_id);
  kb.AddBytes(Slice(reinterpret_cast<const char*>(&sf_type), 1));
  kb.AddBytes(Slice(reinterpret_cast<const char*>(&start_time), 1));
  return kb.Take();
}

std::string TatpWorkload::MakeSubscriberRecord(std::uint32_t s_id,
                                               std::uint32_t vlr_location) {
  std::string rec(kSubscriberRecordSize, 's');
  std::memcpy(rec.data(), &s_id, 4);
  std::memcpy(rec.data() + 4, &vlr_location, 4);
  return rec;
}

std::uint32_t TatpWorkload::VlrFromRecord(Slice payload) {
  std::uint32_t vlr;
  std::memcpy(&vlr, payload.data() + 4, 4);
  return vlr;
}

std::vector<std::string> TatpWorkload::BoundariesFor(
    std::uint32_t subscribers, int partitions) {
  std::vector<std::string> boundaries = {""};
  for (int p = 1; p < partitions; ++p) {
    const std::uint32_t start = 1 + static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(subscribers) * p / partitions);
    boundaries.push_back(KeyU32(start));
  }
  return boundaries;
}

std::vector<std::string> TatpWorkload::SubscriberBoundaries() const {
  return BoundariesFor(config_.subscribers, config_.partitions);
}

Status TatpWorkload::Load() {
  const std::vector<std::string> boundaries = SubscriberBoundaries();
  for (const char* name : {kSubscriber, kAccessInfo, kFacility, kCallFwd}) {
    auto result = engine_->CreateTable(name, boundaries);
    if (!result.ok()) return result.status();
  }

  Rng rng(config_.seed);
  for (std::uint32_t s = 1; s <= config_.subscribers; ++s) {
    TxnRequest req;
    const std::string skey = SubscriberKey(s);
    {
      const std::string payload =
          MakeSubscriberRecord(s, static_cast<std::uint32_t>(rng.Next()));
      req.Add(0, kSubscriber, skey, [skey, payload](ExecContext& ctx) {
        return ctx.Insert(skey, payload);
      });
    }
    const int num_ai = static_cast<int>(rng.Range(1, 4));
    for (int i = 1; i <= num_ai; ++i) {
      const std::string key = AccessInfoKey(s, static_cast<std::uint8_t>(i));
      const std::string payload = FixedRecord(kSmallRecordSize, s);
      req.Add(0, kAccessInfo, key, [key, payload](ExecContext& ctx) {
        return ctx.Insert(key, payload);
      });
    }
    const int num_sf = static_cast<int>(rng.Range(1, 4));
    for (int i = 1; i <= num_sf; ++i) {
      const std::string key = FacilityKey(s, static_cast<std::uint8_t>(i));
      const std::string payload = FixedRecord(kSmallRecordSize, s);
      req.Add(0, kFacility, key, [key, payload](ExecContext& ctx) {
        return ctx.Insert(key, payload);
      });
      const int num_cf = static_cast<int>(rng.Range(0, 3));
      for (int c = 0; c < num_cf; ++c) {
        const std::string cfkey = CallFwdKey(
            s, static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(c * 8));
        const std::string cfpayload = FixedRecord(kSmallRecordSize, s);
        req.Add(0, kCallFwd, cfkey, [cfkey, cfpayload](ExecContext& ctx) {
          return ctx.Insert(cfkey, cfpayload);
        });
      }
    }
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  return Status::OK();
}

TxnRequest TatpWorkload::GetSubscriberData(std::uint32_t s_id) {
  TxnRequest req;
  const std::string key = SubscriberKey(s_id);
  req.Add(0, kSubscriber, key, [key](ExecContext& ctx) {
    std::string payload;
    return ctx.Read(key, &payload);
  });
  return req;
}

TxnRequest TatpWorkload::GetNewDestination(std::uint32_t s_id,
                                           std::uint8_t sf_type,
                                           std::uint8_t start_time) {
  TxnRequest req;
  const std::string sf_key = FacilityKey(s_id, sf_type);
  req.Add(0, kFacility, sf_key, [sf_key](ExecContext& ctx) {
    std::string payload;
    Status st = ctx.Read(sf_key, &payload);
    if (st.IsNotFound()) return Status::OK();  // inactive facility: no rows
    return st;
  });
  const std::string lo = CallFwdKey(s_id, sf_type, 0);
  const std::string hi = CallFwdKey(s_id, sf_type + 1, 0);
  (void)start_time;
  req.Add(1, kCallFwd, lo, [lo, hi](ExecContext& ctx) {
    int rows = 0;
    Status st = ctx.ScanRange(lo, hi, [&rows](Slice, Slice) {
      ++rows;
      return true;
    });
    return st;
  });
  return req;
}

TxnRequest TatpWorkload::GetAccessData(std::uint32_t s_id,
                                       std::uint8_t ai_type) {
  TxnRequest req;
  const std::string key = AccessInfoKey(s_id, ai_type);
  req.Add(0, kAccessInfo, key, [key](ExecContext& ctx) {
    std::string payload;
    Status st = ctx.Read(key, &payload);
    return st.IsNotFound() ? Status::OK() : st;
  });
  return req;
}

TxnRequest TatpWorkload::UpdateSubscriberData(std::uint32_t s_id,
                                              std::uint8_t sf_type,
                                              std::uint8_t bit,
                                              std::uint8_t data_a) {
  TxnRequest req;
  const std::string skey = SubscriberKey(s_id);
  req.Add(0, kSubscriber, skey, [skey, bit](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(skey, &payload));
    payload[8] = static_cast<char>(bit);
    return ctx.Update(skey, payload);
  });
  const std::string fkey = FacilityKey(s_id, sf_type);
  req.Add(0, kFacility, fkey, [fkey, data_a](ExecContext& ctx) {
    std::string payload;
    Status st = ctx.Read(fkey, &payload);
    if (st.IsNotFound()) return Status::OK();
    PLP_RETURN_IF_ERROR(st);
    payload[8] = static_cast<char>(data_a);
    return ctx.Update(fkey, payload);
  });
  return req;
}

TxnRequest TatpWorkload::UpdateLocation(std::uint32_t s_id,
                                        std::uint32_t vlr) {
  TxnRequest req;
  const std::string key = SubscriberKey(s_id);
  req.Add(0, kSubscriber, key, [key, vlr](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(key, &payload));
    std::memcpy(payload.data() + 4, &vlr, 4);
    return ctx.Update(key, payload);
  });
  return req;
}

TxnRequest TatpWorkload::InsertCallForwarding(std::uint32_t s_id,
                                              std::uint8_t sf_type,
                                              std::uint8_t start_time,
                                              std::uint8_t end_time) {
  TxnRequest req;
  auto state = std::make_shared<bool>(false);  // facility exists?
  const std::string fkey = FacilityKey(s_id, sf_type);
  req.Add(0, kFacility, fkey, [fkey, state](ExecContext& ctx) {
    std::string payload;
    Status st = ctx.Read(fkey, &payload);
    *state = st.ok();
    return st.IsNotFound() ? Status::OK() : st;
  });
  const std::string cfkey = CallFwdKey(s_id, sf_type, start_time);
  req.Add(1, kCallFwd, cfkey, [cfkey, state, end_time](ExecContext& ctx) {
    if (!*state) return Status::OK();  // no facility: nothing to insert
    std::string payload = FixedRecord(kSmallRecordSize, end_time);
    Status st = ctx.Insert(cfkey, payload);
    // TATP counts duplicate inserts as expected failures.
    return st.IsAlreadyExists() ? Status::OK() : st;
  });
  return req;
}

TxnRequest TatpWorkload::DeleteCallForwarding(std::uint32_t s_id,
                                              std::uint8_t sf_type,
                                              std::uint8_t start_time) {
  TxnRequest req;
  const std::string key = CallFwdKey(s_id, sf_type, start_time);
  req.Add(0, kCallFwd, key, [key](ExecContext& ctx) {
    Status st = ctx.Delete(key);
    return st.IsNotFound() ? Status::OK() : st;  // expected miss
  });
  return req;
}

TxnRequest TatpWorkload::NextTransaction(Rng& rng) {
  const std::uint32_t s = RandomSubscriber(rng);
  const auto sf = static_cast<std::uint8_t>(rng.Range(1, 4));
  const auto start = static_cast<std::uint8_t>(rng.Range(0, 2) * 8);
  const std::uint64_t roll = rng.Uniform(100);
  if (roll < 35) return GetSubscriberData(s);
  if (roll < 45) return GetNewDestination(s, sf, start);
  if (roll < 80) {
    return GetAccessData(s, static_cast<std::uint8_t>(rng.Range(1, 4)));
  }
  if (roll < 82) {
    return UpdateSubscriberData(s, sf, static_cast<std::uint8_t>(rng.Uniform(2)),
                                static_cast<std::uint8_t>(rng.Uniform(256)));
  }
  if (roll < 96) {
    return UpdateLocation(s, static_cast<std::uint32_t>(rng.Next()));
  }
  if (roll < 98) {
    return InsertCallForwarding(s, sf, start,
                                static_cast<std::uint8_t>(start + 8));
  }
  return DeleteCallForwarding(s, sf, start);
}

TxnRequest TatpWorkload::NextInsertDeleteHeavy(Rng& rng) {
  const std::uint32_t s = RandomSubscriber(rng);
  const auto sf = static_cast<std::uint8_t>(rng.Range(1, 4));
  const auto start = static_cast<std::uint8_t>(rng.Range(0, 2) * 8);
  if (rng.Percent(50)) {
    TxnRequest req;
    // Unconditional CallFwd insert (drives page splits).
    const std::string key = CallFwdKey(s, sf, start);
    req.Add(0, kCallFwd, key, [key](ExecContext& ctx) {
      std::string payload = FixedRecord(kSmallRecordSize, 0);
      Status st = ctx.Insert(key, payload);
      return st.IsAlreadyExists() ? Status::OK() : st;
    });
    return req;
  }
  return DeleteCallForwarding(s, sf, start);
}

}  // namespace plp
