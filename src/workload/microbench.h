// Microbenchmarks from the evaluation:
//  * ProbeInsertMix — probe/insert mix over one table, varying the insert
//    percentage (Appendix B, Figure 10: parallel SMOs with MRBTrees).
//  * BalanceProbe  — read-only account-balance probes with a switchable
//    skew target (Section 4.5, Figure 8: repartitioning tolerance).
#ifndef PLP_WORKLOAD_MICROBENCH_H_
#define PLP_WORKLOAD_MICROBENCH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace plp {

struct ProbeInsertConfig {
  std::uint64_t initial_rows = 20000;
  int partitions = 4;
  unsigned insert_pct = 20;
  std::uint64_t seed = 99;
};

class ProbeInsertMix {
 public:
  ProbeInsertMix(Engine* engine, ProbeInsertConfig config)
      : engine_(engine), config_(config) {}

  Status Load();
  TxnRequest NextTransaction(Rng& rng);

  void set_insert_pct(unsigned pct) { config_.insert_pct = pct; }

  static constexpr const char* kTable = "micro_probe_insert";

 private:
  Engine* engine_;
  ProbeInsertConfig config_;
  std::atomic<std::uint64_t> next_key_{0};
};

struct BalanceProbeConfig {
  std::uint32_t subscribers = 100000;  // ~50MB at 500B records (paper scale)
  std::uint32_t record_size = 500;
  int partitions = 2;
  std::uint64_t seed = 17;
};

class BalanceProbe {
 public:
  BalanceProbe(Engine* engine, BalanceProbeConfig config)
      : engine_(engine), config_(config) {}

  Status Load();

  /// When skewed, 50% of probes hit the first `hot_fraction` of the key
  /// space (the Figure 8 load change).
  TxnRequest NextTransaction(Rng& rng);
  void SetSkew(bool enabled, double hot_fraction = 0.1) {
    hot_fraction_.store(hot_fraction);
    skewed_.store(enabled, std::memory_order_release);
  }

  /// Boundaries splitting the hot range evenly (what the rebalancer should
  /// converge to after the skew switch).
  std::vector<std::string> HotColdBoundaries(double hot_fraction) const;
  std::vector<std::string> UniformBoundaries() const;

  static constexpr const char* kTable = "micro_balance";

 private:
  Engine* engine_;
  BalanceProbeConfig config_;
  std::atomic<bool> skewed_{false};
  std::atomic<double> hot_fraction_{0.1};
};

}  // namespace plp

#endif  // PLP_WORKLOAD_MICROBENCH_H_
