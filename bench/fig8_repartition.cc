// Figure 8: throughput time-series while the workload's skew changes and
// the partitioned systems rebalance. One second into the run, 50% of the
// probes start hitting the first 10% of the key space; the partitioned
// designs repartition so the hot range is spread across half the
// partitions. The dip during repartitioning measures the cost: none for
// Conventional (no partitions), routing-only for Logical, metadata-only
// for PLP-Regular/PLP-Leaf, heap reorganization for PLP-Partition.
#include "bench/bench_common.h"
#include "src/workload/microbench.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader("Throughput (Ktps) during skew change + repartition",
                     "Figure 8");
  const SystemDesign designs[] = {
      SystemDesign::kConventional, SystemDesign::kLogical,
      SystemDesign::kPlpRegular, SystemDesign::kPlpPartition,
      SystemDesign::kPlpLeaf};

  for (SystemDesign design : designs) {
    auto engine = bench::MakeEngine(design, 4);
    BalanceProbeConfig config;
    config.subscribers = 100000;  // ~50MB at 500B records, the paper's scale
    config.record_size = 500;
    config.partitions = 4;
    BalanceProbe micro(engine.get(), config);
    if (!micro.Load().ok()) continue;

    DriverOptions options;
    options.num_threads = 2;  // "2 clients" as in the paper
    options.duration = std::chrono::milliseconds(3000);
    ThroughputProbe probe;
    Engine* eng = engine.get();
    std::vector<TimedEvent> events;
    events.push_back({std::chrono::milliseconds(1000), [&micro] {
                        micro.SetSkew(true, 0.1);
                      }});
    if (design != SystemDesign::kConventional) {
      events.push_back({std::chrono::milliseconds(1200), [&micro, eng] {
                          (void)eng->Repartition(
                              BalanceProbe::kTable,
                              micro.HotColdBoundaries(0.1));
                        }});
    }
    DriverResult r = RunWorkloadTimed(
        eng, [&](Rng& rng) { return micro.NextTransaction(rng); }, options,
        std::chrono::milliseconds(100), &probe, std::move(events));
    (void)r;

    std::printf("%-12s", SystemDesignName(design));
    for (const auto& s : probe.samples()) {
      std::printf(" %6.1f", s.ktps);
    }
    std::printf("\n");
    engine->Stop();
  }
  std::printf(
      "\n(one column per 100ms window; skew flips at t=1.0s, repartition\n"
      "triggers at t=1.2s)\n"
      "Expected shape: Conv./Logical stay flat; PLP-Reg and PLP-Leaf show\n"
      "a small dip at the repartition point; PLP-Partition dips hardest\n"
      "while it reorganizes heap pages.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
