// Fuzzy checkpoints.
//
// A checkpoint is one kCheckpoint log record whose payload serializes:
//   * the dirty page table (heap page id -> rec_lsn) — the redo scan can
//     start at min(rec_lsn) instead of the log's beginning;
//   * the active transaction table (txn id -> begin_lsn) — the undo
//     low-water mark, and the seed of loser detection;
//   * a logical snapshot of every table's primary index — the index is a
//     volatile structure rebuilt at restart, so the snapshot bounds how
//     much index replay a restart needs;
//   * the transaction id allocator.
// After the record is forced to the WAL, the checkpoint LSN is published
// in the master record file (atomic rename), which restart reads to find
// where to begin.
//
// The heap-page part is fuzzy (dirty pages are tabulated, not flushed).
// The index snapshot requires no concurrent index writers; Database
// quiesces by taking its catalog mutex and expecting callers to
// checkpoint from a barrier (the page-cleaner/TxnManager keep running).
#ifndef PLP_IO_CHECKPOINT_H_
#define PLP_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace plp {

struct CheckpointImage {
  /// Log position when the checkpoint started collecting its tables (the
  /// ARIES begin_checkpoint). Activity between this LSN and the record's
  /// own append is not reflected in the tables below, so the restart scan
  /// must start no later than here.
  Lsn begin_lsn = 0;
  std::vector<std::pair<PageId, Lsn>> dirty_pages;       // id -> rec_lsn
  std::vector<std::pair<TxnId, Lsn>> active_txns;        // id -> begin_lsn
  TxnId next_txn_id = 1;
  /// Page-id allocator high-water mark. Restart must allocate fresh pages
  /// (rebuilt index roots) above every id the log can mention; storing
  /// the mark here keeps the restart scan bounded by the checkpoint.
  PageId next_page_id = 1;

  struct TableSnapshot {
    std::uint32_t table_id = 0;
    /// Primary-index entries (key -> value) at checkpoint time.
    std::vector<std::pair<std::string, std::string>> entries;
  };
  std::vector<TableSnapshot> tables;

  std::string Encode() const;
  static Status Decode(const std::string& payload, CheckpointImage* out);

  /// Where the restart log scan must begin to cover this checkpoint:
  /// min(checkpoint lsn, dirty-page rec_lsns, active-txn begin_lsns).
  Lsn ScanStart(Lsn checkpoint_lsn) const;
};

/// Master record: the durably-published LSN of the last checkpoint.
/// Written via temp-file + rename so readers never see a torn value.
Status WriteMasterRecord(const std::string& path, Lsn checkpoint_lsn);

/// kNotFound when no checkpoint has ever been published.
Status ReadMasterRecord(const std::string& path, Lsn* checkpoint_lsn);

}  // namespace plp

#endif  // PLP_IO_CHECKPOINT_H_
