// Ablation: the Aether-style composable log buffer under concurrent
// appenders — the substrate claim ([14]) that logging need not become a
// scalability bottleneck when reservation is a fetch-add.
#include <benchmark/benchmark.h>

#include "src/log/log_buffer.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

void BM_LogAppend(benchmark::State& state) {
  static LogBuffer* buffer = nullptr;
  if (state.thread_index() == 0) {
    CsProfiler::SetEnabled(false);
    buffer = new LogBuffer(64u << 20);
  }
  const std::string payload(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer->Append(payload));
  }
  if (state.thread_index() == 0) {
    buffer->FlushAll();
    delete buffer;
    buffer = nullptr;
    CsProfiler::SetEnabled(true);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(64)->Arg(256)->Threads(1)->Threads(4);

void BM_LogAppendAndFlush(benchmark::State& state) {
  CsProfiler::SetEnabled(false);
  std::size_t sunk = 0;
  LogBuffer buffer(1u << 20,
                   [&](const char*, std::size_t n) { sunk += n; });
  const std::string payload(128, 'x');
  for (auto _ : state) {
    const Lsn lsn = buffer.Append(payload);
    buffer.FlushTo(lsn);  // synchronous-commit path
  }
  benchmark::DoNotOptimize(sunk);
  CsProfiler::SetEnabled(true);
}
BENCHMARK(BM_LogAppendAndFlush);

}  // namespace
}  // namespace plp
