// Repartitioning cost model (Appendix C, Table 2) and the concrete
// instantiation used for Table 1.
//
// For a sub-tree of height h with n entries per node, splitting at a key
// whose path moves m_k entries at level k (1 = leaf .. h = root):
//   PLP-Regular     moves index entries only.
//   PLP-Leaf        additionally moves the m_1 boundary-leaf records.
//   PLP-Partition   moves every record of the new partition.
//   Shared-Nothing  moves the same records but must insert/delete entries
//                   in both indexes (per replica) instead of updating.
// The clustered variants drop the heap file (records live in the leaves).
#ifndef PLP_ENGINE_COST_MODEL_H_
#define PLP_ENGINE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace plp {

enum class RepartitionDesign {
  kPlpRegular,
  kPlpLeaf,
  kPlpPartition,
  kSharedNothing,
  kPlpClustered,
  kSharedNothingClustered,
};

const char* RepartitionDesignName(RepartitionDesign d);

struct CostModelParams {
  int height = 3;                     // tree levels (h)
  std::uint64_t entries_per_node = 170;  // n
  /// m[k-1] = entries moved at level k (leaf-first). Typically about half
  /// a node on the split path.
  std::vector<std::uint64_t> m = {85, 85, 85};
  std::uint64_t record_size = 100;    // bytes per heap record
  std::uint64_t entry_size = 32;      // bytes per index entry
};

struct RepartitionCost {
  std::uint64_t records_moved = 0;       // M
  std::uint64_t entries_moved = 0;       // primary index entries
  std::uint64_t reads = 0;               // leaf entry reads to learn RIDs
  std::uint64_t pages_read = 0;          // heap pages fetched
  std::uint64_t pointer_updates = 0;     // 2h+1 sibling/routing pointers
  std::uint64_t primary_updates = 0;
  std::uint64_t primary_inserts = 0;
  std::uint64_t primary_deletes = 0;
  std::uint64_t secondary_updates = 0;
  std::uint64_t secondary_inserts = 0;
  std::uint64_t secondary_deletes = 0;

  std::uint64_t bytes_moved(const CostModelParams& p) const {
    return records_moved * p.record_size + entries_moved * p.entry_size;
  }
};

/// Evaluates the Table 2 formulas for one design.
RepartitionCost ComputeRepartitionCost(RepartitionDesign design,
                                       const CostModelParams& params);

/// One formatted row of Table 1 (human-readable units).
std::string FormatCostRow(RepartitionDesign design,
                          const CostModelParams& params);

}  // namespace plp

#endif  // PLP_ENGINE_COST_MODEL_H_
