// Segmented on-disk write-ahead log.
//
// The log is one contiguous LSN-addressed byte stream stored as a
// directory of segment files named by the LSN at which they start
// (`%016llx.wal`). The LogBuffer's flush sink appends byte ranges in LSN
// order; segments roll between appends once they exceed the configured
// size, so one log record may straddle a segment boundary — readers treat
// the segment set as a single stream. Appends are buffered writes; Sync()
// makes everything appended so far durable with one fdatasync (the group
// commit's single I/O).
#ifndef PLP_IO_WAL_STORAGE_H_
#define PLP_IO_WAL_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/log_record.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class WalStorage {
 public:
  /// Opens (or creates) the WAL directory and positions the append cursor
  /// at the end of the existing stream.
  static Status Open(const std::string& dir, std::size_t segment_size,
                     std::unique_ptr<WalStorage>* out);

  ~WalStorage();

  WalStorage(const WalStorage&) = delete;
  WalStorage& operator=(const WalStorage&) = delete;

  /// Appends bytes at the end of the stream. Called by the log buffer's
  /// flush path (already serialized); rolls segments as needed.
  Status Append(const char* data, std::size_t size);

  /// fdatasync on the current segment (earlier segments are synced when
  /// they are rolled).
  Status Sync();

  /// Total bytes ever appended == the LSN new appends continue at.
  Lsn end_lsn() const { return end_lsn_.load(std::memory_order_acquire); }

  /// Bytes durably synced.
  Lsn synced_lsn() const { return synced_lsn_.load(std::memory_order_acquire); }

  /// First byte still stored (0 until TruncateBelow discards a prefix).
  Lsn start_lsn();

  /// First readable record boundary. 0 for a never-truncated stream;
  /// after TruncateBelow it is the highest floor ever applied (persisted
  /// in `<dir>/FLOOR`, so reopen scans never start on the mid-record
  /// bytes a truncated-away segment may have left at the stored head).
  Lsn floor_lsn();

  /// Deletes segments that lie wholly below `floor` — every byte < floor —
  /// which a checkpoint's recovery floor has made unreachable to any
  /// future restart scan. `floor` must be a record boundary (a checkpoint
  /// publishes one); it is durably recorded before any file is unlinked.
  /// The newest segment (the append target) is never deleted. Returns the
  /// number of segments removed.
  std::size_t TruncateBelow(Lsn floor);

  /// Replays complete records whose start LSN is >= `from`, in order.
  /// When `from` lies below the truncation floor or the first stored
  /// byte, the scan starts at the first readable record boundary instead.
  /// A truncated record at the very tail of the stream (torn crash write)
  /// ends the scan without error; garbage anywhere else is Corruption.
  /// When `valid_end` is non-null it receives the LSN just past the last
  /// complete record (== end_lsn() when the tail is clean).
  Status ScanFrom(Lsn from,
                  const std::function<void(Lsn, const LogRecord&)>& fn,
                  Lsn* valid_end = nullptr);

  std::size_t num_segments();

 private:
  struct Segment {
    Lsn start = 0;
    std::uint64_t size = 0;
    std::string path;
  };

  WalStorage(std::string dir, std::size_t segment_size)
      : dir_(std::move(dir)), segment_size_(segment_size) {}

  std::string SegmentPath(Lsn start) const;
  std::string FloorPath() const;
  Status OpenSegmentForAppend(Lsn start, std::uint64_t existing_size)
      PLP_REQUIRES(mu_);
  Status RollSegment() PLP_REQUIRES(mu_);

  /// Drops bytes past the last complete record (a torn tail from a crash)
  /// so appends resume on a record boundary. Called once at Open.
  // protocol: single-threaded Open path — the object is not yet published,
  // and ScanFrom (called here) takes mu_ itself, so holding it would
  // self-deadlock.
  Status RepairTornTail() PLP_NO_THREAD_SAFETY_ANALYSIS;

  const std::string dir_;
  const std::size_t segment_size_;

  Mutex mu_;           // guards segments_/fd_/floor_ bookkeeping
  Mutex truncate_mu_;  // serializes TruncateBelow calls
  std::vector<Segment> segments_ PLP_GUARDED_BY(mu_);  // sorted by start lsn
  Lsn floor_ PLP_GUARDED_BY(mu_) = 0;  // first readable record boundary
  int fd_ PLP_GUARDED_BY(mu_) = -1;    // current append segment
  Lsn current_start_ PLP_GUARDED_BY(mu_) = 0;
  std::uint64_t current_size_ PLP_GUARDED_BY(mu_) = 0;

  std::atomic<Lsn> end_lsn_{0};
  std::atomic<Lsn> synced_lsn_{0};
};

}  // namespace plp

#endif  // PLP_IO_WAL_STORAGE_H_
