// Figure 5: throughput of the read-only TATP GetSubscriberData
// transaction as hardware utilization grows, for Conventional, Logical
// and PLP. On this single-core host the thread sweep exercises software
// scalability only; the per-transaction work (latches, lock-manager
// critical sections, index depth) still separates the designs, and the
// PLP > Logical > Conventional ordering should hold at every point.
#include "bench/bench_common.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "GetSubscriberData throughput vs client threads (Ktps)", "Figure 5");
  bench::JsonReporter json("fig5_scaling");
  const int thread_counts[] = {1, 2, 4, 8};
  std::printf("%-12s", "design");
  for (int t : thread_counts) std::printf(" %7dthr", t);
  std::printf("  | unscalable-CS/txn  latches/txn\n");

  for (SystemDesign design :
       {SystemDesign::kConventional, SystemDesign::kLogical,
        SystemDesign::kPlpRegular}) {
    // The conventional design is thread-per-transaction: size its
    // submission pool to the widest client sweep so the pool never caps
    // closed-loop concurrency below the paper's baseline.
    auto engine = bench::MakeEngine(
        design, design == SystemDesign::kConventional ? 8 : 4);
    TatpConfig config;
    config.subscribers = 10000;
    config.partitions = 4;
    TatpWorkload tatp(engine.get(), config);
    if (!tatp.Load().ok()) continue;
    std::printf("%-12s", SystemDesignName(design));
    double unscalable = 0, latches = 0;
    for (int threads : thread_counts) {
      DriverOptions options;
      options.num_threads = threads;
      options.duration = bench::WindowMs();
      // Per-row attribution window via snapshot subtraction (DeltaSince
      // is exact where Reset() raced in-flight increments).
      const StatsSnapshot row_base = engine->GetStats();
      DriverResult r = RunWorkload(
          engine.get(),
          [&](Rng& rng) {
            return tatp.GetSubscriberData(tatp.RandomSubscriber(rng));
          },
          options);
      std::printf(" %10.1f", r.ktps());
      std::fflush(stdout);
      json.Add(SystemDesignName(design), threads, r, "closed-loop",
               engine->GetStats().DeltaSince(row_base).ToJson());
      // Unscalable communication per transaction: lock manager, page
      // latching and buffer pool (Section 2.1's taxonomy) — this is what
      // determines the scaling curve on parallel hardware.
      const double inv = 1.0 / static_cast<double>(r.committed);
      unscalable =
          (static_cast<double>(
               r.cs_delta.entries[static_cast<int>(CsCategory::kLockMgr)]) +
           static_cast<double>(
               r.cs_delta.entries[static_cast<int>(CsCategory::kPageLatch)]) +
           static_cast<double>(r.cs_delta.entries[static_cast<int>(
               CsCategory::kBufferPool)])) *
          inv;
      latches = static_cast<double>(r.cs_delta.TotalLatches()) * inv;
    }
    std::printf("  | %17.2f %12.2f\n", unscalable, latches);
    engine->Stop();
  }

  // Open-loop pipelined mode: 4 client threads keep up to 1024
  // transactions each in flight via Submit/TxnHandle, so the engine —
  // not the driver's thread count — bounds concurrency. The workload
  // mixes reads with UpdateSubscriberData writes so the partition
  // workers (and undo machinery) carry real work.
  std::printf(
      "\nOpen-loop pipelined (Submit/TxnHandle, 4 client threads):\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "design", "ktps", "inflight",
              "p50us", "p99us");
  for (SystemDesign design :
       {SystemDesign::kConventional, SystemDesign::kLogical,
        SystemDesign::kPlpRegular}) {
    EngineConfig config;
    config.design = design;
    config.num_workers = 4;
    config.max_inflight = 8192;
    auto engine = bench::MakeEngine(config);
    TatpConfig tatp_config;
    tatp_config.subscribers = 10000;
    tatp_config.partitions = 4;
    TatpWorkload tatp(engine.get(), tatp_config);
    if (Status st = tatp.Load(); !st.ok()) {
      std::fprintf(stderr, "tatp load(%s): %s\n", SystemDesignName(design),
                   st.ToString().c_str());
      std::abort();
    }
    DriverOptions options;
    options.num_threads = 4;
    options.pipeline_depth = 1024;
    options.duration = bench::WindowMs();
    const StatsSnapshot row_base = engine->GetStats();  // attribution window
    DriverResult r = RunWorkload(
        engine.get(),
        [&](Rng& rng) {
          const std::uint32_t s = tatp.RandomSubscriber(rng);
          if (rng.Uniform(100) < 50) {
            return tatp.UpdateSubscriberData(
                s, static_cast<std::uint8_t>(rng.Uniform(4)),
                static_cast<std::uint8_t>(rng.Uniform(2)),
                static_cast<std::uint8_t>(rng.Uniform(256)));
          }
          return tatp.GetSubscriberData(s);
        },
        options);
    std::printf("%-12s %10.1f %10llu %10.1f %10.1f\n",
                SystemDesignName(design), r.ktps(),
                static_cast<unsigned long long>(r.peak_inflight), r.p50_us(),
                r.p99_us());
    std::fflush(stdout);
    json.Add(std::string(SystemDesignName(design)) + "-pipelined", 4, r,
             "open-loop", engine->GetStats().DeltaSince(row_base).ToJson());
    engine->Stop();
  }

  std::printf(
      "\nExpected shape (paper, 16-64 HW contexts): PLP > Logical > Conv.\n"
      "in Ktps, widening with utilization (+22%% Logical, +40%% PLP on\n"
      "x86_64). NOTE: this host exposes a single hardware context, so the\n"
      "partitioned designs pay message-passing context switches with no\n"
      "parallelism to amortize them and raw Ktps inverts. The scaling\n"
      "determinant the paper identifies — unscalable critical sections\n"
      "per transaction (right columns) — does reproduce: PLP removes\n"
      "nearly all of them.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
