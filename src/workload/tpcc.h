// TPC-C (lite) — used for the page-latch breakdown of Figure 2.
//
// Implements the schema subset and the two most frequent transactions
// (NewOrder, Payment) at small scale; enough to exercise the index/heap/
// catalog latch mix the paper reports. Tables partition by warehouse.
#ifndef PLP_WORKLOAD_TPCC_H_
#define PLP_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace plp {

struct TpccConfig {
  std::uint32_t warehouses = 4;
  std::uint32_t districts_per_wh = 10;
  std::uint32_t customers_per_district = 100;
  std::uint32_t items = 1000;
  int partitions = 4;
  std::uint64_t seed = 13;
};

class TpccWorkload {
 public:
  TpccWorkload(Engine* engine, TpccConfig config)
      : engine_(engine), config_(config) {}

  Status Load();

  /// 50/50 NewOrder/Payment mix (the two transactions dominate TPC-C).
  TxnRequest NextTransaction(Rng& rng);

  TxnRequest NewOrder(Rng& rng);
  TxnRequest Payment(Rng& rng);

  static constexpr const char* kWarehouse = "tpcc_warehouse";
  static constexpr const char* kDistrict = "tpcc_district";
  static constexpr const char* kCustomer = "tpcc_customer";
  static constexpr const char* kStock = "tpcc_stock";
  static constexpr const char* kItem = "tpcc_item";
  static constexpr const char* kOrder = "tpcc_order";
  static constexpr const char* kOrderLine = "tpcc_orderline";

  static std::string WarehouseKey(std::uint32_t w);
  static std::string DistrictKey(std::uint32_t w, std::uint32_t d);
  static std::string CustomerKey(std::uint32_t w, std::uint32_t d,
                                 std::uint32_t c);
  static std::string StockKey(std::uint32_t w, std::uint32_t i);
  static std::string ItemKey(std::uint32_t i);
  static std::string OrderKey(std::uint32_t w, std::uint32_t d,
                              std::uint64_t o);
  static std::string OrderLineKey(std::uint32_t w, std::uint32_t d,
                                  std::uint64_t o, std::uint32_t line);

 private:
  Engine* engine_;
  TpccConfig config_;
  std::atomic<std::uint64_t> next_order_{1};
};

}  // namespace plp

#endif  // PLP_WORKLOAD_TPCC_H_
