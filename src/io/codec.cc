#include "src/io/codec.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace plp::io {

Status AtomicWriteFile(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("open " + tmp + ": " + std::strerror(errno));
  }
  bool ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  std::fclose(f);
  if (!ok) return Status::Internal("write " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + ": " + std::strerror(errno));
  }
  // The rename is a directory operation: fsync the parent so the install
  // is durable (callers sequence destructive steps — e.g. WAL segment
  // deletion — after this returns).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return Status::Internal("open dir " + dir + ": " + std::strerror(errno));
  const bool dsync = ::fsync(dfd) == 0;
  ::close(dfd);
  if (!dsync) return Status::Internal("fsync dir " + dir);
  return Status::OK();
}

}  // namespace plp::io
