// B+Tree tests: node format, tree operations, splits, SMO accounting,
// latch policies, slice/meld, concurrency, and randomized property tests.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/index/btree.h"
#include "src/index/btree_node.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

TEST(BTreeNodeTest, InitAndAccessors) {
  char data[kPageSize];
  BTreeNode::Init(data, 2);
  BTreeNode node(data);
  EXPECT_EQ(node.count(), 0);
  EXPECT_EQ(node.level(), 2);
  EXPECT_FALSE(node.is_leaf());
  EXPECT_EQ(node.next(), kInvalidPageId);
  EXPECT_EQ(node.leftmost_child(), kInvalidPageId);
}

TEST(BTreeNodeTest, SortedInsertAndSearch) {
  char data[kPageSize];
  BTreeNode::Init(data, 0);
  BTreeNode node(data);
  // Insert out of order at computed positions.
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) {
    const int pos = node.LowerBound(k);
    ASSERT_TRUE(node.InsertAt(pos, k, "v").ok());
  }
  ASSERT_EQ(node.count(), 4);
  EXPECT_EQ(node.KeyAt(0).ToString(), "alpha");
  EXPECT_EQ(node.KeyAt(3).ToString(), "delta");
  EXPECT_EQ(node.Find("charlie"), 2);
  EXPECT_EQ(node.Find("echo"), -1);
  EXPECT_EQ(node.LowerBound("bz"), 2);
  EXPECT_EQ(node.UpperBound("bravo"), 2);
}

TEST(BTreeNodeTest, RemoveAndCompact) {
  char data[kPageSize];
  BTreeNode::Init(data, 0);
  BTreeNode node(data);
  for (int i = 0; i < 100; ++i) {
    const std::string k = KeyU32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(node.InsertAt(node.LowerBound(k), k, "value").ok());
  }
  for (int i = 0; i < 100; i += 2) {
    const std::string k = KeyU32(static_cast<std::uint32_t>(i));
    node.RemoveAt(node.Find(k));
  }
  EXPECT_EQ(node.count(), 50);
  node.Compact();
  EXPECT_EQ(node.count(), 50);
  EXPECT_EQ(node.Find(KeyU32(1)), 0);
  EXPECT_EQ(node.Find(KeyU32(0)), -1);
}

TEST(BTreeNodeTest, MoveTailSplitsContents) {
  char left_data[kPageSize], right_data[kPageSize];
  BTreeNode::Init(left_data, 0);
  BTreeNode::Init(right_data, 0);
  BTreeNode left(left_data), right(right_data);
  for (int i = 0; i < 10; ++i) {
    const std::string k = KeyU32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(left.InsertAt(i, k, "v").ok());
  }
  left.MoveTail(6, &right);
  EXPECT_EQ(left.count(), 6);
  EXPECT_EQ(right.count(), 4);
  EXPECT_EQ(right.KeyAt(0).ToString(), KeyU32(6));
}

TEST(BTreeNodeTest, ChildForRouting) {
  char data[kPageSize];
  BTreeNode::Init(data, 1);
  BTreeNode node(data);
  node.set_leftmost_child(100);
  PageId c1 = 101, c2 = 102;
  ASSERT_TRUE(node.InsertAt(0, KeyU32(10),
                            Slice(reinterpret_cast<char*>(&c1), 4)).ok());
  ASSERT_TRUE(node.InsertAt(1, KeyU32(20),
                            Slice(reinterpret_cast<char*>(&c2), 4)).ok());
  EXPECT_EQ(node.ChildFor(KeyU32(5)), 100u);
  EXPECT_EQ(node.ChildFor(KeyU32(10)), 101u);
  EXPECT_EQ(node.ChildFor(KeyU32(15)), 101u);
  EXPECT_EQ(node.ChildFor(KeyU32(20)), 102u);
  EXPECT_EQ(node.ChildFor(KeyU32(999)), 102u);
}

class BTreeTest : public ::testing::TestWithParam<LatchPolicy> {
 protected:
  BufferPool pool_;
};

INSTANTIATE_TEST_SUITE_P(Policies, BTreeTest,
                         ::testing::Values(LatchPolicy::kLatched,
                                           LatchPolicy::kNone),
                         [](const auto& info) {
                           return info.param == LatchPolicy::kLatched
                                      ? "Latched"
                                      : "LatchFree";
                         });

TEST_P(BTreeTest, InsertProbeDelete) {
  BTree tree(&pool_, GetParam());
  ASSERT_TRUE(tree.Insert("key1", "value1").ok());
  std::string value;
  ASSERT_TRUE(tree.Probe("key1", &value).ok());
  EXPECT_EQ(value, "value1");
  EXPECT_TRUE(tree.Probe("missing", &value).IsNotFound());
  EXPECT_TRUE(tree.Insert("key1", "dup").IsAlreadyExists());
  ASSERT_TRUE(tree.Delete("key1").ok());
  EXPECT_TRUE(tree.Probe("key1", &value).IsNotFound());
  EXPECT_TRUE(tree.Delete("key1").IsNotFound());
  EXPECT_EQ(tree.num_entries(), 0u);
}

TEST_P(BTreeTest, ManyInsertsForceSplitsAndStaySorted) {
  BTree tree(&pool_, GetParam());
  constexpr int kN = 20000;
  Rng rng(3);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < kN; ++i) keys.push_back(static_cast<std::uint32_t>(i));
  // Shuffle for non-sequential insertion.
  for (int i = kN - 1; i > 0; --i) {
    std::swap(keys[static_cast<std::size_t>(i)],
              keys[rng.Uniform(static_cast<std::uint64_t>(i + 1))]);
  }
  for (std::uint32_t k : keys) {
    ASSERT_TRUE(tree.Insert(KeyU32(k), KeyU32(k * 2)).ok());
  }
  EXPECT_EQ(tree.num_entries(), static_cast<std::uint64_t>(kN));
  EXPECT_GT(tree.smo_count(), 0u);
  EXPECT_GE(tree.height(), 2);
  ASSERT_TRUE(tree.CheckIntegrity().ok());

  // Full scan returns every key in order.
  std::uint32_t expected = 0;
  ASSERT_TRUE(tree.ScanFrom(Slice(), [&](Slice k, Slice v) {
    EXPECT_EQ(DecodeU32(k), expected);
    EXPECT_EQ(DecodeU32(v), expected * 2);
    ++expected;
    return true;
  }).ok());
  EXPECT_EQ(expected, static_cast<std::uint32_t>(kN));
}

TEST_P(BTreeTest, SequentialInsertGrowsRightmost) {
  BTree tree(&pool_, GetParam());
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  EXPECT_EQ(tree.num_entries(), 5000u);
}

TEST_P(BTreeTest, UpdateValues) {
  BTree tree(&pool_, GetParam());
  ASSERT_TRUE(tree.Insert("k", "old").ok());
  ASSERT_TRUE(tree.Update("k", "new").ok());
  std::string value;
  ASSERT_TRUE(tree.Probe("k", &value).ok());
  EXPECT_EQ(value, "new");
  EXPECT_TRUE(tree.Update("missing", "x").IsNotFound());
  // Different-size update.
  ASSERT_TRUE(tree.Update("k", std::string(300, 'z')).ok());
  ASSERT_TRUE(tree.Probe("k", &value).ok());
  EXPECT_EQ(value.size(), 300u);
}

TEST_P(BTreeTest, RangeScanWindow) {
  BTree tree(&pool_, GetParam());
  for (std::uint32_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  std::vector<std::uint32_t> seen;
  ASSERT_TRUE(tree.ScanFrom(KeyU32(100), [&](Slice k, Slice) {
    const std::uint32_t v = DecodeU32(k);
    if (v >= 120) return false;
    seen.push_back(v);
    return true;
  }).ok());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{100, 102, 104, 106, 108, 110,
                                              112, 114, 116, 118}));
}

TEST_P(BTreeTest, RootPageIdNeverChanges) {
  BTree tree(&pool_, GetParam());
  const PageId root = tree.root();
  const std::string payload(100, 'p');
  for (std::uint32_t i = 0; i < 50000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), payload).ok());
  }
  EXPECT_EQ(tree.root(), root);
  EXPECT_GE(tree.height(), 3);
}

TEST_P(BTreeTest, MinAndMedianKeys) {
  BTree tree(&pool_, GetParam());
  std::string key;
  EXPECT_TRUE(tree.MinKey(&key).IsNotFound());
  for (std::uint32_t i = 10; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  ASSERT_TRUE(tree.MinKey(&key).ok());
  EXPECT_EQ(DecodeU32(key), 10u);
  ASSERT_TRUE(tree.ApproxMedianKey(&key).ok());
  const std::uint32_t median = DecodeU32(key);
  EXPECT_GT(median, 100u);
  EXPECT_LT(median, 900u);
}

TEST_P(BTreeTest, RandomOpsMatchModel) {
  BTree tree(&pool_, GetParam());
  std::map<std::string, std::string> model;
  Rng rng(77);
  for (int step = 0; step < 20000; ++step) {
    const std::string key = KeyU32(static_cast<std::uint32_t>(
        rng.Uniform(5000)));
    const std::uint64_t op = rng.Uniform(4);
    if (op == 0) {
      Status st = tree.Insert(key, "v" + key);
      EXPECT_EQ(st.ok(), model.emplace(key, "v" + key).second);
    } else if (op == 1) {
      Status st = tree.Delete(key);
      EXPECT_EQ(st.ok(), model.erase(key) > 0);
    } else if (op == 2) {
      std::string value;
      Status st = tree.Probe(key, &value);
      auto it = model.find(key);
      EXPECT_EQ(st.ok(), it != model.end());
      if (st.ok()) EXPECT_EQ(value, it->second);
    } else {
      Status st = tree.Update(key, "u" + key);
      auto it = model.find(key);
      EXPECT_EQ(st.ok(), it != model.end());
      if (st.ok()) it->second = "u" + key;
    }
  }
  EXPECT_EQ(tree.num_entries(), model.size());
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeLatchTest, LatchFreeModeAcquiresNoLatches) {
  CsProfiler::Global().Reset();
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  std::string value;
  ASSERT_TRUE(tree.Probe(KeyU32(1000), &value).ok());
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)], 0u);
}

TEST(BTreeLatchTest, LatchedModeAcquiresPerLevel) {
  CsProfiler::Global().Reset();
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kLatched);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  const int height = tree.height();
  CsProfiler::Global().Reset();
  std::string value;
  ASSERT_TRUE(tree.Probe(KeyU32(1000), &value).ok());
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)],
            static_cast<std::uint64_t>(height));
}

TEST(BTreeConcurrencyTest, ParallelInsertersDisjointRanges) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kLatched);
  constexpr int kThreads = 4, kEach = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        const auto k = static_cast<std::uint32_t>(t * kEach + i);
        ASSERT_TRUE(tree.Insert(KeyU32(k), "v").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.num_entries(),
            static_cast<std::uint64_t>(kThreads) * kEach);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeConcurrencyTest, ReadersDuringWrites) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kLatched);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i * 2), "stable").ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint32_t i = 0; i < 5000 && !stop; ++i) {
      (void)tree.Insert(KeyU32(i * 2 + 1), "new");
    }
  });
  // Readers continuously probe pre-existing keys; they must always hit.
  for (int r = 0; r < 20000; ++r) {
    const auto k = static_cast<std::uint32_t>((r % 1000) * 2);
    std::string value;
    ASSERT_TRUE(tree.Probe(KeyU32(k), &value).ok());
    EXPECT_EQ(value, "stable");
  }
  stop = true;
  writer.join();
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeSliceTest, SliceSplitsAtKey) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), KeyU32(i)).ok());
  }
  std::unique_ptr<BTree> right;
  ASSERT_TRUE(tree.SliceOff(KeyU32(6000), &right).ok());
  EXPECT_EQ(tree.num_entries(), 6000u);
  EXPECT_EQ(right->num_entries(), 4000u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  ASSERT_TRUE(right->CheckIntegrity().ok());

  std::string value;
  EXPECT_TRUE(tree.Probe(KeyU32(5999), &value).ok());
  EXPECT_TRUE(tree.Probe(KeyU32(6000), &value).IsNotFound());
  EXPECT_TRUE(right->Probe(KeyU32(6000), &value).ok());
  EXPECT_TRUE(right->Probe(KeyU32(5999), &value).IsNotFound());

  std::string min_key;
  ASSERT_TRUE(right->MinKey(&min_key).ok());
  EXPECT_EQ(DecodeU32(min_key), 6000u);
}

TEST(BTreeSliceTest, SliceMovesOnlyBoundaryEntries) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 50000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), KeyU32(i)).ok());
  }
  const std::size_t pages_before = pool.num_pages();
  std::unique_ptr<BTree> right;
  ASSERT_TRUE(tree.SliceOff(KeyU32(25000), &right).ok());
  // The slice allocates at most ~height new pages: the boundary path.
  EXPECT_LE(pool.num_pages(), pages_before + 6)
      << "slice must not copy the key range";
}

TEST(BTreeMeldTest, MeldEqualHeights) {
  BufferPool pool;
  BTree left(&pool, LatchPolicy::kNone);
  BTree right(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(left.Insert(KeyU32(i), "l").ok());
    ASSERT_TRUE(right.Insert(KeyU32(10000 + i), "r").ok());
  }
  ASSERT_TRUE(left.Meld(&right, KeyU32(10000)).ok());
  EXPECT_EQ(left.num_entries(), 6000u);
  ASSERT_TRUE(left.CheckIntegrity().ok());
  std::string value;
  EXPECT_TRUE(left.Probe(KeyU32(5000), &value).IsNotFound());  // in the gap
  EXPECT_TRUE(left.Probe(KeyU32(10500), &value).ok());
  EXPECT_TRUE(left.Probe(KeyU32(500), &value).ok());
  // Ordered scan crosses the meld boundary seamlessly.
  std::uint32_t count = 0;
  ASSERT_TRUE(left.ScanFrom(Slice(), [&](Slice, Slice) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 6000u);
}

TEST(BTreeMeldTest, MeldTallerLeft) {
  BufferPool pool;
  BTree left(&pool, LatchPolicy::kNone);
  BTree right(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE(left.Insert(KeyU32(i), "l").ok());
  }
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(right.Insert(KeyU32(100000 + i), "r").ok());
  }
  ASSERT_GT(left.height(), right.height());
  ASSERT_TRUE(left.Meld(&right, KeyU32(100000)).ok());
  EXPECT_EQ(left.num_entries(), 30050u);
  ASSERT_TRUE(left.CheckIntegrity().ok());
  std::string value;
  EXPECT_TRUE(left.Probe(KeyU32(100025), &value).ok());
}

TEST(BTreeMeldTest, MeldTallerRight) {
  BufferPool pool;
  BTree left(&pool, LatchPolicy::kNone);
  BTree right(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(left.Insert(KeyU32(i), "l").ok());
  }
  for (std::uint32_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE(right.Insert(KeyU32(1000 + i), "r").ok());
  }
  ASSERT_LT(left.height(), right.height());
  ASSERT_TRUE(left.Meld(&right, KeyU32(1000)).ok());
  EXPECT_EQ(left.num_entries(), 30050u);
  ASSERT_TRUE(left.CheckIntegrity().ok());
  std::string value;
  EXPECT_TRUE(left.Probe(KeyU32(25), &value).ok());
  EXPECT_TRUE(left.Probe(KeyU32(15000), &value).ok());
}

TEST(BTreeHookTest, LeafMovedHookFiresOnSplit) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  int moved = 0;
  tree.set_leaf_moved_hook([&](Slice, Slice, PageId) -> std::string {
    ++moved;
    return std::string();  // keep original values
  });
  for (std::uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "0123456789012345").ok());
  }
  EXPECT_GT(moved, 0) << "leaf splits must invoke the relocation hook";
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeHookTest, HookCanRewriteValues) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  tree.set_leaf_moved_hook([&](Slice, Slice, PageId) -> std::string {
    return std::string("REWRITTEN0123456");  // same length as original
  });
  for (std::uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "originalvalue123").ok());
  }
  int rewritten = 0;
  tree.ForEachEntry([&](Slice, Slice v) {
    if (v.ToString() == "REWRITTEN0123456") ++rewritten;
  });
  EXPECT_GT(rewritten, 0);
}

TEST(BTreeStatsTest, NodesVisitedTracksHeight) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  const int height = tree.height();
  const std::uint64_t before = tree.nodes_visited();
  std::string value;
  ASSERT_TRUE(tree.Probe(KeyU32(5000), &value).ok());
  EXPECT_EQ(tree.nodes_visited() - before,
            static_cast<std::uint64_t>(height));
}

}  // namespace
}  // namespace plp
