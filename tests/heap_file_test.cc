// Tests for heap files in the three ownership disciplines of Section 3.3.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/buffer/buffer_pool.h"
#include "src/storage/heap_file.h"
#include "src/storage/slotted_page.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

TEST(HeapFileSharedTest, InsertGetUpdateDelete) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  Rid rid;
  ASSERT_TRUE(heap.Insert("record-1", &rid).ok());
  std::string out;
  ASSERT_TRUE(heap.Get(rid, &out).ok());
  EXPECT_EQ(out, "record-1");
  ASSERT_TRUE(heap.Update(rid, "record-1b").ok());
  ASSERT_TRUE(heap.Get(rid, &out).ok());
  EXPECT_EQ(out, "record-1b");
  ASSERT_TRUE(heap.Delete(rid).ok());
  EXPECT_TRUE(heap.Get(rid, &out).IsNotFound());
}

TEST(HeapFileSharedTest, PacksManyRecordsPerPage) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  const std::string rec(100, 'x');
  Rid rid;
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(heap.Insert(rec, &rid).ok());
  // ~77 records/page -> about 7 pages.
  EXPECT_LE(heap.num_pages(), 10u);
  EXPECT_GE(heap.num_pages(), 6u);
}

TEST(HeapFileSharedTest, ReusesSpaceAfterDelete) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  const std::string rec(1000, 'x');
  std::vector<Rid> rids;
  Rid rid;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(heap.Insert(rec, &rid).ok());
    rids.push_back(rid);
  }
  const std::size_t pages_before = heap.num_pages();
  for (const Rid& r : rids) ASSERT_TRUE(heap.Delete(r).ok());
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(heap.Insert(rec, &rid).ok());
  EXPECT_EQ(heap.num_pages(), pages_before);  // no growth
}

TEST(HeapFileSharedTest, ScanVisitsAllRecords) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  std::set<std::string> expected;
  Rid rid;
  for (int i = 0; i < 100; ++i) {
    std::string rec = "rec-" + std::to_string(i);
    ASSERT_TRUE(heap.Insert(rec, &rid).ok());
    expected.insert(rec);
  }
  std::set<std::string> seen;
  heap.Scan([&](Rid, Slice rec) { seen.insert(rec.ToString()); });
  EXPECT_EQ(seen, expected);
}

TEST(HeapFileSharedTest, LatchedAccessRecordsHeapLatches) {
  CsProfiler::Global().Reset();
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  Rid rid;
  ASSERT_TRUE(heap.Insert("x", &rid).ok());
  std::string out;
  ASSERT_TRUE(heap.Get(rid, &out).ok());
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_GE(counts.latches[static_cast<int>(PageClass::kHeap)], 2u);
}

TEST(HeapFileOwnedTest, LatchFreeAccess) {
  CsProfiler::Global().Reset();
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid rid;
  ASSERT_TRUE(heap.InsertOwned(1, "x", &rid).ok());
  std::string out;
  ASSERT_TRUE(heap.Get(rid, &out).ok());
  ASSERT_TRUE(heap.Update(rid, "y").ok());
  ASSERT_TRUE(heap.Delete(rid).ok());
  CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kHeap)], 0u)
      << "owned heap pages must never be latched";
}

TEST(HeapFileOwnedTest, OwnersGetSeparatePages) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid r1, r2;
  ASSERT_TRUE(heap.InsertOwned(1, "a", &r1).ok());
  ASSERT_TRUE(heap.InsertOwned(2, "b", &r2).ok());
  EXPECT_NE(r1.page_id, r2.page_id);
  Page* p1 = pool.FixUnlocked(r1.page_id);
  Page* p2 = pool.FixUnlocked(r2.page_id);
  EXPECT_EQ(SlottedPage(p1->data()).owner(), 1u);
  EXPECT_EQ(SlottedPage(p2->data()).owner(), 2u);
}

TEST(HeapFileOwnedTest, SameOwnerSharesPage) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid r1, r2;
  ASSERT_TRUE(heap.InsertOwned(1, "a", &r1).ok());
  ASSERT_TRUE(heap.InsertOwned(1, "b", &r2).ok());
  EXPECT_EQ(r1.page_id, r2.page_id);
}

TEST(HeapFileOwnedTest, ScanOwnedIsScoped) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid rid;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.InsertOwned(1, "one-" + std::to_string(i), &rid).ok());
    ASSERT_TRUE(heap.InsertOwned(2, "two-" + std::to_string(i), &rid).ok());
  }
  int count = 0;
  heap.ScanOwned(1, [&](Rid, Slice rec) {
    EXPECT_EQ(rec.ToString().substr(0, 4), "one-");
    ++count;
  });
  EXPECT_EQ(count, 10);
}

TEST(HeapFileOwnedTest, MoveRelocatesRecord) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid rid;
  ASSERT_TRUE(heap.InsertOwned(1, "payload", &rid).ok());
  Rid new_rid;
  ASSERT_TRUE(heap.Move(rid, 2, &new_rid).ok());
  EXPECT_NE(rid, new_rid);
  std::string out;
  EXPECT_TRUE(heap.Get(rid, &out).IsNotFound());
  ASSERT_TRUE(heap.Get(new_rid, &out).ok());
  EXPECT_EQ(out, "payload");
  Page* page = pool.FixUnlocked(new_rid.page_id);
  EXPECT_EQ(SlottedPage(page->data()).owner(), 2u);
}

TEST(HeapFileOwnedTest, RetagOwnerReassignsPages) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  Rid rid;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(heap.InsertOwned(1, "r" + std::to_string(i), &rid).ok());
  }
  heap.RetagOwner(1, 9);
  EXPECT_TRUE(heap.OwnedPages(1).empty());
  const auto pages = heap.OwnedPages(9);
  ASSERT_FALSE(pages.empty());
  for (PageId pid : pages) {
    EXPECT_EQ(SlottedPage(pool.FixUnlocked(pid)->data()).owner(), 9u);
  }
  // New inserts for owner 9 keep using the retagged pages.
  ASSERT_TRUE(heap.InsertOwned(9, "more", &rid).ok());
  EXPECT_EQ(heap.OwnedPages(9).size(), pages.size());
}

TEST(HeapFileOwnedTest, LeafOwnedModeUsesLeafPidAsOwner) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kLeafOwned);
  EXPECT_EQ(heap.latch_policy(), LatchPolicy::kNone);
  Rid rid;
  ASSERT_TRUE(heap.InsertOwned(4242, "x", &rid).ok());
  Page* page = pool.FixUnlocked(rid.page_id);
  EXPECT_EQ(SlottedPage(page->data()).owner(), 4242u);
}

TEST(HeapFileTest, LargeRecordSpansNewPage) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  const std::string big(7000, 'b');
  Rid r1, r2;
  ASSERT_TRUE(heap.Insert(big, &r1).ok());
  ASSERT_TRUE(heap.Insert(big, &r2).ok());
  EXPECT_NE(r1.page_id, r2.page_id);
}

}  // namespace
}  // namespace plp
