// Per-transaction stage timeline: when TxnOptions::trace is set, the
// engine stamps nanosecond timestamps at each pipeline stage
// (submit -> admitted -> queued -> execute -> log-append -> fsync-durable
// -> callback) onto the transaction's shared state, exposed through
// TxnHandle::timeline() and rolled into per-stage registry histograms at
// completion. Stamps are relaxed atomics because rendezvous phases can
// run actions on several partition workers concurrently.
#ifndef PLP_METRICS_TXN_TRACE_H_
#define PLP_METRICS_TXN_TRACE_H_

#include <atomic>
#include <cstdint>

#include "src/metrics/flight_recorder.h"
#include "src/metrics/registry.h"

namespace plp {

struct TxnTimeline {
  std::atomic<std::uint64_t> submit_ns{0};    // Engine::Submit entry
  std::atomic<std::uint64_t> admitted_ns{0};  // admission gate passed
  std::atomic<std::uint64_t> execute_ns{0};   // first action starts running
  std::atomic<std::uint64_t> append_ns{0};    // commit record in WAL buffer
  std::atomic<std::uint64_t> durable_ns{0};   // group-commit fsync covered it
  std::atomic<std::uint64_t> complete_ns{0};  // callback/handle resolved

  /// Stamp a stage if it has not been stamped yet (parallel actions may
  /// race on execute_ns; first-ish writer wins, later writers are no-ops
  /// within the same phase's timing noise).
  static void Stamp(std::atomic<std::uint64_t>& stage, std::uint64_t now) {
    std::uint64_t expected = 0;
    stage.compare_exchange_strong(expected, now, std::memory_order_relaxed);
  }
};

/// Pre-resolved histogram pointers for the trace stages, built once per
/// engine so completion-path recording never touches the registry mutex.
struct TxnTraceSinks {
  Histogram* admission_us = nullptr;  // submit -> admitted
  Histogram* queue_us = nullptr;      // admitted -> execute
  Histogram* execute_us = nullptr;    // execute -> log append
  Histogram* fsync_us = nullptr;      // log append -> durable
  Histogram* callback_us = nullptr;   // durable -> resolved
  Histogram* total_us = nullptr;      // submit -> resolved

  explicit TxnTraceSinks(MetricsRegistry* m)
      : admission_us(m->histogram("trace.admission_us")),
        queue_us(m->histogram("trace.queue_us")),
        execute_us(m->histogram("trace.execute_us")),
        fsync_us(m->histogram("trace.fsync_us")),
        callback_us(m->histogram("trace.callback_us")),
        total_us(m->histogram("trace.total_us")) {}

  void Record(const TxnTimeline& t) const {
    // Stages the transaction never reached (abort before execute, or a
    // non-durable commit) are skipped rather than recorded as zeros.
    auto stage = [](Histogram* h, const std::atomic<std::uint64_t>& from,
                    const std::atomic<std::uint64_t>& to) {
      const std::uint64_t a = from.load(std::memory_order_relaxed);
      const std::uint64_t b = to.load(std::memory_order_relaxed);
      if (a != 0 && b >= a) h->Record((b - a) / 1000);
    };
    stage(admission_us, t.submit_ns, t.admitted_ns);
    stage(queue_us, t.admitted_ns, t.execute_ns);
    stage(execute_us, t.execute_ns, t.append_ns);
    stage(fsync_us, t.append_ns, t.durable_ns);
    stage(callback_us, t.durable_ns, t.complete_ns);
    stage(total_us, t.submit_ns, t.complete_ns);
  }
};

/// Bridges a resolved timeline into flight-recorder span events: one
/// kTxnStage event per reached stage, all tagged with a process-unique
/// trace id so Perfetto can correlate a transaction's spans across the
/// client, worker, and group-commit threads that stamped them. Stage ids
/// (arg0) index the trace.*_us histogram family:
/// 0=admission 1=queue 2=execute 3=fsync 4=callback 5=total.
inline void EmitTimelineSpans(const TxnTimeline& t) {
  static std::atomic<std::uint64_t> next_trace_id{1};
  const std::uint64_t id =
      next_trace_id.fetch_add(1, std::memory_order_relaxed);
  auto span = [id](std::uint64_t stage_id,
                   const std::atomic<std::uint64_t>& from,
                   const std::atomic<std::uint64_t>& to) {
    const std::uint64_t a = from.load(std::memory_order_relaxed);
    const std::uint64_t b = to.load(std::memory_order_relaxed);
    if (a != 0 && b >= a) {
      FlightRecorder::Emit(TraceEventType::kTxnStage, a, b - a, stage_id, id);
    }
  };
  span(0, t.submit_ns, t.admitted_ns);
  span(1, t.admitted_ns, t.execute_ns);
  span(2, t.execute_ns, t.append_ns);
  span(3, t.append_ns, t.durable_ns);
  span(4, t.durable_ns, t.complete_ns);
}

}  // namespace plp

#endif  // PLP_METRICS_TXN_TRACE_H_
