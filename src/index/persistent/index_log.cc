#include "src/index/persistent/index_log.h"

#include <algorithm>
#include <cstring>

#include "src/index/btree_node.h"
#include "src/io/codec.h"

namespace plp {

std::string EncodeIndexEntry(Slice key, Slice value) {
  std::string out;
  const std::uint16_t klen = static_cast<std::uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
  return out;
}

void DecodeIndexEntry(Slice payload, std::string* key, std::string* value) {
  std::uint16_t klen;
  std::memcpy(&klen, payload.data(), 2);
  key->assign(payload.data() + 2, klen);
  value->assign(payload.data() + 2 + klen, payload.size() - 2 - klen);
}

std::string EncodeNodeImage(const char* page_data) {
  BTreeNode node(const_cast<char*>(page_data));
  const std::uint16_t head_len = static_cast<std::uint16_t>(
      BTreeNode::kHeaderSize + node.count() * BTreeNode::kSlotSize);
  const std::uint16_t cell_start = node.cell_start();
  std::string out;
  out.reserve(2u + head_len + (kPageSize - cell_start));
  out.append(reinterpret_cast<const char*>(&head_len), 2);
  out.append(page_data, head_len);
  out.append(page_data + cell_start, kPageSize - cell_start);
  return out;
}

bool ApplyNodeImage(Slice image, char* page_data) {
  if (image.size() < 2 + BTreeNode::kHeaderSize) return false;
  std::uint16_t head_len;
  std::memcpy(&head_len, image.data(), 2);
  if (head_len < BTreeNode::kHeaderSize || head_len > kPageSize ||
      image.size() < 2u + head_len) {
    return false;
  }
  std::memset(page_data, 0, kPageSize);
  std::memcpy(page_data, image.data() + 2, head_len);
  const std::uint16_t cell_start = BTreeNode(page_data).cell_start();
  const std::size_t cell_bytes = image.size() - 2 - head_len;
  if (cell_start > kPageSize || cell_bytes != kPageSize - cell_start) {
    return false;
  }
  std::memcpy(page_data + cell_start, image.data() + 2 + head_len,
              cell_bytes);
  return true;
}

std::string EncodeSmoPayload(
    const std::vector<std::pair<PageId, std::string>>& images) {
  std::string out;
  io::PutU32(&out, static_cast<std::uint32_t>(images.size()));
  for (const auto& [pid, image] : images) {
    io::PutU32(&out, pid);
    io::PutBytes(&out, image);
  }
  return out;
}

bool DecodeSmoPayload(Slice payload,
                      std::vector<std::pair<PageId, std::string>>* out) {
  io::Reader r(payload.data(), payload.size());
  std::uint32_t n;
  if (!r.U32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t pid;
    std::string image;
    if (!r.U32(&pid) || !r.Bytes(&image)) return false;
    out->emplace_back(pid, std::move(image));
  }
  return true;
}

std::string EncodePartitionPayload(
    const std::vector<std::pair<std::string, PageId>>& parts) {
  std::string out;
  io::PutU32(&out, static_cast<std::uint32_t>(parts.size()));
  for (const auto& [start_key, root] : parts) {
    io::PutU32(&out, root);
    io::PutBytes(&out, start_key);
  }
  return out;
}

bool DecodePartitionPayload(
    Slice payload, std::vector<std::pair<std::string, PageId>>* out) {
  io::Reader r(payload.data(), payload.size());
  std::uint32_t n;
  if (!r.U32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t root;
    std::string start_key;
    if (!r.U32(&root) || !r.Bytes(&start_key)) return false;
    out->emplace_back(std::move(start_key), root);
  }
  return true;
}

void EnsureNodeFormatted(char* page_data) {
  // An initialized node has cell_start == kPageSize when empty and > 0
  // always; a freshly-materialized frame is all zeroes.
  if (BTreeNode(page_data).cell_start() == 0) {
    BTreeNode::Init(page_data, /*level=*/0);
  }
}

void RedoLeafInsert(char* page_data, Slice key, Slice value) {
  EnsureNodeFormatted(page_data);
  BTreeNode node(page_data);
  const int pos = node.LowerBound(key);
  if (pos < node.count() && node.KeyAt(pos) == key) return;  // applied
  // kNoSpace is tolerated: an insert anchor logged just before its SMO
  // record may replay against the pre-split page; the transaction cannot
  // have committed without the SMO record also being durable.
  (void)node.InsertAt(pos, key, value);
}

void RedoLeafDelete(char* page_data, Slice key) {
  EnsureNodeFormatted(page_data);
  BTreeNode node(page_data);
  const int pos = node.Find(key);
  if (pos >= 0) node.RemoveAt(pos);
}

void RedoLeafUpdate(char* page_data, Slice key, Slice value) {
  EnsureNodeFormatted(page_data);
  BTreeNode node(page_data);
  const int pos = node.Find(key);
  if (pos < 0) return;
  if (node.SetValueAt(pos, value).IsNoSpace()) {
    node.RemoveAt(pos);
    (void)node.InsertAt(node.LowerBound(key), key, value);
  }
}

Lsn IndexLogger::AppendLeaf(LogType type, TxnId txn, Page* page,
                            std::string redo, std::string undo) {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.rid.page_id = page->id();
  rec.table = table_id_;
  rec.redo = std::move(redo);
  rec.undo = std::move(undo);
  const Lsn lsn = log_->Append(rec);
  page->StampUpdate(lsn);
  return lsn;
}

Lsn IndexLogger::LeafInsert(TxnId txn, Page* page, Slice key, Slice value) {
  return AppendLeaf(LogType::kIndexLeafInsert, txn, page,
                    EncodeIndexEntry(key, value), std::string());
}

Lsn IndexLogger::LeafDelete(TxnId txn, Page* page, Slice key,
                            Slice old_value) {
  return AppendLeaf(LogType::kIndexLeafDelete, txn, page, std::string(),
                    EncodeIndexEntry(key, old_value));
}

Lsn IndexLogger::LeafUpdate(TxnId txn, Page* page, Slice key,
                            Slice new_value, Slice old_value) {
  return AppendLeaf(LogType::kIndexLeafUpdate, txn, page,
                    EncodeIndexEntry(key, new_value),
                    EncodeIndexEntry(key, old_value));
}

namespace {

std::vector<Page*> DedupPages(const std::vector<Page*>& pages) {
  std::vector<Page*> unique;
  unique.reserve(pages.size());
  for (Page* p : pages) {
    if (p != nullptr &&
        std::find(unique.begin(), unique.end(), p) == unique.end()) {
      unique.push_back(p);
    }
  }
  return unique;
}

std::vector<std::pair<PageId, std::string>> ImagesOf(
    const std::vector<Page*>& pages, PageId* max_pid) {
  std::vector<std::pair<PageId, std::string>> images;
  images.reserve(pages.size());
  for (Page* p : pages) {
    images.emplace_back(p->id(), EncodeNodeImage(p->data()));
    *max_pid = std::max(*max_pid, p->id());
  }
  return images;
}

}  // namespace

Lsn IndexLogger::Smo(const std::vector<Page*>& pages) {
  const std::vector<Page*> unique = DedupPages(pages);
  if (unique.empty()) return 0;
  PageId max_pid = 0;
  LogRecord rec;
  rec.type = LogType::kIndexSmo;
  rec.txn = kInvalidTxnId;
  rec.table = table_id_;
  rec.redo = EncodeSmoPayload(ImagesOf(unique, &max_pid));
  // rid carries the highest touched pid so the restart page-id
  // high-water-mark scan (which only looks at rid) covers every image.
  rec.rid.page_id = max_pid;
  const Lsn lsn = log_->Append(rec);
  for (Page* p : unique) p->StampUpdate(lsn);
  return lsn;
}

Lsn IndexLogger::SmoWithPartitions(
    const std::vector<Page*>& pages,
    const std::vector<std::pair<std::string, PageId>>& parts) {
  const std::vector<Page*> unique = DedupPages(pages);
  PageId max_pid = 0;
  for (const auto& [key, root] : parts) max_pid = std::max(max_pid, root);
  LogRecord rec;
  rec.type = LogType::kIndexRepartition;
  rec.txn = kInvalidTxnId;
  rec.table = table_id_;
  io::PutBytes(&rec.redo, EncodePartitionPayload(parts));
  io::PutBytes(&rec.redo, EncodeSmoPayload(ImagesOf(unique, &max_pid)));
  rec.rid.page_id = max_pid;
  const Lsn lsn = log_->Append(rec);
  for (Page* p : unique) p->StampUpdate(lsn);
  return lsn;
}

bool DecodeRepartitionPayload(
    Slice payload, std::vector<std::pair<std::string, PageId>>* parts,
    std::vector<std::pair<PageId, std::string>>* images) {
  io::Reader r(payload.data(), payload.size());
  std::string parts_payload, smo_payload;
  if (!r.Bytes(&parts_payload) || !r.Bytes(&smo_payload)) return false;
  return DecodePartitionPayload(parts_payload, parts) &&
         DecodeSmoPayload(smo_payload, images);
}

Lsn IndexLogger::PageFree(PageId id) {
  LogRecord rec;
  rec.type = LogType::kIndexPageFree;
  rec.txn = kInvalidTxnId;
  rec.rid.page_id = id;
  rec.table = table_id_;
  return log_->Append(rec);
}

Lsn IndexLogger::LogPartitionTable(
    const std::vector<std::pair<std::string, PageId>>& parts) {
  LogRecord rec;
  rec.type = LogType::kPartitionTable;
  rec.txn = kInvalidTxnId;
  rec.table = table_id_;
  rec.redo = EncodePartitionPayload(parts);
  // Root pids in the HWM-visible rid field, like Smo does.
  PageId max_pid = 0;
  for (const auto& [key, root] : parts) max_pid = std::max(max_pid, root);
  rec.rid.page_id = max_pid;
  return log_->Append(rec);
}

}  // namespace plp
