// Figure 3: page latches acquired per transaction by the different
// designs running TATP. Paper's shape: PLP-Regular removes >80% of the
// latching (all index latches); PLP-Leaf leaves only ~1% (catalog/space).
#include "bench/bench_common.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader("Page latches per transaction by design, TATP",
                     "Figure 3");
  const SystemDesign designs[] = {
      SystemDesign::kConventional, SystemDesign::kLogical,
      SystemDesign::kPlpRegular, SystemDesign::kPlpLeaf};

  std::printf("%-12s %10s %10s %14s %10s\n", "design", "INDEX", "HEAP",
              "CATALOG/SPACE", "total");
  double conventional_total = 0;
  for (SystemDesign design : designs) {
    auto engine = bench::MakeEngine(design);
    TatpConfig config;
    config.subscribers = 5000;
    config.partitions = 4;
    TatpWorkload tatp(engine.get(), config);
    if (!tatp.Load().ok()) continue;
    DriverOptions options;
    options.num_threads = 4;
    options.duration = bench::WindowMs();
    DriverResult r = RunWorkload(
        engine.get(), [&](Rng& rng) { return tatp.NextTransaction(rng); },
        options);
    const double inv = 1.0 / static_cast<double>(r.committed);
    const double total =
        static_cast<double>(r.cs_delta.TotalLatches()) * inv;
    std::printf("%-12s %10.2f %10.2f %14.2f %10.2f",
                SystemDesignName(design),
                static_cast<double>(
                    r.cs_delta.latches[static_cast<int>(PageClass::kIndex)]) *
                    inv,
                static_cast<double>(
                    r.cs_delta.latches[static_cast<int>(PageClass::kHeap)]) *
                    inv,
                static_cast<double>(r.cs_delta.latches[static_cast<int>(
                    PageClass::kCatalog)]) *
                    inv,
                total);
    if (design == SystemDesign::kConventional) {
      conventional_total = total;
      std::printf("\n");
    } else {
      std::printf("   (%.1f%% of Conv.)\n",
                  100.0 * total / conventional_total);
    }
    engine->Stop();
  }
  std::printf(
      "\nExpected shape: PLP-Reg drops INDEX latches to zero (>80%% total\n"
      "reduction); PLP-Leaf also zeroes HEAP, leaving only catalog/space.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
