#include "src/metrics/throughput_probe.h"

#include "src/common/clock.h"

namespace plp {

void ThroughputProbe::Start() {
  count_.store(0, std::memory_order_relaxed);
  start_ns_ = NowNanos();
  last_sample_ns_ = start_ns_;
  last_count_ = 0;
  samples_.clear();
}

void ThroughputProbe::SampleNow() {
  const std::uint64_t now = NowNanos();
  const std::uint64_t count = count_.load(std::memory_order_relaxed);
  const double window_s =
      static_cast<double>(now - last_sample_ns_) / 1e9;
  if (window_s <= 0) return;
  Sample s;
  s.at_seconds = static_cast<double>(now - start_ns_) / 1e9;
  s.ktps = static_cast<double>(count - last_count_) / window_s / 1000.0;
  samples_.push_back(s);
  last_sample_ns_ = now;
  last_count_ = count;
  if (window_tps_gauge_ != nullptr) {
    window_tps_gauge_->Set(static_cast<std::int64_t>(s.ktps * 1000.0));
    total_gauge_->Set(static_cast<std::int64_t>(count));
    samples_gauge_->Set(static_cast<std::int64_t>(samples_.size()));
  }
}

void ThroughputProbe::BindRegistry(MetricsRegistry* registry,
                                   const std::string& prefix) {
  window_tps_gauge_ = registry->gauge(prefix + ".window_tps");
  total_gauge_ = registry->gauge(prefix + ".total_txns");
  samples_gauge_ = registry->gauge(prefix + ".samples");
}

}  // namespace plp
