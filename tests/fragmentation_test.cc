// Fragmentation model tests (Appendix D): formulas behave per the paper
// and agree with actually-built heap files.
#include <gtest/gtest.h>

#include "src/buffer/buffer_pool.h"
#include "src/storage/fragmentation_model.h"
#include "src/storage/heap_file.h"

namespace plp {
namespace {

TEST(FragmentationModelTest, ConventionalEqualsPlpRegular) {
  FragmentationParams p;
  p.db_bytes = 100ull << 20;
  p.record_size = 100;
  p.num_partitions = 100;
  HeapPageCounts counts = ComputeHeapPageCounts(p);
  EXPECT_EQ(counts.conventional, counts.plp_regular);
}

TEST(FragmentationModelTest, PartitionOverheadShrinksWithDbSize) {
  FragmentationParams small, big;
  small.record_size = big.record_size = 100;
  small.num_partitions = big.num_partitions = 100;
  small.db_bytes = 1ull << 20;    // 1MB
  big.db_bytes = 10ull << 30;     // 10GB
  const HeapPageCounts s = ComputeHeapPageCounts(small);
  const HeapPageCounts b = ComputeHeapPageCounts(big);
  const double small_ratio = static_cast<double>(s.plp_partition) /
                             static_cast<double>(s.conventional);
  const double big_ratio = static_cast<double>(b.plp_partition) /
                           static_cast<double>(b.conventional);
  EXPECT_GT(small_ratio, big_ratio);
  EXPECT_LT(big_ratio, 1.01);  // negligible at scale (paper's conclusion)
}

TEST(FragmentationModelTest, PlpLeafHasLargestOverheadForSmallRecords) {
  FragmentationParams p;
  p.db_bytes = 1ull << 30;
  p.record_size = 100;
  p.num_partitions = 100;
  p.leaf_entries = 170;
  const HeapPageCounts counts = ComputeHeapPageCounts(p);
  const double leaf_ratio = static_cast<double>(counts.plp_leaf) /
                            static_cast<double>(counts.conventional);
  // Paper reports up to ~1.8x for 100B records; our layout gives >1.2x.
  EXPECT_GT(leaf_ratio, 1.2);
  EXPECT_LT(leaf_ratio, 2.0);
  EXPECT_GE(counts.plp_leaf, counts.plp_partition);
}

TEST(FragmentationModelTest, LargeRecordsShrinkLeafOverhead) {
  FragmentationParams small_rec, large_rec;
  small_rec.db_bytes = large_rec.db_bytes = 1ull << 30;
  small_rec.num_partitions = large_rec.num_partitions = 10;
  small_rec.record_size = 100;
  large_rec.record_size = 1000;
  const HeapPageCounts s = ComputeHeapPageCounts(small_rec);
  const HeapPageCounts l = ComputeHeapPageCounts(large_rec);
  const double ratio_small = static_cast<double>(s.plp_leaf) /
                             static_cast<double>(s.conventional);
  const double ratio_large = static_cast<double>(l.plp_leaf) /
                             static_cast<double>(l.conventional);
  EXPECT_LT(ratio_large, ratio_small);
}

TEST(FragmentationModelTest, ScanCostLinearWhileResident) {
  ScanTimeParams t;
  t.bufferpool_bytes = 4ull << 30;
  const double c1 = ScanCost(1000, t);
  const double c2 = ScanCost(2000, t);
  EXPECT_DOUBLE_EQ(c2, 2 * c1);
}

TEST(FragmentationModelTest, ScanCostJumpsWhenSpilling) {
  ScanTimeParams t;
  t.bufferpool_bytes = 4ull << 30;  // 524288 pages resident
  const std::uint64_t resident_cap = t.bufferpool_bytes / kPageSize;
  const double fits = ScanCost(resident_cap, t);
  const double spills = ScanCost(resident_cap + 1000, t);
  EXPECT_GT(spills, fits + 999 * t.io_page_cost);
}

// Model validation against real heap files.
TEST(FragmentationValidationTest, SharedHeapMatchesModel) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kShared);
  constexpr std::uint32_t kRecordSize = 100;
  constexpr std::uint64_t kRecords = 5000;
  const std::string rec(kRecordSize, 'x');
  Rid rid;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(heap.Insert(rec, &rid).ok());
  }
  FragmentationParams p;
  p.db_bytes = kRecords * kRecordSize;
  p.record_size = kRecordSize;
  const HeapPageCounts counts = ComputeHeapPageCounts(p);
  const double measured = static_cast<double>(heap.num_pages());
  const double modeled = static_cast<double>(counts.conventional);
  EXPECT_NEAR(measured / modeled, 1.0, 0.15);
}

TEST(FragmentationValidationTest, PartitionOwnedMatchesModel) {
  BufferPool pool;
  HeapFile heap(&pool, HeapMode::kPartitionOwned);
  constexpr std::uint32_t kRecordSize = 100;
  constexpr std::uint64_t kRecords = 5000;
  constexpr std::uint32_t kPartitions = 10;
  const std::string rec(kRecordSize, 'x');
  Rid rid;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(heap.InsertOwned(
        static_cast<std::uint32_t>(i % kPartitions), rec, &rid).ok());
  }
  FragmentationParams p;
  p.db_bytes = kRecords * kRecordSize;
  p.record_size = kRecordSize;
  p.num_partitions = kPartitions;
  const HeapPageCounts counts = ComputeHeapPageCounts(p);
  const double measured = static_cast<double>(heap.num_pages());
  const double modeled = static_cast<double>(counts.plp_partition);
  EXPECT_NEAR(measured / modeled, 1.0, 0.15);
}

TEST(FragmentationValidationTest, LeafOwnedUsesMorePages) {
  BufferPool pool;
  HeapFile shared(&pool, HeapMode::kShared);
  HeapFile leaf_owned(&pool, HeapMode::kLeafOwned);
  const std::string rec(100, 'x');
  Rid rid;
  constexpr std::uint64_t kRecords = 5000;
  constexpr std::uint32_t kLeafEntries = 170;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(shared.Insert(rec, &rid).ok());
    // Owner changes every kLeafEntries records, like leaf pages would.
    ASSERT_TRUE(leaf_owned.InsertOwned(
        static_cast<std::uint32_t>(i / kLeafEntries), rec, &rid).ok());
  }
  EXPECT_GT(leaf_owned.num_pages(), shared.num_pages());
}

}  // namespace
}  // namespace plp
