// Per-transaction time breakdowns (Figures 6, 7 and 10).
//
// Contention components come from the wait-time counters the latch/lock
// instrumentation records; the fixed cost of acquiring uncontended latches
// ("Latching" in the figures) is charged as count x calibrated unit cost.
#ifndef PLP_METRICS_TIME_BREAKDOWN_H_
#define PLP_METRICS_TIME_BREAKDOWN_H_

#include <cstdint>
#include <string>

#include "src/metrics/registry.h"
#include "src/sync/cs_profiler.h"

namespace plp {

struct TimeBreakdown {
  double total_us = 0;           // wall time per transaction
  double idx_latch_wait_us = 0;  // "Idx Latch Cont."
  double heap_latch_wait_us = 0; // "Heap Latch Cont."
  double latching_us = 0;        // uncontended latch acquire overhead
  double lock_wait_us = 0;       // lock manager waits
  double smo_wait_us = 0;        // folded into latch waits by the paper
  double other_us = 0;           // everything else (useful work)
};

/// Measures the cost of one uncontended latch acquire/release pair on this
/// machine (memoized after the first call).
double CalibratedLatchCostNs();

/// Builds a per-transaction breakdown from a profiler delta.
/// `wall_ns` is the total wall-clock time of the measurement window summed
/// over worker threads; `num_xcts` the transactions completed in it.
TimeBreakdown MakeTimeBreakdown(const CsCounts& delta, std::uint64_t num_xcts,
                                std::uint64_t wall_ns);

/// Fixed-width row for bench output, e.g.
///   "Conv.  16thr | total 123.4us | idx 10.2 | heap 0.0 | latch 3.1 | ..."
std::string FormatBreakdownRow(const std::string& label,
                               const TimeBreakdown& b);

/// Publishes a breakdown into registry gauges (integer microseconds under
/// `<prefix>.total_us`, `.idx_latch_wait_us`, `.heap_latch_wait_us`,
/// `.latching_us`, `.lock_wait_us`, `.smo_wait_us`, `.other_us`), so
/// GetStats() carries the last measured per-transaction breakdown.
void PublishBreakdown(MetricsRegistry* registry, const std::string& prefix,
                      const TimeBreakdown& b);

}  // namespace plp

#endif  // PLP_METRICS_TIME_BREAKDOWN_H_
