// Parameterized property sweeps over the storage layer: record sizes,
// ownership modes, and fill/drain cycles.
#include <gtest/gtest.h>

#include <tuple>

#include "src/buffer/buffer_pool.h"
#include "src/common/rng.h"
#include "src/storage/fragmentation_model.h"
#include "src/storage/heap_file.h"
#include "src/storage/slotted_page.h"

namespace plp {
namespace {

// Record-size sweep on the slotted page: fill, verify, drain, refill.
class SlottedPageSizeTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(RecordSizes, SlottedPageSizeTest,
                         ::testing::Values(8, 32, 100, 500, 1000, 4000),
                         [](const auto& info) {
                           return "Size" + std::to_string(info.param);
                         });

TEST_P(SlottedPageSizeTest, FillVerifyDrainRefill) {
  const std::size_t record_size = GetParam();
  char data[kPageSize];
  SlottedPage::Init(data);
  SlottedPage page(data);

  std::vector<SlotId> slots;
  SlotId slot;
  int seq = 0;
  auto make_record = [&](int i) {
    std::string rec(record_size, 'r');
    std::memcpy(rec.data(), &i, sizeof(i));
    return rec;
  };
  while (page.Insert(make_record(seq), &slot).ok()) {
    slots.push_back(slot);
    ++seq;
  }
  // Capacity is within one record of the analytic expectation.
  const std::size_t expected =
      (kPageSize - SlottedPage::kHeaderSize) /
      (record_size + SlottedPage::kSlotSize);
  EXPECT_NEAR(static_cast<double>(slots.size()),
              static_cast<double>(expected), 1.0);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slice rec;
    ASSERT_TRUE(page.Get(slots[i], &rec).ok());
    int stored;
    std::memcpy(&stored, rec.data(), sizeof(stored));
    EXPECT_EQ(stored, static_cast<int>(i));
  }

  for (SlotId s : slots) ASSERT_TRUE(page.Delete(s).ok());
  EXPECT_EQ(page.live_count(), 0);

  // Refill reaches the same capacity (no permanent fragmentation).
  int refill = 0;
  while (page.Insert(make_record(refill), &slot).ok()) ++refill;
  EXPECT_EQ(static_cast<std::size_t>(refill), slots.size());
}

// Ownership-mode x record-size sweep on heap files.
class HeapFileParamTest
    : public ::testing::TestWithParam<std::tuple<HeapMode, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, HeapFileParamTest,
    ::testing::Combine(::testing::Values(HeapMode::kShared,
                                         HeapMode::kPartitionOwned,
                                         HeapMode::kLeafOwned),
                       ::testing::Values(32u, 100u, 1000u)),
    [](const auto& info) {
      const char* mode =
          std::get<0>(info.param) == HeapMode::kShared ? "Shared"
          : std::get<0>(info.param) == HeapMode::kPartitionOwned
              ? "PartitionOwned"
              : "LeafOwned";
      return std::string(mode) + "_" + std::to_string(std::get<1>(info.param));
    });

TEST_P(HeapFileParamTest, InsertReadDeleteSurvivesAllModes) {
  const auto [mode, record_size] = GetParam();
  BufferPool pool;
  HeapFile heap(&pool, mode);
  Rng rng(static_cast<std::uint64_t>(record_size));

  std::vector<std::pair<Rid, std::string>> rows;
  for (int i = 0; i < 500; ++i) {
    std::string rec(record_size, static_cast<char>('a' + i % 26));
    Rid rid;
    Status st = mode == HeapMode::kShared
                    ? heap.Insert(rec, &rid)
                    : heap.InsertOwned(
                          static_cast<std::uint32_t>(i % 7), rec, &rid);
    ASSERT_TRUE(st.ok());
    rows.emplace_back(rid, std::move(rec));
  }
  for (const auto& [rid, expected] : rows) {
    std::string out;
    ASSERT_TRUE(heap.Get(rid, &out).ok());
    EXPECT_EQ(out, expected);
  }
  // Delete a random half; the rest stays intact.
  std::size_t deleted = 0;
  for (auto& [rid, expected] : rows) {
    if (rng.Percent(50)) {
      ASSERT_TRUE(heap.Delete(rid).ok());
      expected.clear();
      ++deleted;
    }
  }
  EXPECT_GT(deleted, 100u);
  for (const auto& [rid, expected] : rows) {
    std::string out;
    if (expected.empty()) {
      EXPECT_TRUE(heap.Get(rid, &out).IsNotFound());
    } else {
      ASSERT_TRUE(heap.Get(rid, &out).ok());
      EXPECT_EQ(out, expected);
    }
  }
}

TEST_P(HeapFileParamTest, ScanCountsMatchLiveRows) {
  const auto [mode, record_size] = GetParam();
  BufferPool pool;
  HeapFile heap(&pool, mode);
  constexpr int kRows = 300;
  for (int i = 0; i < kRows; ++i) {
    std::string rec(record_size, 'x');
    Rid rid;
    Status st = mode == HeapMode::kShared
                    ? heap.Insert(rec, &rid)
                    : heap.InsertOwned(
                          static_cast<std::uint32_t>(i % 3), rec, &rid);
    ASSERT_TRUE(st.ok());
  }
  int scanned = 0;
  heap.Scan([&](Rid, Slice rec) {
    EXPECT_EQ(rec.size(), record_size);
    ++scanned;
  });
  EXPECT_EQ(scanned, kRows);
}

// Fragmentation model consistency across a parameter grid.
class FragmentationGridTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Grid, FragmentationGridTest,
    ::testing::Combine(::testing::Values(1ull << 20, 100ull << 20,
                                         10ull << 30),
                       ::testing::Values(100u, 1000u)),
    [](const auto& info) {
      return "Db" + std::to_string(std::get<0>(info.param) >> 20) + "MB_Rec" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(FragmentationGridTest, InvariantOrderingHolds) {
  const auto [db_bytes, record_size] = GetParam();
  FragmentationParams p;
  p.db_bytes = db_bytes;
  p.record_size = record_size;
  p.num_partitions = 50;
  const HeapPageCounts c = ComputeHeapPageCounts(p);
  // Invariants from Appendix D: conventional == regular <= partition <=
  // leaf, and nothing is below the dense packing bound.
  EXPECT_EQ(c.conventional, c.plp_regular);
  EXPECT_GE(c.plp_partition, c.conventional);
  EXPECT_GE(c.plp_leaf, c.plp_partition);
  const std::uint64_t dense =
      (db_bytes / record_size) / RecordsPerHeapPage(p);
  EXPECT_GE(c.conventional, dense);
}

}  // namespace
}  // namespace plp
