// The partition manager (Section 3.1): owns the partition workers, routes
// actions so that every piece of data is touched by exactly one thread,
// assembles multi-partition transactions through rendezvous points, and
// quiesces workers for repartitioning.
//
// Transactions run continuation-driven: no coordinator thread blocks on a
// phase. The last action of a phase to finish (an atomic countdown on the
// worker side) harvests the phase's results and enqueues the next phase —
// or commits, or routes the compensation closures back to their owning
// workers and aborts. The submitting thread only pays Begin + the first
// phase's routing, so a handful of clients can keep thousands of
// transactions in flight.
#ifndef PLP_ENGINE_PARTITION_MANAGER_H_
#define PLP_ENGINE_PARTITION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/engine/action.h"
#include "src/engine/database.h"
#include "src/engine/txn_handle.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/mpsc_queue.h"
#include "src/sync/thread_annotations.h"

namespace plp {

/// Simple completion gate for one phase of a transaction (the rendezvous
/// point between phases).
class CountdownEvent {
 public:
  explicit CountdownEvent(int count) : remaining_(count) {}
  void Signal() {
    MutexLock g(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void Wait() {
    MutexLock lk(mu_);
    while (remaining_ != 0) lk.Wait(cv_);
  }

 private:
  Mutex mu_;
  std::condition_variable cv_;
  int remaining_ PLP_GUARDED_BY(mu_);
};

class PartitionManager {
 public:
  /// Builds the ExecContext a worker uses to run one action.
  /// `owner_uid` is the stable global uid of the partition.
  using CtxFactory = std::function<std::unique_ptr<ExecContext>(
      Table* table, PartitionId partition, std::uint32_t owner_uid,
      Transaction* txn, std::vector<std::function<Status()>>* undo_sink)>;

  PartitionManager(Database* db, int num_workers, CtxFactory factory);
  ~PartitionManager();

  void Start();
  void Stop();

  /// Registers routing for a table. Each partition gets a stable uid and a
  /// fixed worker assignment.
  void RegisterTable(Table* table, std::vector<std::string> boundaries);

  /// True when routing for `table` is already registered (durable reopens
  /// recover tables from the catalog without a CreateTable call; engines
  /// attach them at Start).
  bool HasTable(Table* table) const {
    ReaderMutexLock lk(routing_mu_);
    return routing_.count(table) > 0;
  }

  /// Replaces a table's routing (call between Quiesce/Resume). Boundaries
  /// present before keep their partition uid; new ones get fresh uids.
  void SetRouting(Table* table, std::vector<std::string> boundaries);

  /// Completion of an asynchronously submitted transaction. Runs on the
  /// worker that finishes the transaction (or on the submitting thread for
  /// a transaction with no actions).
  using CompletionFn = std::function<void(const Status&)>;

  /// Runs a transaction asynchronously: begin, dispatch each phase to the
  /// partition workers with a continuation-driven rendezvous between
  /// phases, then commit — or route compensations back to the owning
  /// workers and abort — and fire `done` with the final status.
  void Submit(TxnRequest req, CompletionFn done);

  /// Same, completing a TxnToken instead — the engine's hot path, which
  /// avoids type-erasing the (move-only) token into a CompletionFn.
  void Submit(TxnRequest req, TxnToken token);

  /// Blocking convenience over Submit (tests and simple callers).
  Status Execute(TxnRequest& req);

  /// Parks every worker (they finish in-flight actions first). Pending
  /// queue items wait until Resume.
  void Quiesce();
  void Resume();

  /// Page-cleaner delegate (Appendix A.4): routes a dirty page to its
  /// owning worker's high-priority system queue. False when the page is
  /// unowned (cleaner handles it directly).
  bool DelegateClean(PageId pid);

  /// Submits a task to a worker's high-priority system queue.
  void SubmitSystemTask(int worker, std::function<void()> task);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Routing introspection.
  PartitionId RoutePartition(Table* table, Slice key);
  std::uint32_t PartitionUid(Table* table, PartitionId p);
  std::vector<std::string> Boundaries(Table* table);
  int WorkerForUid(std::uint32_t uid);

  /// Per-partition action counts since the last ResetLoad (repartitioning
  /// decisions, Section 4.5).
  std::vector<std::uint64_t> LoadSnapshot(Table* table);
  void ResetLoad(Table* table);

  /// Stable uids start above this bit so they never collide with page ids
  /// (the cleaner distinguishes "leaf page id" tags from partition uids).
  static constexpr std::uint32_t kUidBit = 0x80000000u;

 private:
  struct Task {
    std::function<void()> fn;
  };

  struct Worker {
    MpscQueue<Task> queue;
    std::thread thread;
  };

  struct TableRouting {
    Table* table = nullptr;
    std::vector<std::string> boundaries;
    std::vector<std::uint32_t> uids;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> load;
  };

  struct TxnFlow;

  void WorkerLoop(int index);
  TableRouting* RoutingFor(Table* table) PLP_REQUIRES_SHARED(routing_mu_);

  /// Routes and enqueues the actions of flow->phase (skipping empty
  /// phases); commits when no phase remains.
  void DispatchPhase(const std::shared_ptr<TxnFlow>& flow);
  /// Runs on the worker whose action finished a phase last: harvests
  /// results/undos, then continues to the next phase or starts the abort.
  void FinishPhase(const std::shared_ptr<TxnFlow>& flow);
  /// Routes compensation closures (newest-first) to their owning workers;
  /// the last one to run logs the abort and completes the transaction.
  void StartAbort(const std::shared_ptr<TxnFlow>& flow);

  /// Fires the flow's completion (CompletionFn or TxnToken).
  static void FinishTxn(const std::shared_ptr<TxnFlow>& flow,
                        const Status& status);

  /// Counts a finished flow: total txns plus the single- vs cross-partition
  /// split (the paper's multisite ratio; Section 5).
  void TallyFlow(const TxnFlow& flow);

  Database* db_;
  CtxFactory factory_;

  // Registry metrics, cached at construction (see docs/observability.md).
  Counter* txns_metric_ = nullptr;
  Counter* single_site_metric_ = nullptr;
  Counter* cross_site_metric_ = nullptr;
  Counter* actions_metric_ = nullptr;
  Counter* phases_metric_ = nullptr;
  Counter* undo_actions_metric_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};

  mutable SharedMutex routing_mu_;
  std::unordered_map<Table*, std::unique_ptr<TableRouting>> routing_
      PLP_GUARDED_BY(routing_mu_);
  std::unordered_map<std::uint32_t, int> worker_by_uid_
      PLP_GUARDED_BY(routing_mu_);
  std::uint32_t next_uid_ PLP_GUARDED_BY(routing_mu_) = kUidBit;

  // Quiesce support.
  Mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  bool quiescing_ PLP_GUARDED_BY(quiesce_mu_) = false;
  int parked_ PLP_GUARDED_BY(quiesce_mu_) = 0;
};

}  // namespace plp

#endif  // PLP_ENGINE_PARTITION_MANAGER_H_
