#!/usr/bin/env python3
"""Validates a flight-recorder Chrome-trace export (CI gate).

Checks that the file is valid JSON in the Chrome trace-event format
Perfetto loads: a traceEvents list whose entries carry name/ph/pid/tid
(and ts for non-metadata events), with per-thread timestamps monotonic
after the exporter's sort. Optionally asserts that specific event names
are present (--require latch_wait,wal_fsync,txn_stage).

Usage: check_trace.py TRACE.json [--require name1,name2,...]
"""

import argparse
import json
import sys
from collections import Counter


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome-trace JSON file to validate")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated event names that must appear at least once",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: {args.trace}: not readable JSON: {exc}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: traceEvents missing or empty")
        return 1

    names = Counter()
    last_ts = {}
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                print(f"FAIL: event {i} missing {field!r}: {ev}")
                return 1
        if ev["ph"] == "M":  # metadata (thread names): no timestamp
            continue
        if "ts" not in ev:
            print(f"FAIL: event {i} ({ev['name']}) missing ts")
            return 1
        if ev["ph"] == "X" and "dur" not in ev:
            print(f"FAIL: complete event {i} ({ev['name']}) missing dur")
            return 1
        names[ev["name"]] += 1
        key = (ev["pid"], ev["tid"])
        if ev["ts"] < last_ts.get(key, float("-inf")):
            print(
                f"FAIL: event {i} ({ev['name']}) ts {ev['ts']} goes backwards "
                f"on thread {key}"
            )
            return 1
        last_ts[key] = ev["ts"]

    missing = [
        n for n in args.require.split(",") if n and names.get(n, 0) == 0
    ]
    if missing:
        print(f"FAIL: required event types absent: {', '.join(missing)}")
        print(f"      present: {dict(names)}")
        return 1

    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    total = sum(names.values())
    print(
        f"OK: {total} events across {len(last_ts)} threads, "
        f"{len(names)} event types, dropped={dropped}"
    )
    for name, count in names.most_common():
        print(f"  {name:<18} {count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
