// Figure 2: page-latch breakdown by page type (index / heap / catalog)
// for TATP, TPC-B and TPC-C running on the conventional system. The
// paper's shape: 60-80% of latches land on index pages, nearly all the
// rest on heap pages.
#include "bench/bench_common.h"
#include "src/workload/tatp.h"
#include "src/workload/tpcb.h"
#include "src/workload/tpcc.h"

namespace plp {
namespace {

void PrintRow(const char* label, const DriverResult& r) {
  const double total = static_cast<double>(r.cs_delta.TotalLatches());
  if (total == 0 || r.committed == 0) return;
  std::printf("%-8s", label);
  for (int c = 0; c < kNumPageClasses; ++c) {
    const double n = static_cast<double>(r.cs_delta.latches[c]);
    std::printf("  %-13s %6.1f%% (%7.2f/txn)",
                PageClassName(static_cast<PageClass>(c)), 100.0 * n / total,
                n / static_cast<double>(r.committed));
  }
  std::printf("\n");
}

void Run() {
  bench::PrintHeader("Page latches by page type, conventional system",
                     "Figure 2");
  DriverOptions options;
  options.num_threads = 4;
  options.duration = bench::WindowMs();

  {
    auto engine = bench::MakeEngine(SystemDesign::kConventional);
    TatpConfig config;
    config.subscribers = 5000;
    config.partitions = 4;
    TatpWorkload tatp(engine.get(), config);
    if (tatp.Load().ok()) {
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return tatp.NextTransaction(rng); },
          options);
      PrintRow("TATP", r);
    }
    engine->Stop();
  }
  {
    auto engine = bench::MakeEngine(SystemDesign::kConventional);
    TpcbConfig config;
    config.branches = 16;
    config.tellers_per_branch = 10;
    config.accounts_per_branch = 500;
    config.partitions = 4;
    TpcbWorkload tpcb(engine.get(), config);
    if (tpcb.Load().ok()) {
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return tpcb.NextTransaction(rng); },
          options);
      PrintRow("TPC-B", r);
    }
    engine->Stop();
  }
  {
    auto engine = bench::MakeEngine(SystemDesign::kConventional);
    TpccConfig config;
    config.warehouses = 4;
    config.items = 500;
    config.customers_per_district = 50;
    config.partitions = 4;
    TpccWorkload tpcc(engine.get(), config);
    if (tpcc.Load().ok()) {
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return tpcc.NextTransaction(rng); },
          options);
      PrintRow("TPC-C", r);
    }
    engine->Stop();
  }
  std::printf(
      "\nExpected shape: INDEX pages take the majority of latches\n"
      "(paper: 60-80%%), HEAP pages most of the remainder.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
