// Engine-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms behind lock-free record paths.
//
// The concurrency discipline follows CsProfiler: every mutation on a hot
// path is a single relaxed fetch_add on a cache-local atomic cell, so the
// instrumentation is TSan-clean and costs one uncontended RMW. Readers
// (Snapshot/Reset) sum or zero the cells with relaxed loads/stores; because
// writers use fetch_add rather than load+store pairs, a concurrent Reset
// can never resurrect pre-reset values — at worst a snapshot taken mid-add
// misses in-flight increments, which the next snapshot picks up.
//
// Registration (counter()/gauge()/histogram() lookups) takes a mutex and is
// expected to happen once at subsystem construction; subsystems cache the
// returned pointers, which stay valid for the registry's lifetime.
//
// Subsystems constructed without a registry (standalone unit tests) are
// handed metrics from MetricsRegistry::Scratch(), a process-wide sink that
// is never snapshotted: the instrumented code keeps its unconditional
// relaxed-add path with no per-record null checks or branches.
#ifndef PLP_METRICS_REGISTRY_H_
#define PLP_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

namespace internal {
/// Stable small integer for the calling thread, used to spread writers
/// across counter cells. Threads are assigned round-robin on first use, so
/// the common bench shapes (a handful of workers) land on distinct cells.
std::size_t MetricThreadSlot();
}  // namespace internal

/// Monotonic counter, sharded across cache-line-sized cells.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  void Add(std::uint64_t by) {
    cells_[internal::MetricThreadSlot() % kCells].v.fetch_add(
        by, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kCells];
};

/// Point-in-time signed value. Set() is for single-updater gauges (a probe
/// publishing its last window); Add()/Sub() keep multi-updater level gauges
/// reset-safe the same way Counter is.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t by) { value_.fetch_add(by, std::memory_order_relaxed); }
  void Sub(std::int64_t by) { Add(-by); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2 bucket count shared by Histogram and HistogramSummary: bucket i
/// holds values of bit-width i, so 65 buckets cover the full uint64 range.
inline constexpr std::size_t kHistogramBuckets = 65;

struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  /// Percentile estimates: upper bound of the log2 bucket the rank lands
  /// in, clamped to the observed max. Exact to within 2x, which is all a
  /// latency distribution needs.
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  /// Merged bucket counts, carried so summaries can be subtracted
  /// (StatsSnapshot::DeltaSince) with percentiles recomputed for the
  /// window. Not serialized by ToText/ToJson.
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Bucket-wise difference `*this - base` with percentiles recomputed
  /// from the window's buckets. `max` is approximated as the smaller of
  /// this->max and the highest nonzero delta bucket's ceiling (the true
  /// window max is not recoverable from cumulative state).
  HistogramSummary DeltaSince(const HistogramSummary& base) const;
};

/// Log2-bucketed histogram (64 buckets cover the full uint64 range),
/// striped so concurrent recorders touch disjoint cache lines. Record is
/// three relaxed fetch_adds plus a CAS loop for the max (which almost
/// always short-circuits after one relaxed load).
class Histogram {
 public:
  static constexpr std::size_t kStripes = 8;
  static constexpr std::size_t kBuckets = kHistogramBuckets;

  void Record(std::uint64_t value);
  HistogramSummary Collect() const;
  void Reset();

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> buckets[kBuckets];
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  Stripe stripes_[kStripes];
};

/// Structured result of MetricsRegistry::Snapshot(): three sorted name ->
/// value maps plus text/JSON serializers shared by Engine::GetStats()
/// consumers, the benches, and the background reporter.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  std::int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
  const HistogramSummary* histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }

  /// Exact per-window deltas: counters and histogram buckets subtracted
  /// (clamped at zero if `base` is newer or a Reset intervened — the
  /// current cumulative value is reported then), gauges passed through
  /// as levels, histogram percentiles recomputed from the window's
  /// buckets. Replaces the Reset-between-windows pattern, which races
  /// in-flight increments by design.
  StatsSnapshot DeltaSince(const StatsSnapshot& base) const;

  /// Human-readable table, one metric per line, with a ranked
  /// "contended latch sites" section when contention.* gauges (published
  /// by the flight recorder through the Database gauge provider) are
  /// present.
  std::string ToText() const;
  /// Single JSON object: counters/gauges as numbers, histograms as
  /// {"count","sum","max","p50","p95","p99"} objects. Keys are sorted.
  std::string ToJson() const;
};

/// Sink handed to gauge providers at snapshot time.
using GaugeSink =
    std::function<void(const std::string& name, std::int64_t value)>;
/// Callback producing dynamically named gauges (per-partition loads, queue
/// depths) evaluated at each Snapshot(). Must not re-enter the registry.
using GaugeProvider = std::function<void(const GaugeSink&)>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. Returned pointers are stable for the registry's
  /// lifetime; cache them at construction, never on a hot path.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Dynamic gauges: `fn` runs inside Snapshot() and emits name/value
  /// pairs. `token` identifies the registration for Unregister (use the
  /// owning object's address). Providers must outlive their registration.
  void RegisterGaugeProvider(const void* token, GaugeProvider fn);
  void UnregisterGaugeProvider(const void* token);

  StatsSnapshot Snapshot() const;
  /// Zeroes counters, gauges, and histograms (provider-backed gauges are
  /// unaffected: they re-evaluate at the next snapshot). Safe to run while
  /// writers are recording; see the header comment for the guarantee.
  void Reset();

  /// Process-wide null sink for subsystems constructed without a registry;
  /// never snapshotted, so recording into it is pure (cheap) overhead.
  static MetricsRegistry* Scratch();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PLP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PLP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PLP_GUARDED_BY(mu_);
  std::vector<std::pair<const void*, GaugeProvider>> providers_
      PLP_GUARDED_BY(mu_);
};

}  // namespace plp

#endif  // PLP_METRICS_REGISTRY_H_
