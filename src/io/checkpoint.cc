#include "src/io/checkpoint.h"

#include "src/io/codec.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace plp {

using io::PutU32;
using io::PutU64;
using io::PutBytes;
using io::Reader;

std::string CheckpointImage::Encode() const {
  std::string out;
  PutU64(&out, begin_lsn);
  PutU32(&out, static_cast<std::uint32_t>(dirty_pages.size()));
  for (const auto& [pid, lsn] : dirty_pages) {
    PutU32(&out, pid);
    PutU64(&out, lsn);
  }
  PutU32(&out, static_cast<std::uint32_t>(active_txns.size()));
  for (const auto& [txn, lsn] : active_txns) {
    PutU64(&out, txn);
    PutU64(&out, lsn);
  }
  PutU64(&out, next_txn_id);
  PutU32(&out, next_page_id);
  PutU32(&out, static_cast<std::uint32_t>(tables.size()));
  for (const TableSnapshot& t : tables) {
    PutU32(&out, t.table_id);
    PutU32(&out, static_cast<std::uint32_t>(t.entries.size()));
    for (const auto& [k, v] : t.entries) {
      PutBytes(&out, k);
      PutBytes(&out, v);
    }
  }
  PutU32(&out, static_cast<std::uint32_t>(partitions.size()));
  for (const TablePartitions& t : partitions) {
    PutU32(&out, t.table_id);
    PutU32(&out, static_cast<std::uint32_t>(t.parts.size()));
    for (const auto& [key, root] : t.parts) {
      PutBytes(&out, key);
      PutU32(&out, root);
    }
  }
  return out;
}

Status CheckpointImage::Decode(const std::string& payload,
                               CheckpointImage* out) {
  Reader r(payload.data(), payload.size());
  CheckpointImage img;
  std::uint32_t n;
  if (!r.U64(&img.begin_lsn)) return Status::Corruption("checkpoint: begin");
  if (!r.U32(&n)) return Status::Corruption("checkpoint: dpt count");
  img.dirty_pages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t pid;
    std::uint64_t lsn;
    if (!r.U32(&pid) || !r.U64(&lsn)) {
      return Status::Corruption("checkpoint: dpt entry");
    }
    img.dirty_pages.emplace_back(pid, lsn);
  }
  if (!r.U32(&n)) return Status::Corruption("checkpoint: txn count");
  img.active_txns.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t txn, lsn;
    if (!r.U64(&txn) || !r.U64(&lsn)) {
      return Status::Corruption("checkpoint: txn entry");
    }
    img.active_txns.emplace_back(txn, lsn);
  }
  if (!r.U64(&img.next_txn_id)) {
    return Status::Corruption("checkpoint: next txn id");
  }
  if (!r.U32(&img.next_page_id)) {
    return Status::Corruption("checkpoint: next page id");
  }
  if (!r.U32(&n)) return Status::Corruption("checkpoint: table count");
  img.tables.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TableSnapshot t;
    std::uint32_t entries;
    if (!r.U32(&t.table_id) || !r.U32(&entries)) {
      return Status::Corruption("checkpoint: table header");
    }
    t.entries.reserve(entries);
    for (std::uint32_t j = 0; j < entries; ++j) {
      std::string k, v;
      if (!r.Bytes(&k) || !r.Bytes(&v)) {
        return Status::Corruption("checkpoint: index entry");
      }
      t.entries.emplace_back(std::move(k), std::move(v));
    }
    img.tables.push_back(std::move(t));
  }
  if (!r.U32(&n)) return Status::Corruption("checkpoint: partition count");
  img.partitions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TablePartitions t;
    std::uint32_t parts;
    if (!r.U32(&t.table_id) || !r.U32(&parts)) {
      return Status::Corruption("checkpoint: partition header");
    }
    t.parts.reserve(parts);
    for (std::uint32_t j = 0; j < parts; ++j) {
      std::string key;
      std::uint32_t root;
      if (!r.Bytes(&key) || !r.U32(&root)) {
        return Status::Corruption("checkpoint: partition entry");
      }
      t.parts.emplace_back(std::move(key), root);
    }
    img.partitions.push_back(std::move(t));
  }
  *out = std::move(img);
  return Status::OK();
}

Lsn CheckpointImage::ScanStart(Lsn checkpoint_lsn) const {
  // A page dirtied (or txn begun) after begin_lsn may be missing from the
  // tables, so the scan can never start later than begin_lsn.
  Lsn start = std::min(checkpoint_lsn, begin_lsn > 0 ? begin_lsn
                                                     : checkpoint_lsn);
  for (const auto& [pid, lsn] : dirty_pages) start = std::min(start, lsn);
  for (const auto& [txn, lsn] : active_txns) {
    if (lsn != kInvalidLsn) start = std::min(start, lsn);
  }
  return start;
}

Status WriteMasterRecord(const std::string& path, Lsn checkpoint_lsn) {
  std::string blob;
  PutU32(&blob, 0x504c504d);  // "PLPM"
  PutU64(&blob, checkpoint_lsn);
  return io::AtomicWriteFile(path, blob);
}

Status ReadMasterRecord(const std::string& path, Lsn* checkpoint_lsn) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no master record");
  std::uint32_t magic = 0;
  Lsn lsn = 0;
  const bool ok =
      std::fread(&magic, 4, 1, f) == 1 && std::fread(&lsn, 8, 1, f) == 1;
  std::fclose(f);
  if (!ok || magic != 0x504c504d) {
    return Status::Corruption("bad master record " + path);
  }
  *checkpoint_lsn = lsn;
  return Status::OK();
}

}  // namespace plp
