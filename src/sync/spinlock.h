// Test-and-test-and-set spinlock for very short critical sections.
#ifndef PLP_SYNC_SPINLOCK_H_
#define PLP_SYNC_SPINLOCK_H_

#include <atomic>

namespace plp {

/// TTAS spinlock. Satisfies Lockable, so std::lock_guard works.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace plp

#endif  // PLP_SYNC_SPINLOCK_H_
