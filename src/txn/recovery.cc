#include "src/txn/recovery.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/storage/slotted_page.h"

namespace plp {

std::string RecoveryManager::EncodeIndexOp(Slice key, Slice value) {
  std::string out;
  const std::uint16_t klen = static_cast<std::uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
  return out;
}

void RecoveryManager::DecodeIndexOp(Slice payload, std::string* key,
                                    std::string* value) {
  std::uint16_t klen;
  std::memcpy(&klen, payload.data(), 2);
  key->assign(payload.data() + 2, klen);
  value->assign(payload.data() + 2 + klen, payload.size() - 2 - klen);
}

Status RecoveryManager::Recover(BTree* index, Stats* stats) {
  Stats local;

  // Pass 1: analysis.
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> seen;
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn, const LogRecord& rec) {
    seen.insert(rec.txn);
    if (rec.type == LogType::kCommit) winners.insert(rec.txn);
  }));
  local.winners = winners.size();
  local.losers = seen.size() - winners.size();

  // Pass 2: redo heap history; collect loser ops for undo; replay winner
  // index ops logically.
  struct LoserOp {
    LogType type;
    Rid rid;
    std::string undo;
  };
  std::vector<LoserOp> loser_ops;

  auto heap_page = [&](PageId pid) {
    Page* page = pool_->NewPageWithId(pid, PageClass::kHeap);
    // Freshly materialized frames are zeroed; format them once.
    SlottedPage sp(page->data());
    if (sp.slot_count() == 0 && sp.ContiguousFreeSpace() == 0) {
      SlottedPage::Init(page->data());
    }
    return page;
  };

  Status replay_status = Status::OK();
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn, const LogRecord& rec) {
    if (!replay_status.ok()) return;
    switch (rec.type) {
      case LogType::kHeapInsert:
      case LogType::kHeapUpdate: {
        Page* page = heap_page(rec.rid.page_id);
        replay_status = SlottedPage(page->data()).PutAt(rec.rid.slot, rec.redo);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kHeapDelete: {
        Page* page = heap_page(rec.rid.page_id);
        // Idempotent: deleting an already-free slot is fine.
        (void)SlottedPage(page->data()).Delete(rec.rid.slot);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kIndexInsert:
      case LogType::kIndexDelete: {
        if (index != nullptr && winners.count(rec.txn) > 0) {
          std::string key, value;
          DecodeIndexOp(rec.redo.empty() ? rec.undo : rec.redo, &key, &value);
          if (rec.type == LogType::kIndexInsert) {
            Status st = index->Insert(key, value);
            if (st.IsAlreadyExists()) st = index->Update(key, value);
            replay_status = st;
          } else {
            Status st = index->Delete(key);
            if (!st.IsNotFound()) replay_status = st;
          }
          local.index_ops++;
        }
        break;
      }
      default:
        break;
    }
    if (replay_status.ok() && winners.count(rec.txn) == 0) {
      switch (rec.type) {
        case LogType::kHeapInsert:
        case LogType::kHeapUpdate:
        case LogType::kHeapDelete:
          loser_ops.push_back({rec.type, rec.rid, rec.undo});
          break;
        default:
          break;
      }
    }
  }));
  PLP_RETURN_IF_ERROR(replay_status);

  // Pass 3: undo losers newest-first.
  for (auto it = loser_ops.rbegin(); it != loser_ops.rend(); ++it) {
    Page* page = heap_page(it->rid.page_id);
    SlottedPage sp(page->data());
    switch (it->type) {
      case LogType::kHeapInsert:
        (void)sp.Delete(it->rid.slot);
        break;
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete:
        PLP_RETURN_IF_ERROR(sp.PutAt(it->rid.slot, it->undo));
        break;
      default:
        break;
    }
    page->MarkDirty();
    local.undo_ops++;
  }

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace plp
