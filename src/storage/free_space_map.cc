#include "src/storage/free_space_map.h"

namespace plp {

PageId FreeSpaceMap::FindPageWith(std::size_t need) {
  TrackedMutexLock g(mu_);
  for (const auto& [id, free] : free_bytes_) {
    if (free >= need) return id;
  }
  return kInvalidPageId;
}

void FreeSpaceMap::Update(PageId id, std::size_t free_bytes) {
  TrackedMutexLock g(mu_);
  free_bytes_[id] = free_bytes;
}

void FreeSpaceMap::Remove(PageId id) {
  TrackedMutexLock g(mu_);
  free_bytes_.erase(id);
}

std::size_t FreeSpaceMap::num_tracked() {
  TrackedMutexLock g(mu_);
  return free_bytes_.size();
}

}  // namespace plp
