// Tests for the buffer pool and page cleaner.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/page_cleaner.h"
#include "src/io/disk_manager.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

TEST(BufferPoolTest, NewPageAssignsUniqueIds) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  Page* b = pool.NewPage(PageClass::kIndex);
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(pool.num_pages(), 2u);
  EXPECT_EQ(a->page_class(), PageClass::kHeap);
  EXPECT_EQ(b->page_class(), PageClass::kIndex);
}

TEST(BufferPoolTest, FixReturnsSameFrame) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  EXPECT_EQ(pool.Fix(a->id()), a);
  EXPECT_EQ(pool.FixUnlocked(a->id()), a);
}

TEST(BufferPoolTest, FixUnknownIdReturnsNull) {
  BufferPool pool;
  EXPECT_EQ(pool.Fix(999), nullptr);
  EXPECT_EQ(pool.Fix(kInvalidPageId), nullptr);
}

TEST(BufferPoolTest, FreePageRemovesFrame) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  const PageId id = a->id();
  pool.FreePage(id);
  EXPECT_EQ(pool.Fix(id), nullptr);
  EXPECT_EQ(pool.num_pages(), 0u);
}

TEST(BufferPoolTest, NewPageWithIdIsIdempotentAndBumpsAllocator) {
  BufferPool pool;
  Page* p = pool.NewPageWithId(100, PageClass::kHeap);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id(), 100u);
  EXPECT_EQ(pool.NewPageWithId(100, PageClass::kHeap), p);
  // Fresh allocations must not collide with the recovered id.
  Page* fresh = pool.NewPage(PageClass::kHeap);
  EXPECT_GT(fresh->id(), 100u);
}

TEST(BufferPoolTest, DirtyPageTracking) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  Page* b = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  (void)b;
  std::vector<PageId> dirty = pool.DirtyPages(10);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], a->id());
}

TEST(BufferPoolTest, ResidentFixRecordsNoBufferPoolCs) {
  // The resident path resolves through the lock-free directory: a hit —
  // tracked or not — never enters a buffer-pool critical section. Only
  // the miss path (page-in, eviction) takes the shard mutex.
  CsProfiler::Global().Reset();
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  CsCounts before = CsProfiler::Global().Collect();
  pool.Fix(a->id());
  CsCounts delta = CsProfiler::Global().Collect() - before;
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kBufferPool)], 0u);
  before = CsProfiler::Global().Collect();
  pool.FixUnlocked(a->id());
  delta = CsProfiler::Global().Collect() - before;
  EXPECT_EQ(delta.entries[static_cast<int>(CsCategory::kBufferPool)], 0u);
}

TEST(BufferPoolTest, ConcurrentAllocation) {
  BufferPool pool;
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) pool.NewPage(PageClass::kHeap);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.num_pages(), static_cast<std::size_t>(kThreads) * kEach);
}

TEST(PageCleanerTest, CleansDirtyPagesDirectly) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  PageCleaner cleaner(&pool);
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  EXPECT_FALSE(a->dirty());
}

TEST(PageCleanerTest, DelegateReceivesOwnedPages) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  a->MarkDirty();
  std::vector<PageId> delegated;
  PageCleaner cleaner(&pool, [&](PageId id) {
    delegated.push_back(id);
    return true;
  });
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  ASSERT_EQ(delegated.size(), 1u);
  EXPECT_EQ(delegated[0], a->id());
  // Delegated pages are cleaned by the owner, not the cleaner.
  EXPECT_TRUE(a->dirty());
}

TEST(PageCleanerTest, DeclinedDelegationFallsBackToDirectClean) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kCatalog);
  a->MarkDirty();
  PageCleaner cleaner(&pool, [](PageId) { return false; });
  EXPECT_EQ(cleaner.RunOnce(), 1u);
  EXPECT_FALSE(a->dirty());
}

// Persistent-index mode: index-class frames are eviction candidates and
// read back from disk with class and content intact, under concurrent
// mixed fix/allocate load (the eviction-vs-pin races the pins must win).
TEST(BufferPoolTest, IndexFramesEvictUnderLoadAndReadBack) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("plp_bp_index_evict_" + std::to_string(::getpid()) +
                     ".db");
  std::filesystem::remove(path);
  std::unique_ptr<DiskManager> disk;
  ASSERT_TRUE(DiskManager::Open(path.string(), &disk).ok());

  BufferPoolConfig config;
  config.frame_budget = 8;
  config.disk = disk.get();
  config.persist_index_pages = true;
  BufferPool pool(config);

  constexpr int kPages = 48;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    PageRef page = pool.AllocatePage(PageClass::kIndex, UINT32_MAX);
    std::memset(page->data(), 'a' + (i % 26), kPageSize);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  // Far more index pages than frames: evictions must have happened.
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_GT(pool.disk_writes(), 0u);
  EXPECT_LE(pool.num_pages(), static_cast<std::size_t>(kPages));

  // Concurrent readers re-fix random pages (forcing read-through and more
  // evictions) while verifying every byte pattern and the page class.
  constexpr int kThreads = 4, kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const int i = (t * 31 + it * 7) % kPages;
        PageRef page = pool.AcquirePage(ids[static_cast<std::size_t>(i)],
                                        /*tracked=*/true);
        if (!page || page->page_class() != PageClass::kIndex ||
            page->data()[0] != static_cast<char>('a' + (i % 26)) ||
            page->data()[kPageSize - 1] != static_cast<char>('a' + (i % 26))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(pool.disk_reads(), 0u);
  std::filesystem::remove(path);
}

// Legacy snapshot mode keeps index frames resident: only heap frames are
// clock candidates.
TEST(BufferPoolTest, IndexFramesStayResidentWithoutPersistIndex) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("plp_bp_index_resident_" + std::to_string(::getpid()) +
                     ".db");
  std::filesystem::remove(path);
  std::unique_ptr<DiskManager> disk;
  ASSERT_TRUE(DiskManager::Open(path.string(), &disk).ok());

  BufferPoolConfig config;
  config.frame_budget = 4;
  config.disk = disk.get();
  BufferPool pool(config);

  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) {
    PageRef page = pool.AllocatePage(PageClass::kIndex, UINT32_MAX);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  for (PageId id : ids) {
    EXPECT_NE(pool.Fix(id), nullptr) << "index frame was evicted";
  }
  EXPECT_EQ(pool.evictions(), 0u);
  std::filesystem::remove(path);
}

TEST(PageTest, OwnerTagDefaultsUnowned) {
  BufferPool pool;
  Page* a = pool.NewPage(PageClass::kHeap);
  EXPECT_EQ(a->owner_tag(), UINT32_MAX);
  a->set_owner_tag(7);
  EXPECT_EQ(a->owner_tag(), 7u);
}

TEST(PinGuardTest, PairsPinAcrossScopesAndMoves) {
  BufferPool pool;
  Page* p = pool.NewPage(PageClass::kHeap);
  {
    PinGuard outer(p);
    EXPECT_EQ(p->pin_count(), 1);
    {
      PinGuard moved(std::move(outer));
      EXPECT_EQ(p->pin_count(), 1);  // move transfers, never double-pins
    }
    EXPECT_EQ(p->pin_count(), 0);  // moved-from guard releases nothing
  }
  EXPECT_EQ(p->pin_count(), 0);
}

// Debug builds trap an unpaired Page::Pin at pool teardown — a leaked
// pin in a live pool silently makes the frame unevictable forever, so
// ~BufferPool asserts every frame has pinned-to-zero.
TEST(PinGuardDeathTest, LeakedPinTrapsAtTeardownInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "pin-discipline trap compiles out in NDEBUG builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        BufferPool victim;
        victim.NewPage(PageClass::kHeap)->Pin();  // deliberately leaked
      },
      "leaked pin at BufferPool teardown");
  // The trap also dumps the flight-recorder black box to stderr before
  // aborting, so the post-mortem carries the recent event history.
  // (Separate EXPECT_DEATH: the gtest matcher's `.` never spans lines.)
  EXPECT_DEATH(
      {
        BufferPool victim;
        victim.NewPage(PageClass::kHeap)->Pin();
      },
      "PLP FLIGHT RECORDER BLACK BOX");
#endif
}

}  // namespace
}  // namespace plp
