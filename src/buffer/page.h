// A buffer-pool page frame: 8KB of data plus an instrumented latch.
#ifndef PLP_BUFFER_PAGE_H_
#define PLP_BUFFER_PAGE_H_

#include <atomic>
#include <cstring>

#include "src/common/types.h"
#include "src/sync/latch.h"

namespace plp {

/// A page frame. The latch is tagged with the page class so every
/// acquisition lands in the right bucket of the latch breakdown (Figure 2).
class Page {
 public:
  Page(PageId id, PageClass page_class)
      : id_(id), page_class_(page_class), latch_(page_class) {
    std::memset(data_, 0, kPageSize);
  }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  PageId id() const { return id_; }
  PageClass page_class() const { return page_class_; }

  char* data() { return data_; }
  const char* data() const { return data_; }

  Latch& latch() { return latch_; }

  bool dirty() const { return dirty_.load(std::memory_order_relaxed); }
  void MarkDirty() { dirty_.store(true, std::memory_order_relaxed); }
  void MarkClean() {
    dirty_.store(false, std::memory_order_relaxed);
    rec_lsn_.store(0, std::memory_order_relaxed);
  }

  /// Page LSN of the last update (recovery uses it for idempotent redo).
  Lsn page_lsn() const { return page_lsn_.load(std::memory_order_relaxed); }
  void set_page_lsn(Lsn lsn) {
    page_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Recovery LSN: the first update since the page was last clean (the
  /// dirty-page-table entry of a fuzzy checkpoint). 0 while clean.
  Lsn rec_lsn() const { return rec_lsn_.load(std::memory_order_relaxed); }

  /// Re-dirties the frame with a saved recovery LSN after a failed
  /// write-back undoes a tentative MarkClean (eviction). A direct store:
  /// it must also overwrite a rec_lsn that a racing StampUpdate CAS'd in
  /// while the frame was tentatively clean, or the dirty interval that
  /// the failed write left unflushed would no longer be covered.
  void RestoreDirty(Lsn saved_rec_lsn) {
    rec_lsn_.store(saved_rec_lsn, std::memory_order_relaxed);
    dirty_.store(true, std::memory_order_relaxed);
  }

  /// Records a logged update at `lsn`: advances page_lsn, pins rec_lsn to
  /// the first update of the current dirty interval.
  void StampUpdate(Lsn lsn) {
    page_lsn_.store(lsn, std::memory_order_relaxed);
    Lsn expected = 0;
    rec_lsn_.compare_exchange_strong(expected, lsn,
                                     std::memory_order_relaxed);
    dirty_.store(true, std::memory_order_relaxed);
  }

  /// Pin accounting: a pinned frame is never evicted. Fix paths pin when
  /// the pool runs with a frame budget; PageRef releases.
  void Pin() { pin_count_.fetch_add(1, std::memory_order_acq_rel); }
  void Unpin() { pin_count_.fetch_sub(1, std::memory_order_acq_rel); }
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }

  /// Clock-sweep reference bit (second chance).
  bool TestAndClearRef() { return ref_.exchange(false, std::memory_order_relaxed); }
  void SetRef() { ref_.store(true, std::memory_order_relaxed); }

  /// Which heap file (table) allocated this page; persisted in the on-disk
  /// slot header so page lists can be rebuilt at restart. UINT32_MAX for
  /// index/catalog pages.
  std::uint32_t table_tag() const {
    return table_tag_.load(std::memory_order_relaxed);
  }
  void set_table_tag(std::uint32_t tag) {
    table_tag_.store(tag, std::memory_order_relaxed);
  }

  /// Frame-level owner tag: which global partition uid owns this page
  /// (UINT32_MAX = unowned). The page cleaner uses it to delegate cleaning
  /// to partition workers (Appendix A.4).
  std::uint32_t owner_tag() const {
    return owner_tag_.load(std::memory_order_relaxed);
  }
  void set_owner_tag(std::uint32_t tag) {
    owner_tag_.store(tag, std::memory_order_relaxed);
  }

  /// Index page of an unlogged (volatile secondary) tree: rebuilt from
  /// scratch on reopen, so a write-back that allocates it a disk slot
  /// leaks that slot (tracked by buffer_pool.leaked_index_slots). Set once
  /// at allocation; never persisted.
  bool volatile_index() const {
    return volatile_index_.load(std::memory_order_relaxed);
  }
  void set_volatile_index(bool v) {
    volatile_index_.store(v, std::memory_order_relaxed);
  }

 private:
  const PageId id_;
  const PageClass page_class_;
  Latch latch_;
  std::atomic<bool> dirty_{false};
  std::atomic<Lsn> page_lsn_{0};
  std::atomic<Lsn> rec_lsn_{0};
  std::atomic<int> pin_count_{0};
  std::atomic<bool> ref_{false};
  std::atomic<std::uint32_t> owner_tag_{UINT32_MAX};
  std::atomic<std::uint32_t> table_tag_{UINT32_MAX};
  std::atomic<bool> volatile_index_{false};
  alignas(64) char data_[kPageSize];
};

}  // namespace plp

#endif  // PLP_BUFFER_PAGE_H_
