// Tests for the flight recorder: ring wraparound accounting, seqlock
// torn-read rejection under concurrent collection (the TSan stress), the
// Chrome-trace export shape, contention attribution, and the
// async-signal-safe black-box dump.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/metrics/flight_recorder.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"

namespace plp {
namespace {

std::uint64_t CountMarkers(const std::vector<CollectedEvent>& events) {
  std::uint64_t n = 0;
  for (const CollectedEvent& ev : events) {
    if (ev.type == TraceEventType::kMarker) ++n;
  }
  return n;
}

TEST(FlightRecorderTest, EmitThenCollectRoundTrips) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  const std::uint64_t t0 = NowNanos();
  FlightRecorder::Emit(TraceEventType::kMarker, t0, 123, 7, 9);
  const std::vector<CollectedEvent> events = fr.Collect();
  ASSERT_EQ(CountMarkers(events), 1u);
  for (const CollectedEvent& ev : events) {
    if (ev.type != TraceEventType::kMarker) continue;
    EXPECT_EQ(ev.ts_ns, t0);
    EXPECT_EQ(ev.dur_ns, 123u);
    EXPECT_EQ(ev.arg0, 7u);
    EXPECT_EQ(ev.arg1, 9u);
    EXPECT_NE(ev.tid, 0u);
  }
}

TEST(FlightRecorderTest, DisabledRecorderEmitsNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  fr.SetEnabled(false);
  FlightRecorder::Emit(TraceEventType::kMarker, NowNanos(), 0, 1, 2);
  EXPECT_EQ(CountMarkers(fr.Collect()), 0u);
  fr.SetEnabled(true);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestAndCountsDrops) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  constexpr std::uint64_t kExtra = 100;
  const std::uint64_t total = FlightRecorder::kRingSlots + kExtra;
  for (std::uint64_t i = 0; i < total; ++i) {
    FlightRecorder::Emit(TraceEventType::kMarker, NowNanos(), 0, i, 0);
  }
  const std::vector<CollectedEvent> events = fr.Collect();
  // Exactly one ring's worth survives; the overwritten ones are counted.
  EXPECT_EQ(CountMarkers(events), FlightRecorder::kRingSlots);
  EXPECT_GE(fr.dropped_events(), kExtra);
  // What survives is the newest window: every arg0 in [kExtra, total).
  std::uint64_t min_arg = total;
  for (const CollectedEvent& ev : events) {
    if (ev.type == TraceEventType::kMarker) {
      min_arg = std::min(min_arg, ev.arg0);
    }
  }
  EXPECT_EQ(min_arg, kExtra);
}

// The seqlock guarantee: a reader racing a wrapping writer never observes a
// torn slot — it either gets a consistent event or skips it. Markers carry
// arg1 = ~arg0 so any mixed-generation read is detectable. Run under TSan
// (build-tsan) this is also the data-race proof for the relaxed protocol.
TEST(FlightRecorderTest, CollectUnderConcurrentWrapIsNeverTorn) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      FlightRecorder::Emit(TraceEventType::kMarker, NowNanos(), i, i, ~i);
      ++i;
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  std::uint64_t validated = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const CollectedEvent& ev : fr.Collect()) {
      if (ev.type != TraceEventType::kMarker) continue;
      ASSERT_EQ(ev.arg1, ~ev.arg0)
          << "torn read: arg0=" << ev.arg0 << " arg1=" << ev.arg1;
      ASSERT_EQ(ev.dur_ns, ev.arg0);
      ++validated;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(validated, 0u);
}

TEST(FlightRecorderTest, ChromeTraceExportShape) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  const std::uint64_t t0 = NowNanos();
  FlightRecorder::Emit(TraceEventType::kLatchWait, t0, 5000, 5000,
                       static_cast<std::uint64_t>(PageClass::kIndex));
  FlightRecorder::Emit(TraceEventType::kWalFsync, t0 + 10000, 2000, 4096, 77);
  FlightRecorder::Emit(TraceEventType::kTxnStage, t0 + 20000, 1000, 2, 42);
  FlightRecorder::Emit(TraceEventType::kPartitionPhase, t0 + 30000, 0, 1, 3);
  const std::string json = fr.ExportChromeTraceJson();

  // Structural envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // All four event names present, with their categories.
  EXPECT_NE(json.find("\"name\":\"latch_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wal_fsync\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"txn_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"partition_phase\""), std::string::npos);
  // Span events are complete ("X") with durations; the partition phase is
  // an instant; the emitting thread got a metadata name row.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  // The txn_stage span names its stage and carries the correlation id.
  EXPECT_NE(json.find("\"stage\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"txn\":42"), std::string::npos);

  // Per-thread timestamps come out sorted (Perfetto requires it per track).
  const std::vector<CollectedEvent> events = fr.Collect();
  std::uint64_t last_ts = 0;
  for (const CollectedEvent& ev : events) {
    if (ev.type == TraceEventType::kNone) continue;
    EXPECT_GE(ev.ts_ns, 0u);
    last_ts = std::max(last_ts, ev.ts_ns);
  }
  EXPECT_GE(last_ts, t0);
}

TEST(FlightRecorderTest, ExportChromeTraceWritesFile) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  FlightRecorder::Emit(TraceEventType::kMarker, NowNanos(), 0, 1, 2);
  const std::string path =
      testing::TempDir() + "/flight_recorder_test_trace.json";
  ASSERT_TRUE(fr.ExportChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::strncmp(buf, "{\"traceEvents\"", 14), 0);
  // Unwritable path reports the failure instead of silently dropping it.
  EXPECT_FALSE(fr.ExportChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST(FlightRecorderTest, ContentionAttributionRanksSites) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  // A genuinely contended latch acquire under a site scope: the holder
  // sleeps with the exclusive latch, the waiter records the wait.
  Latch latch(PageClass::kIndex);
  latch.AcquireExclusive();
  std::thread waiter([&] {
    TraceSiteScope site(TraceSite::kBtreeDescent);
    latch.AcquireShared();
    latch.ReleaseShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  latch.ReleaseExclusive();
  waiter.join();

  const std::vector<ContentionEntry> snapshot = fr.ContentionSnapshot();
  ASSERT_FALSE(snapshot.empty());
  bool found = false;
  for (const ContentionEntry& e : snapshot) {
    if (e.site != TraceSite::kBtreeDescent) continue;
    found = true;
    EXPECT_GE(e.count, 1u);
    // The waiter slept ~5ms behind the holder.
    EXPECT_GE(e.total_wait_ns, 1'000'000u);
    EXPECT_GE(e.max_us, e.p50_us);
  }
  EXPECT_TRUE(found) << fr.ContentionReportText();
  const std::string report = fr.ContentionReportText();
  EXPECT_NE(report.find("btree_descent"), std::string::npos);

  // The ring also carries the latch-wait span (it cleared the 1us
  // threshold), tagged with the site.
  bool span_found = false;
  for (const CollectedEvent& ev : fr.Collect()) {
    if (ev.type == TraceEventType::kLatchWait &&
        ev.site == TraceSite::kBtreeDescent) {
      span_found = true;
      EXPECT_GE(ev.dur_ns, 1'000'000u);
    }
  }
  EXPECT_TRUE(span_found);
}

TEST(FlightRecorderTest, WaitThresholdGatesRingButNotStats) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  const std::uint64_t saved = fr.wait_threshold_ns();
  fr.SetWaitThresholdNs(1'000'000'000);  // 1s: nothing clears it
  {
    TraceSiteScope site(TraceSite::kHeapOp);
    FlightRecorder::RecordLatchWait(PageClass::kHeap, NowNanos(), 50'000);
  }
  fr.SetWaitThresholdNs(saved);
  bool ring_event = false;
  for (const CollectedEvent& ev : fr.Collect()) {
    if (ev.type == TraceEventType::kLatchWait) ring_event = true;
  }
  EXPECT_FALSE(ring_event);
  bool stats_counted = false;
  for (const ContentionEntry& e : fr.ContentionSnapshot()) {
    if (e.site == TraceSite::kHeapOp && e.count >= 1) stats_counted = true;
  }
  EXPECT_TRUE(stats_counted);
}

TEST(FlightRecorderTest, BlackBoxDumpIsReadable) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.ResetForTest();
  FlightRecorder::Emit(TraceEventType::kMarker, NowNanos(), 0, 0xabcd, 0);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  fr.DumpBlackBox(fds[1], /*per_thread=*/8);
  close(fds[1]);
  std::string dump;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    dump.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  EXPECT_NE(dump.find("PLP FLIGHT RECORDER BLACK BOX"), std::string::npos);
  EXPECT_NE(dump.find("END BLACK BOX"), std::string::npos);
  EXPECT_NE(dump.find("marker"), std::string::npos) << dump;
}

// The registry's ToText() renders the contention gauges (published by the
// Database gauge provider) as a ranked section, independent of recorder
// internals.
TEST(FlightRecorderTest, ToTextRendersContentionSection) {
  MetricsRegistry registry;
  registry.gauge("contention.btree_descent.waits")->Set(12);
  registry.gauge("contention.btree_descent.wait_us_total")->Set(900);
  registry.gauge("contention.btree_descent.p99_us")->Set(210);
  registry.gauge("contention.lock_table.waits")->Set(3);
  registry.gauge("contention.lock_table.wait_us_total")->Set(50);
  registry.gauge("contention.lock_table.p99_us")->Set(30);
  const std::string text = registry.Snapshot().ToText();
  const std::size_t header = text.find("top contended latch sites");
  ASSERT_NE(header, std::string::npos) << text;
  // Ranked by total wait: btree_descent (900us) before lock_table (50us).
  const std::size_t btree = text.find("btree_descent", header);
  const std::size_t lock = text.find("lock_table", header);
  ASSERT_NE(btree, std::string::npos);
  ASSERT_NE(lock, std::string::npos);
  EXPECT_LT(btree, lock);
}

}  // namespace
}  // namespace plp
