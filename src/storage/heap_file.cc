#include "src/storage/heap_file.h"

#include <algorithm>
#include <cassert>

#include "src/metrics/flight_recorder.h"

namespace plp {

HeapFile::HeapFile(BufferPool* pool, HeapMode mode, std::uint32_t file_id)
    : pool_(pool),
      mode_(mode),
      latch_policy_(mode == HeapMode::kShared ? LatchPolicy::kLatched
                                              : LatchPolicy::kNone),
      file_id_(file_id) {}

PageRef HeapFile::AllocatePage(std::uint32_t owner) {
  PageRef page = pool_->AllocatePage(PageClass::kHeap, file_id_);
  SlottedPage::Init(page->data());
  SlottedPage(page->data()).set_owner(owner);
  if (mode_ != HeapMode::kShared) page->set_owner_tag(owner);
  {
    TrackedMutexLock g(meta_mu_);
    pages_.push_back(page->id());
    if (mode_ != HeapMode::kShared) {
      auto& op = owners_[owner];
      if (!op) op = std::make_unique<OwnerPages>();
      op->pages.push_back(page->id());
    }
  }
  return page;
}

PageRef HeapFile::FixForOp(PageId id) {
  return pool_->AcquirePage(id, /*tracked=*/latch_policy_ ==
                                    LatchPolicy::kLatched);
}

void HeapFile::AdoptPage(PageId id, std::uint32_t owner) {
  TrackedMutexLock g(meta_mu_);
  if (std::find(pages_.begin(), pages_.end(), id) == pages_.end()) {
    pages_.push_back(id);
    if (mode_ != HeapMode::kShared) {
      auto& op = owners_[owner];
      if (!op) op = std::make_unique<OwnerPages>();
      op->pages.push_back(id);
    }
  }
}

void HeapFile::PrimeFreeSpace() {
  if (mode_ != HeapMode::kShared) return;
  for (PageId pid : AllPages()) {
    PageRef page = FixForOp(pid);
    if (!page) continue;
    fsm_.Update(pid, SlottedPage(page->data()).TotalFreeSpace());
  }
}

HeapFile::OwnerPages* HeapFile::GetOwnerPages(std::uint32_t owner) {
  TrackedMutexLock g(meta_mu_);
  auto& op = owners_[owner];
  if (!op) op = std::make_unique<OwnerPages>();
  return op.get();
}

Status HeapFile::Insert(Slice record, Rid* rid, const MutationHook& logged) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  assert(mode_ == HeapMode::kShared);
  for (int attempt = 0; attempt < 8; ++attempt) {
    PageId pid = fsm_.FindPageWith(record.size() + SlottedPage::kSlotSize);
    PageRef page = pid == kInvalidPageId ? PageRef() : FixForOp(pid);
    if (!page) {
      page = AllocatePage(/*owner=*/0);
    }
    LatchGuard g(&page->latch(), LatchMode::kExclusive, latch_policy_);
    SlottedPage sp(page->data());
    SlotId slot;
    Status st = sp.Insert(record, &slot);
    if (st.IsNoSpace()) {
      fsm_.Update(page->id(), 0);
      continue;  // stale estimate; try another page
    }
    PLP_RETURN_IF_ERROR(st);
    page->MarkDirty();
    if (logged) logged(page.get(), slot);
    fsm_.Update(page->id(), sp.TotalFreeSpace());
    *rid = Rid{page->id(), slot};
    return Status::OK();
  }
  return Status::NoSpace("heap insert failed after retries");
}

Status HeapFile::InsertOwned(std::uint32_t owner, Slice record, Rid* rid,
                             const MutationHook& logged) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  assert(mode_ != HeapMode::kShared);
  OwnerPages* op = GetOwnerPages(owner);
  // Try the most recently allocated page for this owner first.
  if (!op->pages.empty()) {
    PageRef page = FixForOp(op->pages.back());
    if (page) {
      SlottedPage sp(page->data());
      SlotId slot;
      Status st = sp.Insert(record, &slot);
      if (st.ok()) {
        page->MarkDirty();
        if (logged) logged(page.get(), slot);
        *rid = Rid{page->id(), slot};
        return st;
      }
      if (!st.IsNoSpace()) return st;
    }
  }
  PageRef page = AllocatePage(owner);
  SlottedPage sp(page->data());
  SlotId slot;
  PLP_RETURN_IF_ERROR(sp.Insert(record, &slot));
  page->MarkDirty();
  if (logged) logged(page.get(), slot);
  *rid = Rid{page->id(), slot};
  return Status::OK();
}

Status HeapFile::Get(Rid rid, std::string* out) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  PageRef page = FixForOp(rid.page_id);
  if (!page) return Status::NotFound("no such page");
  LatchGuard g(&page->latch(), LatchMode::kShared, latch_policy_);
  Slice rec;
  PLP_RETURN_IF_ERROR(SlottedPage(page->data()).Get(rid.slot, &rec));
  out->assign(rec.data(), rec.size());
  return Status::OK();
}

Status HeapFile::Update(Rid rid, Slice record, const MutationHook& logged) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  PageRef page = FixForOp(rid.page_id);
  if (!page) return Status::NotFound("no such page");
  LatchGuard g(&page->latch(), LatchMode::kExclusive, latch_policy_);
  PLP_RETURN_IF_ERROR(SlottedPage(page->data()).Update(rid.slot, record));
  page->MarkDirty();
  if (logged) logged(page.get(), rid.slot);
  return Status::OK();
}

Status HeapFile::Delete(Rid rid, const MutationHook& logged) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  PageRef page = FixForOp(rid.page_id);
  if (!page) return Status::NotFound("no such page");
  LatchGuard g(&page->latch(), LatchMode::kExclusive, latch_policy_);
  SlottedPage sp(page->data());
  PLP_RETURN_IF_ERROR(sp.Delete(rid.slot));
  page->MarkDirty();
  if (logged) logged(page.get(), rid.slot);
  if (mode_ == HeapMode::kShared) {
    fsm_.Update(page->id(), sp.TotalFreeSpace());
  }
  return Status::OK();
}

void HeapFile::Scan(const std::function<void(Rid, Slice)>& fn) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  for (PageId pid : AllPages()) {
    PageRef page = pool_->AcquirePage(pid, /*tracked=*/true);
    if (!page) continue;
    LatchGuard g(&page->latch(), LatchMode::kShared, latch_policy_);
    SlottedPage(page->data()).ForEach([&](SlotId s, Slice rec) {
      fn(Rid{pid, s}, rec);
    });
  }
}

void HeapFile::ScanOwned(std::uint32_t owner,
                         const std::function<void(Rid, Slice)>& fn) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  for (PageId pid : OwnedPages(owner)) {
    PageRef page = pool_->AcquirePage(pid, /*tracked=*/false);
    if (!page) continue;
    SlottedPage(page->data()).ForEach([&](SlotId s, Slice rec) {
      fn(Rid{pid, s}, rec);
    });
  }
}

Status HeapFile::RestoreAt(Rid rid, std::uint32_t owner, Slice record,
                           Rid* out_rid, const MutationHook& logged) {
  TraceSiteScope trace_site(TraceSite::kHeapOp);
  {
    PageRef page = FixForOp(rid.page_id);
    if (page) {
      LatchGuard g(&page->latch(), LatchMode::kExclusive, latch_policy_);
      SlottedPage sp(page->data());
      Slice existing;
      if (sp.Get(rid.slot, &existing).IsNotFound() &&
          sp.PutAt(rid.slot, record).ok()) {
        page->MarkDirty();
        if (logged) logged(page.get(), rid.slot);
        if (mode_ == HeapMode::kShared) {
          fsm_.Update(page->id(), sp.TotalFreeSpace());
        }
        *out_rid = rid;
        return Status::OK();
      }
    }
  }
  // Slot reused (or page gone): place like a fresh insert.
  if (mode_ == HeapMode::kShared) return Insert(record, out_rid, logged);
  return InsertOwned(owner, record, out_rid, logged);
}

Status HeapFile::Move(Rid from, std::uint32_t new_owner, Rid* new_rid) {
  std::string record;
  PLP_RETURN_IF_ERROR(Get(from, &record));
  PLP_RETURN_IF_ERROR(InsertOwned(new_owner, record, new_rid));
  return Delete(from);
}

std::vector<PageId> HeapFile::OwnedPages(std::uint32_t owner) {
  TrackedMutexLock g(meta_mu_);
  std::vector<PageId> out;
  auto it = owners_.find(owner);
  if (it != owners_.end()) out = it->second->pages;
  return out;
}

void HeapFile::RetagPage(PageId id, std::uint32_t new_owner) {
  {
    TrackedMutexLock g(meta_mu_);
    for (auto& [owner, op] : owners_) {
      if (owner == new_owner) continue;
      auto it = std::find(op->pages.begin(), op->pages.end(), id);
      if (it != op->pages.end()) op->pages.erase(it);
    }
    auto& dst = owners_[new_owner];
    if (!dst) dst = std::make_unique<OwnerPages>();
    if (std::find(dst->pages.begin(), dst->pages.end(), id) ==
        dst->pages.end()) {
      dst->pages.push_back(id);
    }
  }
  PageRef page = pool_->AcquirePage(id, /*tracked=*/false);
  if (page) {
    SlottedPage(page->data()).set_owner(new_owner);
    page->set_owner_tag(new_owner);
    page->MarkDirty();
  }
}

void HeapFile::RetagOwner(std::uint32_t old_owner, std::uint32_t new_owner) {
  TrackedMutexLock g(meta_mu_);
  auto it = owners_.find(old_owner);
  if (it != owners_.end()) {
    auto& dst = owners_[new_owner];
    if (!dst) dst = std::make_unique<OwnerPages>();
    for (PageId pid : it->second->pages) {
      PageRef page = pool_->AcquirePage(pid, /*tracked=*/false);
      if (page) {
        SlottedPage(page->data()).set_owner(new_owner);
        page->set_owner_tag(new_owner);
        page->MarkDirty();
      }
      dst->pages.push_back(pid);
    }
    owners_.erase(it);
  }
}

std::size_t HeapFile::num_pages() const {
  return const_cast<HeapFile*>(this)->AllPages().size();
}

std::vector<PageId> HeapFile::AllPages() {
  TrackedMutexLock g(meta_mu_);
  return pages_;
}

}  // namespace plp
