#include "src/txn/recovery.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/database.h"
#include "src/index/persistent/index_log.h"
#include "src/storage/slotted_page.h"

namespace plp {

std::string RecoveryManager::EncodeIndexOp(Slice key, Slice value) {
  std::string out;
  const std::uint16_t klen = static_cast<std::uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
  return out;
}

void RecoveryManager::DecodeIndexOp(Slice payload, std::string* key,
                                    std::string* value) {
  std::uint16_t klen;
  std::memcpy(&klen, payload.data(), 2);
  key->assign(payload.data() + 2, klen);
  value->assign(payload.data() + 2 + klen, payload.size() - 2 - klen);
}

namespace {

/// Formats a freshly-materialized (zeroed) frame exactly once.
void EnsureFormatted(Page* page) {
  SlottedPage sp(page->data());
  if (sp.slot_count() == 0 && sp.ContiguousFreeSpace() == 0) {
    SlottedPage::Init(page->data());
  }
}

}  // namespace

Status RecoveryManager::Recover(BTree* index, Stats* stats) {
  Stats local;

  // Pass 1: analysis.
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> seen;
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn, const LogRecord& rec) {
    if (rec.type == LogType::kCheckpoint || rec.txn == kInvalidTxnId) return;
    seen.insert(rec.txn);
    if (rec.type == LogType::kCommit) winners.insert(rec.txn);
  }));
  local.winners = winners.size();
  local.losers = seen.size() - winners.size();

  // Pass 2: redo heap history; collect loser ops for undo; replay winner
  // index ops logically. Also remember the newest committed write per RID
  // so the undo pass never clobbers a committed record that reused a slot
  // freed by a runtime abort.
  struct LoserOp {
    LogType type;
    Rid rid;
    Lsn lsn;
    std::string undo;
  };
  std::vector<LoserOp> loser_ops;
  std::unordered_map<Rid, Lsn> last_committed;

  auto heap_page = [&](PageId pid) {
    Page* page = pool_->NewPageWithId(pid, PageClass::kHeap);
    EnsureFormatted(page);
    return page;
  };

  Status replay_status = Status::OK();
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn lsn, const LogRecord& rec) {
    if (!replay_status.ok()) return;
    const bool heap_loser =
        (rec.type == LogType::kHeapInsert ||
         rec.type == LogType::kHeapUpdate ||
         rec.type == LogType::kHeapDelete) &&
        rec.txn != kInvalidTxnId && winners.count(rec.txn) == 0;
    switch (rec.type) {
      case LogType::kHeapInsert:
      case LogType::kHeapUpdate: {
        if (heap_loser) break;  // not redone; see RecoverDatabase
        Page* page = heap_page(rec.rid.page_id);
        replay_status = SlottedPage(page->data()).PutAt(rec.rid.slot, rec.redo);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kHeapDelete: {
        if (heap_loser) break;
        Page* page = heap_page(rec.rid.page_id);
        // Idempotent: deleting an already-free slot is fine.
        (void)SlottedPage(page->data()).Delete(rec.rid.slot);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kIndexInsert:
      case LogType::kIndexDelete: {
        if (index != nullptr && winners.count(rec.txn) > 0) {
          std::string key, value;
          DecodeIndexOp(rec.redo.empty() ? rec.undo : rec.redo, &key, &value);
          if (rec.type == LogType::kIndexInsert) {
            Status st = index->Insert(key, value);
            if (st.IsAlreadyExists()) st = index->Update(key, value);
            replay_status = st;
          } else {
            Status st = index->Delete(key);
            if (!st.IsNotFound()) replay_status = st;
          }
          local.index_ops++;
        }
        break;
      }
      default:
        break;
    }
    if (replay_status.ok()) {
      switch (rec.type) {
        case LogType::kHeapInsert:
        case LogType::kHeapUpdate:
        case LogType::kHeapDelete:
          // System records (txn == kInvalidTxnId, e.g. logged abort
          // compensations) are repeat-history-only: treated like winners.
          if (rec.txn != kInvalidTxnId && winners.count(rec.txn) == 0) {
            loser_ops.push_back({rec.type, rec.rid, lsn, rec.undo});
          } else {
            last_committed[rec.rid] = lsn;
          }
          break;
        default:
          break;
      }
    }
  }));
  PLP_RETURN_IF_ERROR(replay_status);

  // Pass 3: undo losers newest-first.
  for (auto it = loser_ops.rbegin(); it != loser_ops.rend(); ++it) {
    auto committed_it = last_committed.find(it->rid);
    if (committed_it != last_committed.end() &&
        committed_it->second > it->lsn) {
      continue;  // a later committed write owns this slot now
    }
    Page* page = heap_page(it->rid.page_id);
    SlottedPage sp(page->data());
    switch (it->type) {
      case LogType::kHeapInsert:
        (void)sp.Delete(it->rid.slot);
        break;
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete:
        PLP_RETURN_IF_ERROR(sp.PutAt(it->rid.slot, it->undo));
        break;
      default:
        break;
    }
    page->MarkDirty();
    local.undo_ops++;
  }

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RecoveryManager::RecoverDatabase(Database* db, bool has_checkpoint,
                                        Lsn checkpoint_lsn,
                                        const CheckpointImage& image,
                                        Stats* stats) {
  Stats local;
  const bool logged_index = db->logged_index();

  std::unordered_map<std::uint32_t, Table*> tables_by_id;
  for (Table* t : db->tables()) tables_by_id[t->id()] = t;

  if (logged_index) {
    // Persistent index: the checkpoint carries only the partition-table
    // baseline; page contents replay physically below. Newer
    // kPartitionTable records seen during redo re-adopt.
    for (const CheckpointImage::TablePartitions& parts : image.partitions) {
      auto it = tables_by_id.find(parts.table_id);
      if (it == tables_by_id.end()) continue;
      PLP_RETURN_IF_ERROR(it->second->primary()->AdoptPartitions(parts.parts));
    }
  } else if (has_checkpoint) {
    // Legacy snapshot mode: load the checkpoint's primary-index snapshots.
    for (const CheckpointImage::TableSnapshot& snap : image.tables) {
      auto it = tables_by_id.find(snap.table_id);
      if (it == tables_by_id.end()) continue;
      MRBTree* primary = it->second->primary();
      for (const auto& [key, value] : snap.entries) {
        Status st = primary->Insert(key, value);
        if (st.IsAlreadyExists()) st = primary->Update(key, value);
        PLP_RETURN_IF_ERROR(st);
      }
    }
  }

  const Lsn scan_start =
      has_checkpoint ? image.ScanStart(checkpoint_lsn) : 0;
  local.scan_start = scan_start;

  // Pass 1: analysis over [scan_start, end). Transactions active at the
  // checkpoint are in-flight by definition; records tell us who finished.
  // System records (txn == kInvalidTxnId: SMOs, partition tables, logged
  // heap moves, compensations) are repeat-history-only — never losers.
  std::unordered_set<TxnId> committed;
  std::unordered_map<TxnId, Lsn> abort_lsn;
  std::unordered_set<TxnId> seen;
  TxnId max_txn_id = 0;
  for (const auto& [txn, begin] : image.active_txns) seen.insert(txn);
  PLP_RETURN_IF_ERROR(log_->ScanFrom(scan_start, [&](Lsn lsn,
                                                     const LogRecord& rec) {
    if (rec.type == LogType::kCheckpoint || rec.txn == kInvalidTxnId) return;
    seen.insert(rec.txn);
    max_txn_id = std::max(max_txn_id, rec.txn);
    if (rec.type == LogType::kCommit) committed.insert(rec.txn);
    if (rec.type == LogType::kAbort) abort_lsn[rec.txn] = lsn;
  }));
  local.winners = committed.size();
  local.losers = seen.size() - committed.size();

  auto is_winner_or_system = [&](TxnId txn) {
    return txn == kInvalidTxnId || committed.count(txn) > 0;
  };

  // Pass 2: redo. Heap and index-page history is repeated for every
  // transaction (page-LSN-gated, so replay against whatever state the
  // data file holds is idempotent); legacy logical index ops are applied
  // for committed transactions only, on top of the snapshot. Loser
  // bookkeeping feeds the undo passes below.
  struct LoserHeapOp {
    LogType type;
    Rid rid;
    Lsn lsn;
    std::uint32_t table;
    std::string undo;
  };
  struct LoserIndexOp {
    LogType type;
    TxnId txn;
    Lsn lsn;
    std::uint32_t table;
    std::string payload;  // EncodeIndexEntry(key, value-for-undo)
  };
  std::vector<LoserHeapOp> loser_heap;
  std::vector<LoserIndexOp> loser_index;     // snapshot mode (pass 3a)
  std::vector<LoserIndexOp> loser_anchors;   // logged mode (pass 3a')
  std::unordered_map<Rid, Lsn> last_committed;
  // Key-level precedence for logged-mode index undo: the newest op on a
  // (table, key) by a winner or a system/compensation record wins over an
  // older loser op.
  std::unordered_map<std::string, Lsn> index_key_winner;
  auto index_key = [](std::uint32_t table, const std::string& key) {
    std::string k(reinterpret_cast<const char*>(&table), 4);
    k += key;
    return k;
  };

  auto heap_page = [&](const LogRecord& rec) {
    const PageId pid = rec.rid.page_id;
    Page* page = pool_->Fix(pid);  // resident or on disk
    if (page == nullptr) {
      page = pool_->NewPageWithId(pid, PageClass::kHeap);
      page->set_table_tag(rec.table);
    }
    EnsureFormatted(page);
    auto it = tables_by_id.find(rec.table);
    if (it != tables_by_id.end()) {
      it->second->heap()->AdoptPage(pid, SlottedPage(page->data()).owner());
    }
    return page;
  };

  auto index_page = [&](PageId pid) {
    Page* page = pool_->Fix(pid);  // resident or on disk
    if (page == nullptr) {
      page = pool_->NewPageWithId(pid, PageClass::kIndex);
    }
    EnsureNodeFormatted(page->data());
    return page;
  };

  Status replay_status = Status::OK();
  PLP_RETURN_IF_ERROR(log_->ScanFrom(scan_start, [&](Lsn lsn,
                                                     const LogRecord& rec) {
    if (!replay_status.ok()) return;
    switch (rec.type) {
      case LogType::kHeapInsert:
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete: {
        if (!is_winner_or_system(rec.txn)) {
          // Loser heap ops are NOT redone: heap replay is slot-addressed
          // and value-based, so skipping them leaves each slot with its
          // winner value directly (the undo images below cover delete/
          // update restores). Redoing them would transiently overcommit
          // pages — at runtime the space they held was returned by
          // unlogged abort compensations mid-stream, which replay cannot
          // interleave — and a committed record's PutAt could then fail.
          loser_heap.push_back({rec.type, rec.rid, lsn, rec.table, rec.undo});
          break;
        }
        Page* page = heap_page(rec);
        // ARIES redo gate: a page stolen after this record already holds
        // its effect (page_lsn from the slot header covers it); replaying
        // anyway is not just wasted work — an old large record may no
        // longer fit the newer image and would abort recovery.
        if (lsn > page->page_lsn()) {
          SlottedPage sp(page->data());
          if (rec.type == LogType::kHeapDelete) {
            (void)sp.Delete(rec.rid.slot);
          } else {
            replay_status = sp.PutAt(rec.rid.slot, rec.redo);
          }
          page->StampUpdate(lsn);
          local.redo_ops++;
        }
        last_committed[rec.rid] = lsn;
        break;
      }
      case LogType::kIndexLeafInsert:
      case LogType::kIndexLeafDelete:
      case LogType::kIndexLeafUpdate: {
        std::string key, value;
        const std::string& payload =
            rec.type == LogType::kIndexLeafDelete ? rec.undo : rec.redo;
        DecodeIndexEntry(payload, &key, &value);
        Page* page = index_page(rec.rid.page_id);
        if (lsn > page->page_lsn()) {
          if (rec.type == LogType::kIndexLeafInsert) {
            RedoLeafInsert(page->data(), key, value);
          } else if (rec.type == LogType::kIndexLeafDelete) {
            RedoLeafDelete(page->data(), key);
          } else {
            RedoLeafUpdate(page->data(), key, value);
          }
          page->StampUpdate(lsn);
          local.index_ops++;
        }
        if (is_winner_or_system(rec.txn)) {
          // A SYSTEM leaf UPDATE is a re-point (leaf-moved hook,
          // repartitioning): the key's existence is still owed to
          // whoever inserted it, so it must not shield a loser's insert
          // from being undone. Committed updates and all inserts/deletes
          // do take precedence over older loser ops.
          if (rec.type != LogType::kIndexLeafUpdate ||
              rec.txn != kInvalidTxnId) {
            index_key_winner[index_key(rec.table, key)] = lsn;
          }
        } else {
          // Undo needs the before-image: the deleted/overwritten value
          // for delete/update, the key alone for insert.
          loser_anchors.push_back(
              {rec.type, rec.txn, lsn, rec.table,
               rec.type == LogType::kIndexLeafInsert ? rec.redo : rec.undo});
        }
        break;
      }
      case LogType::kIndexSmo: {
        std::vector<std::pair<PageId, std::string>> images;
        if (!DecodeSmoPayload(rec.redo, &images)) {
          replay_status = Status::Corruption("bad SMO payload");
          break;
        }
        for (const auto& [pid, img] : images) {
          Page* page = index_page(pid);
          if (lsn > page->page_lsn()) {
            if (!ApplyNodeImage(img, page->data())) {
              replay_status = Status::Corruption("bad SMO page image");
              break;
            }
            page->StampUpdate(lsn);
            local.index_ops++;
          }
        }
        break;
      }
      case LogType::kIndexPageFree: {
        pool_->FreePage(rec.rid.page_id);
        break;
      }
      case LogType::kPartitionTable: {
        auto it = tables_by_id.find(rec.table);
        if (it == tables_by_id.end()) break;
        std::vector<std::pair<std::string, PageId>> parts;
        if (!DecodePartitionPayload(rec.redo, &parts)) {
          replay_status = Status::Corruption("bad partition-table payload");
          break;
        }
        replay_status = it->second->primary()->AdoptPartitions(parts);
        break;
      }
      case LogType::kIndexRepartition: {
        // Atomic slice/meld: SMO page images + the new partition table in
        // one record (either the whole repartition replays or none of it).
        std::vector<std::pair<std::string, PageId>> parts;
        std::vector<std::pair<PageId, std::string>> images;
        if (!DecodeRepartitionPayload(rec.redo, &parts, &images)) {
          replay_status = Status::Corruption("bad repartition payload");
          break;
        }
        for (const auto& [pid, img] : images) {
          Page* page = index_page(pid);
          if (lsn > page->page_lsn()) {
            if (!ApplyNodeImage(img, page->data())) {
              replay_status = Status::Corruption("bad repartition image");
              break;
            }
            page->StampUpdate(lsn);
            local.index_ops++;
          }
        }
        if (!replay_status.ok()) break;
        auto it = tables_by_id.find(rec.table);
        if (it == tables_by_id.end()) break;
        replay_status = it->second->primary()->AdoptPartitions(parts);
        break;
      }
      case LogType::kIndexInsert:
      case LogType::kIndexDelete: {
        if (logged_index) break;  // legacy records; absent in logged mode
        auto it = tables_by_id.find(rec.table);
        if (it == tables_by_id.end()) break;
        if (committed.count(rec.txn) > 0) {
          MRBTree* primary = it->second->primary();
          std::string key, value;
          DecodeIndexOp(rec.redo.empty() ? rec.undo : rec.redo, &key, &value);
          if (rec.type == LogType::kIndexInsert) {
            Status st = primary->Insert(key, value);
            if (st.IsAlreadyExists()) st = primary->Update(key, value);
            replay_status = st;
          } else {
            Status st = primary->Delete(key);
            if (!st.IsNotFound()) replay_status = st;
          }
          local.index_ops++;
        } else if (has_checkpoint && lsn < checkpoint_lsn) {
          // A loser op baked into the index snapshot: needs reversal,
          // unless the transaction's runtime abort (and therefore its
          // logical compensation) happened before the snapshot was taken.
          loser_index.push_back({rec.type, rec.txn, lsn, rec.table,
                                 rec.redo.empty() ? rec.undo : rec.redo});
        }
        break;
      }
      default:
        break;
    }
  }));
  PLP_RETURN_IF_ERROR(replay_status);

  // Pass 3a (snapshot mode): reverse loser index ops the snapshot
  // reflects.
  for (auto it = loser_index.rbegin(); it != loser_index.rend(); ++it) {
    auto ab = abort_lsn.find(it->txn);
    if (ab != abort_lsn.end() && ab->second < checkpoint_lsn) {
      continue;  // compensated before the snapshot; already clean
    }
    auto table_it = tables_by_id.find(it->table);
    if (table_it == tables_by_id.end()) continue;
    MRBTree* primary = table_it->second->primary();
    std::string key, value;
    DecodeIndexOp(it->payload, &key, &value);
    if (it->type == LogType::kIndexInsert) {
      (void)primary->Delete(key);
    } else {
      Status st = primary->Insert(key, value);
      if (st.IsAlreadyExists()) (void)primary->Update(key, value);
    }
    local.index_ops++;
  }

  // Pass 3a' (logged mode): compensate loser leaf ops logically through
  // the recovered trees, newest-first. The compensations go through the
  // normal mutation paths, so they are themselves logged (as system
  // records) and survive a crash during recovery. A later op on the same
  // key by a winner or a system record takes precedence.
  for (auto it = loser_anchors.rbegin(); it != loser_anchors.rend(); ++it) {
    auto table_it = tables_by_id.find(it->table);
    if (table_it == tables_by_id.end()) continue;
    std::string key, value;
    DecodeIndexEntry(it->payload, &key, &value);
    auto winner = index_key_winner.find(index_key(it->table, key));
    if (winner != index_key_winner.end() && winner->second > it->lsn) {
      continue;
    }
    MRBTree* primary = table_it->second->primary();
    switch (it->type) {
      case LogType::kIndexLeafInsert:
        (void)primary->Delete(key);  // NotFound: compensated pre-crash
        break;
      case LogType::kIndexLeafDelete: {
        Status st = primary->Insert(key, value);
        (void)st;  // AlreadyExists: a later insert owns the key now
        break;
      }
      case LogType::kIndexLeafUpdate:
        (void)primary->Update(key, value);  // NotFound: deleted later
        break;
      default:
        break;
    }
    local.undo_ops++;
  }

  // Pass 3b: undo loser heap ops newest-first from before-images; a later
  // committed write to the same RID wins. Each undo is logged as a CLR —
  // a SYSTEM heap record (txn = kInvalidTxnId) whose redo image IS the
  // compensation — and the page LSN advances to it, so the undo replays
  // from the log like any other history: a crash mid-undo resumes from
  // the CLR chain, and a crash after recovery redoes (or LSN-skips) them
  // idempotently. No flush-before-open of undone pages is needed.
  for (auto it = loser_heap.rbegin(); it != loser_heap.rend(); ++it) {
    auto committed_it = last_committed.find(it->rid);
    if (committed_it != last_committed.end() &&
        committed_it->second > it->lsn) {
      continue;
    }
    Page* page = pool_->Fix(it->rid.page_id);
    if (page == nullptr) continue;  // never materialized: nothing to undo
    SlottedPage sp(page->data());
    LogRecord clr;
    clr.txn = kInvalidTxnId;
    clr.rid = it->rid;
    clr.table = it->table;
    switch (it->type) {
      case LogType::kHeapInsert:
        (void)sp.Delete(it->rid.slot);
        clr.type = LogType::kHeapDelete;
        break;
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete:
        PLP_RETURN_IF_ERROR(sp.PutAt(it->rid.slot, it->undo));
        clr.type = LogType::kHeapUpdate;
        clr.redo = it->undo;
        break;
      default:
        continue;
    }
    page->StampUpdate(log_->Append(clr));
    local.undo_ops++;
  }

  if (logged_index) {
    // Adopted sub-trees learned their entry populations from pages only.
    for (auto& [id, table] : tables_by_id) table->primary()->RecountEntries();
  }

  db->txns()->EnsureNextIdAtLeast(
      std::max(image.next_txn_id, max_txn_id + 1));

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace plp
