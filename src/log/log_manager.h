// The log manager: record-level API over the composable LogBuffer, plus an
// offline scan used by restart recovery.
//
// Three backing modes:
//  * discard (default)      — flushed bytes vanish; memory-resident
//                             benchmark mode, as in the paper's evaluation.
//  * retain_for_recovery    — flushed bytes are kept in RAM and can be
//                             scanned (the seed's crash-simulation tests).
//  * wal_dir set            — flushed bytes go to an on-disk segmented WAL
//                             (src/io/wal_storage). FlushTo() then runs a
//                             group commit: concurrent callers elect one
//                             leader that drains the buffer and issues a
//                             single fdatasync for the whole batch.
#ifndef PLP_LOG_LOG_MANAGER_H_
#define PLP_LOG_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/log_buffer.h"
#include "src/log/log_record.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class WalStorage;

struct LogConfig {
  std::size_t buffer_size = 16u << 20;
  /// When true, flushed bytes are retained in memory and can be scanned by
  /// recovery. When false they are discarded after flush (memory-resident
  /// benchmark mode, as in the paper's evaluation). Ignored when `wal_dir`
  /// is set: the on-disk WAL is always scannable.
  bool retain_for_recovery = false;
  /// When non-empty, the log lives in segmented files under this directory.
  std::string wal_dir;
  std::size_t segment_size = 8u << 20;
  /// Batch concurrent FlushTo() callers into one fsync (wal mode only).
  bool group_commit = true;
  /// Registry for the log.* metrics (appends, bytes, fsync latency, batch
  /// size, truncations); nullptr records into MetricsRegistry::Scratch().
  MetricsRegistry* metrics = nullptr;
};

class LogManager {
 public:
  explicit LogManager(LogConfig config = {});
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Non-OK when the WAL directory could not be opened.
  const Status& open_status() const { return open_status_; }

  /// Appends a record; returns its LSN.
  Lsn Append(const LogRecord& record);

  /// Guarantees durability up to `lsn` (inclusive of that record's bytes).
  /// In wal mode this means the bytes are fdatasync'ed, via group commit.
  void FlushTo(Lsn lsn);
  void FlushAll();

  /// LSN below which every byte is durable (synced in wal mode).
  Lsn durable_lsn() const;
  Lsn next_lsn() const { return buffer_->next_lsn(); }

  bool on_disk() const { return wal_ != nullptr; }
  WalStorage* wal() { return wal_.get(); }

  /// Deletes WAL segments wholly below `floor` (a recovery floor published
  /// by a checkpoint). Returns the number of segments removed; 0 for
  /// in-memory logs.
  std::size_t TruncateWalBelow(Lsn floor);

  /// Scans all retained records in LSN order. Requires a scannable backing
  /// (wal mode or `retain_for_recovery`); flushes first.
  Status Scan(const std::function<void(Lsn, const LogRecord&)>& fn) {
    return ScanFrom(0, fn);
  }

  /// Scans records with start LSN >= `from` (which must be a record
  /// boundary — e.g. a checkpoint LSN).
  Status ScanFrom(Lsn from,
                  const std::function<void(Lsn, const LogRecord&)>& fn);

  /// Group-commit observability: total fsyncs vs. flush requests that
  /// piggybacked on another caller's fsync.
  std::uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t flush_requests() const {
    return flush_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Group-commit leader: drains the ring to the WAL and fsyncs once.
  void SyncWal(Lsn lsn);

  LogConfig config_;
  Status open_status_;
  std::unique_ptr<WalStorage> wal_;
  std::unique_ptr<LogBuffer> buffer_;

  Mutex retained_mu_;
  // Flushed bytes, when retain_for_recovery.
  std::string retained_ PLP_GUARDED_BY(retained_mu_);
  Lsn retained_base_ PLP_GUARDED_BY(retained_mu_) = 0;

  // Group-commit coordinator state.
  Mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_leader_active_ PLP_GUARDED_BY(gc_mu_) = false;
  Lsn gc_synced_lsn_ PLP_GUARDED_BY(gc_mu_) = 0;

  std::atomic<std::uint64_t> sync_count_{0};
  std::atomic<std::uint64_t> flush_requests_{0};

  // Registry metrics (cached pointers; see LogConfig::metrics).
  Counter* appends_metric_ = nullptr;
  Counter* append_bytes_metric_ = nullptr;
  Counter* fsyncs_metric_ = nullptr;
  Counter* truncated_segments_metric_ = nullptr;
  Histogram* fsync_us_metric_ = nullptr;
  Histogram* sync_batch_bytes_metric_ = nullptr;
  /// Highest LSN a sync has covered, for batch-size accounting (distinct
  /// from gc_synced_lsn_, which only group commit maintains).
  std::atomic<Lsn> synced_floor_metric_{0};
};

}  // namespace plp

#endif  // PLP_LOG_LOG_MANAGER_H_
