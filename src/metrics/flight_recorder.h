// Flight recorder: always-on, lock-free event tracing (docs/observability.md).
//
// Every thread that emits an event owns an SPSC ring of fixed-size binary
// slots (timestamp, duration, two u64 args, packed type+site). Writers are
// wait-free: a clock read plus six relaxed/release atomic stores, in the
// CsProfiler discipline (no load-modify-store on shared cachelines), so the
// hot-path cost is bounded and TSan stays clean. Readers (trace export, the
// post-mortem black box) validate each slot with a seqlock generation
// number and simply skip slots a writer is overwriting — tracing never
// blocks the traced.
//
// Three consumers:
//   1. ExportChromeTrace(): chrome://tracing / Perfetto JSON of everything
//      still in the rings (Engine::DumpTrace, PLP_TRACE_PATH).
//   2. DumpBlackBox(fd): async-signal-safe dump of the last N events per
//      thread; installed on fatal signals and fired by debug invariant
//      traps (buffer-pool pin-leak teardown).
//   3. ContentionSnapshot(): cumulative per-site latch-wait attribution
//      (count / total wait / p50 / p99 / max) — the paper's fig1/fig2
//      breakdown, continuously measured and ranked.
//
// This header is deliberately include-light (no registry.h / latch.h) so
// the sync layer can call into it without an include cycle.
#ifndef PLP_METRICS_FLIGHT_RECORDER_H_
#define PLP_METRICS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sync/cs_profiler.h"
#include "src/sync/spinlock.h"
#include "src/sync/thread_annotations.h"

namespace plp {

/// What happened. Kept in sync with TraceEventTypeName() and the Chrome
/// trace name/category tables in flight_recorder.cc.
enum class TraceEventType : std::uint16_t {
  kNone = 0,           // empty slot sentinel
  kLatchWait = 1,      // contended page-latch acquire; arg0=wait_ns, arg1=PageClass
  kCsWait = 2,         // contended engine-mutex acquire; arg0=wait_ns, arg1=CsCategory
  kLockWait = 3,       // lock-manager queue wait; arg0=wait_ns, arg1=granted(0/1)
  kWalFsync = 4,       // group-commit fsync; arg0=batch bytes, arg1=lsn
  kBufMissStall = 5,   // buffer-pool miss (disk read on the fix path); arg0=page id
  kEvictWriteback = 6, // eviction stole a dirty frame; arg0=page id
  kTxnStage = 7,       // one TxnTimeline stage span; arg0=TxnStageId, arg1=txn trace id
  kPartitionPhase = 8, // rendezvous phase dispatched; arg0=phase idx, arg1=actions
  kCheckpoint = 9,     // fuzzy checkpoint span; arg0=payload bytes
  kRecovery = 10,      // restart recovery span; arg0=redo ops, arg1=undo ops
  kMarker = 11,        // test/diagnostic marker; args free-form
};
inline constexpr std::size_t kNumTraceEventTypes = 12;

const char* TraceEventTypeName(TraceEventType t);

/// Callsite attribution for latch/mutex waits. The inventory mirrors the
/// R3 lint allowlist (tools/lint_invariants.py): the files allowed to touch
/// raw latches — crabbing descents, SMOs, eviction — are exactly the sites
/// worth telling apart in a contention report. Scopes are cheap (one plain
/// thread_local store each way) and nest.
enum class TraceSite : std::uint16_t {
  kUnknown = 0,
  kBtreeDescent = 1,     // src/index/btree.cc lock-crabbing descent
  kBtreeSmo = 2,         // src/index/btree.cc split/merge/repartition SMO
  kBufferPoolEvict = 3,  // src/buffer/buffer_pool.cc frame steal + unswizzle
  kPageCleaner = 4,      // background write-back (FlushPage from the cleaner)
  kHeapOp = 5,           // src/storage/heap_file.cc record read/write latches
  kPartitionTable = 6,   // src/index/partition_table.cc routing-table pages
  kLockTable = 7,        // src/lock lock-manager buckets
  kCheckpointer = 8,     // Database::Checkpoint page sweep
  kRecoveryReplay = 9,   // restart redo/undo page fixes
};
inline constexpr std::size_t kNumTraceSites = 10;

const char* TraceSiteName(TraceSite s);

namespace internal {
// Current attribution site for this thread; plain thread_local (never read
// cross-thread), loaded only on already-blocking contended paths.
extern thread_local std::uint16_t t_trace_site;
}  // namespace internal

/// RAII scope tagging contended waits on this thread with a callsite.
class TraceSiteScope {
 public:
  explicit TraceSiteScope(TraceSite site)
      : prev_(internal::t_trace_site) {
    internal::t_trace_site = static_cast<std::uint16_t>(site);
  }
  ~TraceSiteScope() { internal::t_trace_site = prev_; }
  TraceSiteScope(const TraceSiteScope&) = delete;
  TraceSiteScope& operator=(const TraceSiteScope&) = delete;

 private:
  std::uint16_t prev_;
};

/// One decoded, seqlock-validated ring event (Collect() output).
struct CollectedEvent {
  std::uint64_t ts_ns = 0;   // event start, NowNanos() clock
  std::uint64_t dur_ns = 0;  // 0 for instant events
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  TraceEventType type = TraceEventType::kNone;
  TraceSite site = TraceSite::kUnknown;
  std::uint32_t tid = 0;     // small recorder-assigned thread id
};

/// Cumulative contended-wait stats for one TraceSite (ContentionSnapshot()).
struct ContentionEntry {
  TraceSite site = TraceSite::kUnknown;
  std::uint64_t count = 0;
  std::uint64_t total_wait_ns = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

/// Process-wide recorder. Threads write through a thread-local ring handle;
/// rings live forever (retired rings are recycled for new threads) so the
/// signal-time reader can walk them without synchronization beyond a
/// push-only list head. Mirrors the CsProfiler singleton shape.
class FlightRecorder {
 public:
  /// Slots per thread ring; power of two. 4096 * 48B = 192KiB per thread.
  static constexpr std::size_t kRingSlots = 4096;

  static FlightRecorder& Global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event to the calling thread's ring (wait-free; drops the
  /// oldest slot on wrap). `ts_ns` is the event start so spans recorded at
  /// completion land at the right place on the timeline.
  static void Emit(TraceEventType type, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, std::uint64_t arg0,
                   std::uint64_t arg1);

  /// Contended page-latch acquire: feeds the per-site contention stats
  /// unconditionally and the ring when `wait_ns` clears the threshold.
  /// Called from Latch::Acquire* with the wait already measured.
  static void RecordLatchWait(PageClass page_class, std::uint64_t start_ns,
                              std::uint64_t wait_ns);

  /// Contended TrackedMutex acquire (same contract, CsCategory flavor).
  static void RecordCsWait(CsCategory category, std::uint64_t start_ns,
                           std::uint64_t wait_ns);

  /// Master switch (PLP_TRACE=0 disables at startup; tests toggle it).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Minimum contended wait that earns a ring event (site stats always
  /// accumulate). Default 1us, PLP_TRACE_WAIT_NS at startup.
  void SetWaitThresholdNs(std::uint64_t ns) {
    wait_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t wait_threshold_ns() const {
    return wait_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Events overwritten before any reader saw them (ring wraps), summed
  /// over all threads. Exported as the `trace.dropped_events` gauge.
  std::uint64_t dropped_events() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }

  /// Decodes every valid slot across all rings. Slots being overwritten
  /// concurrently fail seqlock validation and are skipped, never torn.
  std::vector<CollectedEvent> Collect() const;

  /// Chrome-trace (Perfetto-loadable) JSON of Collect(), one event per
  /// line, microsecond timestamps, per-thread metadata names.
  std::string ExportChromeTraceJson() const;
  Status ExportChromeTrace(const std::string& path) const;

  /// Per-site contended-wait ranking, sorted by total wait descending.
  /// Sites with zero waits are omitted.
  std::vector<ContentionEntry> ContentionSnapshot() const;

  /// Human-readable contention ranking (the stats.ToText() section).
  std::string ContentionReportText() const;

  /// Async-signal-safe: writes the last `per_thread` events of every ring
  /// to `fd` with write(2) only (no malloc, no locks, no stdio). Used by
  /// the fatal-signal handler and the debug pin-leak trap.
  void DumpBlackBox(int fd, std::size_t per_thread = 32) const;

  /// Installs DumpBlackBox-on-fatal-signal handlers (SIGSEGV/BUS/ILL/FPE/
  /// ABRT) once per process. Signals already claimed by a sanitizer or
  /// test harness (non-default disposition) are left alone.
  static void InstallCrashHandlers();

  /// Test-only: clears ring heads, drop counters and site stats. Racy
  /// against concurrent writers by design (same contract as
  /// MetricsRegistry::Reset) — call it quiesced.
  void ResetForTest();

 private:
  friend struct ThreadRingHolder;

  // One ring slot. All fields atomic so concurrent overwrite-during-read
  // is a skipped slot, not a data race. seq follows the seqlock protocol:
  // odd = write in progress, 2*(i+1) = event i committed.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> dur{0};
    std::atomic<std::uint64_t> arg0{0};
    std::atomic<std::uint64_t> arg1{0};
    std::atomic<std::uint64_t> meta{0};  // type | site<<16
  };

  struct ThreadRing {
    Slot slots[kRingSlots];
    /// Next event index for the owning thread (monotonic, not masked).
    std::atomic<std::uint64_t> head{0};
    /// Owning thread still alive? Retired rings are recycled.
    std::atomic<bool> active{false};
    std::uint32_t tid = 0;
    ThreadRing* next = nullptr;  // push-only list, set before publish
  };

  struct SiteStats {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_wait_ns{0};
    std::atomic<std::uint64_t> max_wait_ns{0};
    /// log2 buckets of wait microseconds (same shape as registry
    /// histograms; 40 buckets cover ~13 days).
    std::atomic<std::uint64_t> wait_us_buckets[40];
  };

  FlightRecorder();

  static ThreadRing* LocalRing();
  ThreadRing* AcquireRing();
  void RecordSiteWait(std::uint16_t site, std::uint64_t wait_ns);
  void CollectRing(const ThreadRing& ring, std::size_t max_events,
                   std::vector<CollectedEvent>* out) const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> wait_threshold_ns_{1000};
  std::atomic<std::uint64_t> dropped_total_{0};

  /// Head of the all-rings list. Readers traverse with one acquire load;
  /// push/recycle serialize on reg_lock_.
  std::atomic<ThreadRing*> all_rings_{nullptr};
  Spinlock reg_lock_;
  std::uint32_t next_tid_ PLP_GUARDED_BY(reg_lock_) = 1;

  SiteStats site_stats_[kNumTraceSites];
};

}  // namespace plp

#endif  // PLP_METRICS_FLIGHT_RECORDER_H_
