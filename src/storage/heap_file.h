// Heap files: collections of slotted pages addressed by RID.
//
// Three access disciplines mirror the paper's heap-page designs (§3.3):
//  * kShared          — any thread may touch any page; pages are latched
//                       and placement uses the central free-space map
//                       (conventional, Logical-only, PLP-Regular).
//  * kPartitionOwned  — each page is owned by one logical partition
//                       (PLP-Partition); accesses are latch-free.
//  * kLeafOwned       — each page is owned by one MRBTree leaf
//                       (PLP-Leaf); accesses are latch-free.
// In the owned modes the owner tag is stored in the page header and
// placement goes through per-owner page lists.
#ifndef PLP_STORAGE_HEAP_FILE_H_
#define PLP_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/free_space_map.h"
#include "src/storage/slotted_page.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

enum class HeapMode { kShared, kPartitionOwned, kLeafOwned };

class HeapFile {
 public:
  /// `file_id` tags every allocated page frame (and its on-disk slot
  /// header) with the owning heap file so page lists can be rebuilt at
  /// restart; UINT32_MAX for throwaway in-memory files.
  HeapFile(BufferPool* pool, HeapMode mode,
           std::uint32_t file_id = UINT32_MAX);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  HeapMode mode() const { return mode_; }
  LatchPolicy latch_policy() const { return latch_policy_; }
  std::uint32_t file_id() const { return file_id_; }
  BufferPool* pool() { return pool_; }

  /// Latch-coupled logging hook: runs after a mutation while the page is
  /// still pinned and exclusively held, so the caller can append the WAL
  /// record and stamp the page LSN before an eviction could steal the
  /// frame (the modify->log window is closed; see docs/durability.md).
  using MutationHook = std::function<void(Page*, SlotId)>;

  /// Shared-mode insert: picks a page via the free-space map.
  Status Insert(Slice record, Rid* rid, const MutationHook& logged = {});

  /// Owned-mode insert: places the record on a page owned by `owner`
  /// (a partition id or a leaf page id), allocating one if needed.
  Status InsertOwned(std::uint32_t owner, Slice record, Rid* rid,
                     const MutationHook& logged = {});

  Status Get(Rid rid, std::string* out);
  Status Update(Rid rid, Slice record, const MutationHook& logged = {});
  Status Delete(Rid rid, const MutationHook& logged = {});

  /// Full scan in page order. Under PLP this is distributed across
  /// partition workers by the engine; the heap file itself just iterates.
  void Scan(const std::function<void(Rid, Slice)>& fn);

  /// Scans only pages owned by `owner` (owned modes).
  void ScanOwned(std::uint32_t owner, const std::function<void(Rid, Slice)>& fn);

  /// Moves one record to a page owned by `new_owner`. Unlogged: durable
  /// callers (leaf splits, repartitioning) instead run the logged
  /// copy -> re-point -> release sequence through InsertOwned/Delete
  /// with SystemHeapLogHook.
  Status Move(Rid from, std::uint32_t new_owner, Rid* new_rid);

  /// Abort-compensation for Delete: puts `record` back at its original
  /// RID if that slot is still free; falls back to a fresh owned/shared
  /// placement when the slot was reused. `out_rid` receives the final
  /// location either way. `logged` must append a system (redo-only) WAL
  /// record in durable databases: the fallback places the record at a RID
  /// recovery could not otherwise reproduce — the paired index re-point
  /// is logged, so an unlogged restore would leave a committed key
  /// dangling after a crash.
  Status RestoreAt(Rid rid, std::uint32_t owner, Slice record, Rid* out_rid,
                   const MutationHook& logged = {});

  /// All pages owned by `owner`, in allocation order.
  std::vector<PageId> OwnedPages(std::uint32_t owner);

  /// Reassigns every page owned by `old_owner` to `new_owner` without
  /// moving records (PLP-Partition repartition fast path when splitting
  /// whole owners).
  void RetagOwner(std::uint32_t old_owner, std::uint32_t new_owner);

  std::size_t num_pages() const;
  std::vector<PageId> AllPages();

  /// Restart paths: registers an already-materialized page (from the data
  /// file or from log replay) with this file's page lists. Idempotent.
  void AdoptPage(PageId id, std::uint32_t owner);

  /// Restart re-tagging (owned modes): moves `id` to `new_owner`'s page
  /// list and restamps the page + frame owner tags. Used after recovery
  /// when the rightful owner is re-derived from the primary index (owner
  /// tags on disk may predate the crash's last structure modifications).
  void RetagPage(PageId id, std::uint32_t new_owner);

  /// Primes the free-space map from the current page contents (shared
  /// mode; called once after restart recovery).
  void PrimeFreeSpace();

 private:
  struct OwnerPages {
    std::vector<PageId> pages;
  };

  PageRef AllocatePage(std::uint32_t owner);
  PageRef FixForOp(PageId id);
  OwnerPages* GetOwnerPages(std::uint32_t owner);

  BufferPool* pool_;
  const HeapMode mode_;
  const LatchPolicy latch_policy_;
  const std::uint32_t file_id_;

  FreeSpaceMap fsm_;  // shared mode placement

  TrackedMutex meta_mu_{CsCategory::kMetadata};
  std::vector<PageId> pages_ PLP_GUARDED_BY(meta_mu_);
  std::unordered_map<std::uint32_t, std::unique_ptr<OwnerPages>> owners_
      PLP_GUARDED_BY(meta_mu_);
};

}  // namespace plp

#endif  // PLP_STORAGE_HEAP_FILE_H_
