// Windowed throughput sampling for time-series experiments (Figure 8).
#ifndef PLP_METRICS_THROUGHPUT_PROBE_H_
#define PLP_METRICS_THROUGHPUT_PROBE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace plp {

class ThroughputProbe {
 public:
  struct Sample {
    double at_seconds = 0;   // window end, relative to Start()
    double ktps = 0;         // thousands of transactions per second
  };

  /// Workers call this once per completed transaction.
  void Tick() { count_.fetch_add(1, std::memory_order_relaxed); }

  /// Marks the series origin and clears samples.
  void Start();

  /// Records one window sample; call at a fixed cadence.
  void SampleNow();

  const std::vector<Sample>& samples() const { return samples_; }
  std::uint64_t total() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::uint64_t start_ns_ = 0;
  std::uint64_t last_sample_ns_ = 0;
  std::uint64_t last_count_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace plp

#endif  // PLP_METRICS_THROUGHPUT_PROBE_H_
