#include "src/workload/tpcc.h"

#include <cstring>

#include "src/common/key_encoding.h"

namespace plp {

namespace {
std::string Record(std::size_t size, std::uint64_t tag) {
  std::string rec(size, 'c');
  std::memcpy(rec.data(), &tag, 8);
  return rec;
}
}  // namespace

std::string TpccWorkload::WarehouseKey(std::uint32_t w) { return KeyU32(w); }

std::string TpccWorkload::DistrictKey(std::uint32_t w, std::uint32_t d) {
  KeyBuilder kb;
  kb.AddU32(w).AddU32(d);
  return kb.Take();
}

std::string TpccWorkload::CustomerKey(std::uint32_t w, std::uint32_t d,
                                      std::uint32_t c) {
  KeyBuilder kb;
  kb.AddU32(w).AddU32(d).AddU32(c);
  return kb.Take();
}

std::string TpccWorkload::StockKey(std::uint32_t w, std::uint32_t i) {
  KeyBuilder kb;
  kb.AddU32(w).AddU32(i);
  return kb.Take();
}

std::string TpccWorkload::ItemKey(std::uint32_t i) { return KeyU32(i); }

std::string TpccWorkload::OrderKey(std::uint32_t w, std::uint32_t d,
                                   std::uint64_t o) {
  KeyBuilder kb;
  kb.AddU32(w).AddU32(d).AddU64(o);
  return kb.Take();
}

std::string TpccWorkload::OrderLineKey(std::uint32_t w, std::uint32_t d,
                                       std::uint64_t o, std::uint32_t line) {
  KeyBuilder kb;
  kb.AddU32(w).AddU32(d).AddU64(o).AddU32(line);
  return kb.Take();
}

Status TpccWorkload::Load() {
  auto wh_boundaries = [&] {
    std::vector<std::string> out = {""};
    for (int p = 1; p < config_.partitions; ++p) {
      out.push_back(KeyU32(1 + static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(config_.warehouses) * p /
          config_.partitions)));
    }
    return out;
  }();
  auto item_boundaries = [&] {
    std::vector<std::string> out = {""};
    for (int p = 1; p < config_.partitions; ++p) {
      out.push_back(KeyU32(1 + static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(config_.items) * p /
          config_.partitions)));
    }
    return out;
  }();

  for (const char* name :
       {kWarehouse, kDistrict, kCustomer, kStock, kOrder, kOrderLine}) {
    auto r = engine_->CreateTable(name, wh_boundaries);
    if (!r.ok()) return r.status();
  }
  {
    auto r = engine_->CreateTable(kItem, item_boundaries);
    if (!r.ok()) return r.status();
  }

  for (std::uint32_t w = 1; w <= config_.warehouses; ++w) {
    TxnRequest req;
    const std::string wkey = WarehouseKey(w);
    req.Add(0, kWarehouse, wkey, [wkey, w](ExecContext& ctx) {
      return ctx.Insert(wkey, Record(90, w));
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
    for (std::uint32_t d = 1; d <= config_.districts_per_wh; ++d) {
      TxnRequest dreq;
      const std::string dkey = DistrictKey(w, d);
      dreq.Add(0, kDistrict, dkey, [dkey, d](ExecContext& ctx) {
        return ctx.Insert(dkey, Record(95, d));
      });
      for (std::uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        const std::string ckey = CustomerKey(w, d, c);
        dreq.Add(0, kCustomer, ckey, [ckey, c](ExecContext& ctx) {
          return ctx.Insert(ckey, Record(200, c));
        });
      }
      PLP_RETURN_IF_ERROR(engine_->Execute(dreq));
    }
    for (std::uint32_t i = 1; i <= config_.items; ++i) {
      TxnRequest sreq;
      const std::string skey = StockKey(w, i);
      sreq.Add(0, kStock, skey, [skey, i](ExecContext& ctx) {
        return ctx.Insert(skey, Record(120, i));
      });
      PLP_RETURN_IF_ERROR(engine_->Execute(sreq));
    }
  }
  for (std::uint32_t i = 1; i <= config_.items; ++i) {
    TxnRequest req;
    const std::string ikey = ItemKey(i);
    req.Add(0, kItem, ikey, [ikey, i](ExecContext& ctx) {
      return ctx.Insert(ikey, Record(80, i));
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  return Status::OK();
}

TxnRequest TpccWorkload::NewOrder(Rng& rng) {
  const std::uint32_t w =
      static_cast<std::uint32_t>(rng.Range(1, config_.warehouses));
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.Range(1, config_.districts_per_wh));
  const std::uint32_t c = static_cast<std::uint32_t>(
      NuRand(rng, 1023, 1, config_.customers_per_district));
  const std::uint64_t order_id =
      next_order_.fetch_add(1, std::memory_order_relaxed);
  const int lines = static_cast<int>(rng.Range(5, 15));

  TxnRequest req;
  const std::string dkey = DistrictKey(w, d);
  req.Add(0, kDistrict, dkey, [dkey](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(dkey, &payload));
    payload[9]++;  // next_o_id surrogate
    return ctx.Update(dkey, payload);
  });
  const std::string ckey = CustomerKey(w, d, c);
  req.Add(0, kCustomer, ckey, [ckey](ExecContext& ctx) {
    std::string payload;
    return ctx.Read(ckey, &payload);
  });
  const std::string okey = OrderKey(w, d, order_id);
  req.Add(1, kOrder, okey, [okey, order_id](ExecContext& ctx) {
    return ctx.Insert(okey, Record(60, order_id));
  });
  for (int l = 0; l < lines; ++l) {
    const std::uint32_t item = static_cast<std::uint32_t>(
        NuRand(rng, 8191, 1, config_.items));
    const std::string ikey = ItemKey(item);
    req.Add(1, kItem, ikey, [ikey](ExecContext& ctx) {
      std::string payload;
      return ctx.Read(ikey, &payload);
    });
    const std::string skey = StockKey(w, item);
    req.Add(1, kStock, skey, [skey](ExecContext& ctx) {
      std::string payload;
      PLP_RETURN_IF_ERROR(ctx.Read(skey, &payload));
      payload[9]++;  // quantity surrogate
      return ctx.Update(skey, payload);
    });
    const std::string olkey =
        OrderLineKey(w, d, order_id, static_cast<std::uint32_t>(l));
    req.Add(1, kOrderLine, olkey, [olkey](ExecContext& ctx) {
      return ctx.Insert(olkey, Record(70, 0));
    });
  }
  return req;
}

TxnRequest TpccWorkload::Payment(Rng& rng) {
  const std::uint32_t w =
      static_cast<std::uint32_t>(rng.Range(1, config_.warehouses));
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.Range(1, config_.districts_per_wh));
  const std::uint32_t c = static_cast<std::uint32_t>(
      NuRand(rng, 1023, 1, config_.customers_per_district));

  TxnRequest req;
  const std::string wkey = WarehouseKey(w);
  req.Add(0, kWarehouse, wkey, [wkey](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(wkey, &payload));
    payload[9]++;  // ytd surrogate
    return ctx.Update(wkey, payload);
  });
  const std::string dkey = DistrictKey(w, d);
  req.Add(0, kDistrict, dkey, [dkey](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(dkey, &payload));
    payload[10]++;
    return ctx.Update(dkey, payload);
  });
  const std::string ckey = CustomerKey(w, d, c);
  req.Add(0, kCustomer, ckey, [ckey](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(ckey, &payload));
    payload[10]++;
    return ctx.Update(ckey, payload);
  });
  return req;
}

TxnRequest TpccWorkload::NextTransaction(Rng& rng) {
  return rng.Percent(50) ? NewOrder(rng) : Payment(rng);
}

}  // namespace plp
