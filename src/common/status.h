// Status-based error handling (no exceptions on hot paths).
#ifndef PLP_COMMON_STATUS_H_
#define PLP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace plp {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kNoSpace = 4,
  kAborted = 5,        // transaction aborted (e.g. deadlock victim)
  kTimedOut = 6,       // lock wait timeout
  kCorruption = 7,     // on-page invariant violated
  kNotSupported = 8,
  kInternal = 9,
  kRetry = 10,         // admission control rejected; resubmit later
};

/// Lightweight success/error result. OK carries no allocation.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Retry(std::string msg = "") {
    return Status(StatusCode::kRetry, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsRetry() const { return code_ == StatusCode::kRetry; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Propagate a non-OK status to the caller.
#define PLP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::plp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace plp

#endif  // PLP_COMMON_STATUS_H_
