// Tests for the PLP extension features: parallel heap scans distributed
// to partition owners (Section 3.3) and non-partition-aligned secondary
// index accesses routed to owning threads (Appendix E).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/key_encoding.h"
#include "src/engine/partitioned_engine.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

class PlpFeaturesTest : public ::testing::TestWithParam<SystemDesign> {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = GetParam();
    config.num_workers = 4;
    engine_ = std::make_unique<PartitionedEngine>(config);
    engine_->Start();
    auto result = engine_->CreateTable(
        "t", {"", KeyU32(250), KeyU32(500), KeyU32(750)});
    ASSERT_TRUE(result.ok());
    table_ = result.value();
  }
  void TearDown() override { engine_->Stop(); }

  Status Insert(std::uint32_t k, const std::string& value) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, value](ExecContext& ctx) {
      return ctx.Insert(key, value);
    });
    return engine_->Execute(req);
  }

  std::unique_ptr<PartitionedEngine> engine_;
  Table* table_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(
    Designs, PlpFeaturesTest,
    ::testing::Values(SystemDesign::kPlpRegular, SystemDesign::kPlpPartition,
                      SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
        default: return "Other";
      }
    });

TEST_P(PlpFeaturesTest, ParallelScanVisitsEverythingInOrder) {
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(Insert(k, "row-" + std::to_string(k)).ok());
  }
  std::vector<std::uint32_t> keys;
  ASSERT_TRUE(engine_->ParallelScan("t", [&](Slice key, Slice payload) {
    keys.push_back(DecodeU32(key));
    EXPECT_EQ(payload.ToString(), "row-" + std::to_string(keys.back()));
  }).ok());
  ASSERT_EQ(keys.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(keys[i], i);
}

TEST_P(PlpFeaturesTest, ParallelScanIsLatchFreeOnPlpHeaps) {
  for (std::uint32_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(Insert(k, "x").ok());
  }
  CsProfiler::Global().Reset();
  int rows = 0;
  ASSERT_TRUE(
      engine_->ParallelScan("t", [&](Slice, Slice) { ++rows; }).ok());
  EXPECT_EQ(rows, 200);
  const CsCounts counts = CsProfiler::Global().Collect();
  EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kIndex)], 0u);
  if (GetParam() != SystemDesign::kPlpRegular) {
    EXPECT_EQ(counts.latches[static_cast<int>(PageClass::kHeap)], 0u);
  }
}

TEST_P(PlpFeaturesTest, ParallelScanEmptyTable) {
  int rows = 0;
  ASSERT_TRUE(
      engine_->ParallelScan("t", [&](Slice, Slice) { ++rows; }).ok());
  EXPECT_EQ(rows, 0);
}

TEST_P(PlpFeaturesTest, SecondaryLookupRoutesToOwners) {
  // Secondary key: first byte of the payload ("category").
  ASSERT_TRUE(table_
                  ->AddSecondary("by_cat",
                                 [](Slice, Slice payload) {
                                   return std::string(1, payload.data()[0]);
                                 })
                  .ok());
  // Spread matching records across all four partitions.
  ASSERT_TRUE(Insert(10, "apple").ok());
  ASSERT_TRUE(Insert(300, "apricot").ok());
  ASSERT_TRUE(Insert(600, "avocado").ok());
  ASSERT_TRUE(Insert(900, "almond").ok());
  ASSERT_TRUE(Insert(450, "banana").ok());

  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(engine_->SecondaryLookup("t", "by_cat", "a", &results).ok());
  ASSERT_EQ(results.size(), 4u);
  std::map<std::uint32_t, std::string> by_key;
  for (auto& [key, payload] : results) by_key[DecodeU32(key)] = payload;
  EXPECT_EQ(by_key[10], "apple");
  EXPECT_EQ(by_key[300], "apricot");
  EXPECT_EQ(by_key[600], "avocado");
  EXPECT_EQ(by_key[900], "almond");
}

TEST_P(PlpFeaturesTest, SecondaryLookupNoMatches) {
  ASSERT_TRUE(table_
                  ->AddSecondary("by_cat",
                                 [](Slice, Slice payload) {
                                   return std::string(1, payload.data()[0]);
                                 })
                  .ok());
  ASSERT_TRUE(Insert(10, "apple").ok());
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(engine_->SecondaryLookup("t", "by_cat", "z", &results).ok());
  EXPECT_TRUE(results.empty());
}

TEST_P(PlpFeaturesTest, SecondaryLookupUnknownIndexFails) {
  std::vector<std::pair<std::string, std::string>> results;
  EXPECT_FALSE(engine_->SecondaryLookup("t", "nope", "a", &results).ok());
  EXPECT_FALSE(
      engine_->SecondaryLookup("missing", "by_cat", "a", &results).ok());
}

TEST_P(PlpFeaturesTest, SecondaryStaysInSyncThroughRepartition) {
  ASSERT_TRUE(table_
                  ->AddSecondary("by_cat",
                                 [](Slice, Slice payload) {
                                   return std::string(1, payload.data()[0]);
                                 })
                  .ok());
  for (std::uint32_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(Insert(k, (k % 2 ? "odd-" : "even-") + std::to_string(k))
                    .ok());
  }
  ASSERT_TRUE(
      engine_->Repartition("t", {"", KeyU32(100), KeyU32(400)}).ok());
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(engine_->SecondaryLookup("t", "by_cat", "o", &results).ok());
  EXPECT_EQ(results.size(), 250u);
  for (auto& [key, payload] : results) {
    EXPECT_EQ(payload.substr(0, 4), "odd-");
  }
}

}  // namespace
}  // namespace plp
