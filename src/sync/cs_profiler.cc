#include "src/sync/cs_profiler.h"

#include <array>
#include <atomic>
#include <mutex>
#include <vector>

namespace plp {

const char* CsCategoryName(CsCategory c) {
  switch (c) {
    case CsCategory::kLockMgr: return "Lock mgr";
    case CsCategory::kPageLatch: return "Page Latches";
    case CsCategory::kBufferPool: return "Bpool";
    case CsCategory::kMetadata: return "Metadata";
    case CsCategory::kLogMgr: return "Log mgr";
    case CsCategory::kXctMgr: return "Xct mgr";
    case CsCategory::kMessagePassing: return "Message passing";
    case CsCategory::kUncategorized: return "Uncategorized";
  }
  return "?";
}

const char* PageClassName(PageClass c) {
  switch (c) {
    case PageClass::kIndex: return "INDEX";
    case PageClass::kHeap: return "HEAP";
    case PageClass::kCatalog: return "CATALOG/SPACE";
  }
  return "?";
}

std::uint64_t CsCounts::TotalEntries() const {
  std::uint64_t t = 0;
  for (auto v : entries) t += v;
  return t;
}

std::uint64_t CsCounts::TotalContended() const {
  std::uint64_t t = 0;
  for (auto v : contended) t += v;
  return t;
}

std::uint64_t CsCounts::TotalLatches() const {
  std::uint64_t t = 0;
  for (auto v : latches) t += v;
  return t;
}

CsCounts& CsCounts::operator+=(const CsCounts& other) {
  for (int i = 0; i < kNumCsCategories; ++i) {
    entries[i] += other.entries[i];
    contended[i] += other.contended[i];
    wait_ns[i] += other.wait_ns[i];
  }
  for (int i = 0; i < kNumPageClasses; ++i) {
    latches[i] += other.latches[i];
    latches_contended[i] += other.latches_contended[i];
    latch_wait_ns[i] += other.latch_wait_ns[i];
  }
  return *this;
}

CsCounts CsCounts::operator-(const CsCounts& other) const {
  CsCounts out;
  for (int i = 0; i < kNumCsCategories; ++i) {
    out.entries[i] = entries[i] - other.entries[i];
    out.contended[i] = contended[i] - other.contended[i];
    out.wait_ns[i] = wait_ns[i] - other.wait_ns[i];
  }
  for (int i = 0; i < kNumPageClasses; ++i) {
    out.latches[i] = latches[i] - other.latches[i];
    out.latches_contended[i] = latches_contended[i] - other.latches_contended[i];
    out.latch_wait_ns[i] = latch_wait_ns[i] - other.latch_wait_ns[i];
  }
  return out;
}

namespace {
std::atomic<bool> g_enabled{true};

/// Thread-local counter block mirroring CsCounts with relaxed atomics.
struct AtomicCounts {
  std::array<std::atomic<std::uint64_t>, kNumCsCategories> entries{};
  std::array<std::atomic<std::uint64_t>, kNumCsCategories> contended{};
  std::array<std::atomic<std::uint64_t>, kNumCsCategories> wait_ns{};
  std::array<std::atomic<std::uint64_t>, kNumPageClasses> latches{};
  std::array<std::atomic<std::uint64_t>, kNumPageClasses> latches_contended{};
  std::array<std::atomic<std::uint64_t>, kNumPageClasses> latch_wait_ns{};

  CsCounts Snapshot() const {
    CsCounts out;
    for (int i = 0; i < kNumCsCategories; ++i) {
      out.entries[i] = entries[i].load(std::memory_order_relaxed);
      out.contended[i] = contended[i].load(std::memory_order_relaxed);
      out.wait_ns[i] = wait_ns[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kNumPageClasses; ++i) {
      out.latches[i] = latches[i].load(std::memory_order_relaxed);
      out.latches_contended[i] =
          latches_contended[i].load(std::memory_order_relaxed);
      out.latch_wait_ns[i] = latch_wait_ns[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  void Zero() {
    for (int i = 0; i < kNumCsCategories; ++i) {
      entries[i].store(0, std::memory_order_relaxed);
      contended[i].store(0, std::memory_order_relaxed);
      wait_ns[i].store(0, std::memory_order_relaxed);
    }
    for (int i = 0; i < kNumPageClasses; ++i) {
      latches[i].store(0, std::memory_order_relaxed);
      latches_contended[i].store(0, std::memory_order_relaxed);
      latch_wait_ns[i].store(0, std::memory_order_relaxed);
    }
  }
};

inline void Bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  // A real RMW: Reset() may zero a live thread's counter concurrently,
  // and a load+store pair would resurrect the pre-reset value.
  c.fetch_add(by, std::memory_order_relaxed);
}

struct Registry {
  std::mutex mu;
  std::vector<AtomicCounts*> live;
  CsCounts retired;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}
}  // namespace

// Per-thread counters are relaxed atomics: the owning thread is the only
// writer (plain increments in effect), but Collect()/Reset() touch them
// from the collector thread, so the accesses must be data-race free for
// the ThreadSanitizer CI job that gates the async engine machinery.
struct CsProfiler::ThreadState {
  AtomicCounts counts;

  ThreadState() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.push_back(&counts);
  }
  ~ThreadState() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> g(r.mu);
    r.retired += counts.Snapshot();
    for (auto it = r.live.begin(); it != r.live.end(); ++it) {
      if (*it == &counts) {
        r.live.erase(it);
        break;
      }
    }
  }
};

CsProfiler& CsProfiler::Global() {
  static CsProfiler* p = new CsProfiler();
  return *p;
}

CsProfiler::ThreadState& CsProfiler::Local() {
  thread_local ThreadState state;
  return state;
}

void CsProfiler::Record(CsCategory category, bool contended,
                        std::uint64_t wait_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  AtomicCounts& c = Local().counts;
  Bump(c.entries[static_cast<int>(category)]);
  if (contended) {
    Bump(c.contended[static_cast<int>(category)]);
    Bump(c.wait_ns[static_cast<int>(category)], wait_ns);
  }
}

void CsProfiler::RecordLatch(PageClass page_class, bool contended,
                             std::uint64_t wait_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  AtomicCounts& c = Local().counts;
  Bump(c.entries[static_cast<int>(CsCategory::kPageLatch)]);
  Bump(c.latches[static_cast<int>(page_class)]);
  if (contended) {
    Bump(c.contended[static_cast<int>(CsCategory::kPageLatch)]);
    Bump(c.wait_ns[static_cast<int>(CsCategory::kPageLatch)], wait_ns);
    Bump(c.latches_contended[static_cast<int>(page_class)]);
    Bump(c.latch_wait_ns[static_cast<int>(page_class)], wait_ns);
  }
}

CsCounts CsProfiler::Collect() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> g(r.mu);
  CsCounts out = r.retired;
  for (AtomicCounts* c : r.live) out += c->Snapshot();
  return out;
}

void CsProfiler::Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> g(r.mu);
  r.retired = CsCounts{};
  for (AtomicCounts* c : r.live) c->Zero();
}

void CsProfiler::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool CsProfiler::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace plp
