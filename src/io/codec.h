// Little-endian length-prefixed encode/decode helpers shared by the
// durable-metadata writers (checkpoint images, the catalog), plus an
// fsync-then-rename atomic file write.
#ifndef PLP_IO_CODEC_H_
#define PLP_IO_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/status.h"

namespace plp::io {

inline void PutU32(std::string* s, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s->append(b, 4);
}

inline void PutU64(std::string* s, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s->append(b, 8);
}

inline void PutBytes(std::string* s, const std::string& v) {
  PutU32(s, static_cast<std::uint32_t>(v.size()));
  s->append(v);
}

/// Bounds-checked sequential reader over an encoded buffer.
class Reader {
 public:
  Reader(const char* p, std::size_t n) : p_(p), end_(p + n) {}

  bool U8(std::uint8_t* v) {
    if (end_ - p_ < 1) return false;
    *v = static_cast<std::uint8_t>(*p_);
    p_ += 1;
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (end_ - p_ < 4) return false;
    std::memcpy(v, p_, 4);
    p_ += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (end_ - p_ < 8) return false;
    std::memcpy(v, p_, 8);
    p_ += 8;
    return true;
  }
  bool Bytes(std::string* v) {
    std::uint32_t n;
    if (!U32(&n)) return false;
    if (end_ - p_ < static_cast<std::ptrdiff_t>(n)) return false;
    v->assign(p_, n);
    p_ += n;
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

/// Writes `blob` to `path` durably: temp file, fwrite, fsync, rename.
/// Readers never observe a torn or empty file after a crash.
Status AtomicWriteFile(const std::string& path, const std::string& blob);

}  // namespace plp::io

#endif  // PLP_IO_CODEC_H_
