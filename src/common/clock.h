// Monotonic timing helpers used by the metrics layer.
#ifndef PLP_COMMON_CLOCK_H_
#define PLP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace plp {

/// Nanoseconds from the steady (monotonic) clock.
inline std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double NanosToMillis(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Accumulates elapsed nanoseconds into *sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t* sink)
      : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t* sink_;
  std::uint64_t start_;
};

}  // namespace plp

#endif  // PLP_COMMON_CLOCK_H_
