// The partition manager (Section 3.1): owns the partition workers, routes
// actions so that every piece of data is touched by exactly one thread,
// assembles multi-partition transactions through rendezvous points, and
// quiesces workers for repartitioning.
#ifndef PLP_ENGINE_PARTITION_MANAGER_H_
#define PLP_ENGINE_PARTITION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/engine/action.h"
#include "src/engine/database.h"
#include "src/sync/mpsc_queue.h"

namespace plp {

/// Simple completion gate for one phase of a transaction (the rendezvous
/// point between phases).
class CountdownEvent {
 public:
  explicit CountdownEvent(int count) : remaining_(count) {}
  void Signal() {
    std::lock_guard<std::mutex> g(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

class PartitionManager {
 public:
  /// Builds the ExecContext a worker uses to run one action.
  /// `owner_uid` is the stable global uid of the partition.
  using CtxFactory = std::function<std::unique_ptr<ExecContext>(
      Table* table, PartitionId partition, std::uint32_t owner_uid,
      Transaction* txn, std::vector<std::function<Status()>>* undo_sink)>;

  PartitionManager(Database* db, int num_workers, CtxFactory factory);
  ~PartitionManager();

  void Start();
  void Stop();

  /// Registers routing for a table. Each partition gets a stable uid and a
  /// fixed worker assignment.
  void RegisterTable(Table* table, std::vector<std::string> boundaries);

  /// Replaces a table's routing (call between Quiesce/Resume). Boundaries
  /// present before keep their partition uid; new ones get fresh uids.
  void SetRouting(Table* table, std::vector<std::string> boundaries);

  /// Runs a transaction: begin, dispatch phases to workers with a
  /// rendezvous between them, then commit (or route compensations back to
  /// the owning workers and abort).
  Status Execute(TxnRequest& req);

  /// Parks every worker (they finish in-flight actions first). Pending
  /// queue items wait until Resume.
  void Quiesce();
  void Resume();

  /// Page-cleaner delegate (Appendix A.4): routes a dirty page to its
  /// owning worker's high-priority system queue. False when the page is
  /// unowned (cleaner handles it directly).
  bool DelegateClean(PageId pid);

  /// Submits a task to a worker's high-priority system queue.
  void SubmitSystemTask(int worker, std::function<void()> task);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Routing introspection.
  PartitionId RoutePartition(Table* table, Slice key);
  std::uint32_t PartitionUid(Table* table, PartitionId p);
  std::vector<std::string> Boundaries(Table* table);
  int WorkerForUid(std::uint32_t uid);

  /// Per-partition action counts since the last ResetLoad (repartitioning
  /// decisions, Section 4.5).
  std::vector<std::uint64_t> LoadSnapshot(Table* table);
  void ResetLoad(Table* table);

  /// Stable uids start above this bit so they never collide with page ids
  /// (the cleaner distinguishes "leaf page id" tags from partition uids).
  static constexpr std::uint32_t kUidBit = 0x80000000u;

 private:
  struct Task {
    std::function<void()> fn;
  };

  struct Worker {
    MpscQueue<Task> queue;
    std::thread thread;
  };

  struct TableRouting {
    Table* table = nullptr;
    std::vector<std::string> boundaries;
    std::vector<std::uint32_t> uids;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> load;
  };

  void WorkerLoop(int index);
  TableRouting* RoutingFor(Table* table);

  Database* db_;
  CtxFactory factory_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};

  mutable std::shared_mutex routing_mu_;
  std::unordered_map<Table*, std::unique_ptr<TableRouting>> routing_;
  std::unordered_map<std::uint32_t, int> worker_by_uid_;
  std::uint32_t next_uid_ = kUidBit;

  // Quiesce support.
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  bool quiescing_ = false;
  int parked_ = 0;
};

}  // namespace plp

#endif  // PLP_ENGINE_PARTITION_MANAGER_H_
