#include "src/engine/engine.h"

namespace plp {

TxnHandle Engine::Submit(TxnRequest req, TxnOptions options) {
  auto state = std::make_shared<internal::TxnShared>();
  state->callback = std::move(options.on_complete);
  state->executor = callback_executor_.get();
  TxnHandle handle(state);
  if (!gate_.Acquire(options.on_full == TxnOptions::OnFull::kBlock)) {
    internal::ResolveTxn(state, Status::Retry("engine at max_inflight"));
    return handle;
  }
  state->gate = &gate_;
  SubmitImpl(std::move(req), TxnToken(std::move(state)));
  return handle;
}

}  // namespace plp
