// Composite record operations (heap + primary index + secondaries + WAL +
// undo) shared by every execution design. Subclasses supply the logical
// concurrency control: the conventional engine takes record locks from the
// central lock manager; the partitioned designs need none because each
// partition is single-threaded.
#ifndef PLP_ENGINE_RECORD_OPS_H_
#define PLP_ENGINE_RECORD_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/engine/action.h"
#include "src/engine/database.h"
#include "src/lock/lock_mode.h"

namespace plp {

/// Encoding of a RID as an index value.
std::string RidToBytes(Rid rid);
Rid RidFromBytes(Slice bytes);

/// Builds a HeapFile::MutationHook that appends a redo-only SYSTEM heap
/// record (txn = kInvalidTxnId) and stamps the page while it is still
/// pinned+held. Used for heap-record moves during leaf splits and
/// repartitioning in durable databases: recovery repeats them as history
/// and never undoes them. `log` may be null (no-op hook, in-memory mode).
HeapFile::MutationHook SystemHeapLogHook(LogManager* log,
                                         std::uint32_t table_id,
                                         LogType type, std::string image);

class BaseExecContext : public ExecContext {
 public:
  /// `undo_sink` collects compensation closures; the caller decides where
  /// they run (inline for conventional, on the owning worker for
  /// partitioned designs). `owner_uid` tags heap pages in the owned heap
  /// modes (global partition uid; ignored for kShared heaps).
  BaseExecContext(Table* table, Transaction* txn, LogManager* log,
                  std::uint32_t owner_uid,
                  std::vector<std::function<Status()>>* undo_sink)
      : table_(table),
        txn_(txn),
        log_(log),
        owner_uid_(owner_uid),
        undo_sink_(undo_sink) {}

  Status Read(Slice key, std::string* payload) override;
  Status Insert(Slice key, Slice payload) override;
  Status Update(Slice key, Slice payload) override;
  Status Delete(Slice key) override;
  Status ScanRange(Slice start, Slice end,
                   const std::function<bool(Slice, Slice)>& fn) override;

  Transaction* txn() override { return txn_; }
  Table* table() { return table_; }

 protected:
  /// Logical concurrency control hook; default is lock-free (partitioned).
  virtual Status LockRecord(Slice key, LockMode mode) {
    (void)key;
    (void)mode;
    return Status::OK();
  }

  /// Places a new record according to the table's heap discipline.
  /// `logged` runs inside the heap op while the page is pinned+held
  /// (latch-coupled logging).
  Status PlaceRecord(Slice key, Slice payload, Rid* rid,
                     const HeapFile::MutationHook& logged);

  /// Clustered-table variants: the payload lives in the index leaf, no
  /// heap file involved (Appendix C.2).
  Status InsertClustered(Slice key, Slice payload);
  Status UpdateClustered(Slice key, Slice payload);
  Status DeleteClustered(Slice key);

  /// Appends a heap WAL record and stamps `page` while the caller still
  /// holds it exclusively (invoked from a HeapFile::MutationHook, which
  /// closes the modify->log window against eviction steals).
  void LogHeapOpOnPage(LogType type, Page* page, Rid rid, Slice redo,
                       Slice undo);
  /// Builds a MutationHook that logs `type` with the given images.
  HeapFile::MutationHook HeapLogHook(LogType type, Slice redo, Slice undo);
  /// Logical primary-index record (legacy snapshot mode and in-memory
  /// crash simulation). Persistent-index tables skip this: the tree logs
  /// its own physiological records, tagged with the transaction.
  void LogIndexOp(LogType type, Slice key, Slice value);

  void AddUndo(std::function<Status()> fn) {
    if (undo_sink_ != nullptr) undo_sink_->push_back(std::move(fn));
  }

  Table* table_;
  Transaction* txn_;
  LogManager* log_;
  std::uint32_t owner_uid_;
  std::vector<std::function<Status()>>* undo_sink_;
};

/// Conventional context: record locks through the central lock manager,
/// released at commit/abort (strict 2PL). Lock waits that time out abort
/// the transaction (deadlock resolution).
class LockingExecContext : public BaseExecContext {
 public:
  LockingExecContext(Table* table, Transaction* txn, LogManager* log,
                     LockManager* locks,
                     std::vector<std::function<Status()>>* undo_sink)
      : BaseExecContext(table, txn, log, /*owner_uid=*/UINT32_MAX, undo_sink),
        locks_(locks) {}

 protected:
  Status LockRecord(Slice key, LockMode mode) override {
    const std::string name = RecordLockName(table_->id(), key.ToString());
    Status st = locks_->Acquire(txn_->id(), name, mode);
    if (st.ok()) txn_->held_locks().push_back(name);
    if (st.IsTimedOut()) return Status::Aborted("deadlock victim: " + name);
    return st;
  }

 private:
  LockManager* locks_;
};

}  // namespace plp

#endif  // PLP_ENGINE_RECORD_OPS_H_
