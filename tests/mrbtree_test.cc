// MRBTree tests: routing, durable partition table, slice/meld based
// repartitioning, parallel SMOs, and height reduction vs a single root.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/key_encoding.h"
#include "src/index/mrbtree.h"

namespace plp {
namespace {

std::vector<std::string> FourWayBoundaries(std::uint32_t n) {
  return {"", KeyU32(n / 4), KeyU32(n / 2), KeyU32(3 * n / 4)};
}

class MRBTreeTest : public ::testing::Test {
 protected:
  void Create(std::vector<std::string> boundaries,
              LatchPolicy policy = LatchPolicy::kNone) {
    ASSERT_TRUE(
        MRBTree::Create(&pool_, policy, std::move(boundaries), &tree_).ok());
  }
  BufferPool pool_;
  std::unique_ptr<MRBTree> tree_;
};

TEST_F(MRBTreeTest, CreateValidatesBoundaries) {
  std::unique_ptr<MRBTree> t;
  EXPECT_FALSE(MRBTree::Create(&pool_, LatchPolicy::kNone, {}, &t).ok());
  EXPECT_FALSE(
      MRBTree::Create(&pool_, LatchPolicy::kNone, {KeyU32(5)}, &t).ok());
  EXPECT_FALSE(MRBTree::Create(&pool_, LatchPolicy::kNone,
                               {"", KeyU32(5), KeyU32(5)}, &t)
                   .ok());
  EXPECT_TRUE(MRBTree::Create(&pool_, LatchPolicy::kNone,
                              {"", KeyU32(5), KeyU32(9)}, &t)
                  .ok());
}

TEST_F(MRBTreeTest, RoutesKeysToCorrectPartition) {
  Create(FourWayBoundaries(1000));
  EXPECT_EQ(tree_->PartitionFor(KeyU32(0)), 0u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(249)), 0u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(250)), 1u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(500)), 2u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(999)), 3u);
  EXPECT_EQ(tree_->num_partitions(), 4u);
}

TEST_F(MRBTreeTest, CrudAcrossPartitions) {
  Create(FourWayBoundaries(1000));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), KeyU32(i)).ok());
  }
  EXPECT_EQ(tree_->num_entries(), 1000u);
  std::string value;
  for (std::uint32_t i : {0u, 249u, 250u, 500u, 750u, 999u}) {
    ASSERT_TRUE(tree_->Probe(KeyU32(i), &value).ok());
    EXPECT_EQ(DecodeU32(value), i);
  }
  ASSERT_TRUE(tree_->Update(KeyU32(500), KeyU32(42)).ok());
  ASSERT_TRUE(tree_->Probe(KeyU32(500), &value).ok());
  EXPECT_EQ(DecodeU32(value), 42u);
  ASSERT_TRUE(tree_->Delete(KeyU32(999)).ok());
  EXPECT_TRUE(tree_->Probe(KeyU32(999), &value).IsNotFound());
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
}

TEST_F(MRBTreeTest, CrossPartitionScanIsOrdered) {
  Create(FourWayBoundaries(1000));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), "v").ok());
  }
  std::uint32_t expected = 100;
  ASSERT_TRUE(tree_->ScanFrom(KeyU32(100), [&](Slice k, Slice) {
    EXPECT_EQ(DecodeU32(k), expected);
    ++expected;
    return expected < 900;
  }).ok());
  EXPECT_EQ(expected, 900u);
}

TEST_F(MRBTreeTest, PartitionTablePersistsAndReloads) {
  Create(FourWayBoundaries(1000));
  PartitionTable& table = tree_->table();
  auto entries_before = table.entries();
  ASSERT_EQ(entries_before.size(), 4u);
  ASSERT_TRUE(table.LoadFromPages().ok());
  auto entries_after = table.entries();
  ASSERT_EQ(entries_after.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(entries_before[i].start_key, entries_after[i].start_key);
    EXPECT_EQ(entries_before[i].root, entries_after[i].root);
  }
}

TEST_F(MRBTreeTest, PartitionTableChainsOverflowPages) {
  // Enough partitions with long keys to overflow one 8KB routing page.
  std::vector<std::string> boundaries = {""};
  for (int i = 1; i < 600; ++i) {
    std::string b(20, 'k');
    b += KeyU32(static_cast<std::uint32_t>(i));
    boundaries.push_back(b);
  }
  Create(boundaries);
  ASSERT_TRUE(tree_->table().LoadFromPages().ok());
  EXPECT_EQ(tree_->table().entries().size(), 600u);
}

TEST_F(MRBTreeTest, SplitCreatesNewPartition) {
  Create({""});
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), KeyU32(i)).ok());
  }
  ASSERT_TRUE(tree_->Split(KeyU32(2500)).ok());
  EXPECT_EQ(tree_->num_partitions(), 2u);
  EXPECT_EQ(tree_->num_entries(), 5000u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(2499)), 0u);
  EXPECT_EQ(tree_->PartitionFor(KeyU32(2500)), 1u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  std::string value;
  ASSERT_TRUE(tree_->Probe(KeyU32(2499), &value).ok());
  ASSERT_TRUE(tree_->Probe(KeyU32(2500), &value).ok());
  // Splitting at an existing boundary is rejected.
  EXPECT_TRUE(tree_->Split(KeyU32(2500)).IsAlreadyExists());
}

TEST_F(MRBTreeTest, MergeAbsorbsRightNeighbor) {
  Create(FourWayBoundaries(1000));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), "v").ok());
  }
  ASSERT_TRUE(tree_->Merge(1).ok());
  EXPECT_EQ(tree_->num_partitions(), 3u);
  EXPECT_EQ(tree_->num_entries(), 1000u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  std::string value;
  for (std::uint32_t i : {0u, 300u, 499u, 500u, 999u}) {
    ASSERT_TRUE(tree_->Probe(KeyU32(i), &value).ok()) << i;
  }
  EXPECT_FALSE(tree_->Merge(0).ok());  // -inf partition cannot merge left
}

TEST_F(MRBTreeTest, RepeatedSplitMergeKeepsAllKeys) {
  Create({""});
  for (std::uint32_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), KeyU32(i)).ok());
  }
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(tree_->Split(KeyU32(500 + static_cast<std::uint32_t>(round) *
                                    400)).ok());
  }
  EXPECT_EQ(tree_->num_partitions(), 6u);
  while (tree_->num_partitions() > 1) {
    ASSERT_TRUE(tree_->Merge(1).ok());
  }
  EXPECT_EQ(tree_->num_entries(), 3000u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
  std::string value;
  for (std::uint32_t i = 0; i < 3000; i += 97) {
    ASSERT_TRUE(tree_->Probe(KeyU32(i), &value).ok()) << i;
    EXPECT_EQ(DecodeU32(value), i);
  }
}

TEST_F(MRBTreeTest, MultiRootIsShallowerThanSingleRoot) {
  // The headline structural claim: partitioning reduces expected tree
  // height by at least one level (Section 1.1).
  std::unique_ptr<MRBTree> single;
  ASSERT_TRUE(
      MRBTree::Create(&pool_, LatchPolicy::kNone, {""}, &single).ok());
  Create(FourWayBoundaries(60000));
  const std::string payload(100, 'p');
  for (std::uint32_t i = 0; i < 60000; ++i) {
    ASSERT_TRUE(single->Insert(KeyU32(i), payload).ok());
    ASSERT_TRUE(tree_->Insert(KeyU32(i), payload).ok());
  }
  int single_height = single->subtree(0)->height();
  int max_sub_height = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    max_sub_height = std::max(max_sub_height, tree_->subtree(p)->height());
  }
  EXPECT_LT(max_sub_height, single_height);
}

TEST_F(MRBTreeTest, ParallelSmosAcrossSubtrees) {
  // Concurrent insert storms into different partitions of a *latched*
  // MRBTree: per-subtree SMO serialization lets splits proceed in
  // parallel, and every partition completes correctly.
  Create(FourWayBoundaries(40000), LatchPolicy::kLatched);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t base = static_cast<std::uint32_t>(t) * 10000;
      for (std::uint32_t i = 0; i < 10000; ++i) {
        ASSERT_TRUE(tree_->Insert(KeyU32(base + i), "v").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree_->num_entries(), 40000u);
  EXPECT_GT(tree_->smo_count(), 0u);
  ASSERT_TRUE(tree_->CheckIntegrity().ok());
}

TEST_F(MRBTreeTest, SmoCountAggregatesSubtrees) {
  Create(FourWayBoundaries(8000));
  for (std::uint32_t i = 0; i < 8000; ++i) {
    ASSERT_TRUE(tree_->Insert(KeyU32(i), "0123456789").ok());
  }
  std::uint64_t sum = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    sum += tree_->subtree(p)->smo_count();
  }
  EXPECT_EQ(tree_->smo_count(), sum);
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace plp
