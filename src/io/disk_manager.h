// Disk manager: maps PageId -> fixed-size page slots in a single data file.
//
// Each slot is a 64-byte header followed by the page image. The header
// carries the frame metadata that must survive a restart (page class,
// owner tag, owning heap file, page LSN); the in-memory Page keeps the
// same fields in its frame, so the buffer pool can write a frame back
// without knowing what the page contains. Reads and writes are positioned
// (pread/pwrite), so concurrent I/O on different slots needs no locking;
// the allocation table is guarded by a mutex.
#ifndef PLP_IO_DISK_MANAGER_H_
#define PLP_IO_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

/// On-disk per-page metadata (the first bytes of every page slot).
struct PageSlotHeader {
  std::uint32_t magic = 0;          // kPageMagic for live pages, 0 for free
  std::uint8_t page_class = 0;      // PageClass as int
  std::uint8_t flags = 0;           // kSlotFlag* bits
  std::uint16_t reserved = 0;
  std::uint32_t owner_tag = UINT32_MAX;   // partition/leaf owner (heap modes)
  std::uint32_t table_tag = UINT32_MAX;   // owning heap file id
  Lsn page_lsn = 0;                       // last update durably reflected
};

/// Slot written for a volatile (unlogged secondary) index page: the tree is
/// rebuilt from scratch on reopen, so no restart ever reads this slot. Open
/// reclaims flagged slots into the free-slot list instead of leaking them.
inline constexpr std::uint8_t kSlotFlagVolatileIndex = 0x1;

class DiskManager {
 public:
  static constexpr std::uint32_t kFileMagic = 0x504c5044;  // "PLPD"
  static constexpr std::uint32_t kPageMagic = 0x504c5047;  // "PLPG"
  static constexpr std::size_t kFileHeaderSize = 4096;
  static constexpr std::size_t kSlotHeaderSize = 64;
  static constexpr std::size_t kSlotSize = kSlotHeaderSize + kPageSize;

  /// Opens (or creates) the data file and loads the allocation table by
  /// scanning slot headers.
  static Status Open(const std::string& path,
                     std::unique_ptr<DiskManager>* out);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Reads a page slot. kNotFound if the slot was never written or freed.
  Status ReadPage(PageId id, PageSlotHeader* header, char* data);

  /// Writes (allocating if needed) a page slot. `data` is kPageSize bytes.
  Status WritePage(PageId id, const PageSlotHeader& header, const char* data);

  /// Marks the slot free (zeroed header) and returns its id to the
  /// free-slot list for reuse by TakeFreeId.
  Status FreePage(PageId id);

  /// Pops a reusable slot id (freed earlier, or reclaimed at Open from
  /// zeroed holes and volatile-index slots). kInvalidPageId when none is
  /// available or reuse has not been enabled yet. Reuse stays disabled
  /// until EnableSlotReuse so recovery never hands out an id the WAL tail
  /// is about to replay.
  PageId TakeFreeId();
  void EnableSlotReuse() {
    reuse_enabled_.store(true, std::memory_order_release);
  }
  std::size_t free_slot_count();

  /// Durably persists all completed writes (fdatasync).
  Status Sync();

  bool Contains(PageId id);

  /// Snapshot of all live pages (id -> header), loaded at Open and
  /// maintained on writes. Used to rebuild heap-file page lists on restart.
  std::vector<std::pair<PageId, PageSlotHeader>> AllPages();

  /// Highest page id for which a slot exists — live or reclaimed (0 when
  /// the file is empty). Fresh-id allocation starts above it, so recycled
  /// slot ids and fresh ids never collide.
  PageId max_page_id();

  const std::string& path() const { return path_; }

  std::uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  DiskManager(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  static std::uint64_t SlotOffset(PageId id) {
    return kFileHeaderSize +
           static_cast<std::uint64_t>(id - 1) * kSlotSize;
  }

  Status LoadAllocationTable();

  const std::string path_;
  int fd_;

  Mutex table_mu_;
  std::unordered_map<PageId, PageSlotHeader> live_ PLP_GUARDED_BY(table_mu_);
  std::vector<PageId> free_ids_ PLP_GUARDED_BY(table_mu_);
  PageId scanned_max_ PLP_GUARDED_BY(table_mu_) = 0;  // highest slot at Open
  std::atomic<bool> reuse_enabled_{false};

  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> syncs_{0};
};

}  // namespace plp

#endif  // PLP_IO_DISK_MANAGER_H_
