// TATP (Telecom Application Transaction Processing) benchmark — the
// paper's primary workload (Section 4.1).
//
// Four tables keyed by subscriber id, partitioned on s_id ranges:
//   SUBSCRIBER(s_id)                        ~100B records
//   ACCESS_INFO(s_id, ai_type)              1-4 rows per subscriber
//   SPECIAL_FACILITY(s_id, sf_type)         1-4 rows per subscriber
//   CALL_FORWARDING(s_id, sf_type, start)   0-3 rows per facility
// Standard transaction mix: GetSubscriberData 35%, GetNewDestination 10%,
// GetAccessData 35%, UpdateSubscriberData 2%, UpdateLocation 14%,
// InsertCallForwarding 2%, DeleteCallForwarding 2%.
#ifndef PLP_WORKLOAD_TATP_H_
#define PLP_WORKLOAD_TATP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace plp {

struct TatpConfig {
  std::uint32_t subscribers = 10000;
  int partitions = 4;
  std::uint64_t seed = 42;
};

class TatpWorkload {
 public:
  TatpWorkload(Engine* engine, TatpConfig config)
      : engine_(engine), config_(config) {}

  /// Creates the four tables (partitioned on s_id) and populates them.
  Status Load();

  /// Evenly-spaced s_id partition boundaries for `partitions` ranges.
  std::vector<std::string> SubscriberBoundaries() const;
  static std::vector<std::string> BoundariesFor(std::uint32_t subscribers,
                                                int partitions);

  /// A transaction drawn from the standard TATP mix.
  TxnRequest NextTransaction(Rng& rng);

  // Individual transaction builders (also used by the microbenchmarks).
  TxnRequest GetSubscriberData(std::uint32_t s_id);
  TxnRequest GetNewDestination(std::uint32_t s_id, std::uint8_t sf_type,
                               std::uint8_t start_time);
  TxnRequest GetAccessData(std::uint32_t s_id, std::uint8_t ai_type);
  TxnRequest UpdateSubscriberData(std::uint32_t s_id, std::uint8_t sf_type,
                                  std::uint8_t bit, std::uint8_t data_a);
  TxnRequest UpdateLocation(std::uint32_t s_id, std::uint32_t vlr);
  TxnRequest InsertCallForwarding(std::uint32_t s_id, std::uint8_t sf_type,
                                  std::uint8_t start_time,
                                  std::uint8_t end_time);
  TxnRequest DeleteCallForwarding(std::uint32_t s_id, std::uint8_t sf_type,
                                  std::uint8_t start_time);

  /// Insert/delete-only mix on CALL_FORWARDING (the Figure 6 workload).
  TxnRequest NextInsertDeleteHeavy(Rng& rng);

  std::uint32_t RandomSubscriber(Rng& rng) const {
    return static_cast<std::uint32_t>(rng.Range(1, config_.subscribers));
  }

  const TatpConfig& config() const { return config_; }

  // Key/record helpers (exposed for tests).
  static std::string SubscriberKey(std::uint32_t s_id);
  static std::string AccessInfoKey(std::uint32_t s_id, std::uint8_t ai_type);
  static std::string FacilityKey(std::uint32_t s_id, std::uint8_t sf_type);
  static std::string CallFwdKey(std::uint32_t s_id, std::uint8_t sf_type,
                                std::uint8_t start_time);
  static std::string MakeSubscriberRecord(std::uint32_t s_id,
                                          std::uint32_t vlr_location);
  static std::uint32_t VlrFromRecord(Slice payload);

  static constexpr const char* kSubscriber = "tatp_subscriber";
  static constexpr const char* kAccessInfo = "tatp_access_info";
  static constexpr const char* kFacility = "tatp_special_facility";
  static constexpr const char* kCallFwd = "tatp_call_forwarding";

 private:
  Engine* engine_;
  TatpConfig config_;
};

}  // namespace plp

#endif  // PLP_WORKLOAD_TATP_H_
