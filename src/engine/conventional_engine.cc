#include "src/engine/conventional_engine.h"

#include <unordered_map>

#include "src/engine/record_ops.h"

namespace plp {

ConventionalEngine::ConventionalEngine(EngineConfig config)
    : Engine(config) {}

ConventionalEngine::~ConventionalEngine() { Stop(); }

void ConventionalEngine::Start() {
  if (pool_running_.exchange(true)) return;
  ReopenGate();
  // Conventional cleaning: cleaner threads latch arbitrary dirty pages.
  cleaner_ = std::make_unique<PageCleaner>(db_.pool());
  cleaner_->Start();
  jobs_.Reopen();  // restart after a Stop() that closed the queue
  pool_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    pool_.emplace_back([this] { PoolLoop(); });
  }
}

void ConventionalEngine::Stop() {
  if (!pool_running_.exchange(false)) {
    if (cleaner_) cleaner_->Stop();
    return;
  }
  // Let queued submissions complete before closing the pool so no
  // TxnHandle is left unresolved.
  DrainInflight();
  jobs_.Close();
  for (auto& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  if (cleaner_) cleaner_->Stop();
  // Drain rejected submissions only for the teardown window; once stopped,
  // submissions run inline again (the documented pre-Start behaviour).
  ReopenGate();
}

void ConventionalEngine::SubmitImpl(TxnRequest req, TxnToken token) {
  if (!pool_running_.load(std::memory_order_acquire)) {
    TxnTimeline* trace = token.trace();
    if (trace != nullptr) TxnTimeline::Stamp(trace->execute_ns, NowNanos());
    token.Complete(RunSync(req, trace));
    return;
  }
  jobs_.Push(Job{std::move(req), std::move(token)});
}

void ConventionalEngine::PoolLoop() {
  for (;;) {
    auto job = jobs_.Pop();
    if (!job.has_value()) return;  // queue closed
    TxnTimeline* trace = job->token.trace();
    if (trace != nullptr) TxnTimeline::Stamp(trace->execute_ns, NowNanos());
    job->token.Complete(RunSync(job->req, trace));
  }
}

Result<Table*> ConventionalEngine::CreateTable(
    const std::string& name, std::vector<std::string> boundaries,
    bool clustered) {
  TableConfig config;
  config.name = name;
  config.index_policy = LatchPolicy::kLatched;
  config.heap_mode = HeapMode::kShared;
  config.clustered = clustered;
  config.index_boundaries =
      config_.use_mrbt ? std::move(boundaries) : std::vector<std::string>{""};
  return db_.CreateTable(std::move(config));
}

SliCache* ConventionalEngine::ThreadSli() {
  MutexLock g(sli_mu_);
  auto& slot = sli_caches_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<SliCache>(
        db_.locks(), next_pseudo_txn_.fetch_add(1));
  }
  return slot.get();
}

Status ConventionalEngine::RunSync(TxnRequest& req, TxnTimeline* trace) {
  Transaction* txn = db_.txns()->Begin();
  txn->set_trace(trace);
  std::vector<std::function<Status()>> undos;
  Status failure = Status::OK();

  for (Phase& phase : req.phases) {
    if (!failure.ok()) break;
    for (Action& action : phase.actions) {
      Table* table = db_.GetTable(action.table);
      if (table == nullptr) {
        failure = Status::InvalidArgument("no table " + action.table);
        break;
      }
      // Hierarchical locking: table-level intent first. SLI inherits hot
      // intent locks across transactions on this worker thread.
      const std::string table_lock = TableLockName(table->id());
      if (config_.enable_sli) {
        SliCache* sli = ThreadSli();
        if (!sli->Covers(table_lock, LockMode::kIX)) {
          failure = sli->AcquireAndInherit(table_lock, LockMode::kIX);
        }
      } else {
        Status st = db_.locks()->Acquire(txn->id(), table_lock, LockMode::kIX);
        if (st.ok()) {
          txn->held_locks().push_back(table_lock);
        } else {
          failure = st.IsTimedOut() ? Status::Aborted("deadlock victim") : st;
        }
      }
      if (!failure.ok()) break;

      LockingExecContext ctx(table, txn, db_.log(), db_.locks(), &undos);
      Status st = action.fn(ctx);
      if (!st.ok()) {
        failure = st;
        break;
      }
    }
  }

  Status result;
  if (failure.ok()) {
    result = db_.txns()->Commit(txn);
  } else {
    // Compensate inline (this thread owns no partition, so touching any
    // page is fine — it latches).
    for (auto it = undos.rbegin(); it != undos.rend(); ++it) (void)(*it)();
    (void)db_.txns()->Abort(txn);
    result = failure;
  }

  // SLI transaction boundary: give back inherited locks others wait on.
  if (config_.enable_sli) ThreadSli()->ReleaseContended();
  return result;
}

}  // namespace plp
