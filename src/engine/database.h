// Database catalog: tables (heap file + primary MRBTree + optional
// secondary indexes) plus the shared storage-manager services.
//
// Two modes:
//  * In-memory (default): the paper's evaluation setup — no files, the
//    log is discarded or retained in RAM, frames never evict.
//  * Durable (`DatabaseConfig::data_dir` set): a data file, a segmented
//    on-disk WAL, a catalog file, and a checkpoint master record live
//    under the directory. Construction replays the catalog and runs
//    checkpoint-based restart recovery; Close() (or Checkpoint()) makes
//    the current state durable. Destroying a durable Database *without*
//    calling Close() models a crash — the next open recovers from the
//    data file + WAL.
#ifndef PLP_ENGINE_DATABASE_H_
#define PLP_ENGINE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/index/btree.h"
#include "src/index/mrbtree.h"
#include "src/index/persistent/index_log.h"
#include "src/io/disk_manager.h"
#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/metrics/registry.h"
#include "src/storage/heap_file.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"
#include "src/txn/recovery.h"
#include "src/txn/txn_manager.h"

namespace plp {

struct TableConfig {
  std::string name;
  /// Latching discipline for the primary index pages.
  LatchPolicy index_policy = LatchPolicy::kLatched;
  /// Heap page ownership discipline (Section 3.3).
  HeapMode heap_mode = HeapMode::kShared;
  /// MRBTree partition boundaries. {""} gives a single-rooted tree (the
  /// conventional "Normal" index); more entries give a multi-rooted one.
  std::vector<std::string> index_boundaries = {""};
  /// Clustered table: records live in the MRBTree leaves and no heap file
  /// is used (Appendix C.2 — all three PLP variants coincide, and
  /// repartitioning moves only the boundary leaf's records).
  bool clustered = false;
};

/// Extracts a secondary key from a (primary key, payload) pair.
using SecondaryKeyFn = std::function<std::string(Slice key, Slice payload)>;

class Table {
 public:
  /// `log` non-null enables the persistent (physiologically logged) index:
  /// the table owns an IndexLogger and its primary MRBTree logs every page
  /// mutation. `log_creation = false` builds restart placeholders whose
  /// partition layout recovery adopts from the checkpoint/WAL.
  Table(std::uint32_t id, TableConfig config, BufferPool* pool,
        LogManager* log = nullptr, bool log_creation = true);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return config_.name; }
  const TableConfig& config() const { return config_; }

  HeapFile* heap() { return heap_.get(); }
  MRBTree* primary() { return primary_.get(); }

  /// True when the primary index is persistent (page-backed, WAL-logged):
  /// record ops then skip the legacy logical index records and tag the
  /// tree's physiological records with their transaction instead.
  bool logged_index() const { return logger_ != nullptr; }
  IndexLogger* index_logger() { return logger_.get(); }

  /// Adds a (non-partition-aligned) secondary index, always accessed with
  /// conventional latching (Appendix E). Maps secondary key -> primary
  /// key. Backfills from existing records, so it may be added after a
  /// reopen (secondary indexes are volatile and rebuilt through this).
  Status AddSecondary(const std::string& name, SecondaryKeyFn key_fn);

  struct Secondary {
    std::string name;
    SecondaryKeyFn key_fn;
    std::unique_ptr<BTree> index;
  };
  Secondary* secondary(const std::string& name);
  std::vector<Secondary*> secondaries();

 private:
  const std::uint32_t id_;
  const TableConfig config_;
  BufferPool* pool_;
  std::unique_ptr<IndexLogger> logger_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<MRBTree> primary_;
  std::vector<std::unique_ptr<Secondary>> secondaries_;
};

/// How durable databases persist their primary indexes.
enum class IndexDurability {
  /// Persistent pages (default): index nodes live in evictable frames,
  /// every mutation is physiologically WAL-logged, checkpoints carry no
  /// index payload, and restart redoes index history from the log
  /// (src/index/persistent, docs/persistent_index.md).
  kLoggedPages,
  /// Legacy: the index is volatile; each checkpoint serializes a full
  /// logical snapshot and restart rebuilds the tree from snapshot +
  /// logical replay. Kept for comparison benchmarks
  /// (bench/durability_overhead.cc). A data_dir must stick with one mode
  /// for its lifetime.
  kSnapshot,
};

struct DatabaseConfig {
  LogConfig log;
  TxnManagerConfig txn;
  /// When non-empty, the database is durable under this directory:
  /// `data.db` (page slots), `wal/` (log segments, unless log.wal_dir is
  /// set explicitly), `catalog` and `CHECKPOINT` (master record).
  std::string data_dir;
  /// Buffer-pool frame budget (0 = unlimited / never evict). Meaningful
  /// only with `data_dir`, which provides the backing store to steal to.
  std::size_t frame_budget = 0;
  /// Primary-index durability mode (durable databases only).
  IndexDurability index_durability = IndexDurability::kLoggedPages;
  /// Pointer swizzling for resident index descents (see
  /// docs/buffer_pool.md). On by default; off mainly for A/B comparisons.
  bool enable_swizzling = true;
};

/// Bundles the shared-everything storage manager services: one buffer
/// pool, one log, one lock manager, one transaction manager — the "common
/// underlying storage pool and log" PLP retains (Section 6).
class Database {
 public:
  explicit Database(DatabaseConfig config = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Non-OK when a durable open failed (I/O error, corrupt files, failed
  /// recovery). Always OK for in-memory databases.
  const Status& open_status() const { return open_status_; }

  Result<Table*> CreateTable(TableConfig config);
  Table* GetTable(const std::string& name);
  std::vector<Table*> tables();

  bool durable() const { return disk_ != nullptr; }

  /// True when durable tables run the persistent (logged) index.
  bool logged_index() const {
    return durable() &&
           config_.index_durability == IndexDurability::kLoggedPages;
  }

  /// Fuzzy checkpoint: logs the dirty page table + active transactions +
  /// primary-index snapshots, forces the record, publishes the master
  /// record. Bounds restart work; does not flush data pages.
  Status Checkpoint();

  /// Clean shutdown: flush the log, write every dirty page back, sync the
  /// data file, take a final checkpoint. Idempotent. NOT called by the
  /// destructor — destroying without Close() models a crash.
  Status Close();

  /// Restart-recovery outcome of a durable open (zeroes otherwise).
  const RecoveryManager::Stats& recovery_stats() const {
    return recovery_stats_;
  }

  BufferPool* pool() { return &pool_; }
  LogManager* log() { return &log_; }
  LockManager* locks() { return &locks_; }
  TxnManager* txns() { return &txns_; }
  DiskManager* disk() { return disk_.get(); }
  /// Registry every storage service records into; Engine::GetStats()
  /// snapshots it. One registry per Database, so concurrent engines (and
  /// tests) never share metric state.
  MetricsRegistry* metrics() { return &metrics_; }

 private:
  Result<Table*> CreateTableInternal(TableConfig config, bool persist);

  Status PersistCatalog();
  Status LoadDurableState();
  std::string master_path() const { return config_.data_dir + "/CHECKPOINT"; }
  std::string catalog_path() const { return config_.data_dir + "/catalog"; }

  DatabaseConfig config_;
  Status open_status_;
  // Declared before every storage service: they cache metric pointers and
  // register gauge providers, so the registry must be the last member
  // destroyed.
  MetricsRegistry metrics_;
  std::unique_ptr<DiskManager> disk_;  // before pool_ (pool caches the ptr)
  BufferPool pool_;
  LogManager log_;
  LockManager locks_;
  TxnManager txns_;

  /// Serializes whole checkpoints. Append -> flush -> master publish ->
  /// WAL truncate must not interleave across callers: a slower checkpoint
  /// could otherwise overwrite the master record with an older LSN after
  /// a faster one has already truncated the segments that older
  /// checkpoint's restart scan would need.
  Mutex checkpoint_mu_;

  TrackedMutex catalog_mu_{CsCategory::kMetadata};
  std::vector<std::unique_ptr<Table>> tables_ PLP_GUARDED_BY(catalog_mu_);
  std::unordered_map<std::string, Table*> by_name_
      PLP_GUARDED_BY(catalog_mu_);

  RecoveryManager::Stats recovery_stats_;

  /// Serializes Close(): exactly one caller runs the flush + final
  /// checkpoint; latecomers wait and then observe closed_. Ordered before
  /// checkpoint_mu_ (Close calls Checkpoint); nothing takes them in
  /// reverse.
  Mutex close_mu_;
  bool closed_ PLP_GUARDED_BY(close_mu_) = false;
  bool restoring_ = false;  // catalog replay in progress (suppress logging)
};

}  // namespace plp

#endif  // PLP_ENGINE_DATABASE_H_
