// ARIES/KVL-style B+Tree over buffer-pool pages.
//
// Latched mode (conventional / logical-only systems): probes crab shared
// latches down the tree; writers take an exclusive latch on the leaf; any
// structure modification (SMO) serializes behind a per-tree SMO mutex and
// re-descends holding exclusive latches — the single-SMO-at-a-time rule of
// ARIES/KVL that Section B of the paper measures.
//
// Latch-free mode (PLP partitions): the subtree is owned by exactly one
// thread, so every latch acquisition and the SMO mutex are skipped, and
// page fixes bypass the buffer-pool critical section.
//
// The same class also serves as one MRBTree sub-tree; MRBTree performs
// slice (split off a key range) and meld (absorb a neighbor) through the
// methods at the bottom.
#ifndef PLP_INDEX_BTREE_H_
#define PLP_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/index/btree_node.h"
#include "src/sync/latch.h"

namespace plp {

class BTree {
 public:
  /// Creates an empty tree (root = empty leaf).
  BTree(BufferPool* pool, LatchPolicy policy);
  /// Adopts an existing root page (MRBTree slice/meld produce these).
  BTree(BufferPool* pool, LatchPolicy policy, PageId root);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  PageId root() const { return root_; }
  LatchPolicy latch_policy() const { return policy_; }

  /// Unique-key insert. kAlreadyExists on duplicates.
  Status Insert(Slice key, Slice value);

  /// Exact-match lookup.
  Status Probe(Slice key, std::string* value);

  /// Replaces the value of an existing key.
  Status Update(Slice key, Slice value);

  /// Removes a key. Leaves underfull pages in place (no merge on delete,
  /// as in Shore-MT).
  Status Delete(Slice key);

  /// In-order scan starting at the first key >= `start`; stops when the
  /// callback returns false.
  Status ScanFrom(Slice start,
                  const std::function<bool(Slice key, Slice value)>& fn);

  /// Levels in the tree (1 = a single leaf).
  int height();

  std::uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  /// Completed structure modification operations (splits).
  std::uint64_t smo_count() const {
    return smo_count_.load(std::memory_order_relaxed);
  }
  /// Nodes touched by probes/inserts (validates "one level shallower").
  std::uint64_t nodes_visited() const {
    return nodes_visited_.load(std::memory_order_relaxed);
  }

  // --- MRBTree structural support (callers quiesce the tree first) ------

  /// Splits off all entries with key >= `split_key` into a new tree
  /// (Appendix A.3.2 "slice"). Entry counts are adjusted on both sides.
  Status SliceOff(Slice split_key, std::unique_ptr<BTree>* right_out);

  /// Absorbs `right`, all of whose keys are >= `boundary_key` and sort
  /// after every key in this tree (Appendix A.3.1 "meld"). On success the
  /// right tree's pages belong to this tree and `right` must be discarded.
  Status Meld(BTree* right, Slice boundary_key);

  /// First key in the tree (kNotFound when empty).
  Status MinKey(std::string* out);

  /// A key near the middle of the tree's key population (descends through
  /// middle children). Used to pick split points when rebalancing load.
  Status ApproxMedianKey(std::string* out);

  /// Walks every entry (no latching; for tests and integrity checks).
  void ForEachEntry(const std::function<void(Slice, Slice)>& fn);

  /// Verifies ordering and structural invariants; returns kCorruption on
  /// the first violation (property tests use this).
  Status CheckIntegrity();

  /// Page id of the leaf that would hold `key` (PLP-Leaf uses leaf page
  /// ids as heap-page owner tags, Section 3.3).
  PageId LeafFor(Slice key);

  /// PLP-Leaf callback: invoked for every leaf entry that migrates to a
  /// different leaf page during a split or slice. Receives (key, value,
  /// new_leaf_pid) and returns the replacement value ("" keeps the old
  /// one). The PLP-Leaf engine uses it to move the heap record to a page
  /// owned by the new leaf and to refresh the stored RID — the storage-
  /// manager callback mechanism of Section 3.3.
  using LeafEntryMovedHook =
      std::function<std::string(Slice key, Slice value, PageId new_leaf)>;
  void set_leaf_moved_hook(LeafEntryMovedHook hook) {
    leaf_moved_hook_ = std::move(hook);
  }

  /// Owner tag stamped on pages this tree allocates (see RetagPages).
  void set_owner_tag(std::uint32_t tag) { owner_tag_ = tag; }
  std::uint32_t owner_tag() const { return owner_tag_; }

  /// Tags every page of this tree with `owner` (frame-level tag used by
  /// the page cleaner to delegate cleaning to the owning partition).
  void RetagPages(std::uint32_t owner);

 private:
  Page* FixPage(PageId id);
  Page* NewNodePage(std::uint16_t level);

  Status InsertOptimistic(Slice key, Slice value, bool* needs_smo);
  Status InsertPessimistic(Slice key, Slice value);

  /// Splits `node` (already exclusively owned by the caller), returning the
  /// separator key and new right page.
  void SplitNode(Page* page, std::string* sep, PageId* right_pid);

  /// Handles a full root in place (the root page id never changes).
  void SplitRoot(Page* root_page);

  PageId LeftmostLeaf();
  PageId RightmostLeaf();

  /// Applies the leaf-moved hook to every entry of a freshly-populated
  /// right-hand leaf.
  void ApplyLeafMovedHook(Page* right_leaf);

  BufferPool* pool_;
  const LatchPolicy policy_;
  PageId root_;
  TrackedMutex smo_mu_{CsCategory::kPageLatch};
  LeafEntryMovedHook leaf_moved_hook_;
  std::uint32_t owner_tag_ = UINT32_MAX;

  std::atomic<std::uint64_t> num_entries_{0};
  std::atomic<std::uint64_t> smo_count_{0};
  std::atomic<std::uint64_t> nodes_visited_{0};
};

}  // namespace plp

#endif  // PLP_INDEX_BTREE_H_
