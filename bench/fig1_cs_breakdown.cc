// Figure 1: breakdown of critical sections per transaction when running
// the TATP mix, across Baseline (no SLI), SLI, Logical-only, PLP and
// PLP-Leaf. The paper's shape: locking dominates the baseline; SLI trims
// the lock manager; logical partitioning removes locking but keeps page
// latching; the PLP designs remove latching too, leaving message passing,
// transaction management and small metadata components.
#include "bench/bench_common.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

struct Variant {
  const char* label;
  SystemDesign design;
  bool enable_sli;
};

void Run() {
  bench::PrintHeader("Critical sections per transaction, TATP mix",
                     "Figure 1");
  const Variant variants[] = {
      {"Baseline", SystemDesign::kConventional, false},
      {"SLI", SystemDesign::kConventional, true},
      {"Logical-only", SystemDesign::kLogical, true},
      {"PLP", SystemDesign::kPlpRegular, true},
      {"PLP-Leaf", SystemDesign::kPlpLeaf, true},
  };
  bench::PrintCsBreakdownHeader();
  for (const Variant& v : variants) {
    auto engine = bench::MakeEngine(v.design, 4, false, v.enable_sli);
    TatpConfig config;
    config.subscribers = 5000;
    config.partitions = 4;
    TatpWorkload tatp(engine.get(), config);
    Status st = tatp.Load();
    if (!st.ok()) {
      std::printf("%s: load failed: %s\n", v.label, st.ToString().c_str());
      continue;
    }
    DriverOptions options;
    options.num_threads = 4;
    options.duration = bench::WindowMs();
    DriverResult result = RunWorkload(
        engine.get(), [&](Rng& rng) { return tatp.NextTransaction(rng); },
        options);
    bench::PrintCsBreakdownRow(v.label, result.cs_delta, result.committed);
    engine->Stop();
  }
  std::printf(
      "\nExpected shape: Lock mgr dominates Baseline; SLI reduces it;\n"
      "Logical/PLP eliminate it (message passing appears instead); the PLP\n"
      "rows additionally eliminate nearly all Page Latches.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
