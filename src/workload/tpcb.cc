#include "src/workload/tpcb.h"

#include <cstring>
#include <memory>

#include "src/common/key_encoding.h"

namespace plp {

namespace {
constexpr std::size_t kTinyRecord = 32;    // unpadded branch/teller
constexpr std::size_t kPaddedRecord = 4000;  // ~2 records per page
constexpr std::size_t kAccountRecord = 100;

std::string BalanceRecord(std::size_t size, std::int64_t balance) {
  std::string rec(size, 'b');
  std::memcpy(rec.data(), &balance, 8);
  return rec;
}

std::int64_t ReadBalance(const std::string& rec) {
  std::int64_t b;
  std::memcpy(&b, rec.data(), 8);
  return b;
}

std::string WithDelta(std::string rec, std::int64_t delta) {
  std::int64_t b;
  std::memcpy(&b, rec.data(), 8);
  b += delta;
  std::memcpy(rec.data(), &b, 8);
  return rec;
}
}  // namespace

std::string TpcbWorkload::BranchKey(std::uint32_t b) { return KeyU32(b); }
std::string TpcbWorkload::TellerKey(std::uint32_t t) { return KeyU32(t); }
std::string TpcbWorkload::AccountKey(std::uint32_t a) { return KeyU32(a); }
std::string TpcbWorkload::HistoryKey(std::uint64_t h) { return KeyU64(h); }

std::int64_t TpcbWorkload::BalanceOf(Slice payload) {
  std::int64_t b;
  std::memcpy(&b, payload.data(), 8);
  return b;
}

Status TpcbWorkload::Load() {
  const std::size_t small_size =
      config_.pad_records ? kPaddedRecord : kTinyRecord;

  auto make_boundaries = [&](std::uint32_t count) {
    std::vector<std::string> boundaries = {""};
    for (int p = 1; p < config_.partitions; ++p) {
      boundaries.push_back(KeyU32(1 + static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(count) * p / config_.partitions)));
    }
    return boundaries;
  };

  {
    auto r = engine_->CreateTable(kBranch, make_boundaries(config_.branches));
    if (!r.ok()) return r.status();
  }
  const std::uint32_t tellers = config_.branches * config_.tellers_per_branch;
  {
    auto r = engine_->CreateTable(kTeller, make_boundaries(tellers));
    if (!r.ok()) return r.status();
  }
  const std::uint32_t accounts =
      config_.branches * config_.accounts_per_branch;
  {
    auto r = engine_->CreateTable(kAccount, make_boundaries(accounts));
    if (!r.ok()) return r.status();
  }
  {
    auto r = engine_->CreateTable(kHistory, make_boundaries(UINT32_MAX));
    if (!r.ok()) return r.status();
  }

  for (std::uint32_t b = 1; b <= config_.branches; ++b) {
    TxnRequest req;
    const std::string key = BranchKey(b);
    const std::string payload = BalanceRecord(small_size, 0);
    req.Add(0, kBranch, key, [key, payload](ExecContext& ctx) {
      return ctx.Insert(key, payload);
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  for (std::uint32_t t = 1; t <= tellers; ++t) {
    TxnRequest req;
    const std::string key = TellerKey(t);
    const std::string payload = BalanceRecord(small_size, 0);
    req.Add(0, kTeller, key, [key, payload](ExecContext& ctx) {
      return ctx.Insert(key, payload);
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  for (std::uint32_t a = 1; a <= accounts; ++a) {
    TxnRequest req;
    const std::string key = AccountKey(a);
    const std::string payload = BalanceRecord(kAccountRecord, 0);
    req.Add(0, kAccount, key, [key, payload](ExecContext& ctx) {
      return ctx.Insert(key, payload);
    });
    PLP_RETURN_IF_ERROR(engine_->Execute(req));
  }
  return Status::OK();
}

TxnRequest TpcbWorkload::NextTransaction(Rng& rng) {
  const std::uint32_t branch =
      static_cast<std::uint32_t>(rng.Range(1, config_.branches));
  const std::uint32_t teller = (branch - 1) * config_.tellers_per_branch +
      static_cast<std::uint32_t>(rng.Range(1, config_.tellers_per_branch));
  const std::uint32_t account = (branch - 1) * config_.accounts_per_branch +
      static_cast<std::uint32_t>(rng.Range(1, config_.accounts_per_branch));
  const auto delta =
      static_cast<std::int64_t>(rng.Range(0, 1999999)) - 999999;
  const std::uint64_t history_id =
      next_history_.fetch_add(1, std::memory_order_relaxed);

  TxnRequest req;
  const std::string akey = AccountKey(account);
  req.Add(0, kAccount, akey, [akey, delta](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(akey, &payload));
    return ctx.Update(akey, WithDelta(std::move(payload), delta));
  });
  const std::string tkey = TellerKey(teller);
  req.Add(0, kTeller, tkey, [tkey, delta](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(tkey, &payload));
    return ctx.Update(tkey, WithDelta(std::move(payload), delta));
  });
  const std::string bkey = BranchKey(branch);
  req.Add(0, kBranch, bkey, [bkey, delta](ExecContext& ctx) {
    std::string payload;
    PLP_RETURN_IF_ERROR(ctx.Read(bkey, &payload));
    return ctx.Update(bkey, WithDelta(std::move(payload), delta));
  });
  const std::string hkey = HistoryKey(history_id);
  req.Add(0, kHistory, hkey, [hkey, delta](ExecContext& ctx) {
    (void)ReadBalance;  // silence unused in some configs
    std::string payload(50, 'h');
    std::memcpy(payload.data(), &delta, 8);
    Status st = ctx.Insert(hkey, payload);
    return st.IsAlreadyExists() ? Status::OK() : st;
  });
  return req;
}

}  // namespace plp
