// Recovery fuzz: run a randomized workload where transactions commit or
// abort at random, "crash" at an arbitrary point, recover into a fresh
// buffer pool, and compare the recovered index against a reference model
// that applies committed transactions only.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/txn/recovery.h"

namespace plp {
namespace {

class RecoveryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(RecoveryFuzzTest, RecoveredStateMatchesCommittedModel) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.log.retain_for_recovery = true;
  auto engine = CreateEngine(config);
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only

  for (int txn_no = 0; txn_no < 400; ++txn_no) {
    const bool doomed = rng.Percent(25);  // 25% of txns abort themselves
    const int ops = static_cast<int>(rng.Range(1, 4));
    std::map<std::uint32_t, std::string> staged = model;
    TxnRequest req;
    bool expect_ok = true;
    for (int op = 0; op < ops; ++op) {
      const auto k = static_cast<std::uint32_t>(rng.Uniform(200));
      const std::string key = KeyU32(k);
      const std::uint64_t kind = rng.Uniform(3);
      if (kind == 0) {
        const std::string value =
            "v" + std::to_string(txn_no) + "-" + std::to_string(op);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          return ctx.Insert(key, value);
        });
        if (exists) {
          expect_ok = false;  // duplicate insert aborts the transaction
        } else {
          staged[k] = value;
        }
      } else if (kind == 1) {
        const std::string value = "u" + std::to_string(txn_no);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          Status st = ctx.Update(key, value);
          return st.IsNotFound() ? Status::OK() : st;  // tolerated miss
        });
        if (exists) staged[k] = value;
      } else {
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key](ExecContext& ctx) {
          Status st = ctx.Delete(key);
          return st.IsNotFound() ? Status::OK() : st;
        });
        if (exists) staged.erase(k);
      }
    }
    if (doomed) {
      req.Add(1, "t", KeyU32(0), [](ExecContext&) {
        return Status::Aborted("fuzz-induced abort");
      });
    }
    Status st = engine->Execute(req);
    if (doomed || !expect_ok) {
      EXPECT_FALSE(st.ok());
    } else if (st.ok()) {
      model = std::move(staged);
    }
  }
  engine->Stop();  // crash point: nothing flushed beyond the log

  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(engine->db().log(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(&index, &stats).ok());

  // The recovered index holds exactly the committed keys; every key's
  // recovered RID points at the record whose heap redo also survived.
  EXPECT_EQ(index.num_entries(), model.size());
  for (const auto& [k, expected] : model) {
    std::string rid_bytes;
    ASSERT_TRUE(index.Probe(KeyU32(k), &rid_bytes).ok()) << k;
    Rid rid;
    std::memcpy(&rid.page_id, rid_bytes.data(), 4);
    std::memcpy(&rid.slot, rid_bytes.data() + 4, 2);
    Page* page = fresh.FixUnlocked(rid.page_id);
    ASSERT_NE(page, nullptr) << k;
  }
  // And no uncommitted key leaked in.
  index.ForEachEntry([&](Slice key, Slice) {
    EXPECT_EQ(model.count(DecodeU32(key)), 1u);
  });
}

}  // namespace
}  // namespace plp
