// Execution-engine interface: the five system designs of Section 4.1
// behind one API, so workloads and benchmarks are design-agnostic.
//
// The primary entry point is asynchronous: Submit() enqueues a transaction
// and returns a TxnHandle immediately, so a handful of client threads can
// keep thousands of transactions in flight across the partition workers
// (the open-loop mode the DORA/PLP thread-to-data architecture calls for).
// Execute() remains as a blocking wrapper over Submit(...).Wait().
#ifndef PLP_ENGINE_ENGINE_H_
#define PLP_ENGINE_ENGINE_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/engine/action.h"
#include "src/engine/database.h"
#include "src/engine/txn_handle.h"
#include "src/metrics/flight_recorder.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

enum class SystemDesign {
  kConventional,   // thread-per-transaction, central locking (+ optional SLI)
  kLogical,        // logical-only partitioning (DORA): no locking, latched pages
  kPlpRegular,     // PLP: latch-free index, shared (latched) heap
  kPlpPartition,   // PLP: latch-free index + partition-owned heap pages
  kPlpLeaf,        // PLP: latch-free index + leaf-owned heap pages
};

const char* SystemDesignName(SystemDesign d);

struct EngineConfig {
  SystemDesign design = SystemDesign::kConventional;
  /// Partition worker threads (partitioned designs) / submission-pool
  /// threads (conventional design).
  int num_workers = 4;
  /// Admission-control bound: the maximum number of transactions Submit
  /// accepts concurrently before applying backpressure (TxnOptions::
  /// on_full). Must be > 0.
  std::size_t max_inflight = 4096;
  /// Multi-rooted primary indexes for the conventional/logical designs
  /// (Appendix B compares "Normal" vs "MRBT"). PLP designs always use the
  /// MRBTree, with one sub-tree per logical partition.
  bool use_mrbt = false;
  /// Speculative Lock Inheritance in the conventional design.
  bool enable_sli = true;
  /// Run TxnOptions::on_complete callbacks on a dedicated executor thread
  /// instead of the committing worker. Slow callbacks then cost callback-
  /// thread latency, not partition-worker / submission-pool throughput.
  /// Completion ordering is unchanged: the callback still finishes before
  /// Wait() returns and before the admission slot frees.
  bool dedicated_callback_thread = false;
  /// When > 0, a background reporter thread prints one `[stats] {json}`
  /// line (the full StatsSnapshot) to stdout every interval, plus a final
  /// line at engine destruction. 0 disables the reporter.
  std::chrono::milliseconds stats_interval{0};
  DatabaseConfig db;
};

/// Per-submission options for Engine::Submit.
struct TxnOptions {
  /// Backpressure policy when the engine is at max_inflight.
  enum class OnFull {
    kBlock,  // Submit waits for an admission slot (default)
    kRetry,  // Submit returns a handle already completed with
             // Status::Retry(); the caller resubmits later
  };
  OnFull on_full = OnFull::kBlock;
  /// Stamp a per-stage timeline (submit -> admitted -> queued -> execute ->
  /// log-append -> fsync-durable -> callback) onto the transaction,
  /// readable via TxnHandle::timeline() after completion and rolled into
  /// the engine's trace.* stage histograms. Costs one small allocation and
  /// a few clock reads per traced transaction; untraced submissions pay a
  /// null check.
  bool trace = false;
  /// Runs exactly once with the final status, on the thread that completes
  /// the transaction (a worker/pool thread — or the submitting thread when
  /// admission rejects with kRetry, or at engine teardown). It runs before
  /// Wait() returns. It must not block, and in particular must not call
  /// Submit with OnFull::kBlock (the admission slot it would wait for is
  /// released only after the callback returns).
  std::function<void(const Status&)> on_complete;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);
  virtual ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submits one transaction for asynchronous execution and returns a
  /// future-like handle (Wait/TryGet/on_complete callback). Consumes the
  /// request. Applies admission control per `options.on_full` when
  /// max_inflight transactions are already in flight.
  TxnHandle Submit(TxnRequest req, TxnOptions options = {});

  /// Runs one transaction to commit or abort (blocking). Wrapper over
  /// Submit(...).Wait(); consumes `req`'s contents, leaving it empty —
  /// re-executing the same request object runs an empty transaction, so
  /// build a fresh TxnRequest per attempt (retry loops included).
  Status Execute(TxnRequest& req) {
    TxnHandle handle = Submit(std::move(req));
    req.phases.clear();  // deterministic moved-from state
    return handle.Wait();
  }

  virtual void Start() {}
  virtual void Stop() {}

  /// Creates a table partitioned at `boundaries` (first entry must be "").
  /// The engine maps the logical partitioning onto the design-appropriate
  /// physical layout. With `clustered`, records live in the index leaves
  /// (no heap file; Appendix C.2).
  virtual Result<Table*> CreateTable(const std::string& name,
                                     std::vector<std::string> boundaries,
                                     bool clustered = false) = 0;

  /// Rebalances the table to the new boundary set. Conventional: no-op.
  /// Logical: routing update only. PLP: MRBTree slice/meld (+ heap record
  /// movement for the owned heap modes).
  virtual Status Repartition(const std::string& table,
                             const std::vector<std::string>& boundaries) {
    (void)table;
    (void)boundaries;
    return Status::OK();
  }

  Database& db() { return db_; }
  const EngineConfig& config() const { return config_; }
  SystemDesign design() const { return config_.design; }

  /// Point-in-time snapshot of every registered metric (counters, gauges
  /// including the admission-gate and per-partition providers, stage/
  /// latency histograms). Never blocks record paths; see
  /// docs/observability.md for the metric catalog.
  StatsSnapshot GetStats() { return db_.metrics()->Snapshot(); }

  /// The engine's metrics registry, for callers that bind their own
  /// instruments (the workload driver's throughput probe) or Reset()
  /// between measurement windows.
  MetricsRegistry* metrics() { return db_.metrics(); }

  /// Writes the flight recorder's Chrome-trace (Perfetto-loadable) JSON
  /// to `path`: everything still in the per-thread rings — latch/lock
  /// waits, WAL fsyncs, buffer-pool stalls, traced-txn stage spans,
  /// partition phases, checkpoint/recovery spans. The workload driver and
  /// quickstart wire this to the PLP_TRACE_PATH environment variable.
  Status DumpTrace(const std::string& path) {
    return FlightRecorder::Global().ExportChromeTrace(path);
  }

  /// Admission-gate observability (open-loop drivers report these).
  std::size_t inflight() const { return gate_.inflight(); }
  std::size_t peak_inflight() const { return gate_.peak(); }
  void ResetPeakInflight() { gate_.ResetPeak(); }
  std::uint64_t submissions_rejected() const { return gate_.rejected(); }

 protected:
  /// Design-specific asynchronous execution: run `req` to commit or abort
  /// and call token.Complete(status) exactly once from wherever the
  /// transaction finishes.
  virtual void SubmitImpl(TxnRequest req, TxnToken token) = 0;

  /// Drains and blocks until every admitted transaction has completed
  /// (new submissions are rejected with kRetry meanwhile). Engines call
  /// this at the top of Stop() before tearing down worker queues, and
  /// ReopenGate() from Start() to accept work again.
  void DrainInflight() { gate_.WaitIdle(); }
  void ReopenGate() { gate_.Reopen(); }

  EngineConfig config_;
  AdmissionGate gate_;
  Database db_;
  /// Stage-histogram pointers for traced transactions (resolved once here
  /// so completion never touches the registry mutex).
  TxnTraceSinks trace_sinks_;
  // Declared last: destroyed first, so straggling callbacks (which touch
  // the gate and may touch db state) run while both are still alive.
  std::unique_ptr<CallbackExecutor> callback_executor_;

 private:
  void StatsReporterLoop();

  Mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_stop_ PLP_GUARDED_BY(stats_mu_) = false;
  std::thread stats_thread_;
};

/// Builds the engine for a design. Rejects invalid configurations
/// (num_workers <= 0, max_inflight == 0).
Result<std::unique_ptr<Engine>> CreateEngine(EngineConfig config);

}  // namespace plp

#endif  // PLP_ENGINE_ENGINE_H_
