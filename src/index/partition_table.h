// The MRBTree "root": a partition table mapping key ranges to sub-tree
// roots (Appendix A.1).
//
// The routing information is cached in memory as a ranges map; the on-disk
// layout is a chain of slotted catalog pages storing (start_key, root)
// pairs — simplicity over access performance, exactly as the paper argues,
// because normal processing never touches the durable form.
#ifndef PLP_INDEX_PARTITION_TABLE_H_
#define PLP_INDEX_PARTITION_TABLE_H_

#include <string>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class PartitionTable {
 public:
  struct Entry {
    std::string start_key;  // first key of the range (entry 0: empty = -inf)
    PageId root = kInvalidPageId;
  };

  explicit PartitionTable(BufferPool* pool);

  PartitionTable(const PartitionTable&) = delete;
  PartitionTable& operator=(const PartitionTable&) = delete;

  /// Index of the partition whose range contains `key`.
  PartitionId PartitionFor(Slice key) const;

  /// Replaces the whole mapping (repartitioning runs quiesced) and
  /// persists it to the routing page chain.
  Status SetEntries(std::vector<Entry> entries);

  std::vector<Entry> entries() const;
  std::size_t NumPartitions() const;

  /// First page of the durable routing chain.
  PageId routing_page() const { return routing_page_; }

  /// Re-reads the mapping from the routing pages (restart path; also lets
  /// tests verify durability of the partitioning metadata).
  Status LoadFromPages();

 private:
  Status Persist();

  BufferPool* pool_;
  PageId routing_page_;

  mutable SharedMutex mu_;
  std::vector<Entry> entries_ PLP_GUARDED_BY(mu_);
};

}  // namespace plp

#endif  // PLP_INDEX_PARTITION_TABLE_H_
