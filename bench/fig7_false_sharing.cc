// Figure 7: time breakdown per transaction for TPC-B with *unpadded*
// records, so hot branch/teller rows share heap pages. Conventional,
// Logical and PLP-Regular suffer heap-latch waits on those pages
// (false sharing); PLP-Leaf is immune because each heap page belongs to
// exactly one leaf/partition.
#include "bench/bench_common.h"
#include "src/metrics/time_breakdown.h"
#include "src/workload/tpcb.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "Time breakdown per txn, TPC-B with heap-page false sharing",
      "Figure 7");
  for (int threads : {2, 4, 8}) {
    std::printf("--- %d client threads ---\n", threads);
    for (SystemDesign design :
         {SystemDesign::kConventional, SystemDesign::kLogical,
          SystemDesign::kPlpRegular, SystemDesign::kPlpLeaf}) {
      // Conventional is thread-per-transaction: size its submission pool
      // to the widest client sweep so it never caps closed-loop
      // concurrency below the paper's baseline.
      auto engine = bench::MakeEngine(
          design, design == SystemDesign::kConventional ? 8 : 4);
      TpcbConfig config;
      config.branches = 16;
      config.tellers_per_branch = 10;
      config.accounts_per_branch = 500;
      config.partitions = 4;
      config.pad_records = false;  // the experiment's point
      TpcbWorkload tpcb(engine.get(), config);
      if (!tpcb.Load().ok()) continue;
      DriverOptions options;
      options.num_threads = threads;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return tpcb.NextTransaction(rng); },
          options);
      TimeBreakdown b =
          MakeTimeBreakdown(r.cs_delta, r.committed, r.thread_time_ns);
      const double inv = 1.0 / static_cast<double>(r.committed);
      std::printf(
          "%s | heap-latch/txn %6.2f (contended %5.3f)\n",
          FormatBreakdownRow(SystemDesignName(design), b).c_str(),
          static_cast<double>(
              r.cs_delta.latches[static_cast<int>(PageClass::kHeap)]) *
              inv,
          static_cast<double>(r.cs_delta.latches_contended[static_cast<int>(
              PageClass::kHeap)]) *
              inv);
      // Structural false sharing: how few pages hold all the hot rows.
      if (design == SystemDesign::kConventional) {
        Table* branch = engine->db().GetTable(TpcbWorkload::kBranch);
        Table* teller = engine->db().GetTable(TpcbWorkload::kTeller);
        std::printf(
            "    (hot-row concentration: %u branches on %zu heap pages, "
            "%u tellers on %zu)\n",
            config.branches, branch->heap()->num_pages(),
            config.branches * config.tellers_per_branch,
            teller->heap()->num_pages());
      }
      engine->Stop();
    }
  }
  std::printf(
      "\nExpected shape: heap-wait grows with threads for Conv./Logical/\n"
      "PLP-Reg (paper: >50%% of execution time at high utilization);\n"
      "PLP-Leaf shows zero heap-latch waiting.\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
