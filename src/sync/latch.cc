#include "src/sync/latch.h"

// Latch and TrackedMutex are header-only; this file anchors the translation
// unit so the build registers the module.
namespace plp {}
