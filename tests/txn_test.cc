// Transaction and transaction-manager tests.
#include <gtest/gtest.h>

#include <thread>

#include "src/sync/cs_profiler.h"
#include "src/txn/txn_manager.h"

namespace plp {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : log_(), mgr_(&log_, &locks_) {}
  LogManager log_;
  LockManager locks_;
  TxnManager mgr_;
};

TEST_F(TxnTest, BeginAssignsUniqueIdsAndLogsBegin) {
  Transaction* a = mgr_.Begin();
  Transaction* b = mgr_.Begin();
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(a->state(), TxnState::kActive);
  EXPECT_EQ(mgr_.active_count(), 2u);
  EXPECT_GT(log_.next_lsn(), 0u);
  ASSERT_TRUE(mgr_.Commit(a).ok());
  ASSERT_TRUE(mgr_.Commit(b).ok());
}

TEST_F(TxnTest, CommitRetiresAndCounts) {
  Transaction* t = mgr_.Begin();
  ASSERT_TRUE(mgr_.Commit(t).ok());
  EXPECT_EQ(mgr_.active_count(), 0u);
  EXPECT_EQ(mgr_.committed(), 1u);
  EXPECT_EQ(mgr_.aborted(), 0u);
}

TEST_F(TxnTest, AbortRunsUndoNewestFirst) {
  Transaction* t = mgr_.Begin();
  std::vector<int> order;
  t->AddUndo([&] {
    order.push_back(1);
    return Status::OK();
  });
  t->AddUndo([&] {
    order.push_back(2);
    return Status::OK();
  });
  ASSERT_TRUE(mgr_.Abort(t).ok());
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(mgr_.aborted(), 1u);
}

TEST_F(TxnTest, AbortReleasesLocks) {
  Transaction* t = mgr_.Begin();
  ASSERT_TRUE(locks_.Acquire(t->id(), "r1", LockMode::kX).ok());
  t->held_locks().push_back("r1");
  ASSERT_TRUE(mgr_.Abort(t).ok());
  // Lock is free again.
  ASSERT_TRUE(
      locks_.Acquire(999, "r1", LockMode::kX, std::chrono::milliseconds(10))
          .ok());
}

TEST_F(TxnTest, CommitReleasesLocks) {
  Transaction* t = mgr_.Begin();
  ASSERT_TRUE(locks_.Acquire(t->id(), "r2", LockMode::kS).ok());
  t->held_locks().push_back("r2");
  ASSERT_TRUE(mgr_.Commit(t).ok());
  ASSERT_TRUE(
      locks_.Acquire(999, "r2", LockMode::kX, std::chrono::milliseconds(10))
          .ok());
}

TEST_F(TxnTest, UndoErrorSurfacesFromAbort) {
  Transaction* t = mgr_.Begin();
  t->AddUndo([] { return Status::Internal("undo failed"); });
  Status st = mgr_.Abort(t);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST_F(TxnTest, XctMgrCriticalSectionsCounted) {
  CsProfiler::Global().Reset();
  Transaction* t = mgr_.Begin();
  ASSERT_TRUE(mgr_.Commit(t).ok());
  CsCounts counts = CsProfiler::Global().Collect();
  // One table insert at begin, one erase at retire.
  EXPECT_GE(counts.entries[static_cast<int>(CsCategory::kXctMgr)], 2u);
}

TEST(TxnDurabilityTest, DurableCommitFlushesLog) {
  LogConfig log_config;
  log_config.retain_for_recovery = true;
  LogManager log(log_config);
  LockManager locks;
  TxnManagerConfig config;
  config.durable_commits = true;
  TxnManager mgr(&log, &locks, config);
  Transaction* t = mgr.Begin();
  ASSERT_TRUE(mgr.Commit(t).ok());
  EXPECT_GE(log.durable_lsn(), t->last_lsn());
}

TEST(TxnDurabilityTest, ConcurrentTransactions) {
  LogManager log;
  LockManager locks;
  TxnManager mgr(&log, &locks);
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kEach; ++j) {
        Transaction* t = mgr.Begin();
        ASSERT_TRUE(mgr.Commit(t).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mgr.committed(), static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_EQ(mgr.active_count(), 0u);
}

TEST(TransactionTest, StateNames) {
  EXPECT_STREQ(TxnStateName(TxnState::kActive), "ACTIVE");
  EXPECT_STREQ(TxnStateName(TxnState::kCommitted), "COMMITTED");
  EXPECT_STREQ(TxnStateName(TxnState::kAborted), "ABORTED");
}

}  // namespace
}  // namespace plp
