// Speculative Lock Inheritance (Johnson et al., PVLDB 2009 — [12] in the
// PLP paper).
//
// Hot (table-level intent) locks are not released at commit; the worker
// thread inherits them into the next transaction it runs, skipping the
// lock-manager critical section entirely. Inherited locks stay registered
// in the lock table under a per-worker pseudo transaction id; when another
// transaction blocks on one, the worker notices at its next transaction
// boundary and gives the lock back.
#ifndef PLP_LOCK_SLI_H_
#define PLP_LOCK_SLI_H_

#include <string>
#include <unordered_map>

#include "src/lock/lock_manager.h"

namespace plp {

class SliCache {
 public:
  /// `pseudo_txn` must be unique per worker and never used by real
  /// transactions (we reserve the top id range).
  SliCache(LockManager* lock_manager, TxnId pseudo_txn)
      : lock_manager_(lock_manager), pseudo_txn_(pseudo_txn) {}

  /// True when the inherited set already covers (name, mode): the caller
  /// skips the lock-manager interaction. No critical section is recorded —
  /// that is SLI's whole point.
  bool Covers(const std::string& name, LockMode mode) const {
    auto it = held_.find(name);
    return it != held_.end() && LockCovers(it->second, mode);
  }

  /// Acquires (name, mode) under the pseudo transaction and remembers it
  /// for inheritance. Only intent modes are eligible (record-level locks
  /// are not hot enough to pay the bookkeeping).
  Status AcquireAndInherit(const std::string& name, LockMode mode) {
    PLP_RETURN_IF_ERROR(lock_manager_->Acquire(pseudo_txn_, name, mode));
    auto it = held_.find(name);
    if (it == held_.end()) {
      held_.emplace(name, mode);
    } else if (!LockCovers(it->second, mode)) {
      it->second = mode;
    }
    return Status::OK();
  }

  /// Transaction-boundary check: give back any inherited lock that other
  /// transactions are waiting on.
  void ReleaseContended() {
    for (auto it = held_.begin(); it != held_.end();) {
      if (lock_manager_->HasWaiters(it->first)) {
        lock_manager_->Release(pseudo_txn_, it->first);
        it = held_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Drops everything (worker shutdown).
  void ReleaseAll() {
    for (const auto& [name, mode] : held_) {
      lock_manager_->Release(pseudo_txn_, name);
    }
    held_.clear();
  }

  std::size_t size() const { return held_.size(); }

 private:
  LockManager* lock_manager_;
  TxnId pseudo_txn_;
  std::unordered_map<std::string, LockMode> held_;
};

}  // namespace plp

#endif  // PLP_LOCK_SLI_H_
