// Multi-producer single-consumer queue used for partition input queues.
//
// Enqueues are the "message passing" communication of the logically
// partitioned designs — a fixed-contention critical section in the paper's
// taxonomy (Section 2.1) — and are recorded as such.
#ifndef PLP_SYNC_MPSC_QUEUE_H_
#define PLP_SYNC_MPSC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/sync/cs_profiler.h"

namespace plp {

template <typename T>
class MpscQueue {
 public:
  /// `record_cs` controls whether pushes count as message-passing critical
  /// sections. Partition input queues (the default) are the paper's
  /// fixed-contention communication; client-dispatch queues (the
  /// conventional engine's submission pool) pass false so the conventional
  /// design keeps reporting zero message passing.
  explicit MpscQueue(bool record_cs = true) : record_cs_(record_cs) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  void Push(T item) {
    {
      bool contended = !mu_.try_lock();
      if (contended) mu_.lock();
      if (record_cs_) {
        CsProfiler::Record(CsCategory::kMessagePassing, contended);
      }
      items_.push_back(std::move(item));
      mu_.unlock();
    }
    cv_.notify_one();
  }

  /// System-queue push (Appendix A.4): high-priority items jump the queue
  /// so page-cleaning requests are served before normal actions.
  void PushHighPriority(T item) {
    {
      bool contended = !mu_.try_lock();
      if (contended) mu_.lock();
      if (record_cs_) {
        CsProfiler::Record(CsCategory::kMessagePassing, contended);
      }
      items_.push_front(std::move(item));
      mu_.unlock();
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or Close() is called.
  /// Returns nullopt only after close with an empty queue.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens a closed queue (consumer-pool restart). The caller must have
  /// joined every consumer that observed the close first.
  void Reopen() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  const bool record_cs_ = true;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace plp

#endif  // PLP_SYNC_MPSC_QUEUE_H_
