// Edge-case tests for the B+Tree and MRBTree: extreme key/value sizes,
// empty structures, boundary splits, and exhaustive delete/reinsert.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/buffer_pool.h"
#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/index/mrbtree.h"

namespace plp {
namespace {

TEST(BTreeEdgeTest, EmptyTreeOperations) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  std::string value;
  EXPECT_TRUE(tree.Probe("k", &value).IsNotFound());
  EXPECT_TRUE(tree.Delete("k").IsNotFound());
  EXPECT_TRUE(tree.Update("k", "v").IsNotFound());
  int rows = 0;
  ASSERT_TRUE(tree.ScanFrom(Slice(), [&](Slice, Slice) {
    ++rows;
    return true;
  }).ok());
  EXPECT_EQ(rows, 0);
  EXPECT_EQ(tree.height(), 1);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeEdgeTest, SingleEntryTree) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  ASSERT_TRUE(tree.Insert("only", "entry").ok());
  std::string min_key;
  ASSERT_TRUE(tree.MinKey(&min_key).ok());
  EXPECT_EQ(min_key, "only");
  std::string median;
  ASSERT_TRUE(tree.ApproxMedianKey(&median).ok());
  EXPECT_EQ(median, "only");
}

TEST(BTreeEdgeTest, LargeKeysAndValues) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  // Keys/values of up to 1KB each; several per node, still splits fine.
  for (int i = 0; i < 200; ++i) {
    std::string key(512, 'k');
    key += KeyU32(static_cast<std::uint32_t>(i));
    const std::string value(1024, 'v');
    ASSERT_TRUE(tree.Insert(key, value).ok()) << i;
  }
  EXPECT_EQ(tree.num_entries(), 200u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  std::string out;
  std::string probe_key(512, 'k');
  probe_key += KeyU32(77);
  ASSERT_TRUE(tree.Probe(probe_key, &out).ok());
  EXPECT_EQ(out.size(), 1024u);
}

TEST(BTreeEdgeTest, MixedKeyLengthsSortCorrectly) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  const std::vector<std::string> keys = {"a", "aa", "aaa", "ab", "b",
                                         "ba", "z", "za"};
  for (const auto& k : keys) ASSERT_TRUE(tree.Insert(k, "v").ok());
  std::vector<std::string> scanned;
  ASSERT_TRUE(tree.ScanFrom(Slice(), [&](Slice k, Slice) {
    scanned.push_back(k.ToString());
    return true;
  }).ok());
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(scanned, expected);
}

TEST(BTreeEdgeTest, DeleteEverythingThenReuse) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Delete(KeyU32(i)).ok());
  }
  EXPECT_EQ(tree.num_entries(), 0u);
  // Structure keeps its empty pages (no merge-on-delete); operations
  // still work and scans cross the empty leaves.
  int rows = 0;
  ASSERT_TRUE(tree.ScanFrom(Slice(), [&](Slice, Slice) {
    ++rows;
    return true;
  }).ok());
  EXPECT_EQ(rows, 0);
  for (std::uint32_t i = 0; i < 5000; i += 3) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "again").ok());
  }
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  std::string out;
  ASSERT_TRUE(tree.Probe(KeyU32(3), &out).ok());
  EXPECT_EQ(out, "again");
}

TEST(BTreeEdgeTest, ScanFromBeyondMaxKey) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  int rows = 0;
  ASSERT_TRUE(tree.ScanFrom(KeyU32(1000), [&](Slice, Slice) {
    ++rows;
    return true;
  }).ok());
  EXPECT_EQ(rows, 0);
}

TEST(BTreeEdgeTest, SliceAtMinKeyMovesEverything) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 10; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  std::unique_ptr<BTree> right;
  ASSERT_TRUE(tree.SliceOff(KeyU32(0), &right).ok());
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_EQ(right->num_entries(), 990u);
  ASSERT_TRUE(right->CheckIntegrity().ok());
}

TEST(BTreeEdgeTest, SliceBeyondMaxKeyMovesNothing) {
  BufferPool pool;
  BTree tree(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(KeyU32(i), "v").ok());
  }
  std::unique_ptr<BTree> right;
  ASSERT_TRUE(tree.SliceOff(KeyU32(5000), &right).ok());
  EXPECT_EQ(tree.num_entries(), 1000u);
  EXPECT_EQ(right->num_entries(), 0u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST(BTreeEdgeTest, MeldEmptyRight) {
  BufferPool pool;
  BTree left(&pool, LatchPolicy::kNone);
  BTree right(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(left.Insert(KeyU32(i), "v").ok());
  }
  ASSERT_TRUE(left.Meld(&right, KeyU32(1000)).ok());
  EXPECT_EQ(left.num_entries(), 100u);
  ASSERT_TRUE(left.CheckIntegrity().ok());
  // Still insertable past the boundary.
  ASSERT_TRUE(left.Insert(KeyU32(2000), "post-meld").ok());
}

TEST(BTreeEdgeTest, MeldEmptyLeft) {
  BufferPool pool;
  BTree left(&pool, LatchPolicy::kNone);
  BTree right(&pool, LatchPolicy::kNone);
  for (std::uint32_t i = 1000; i < 1100; ++i) {
    ASSERT_TRUE(right.Insert(KeyU32(i), "v").ok());
  }
  ASSERT_TRUE(left.Meld(&right, KeyU32(1000)).ok());
  EXPECT_EQ(left.num_entries(), 100u);
  std::string out;
  ASSERT_TRUE(left.Probe(KeyU32(1050), &out).ok());
}

TEST(MRBTreeEdgeTest, SplitEmptyPartition) {
  BufferPool pool;
  std::unique_ptr<MRBTree> tree;
  ASSERT_TRUE(MRBTree::Create(&pool, LatchPolicy::kNone, {""}, &tree).ok());
  ASSERT_TRUE(tree->Split(KeyU32(100)).ok());
  EXPECT_EQ(tree->num_partitions(), 2u);
  ASSERT_TRUE(tree->Insert(KeyU32(50), "left").ok());
  ASSERT_TRUE(tree->Insert(KeyU32(150), "right").ok());
  EXPECT_EQ(tree->subtree(0)->num_entries(), 1u);
  EXPECT_EQ(tree->subtree(1)->num_entries(), 1u);
}

TEST(MRBTreeEdgeTest, ManyTinyPartitions) {
  BufferPool pool;
  std::vector<std::string> boundaries = {""};
  for (std::uint32_t i = 1; i < 64; ++i) boundaries.push_back(KeyU32(i * 10));
  std::unique_ptr<MRBTree> tree;
  ASSERT_TRUE(
      MRBTree::Create(&pool, LatchPolicy::kNone, boundaries, &tree).ok());
  for (std::uint32_t k = 0; k < 640; ++k) {
    ASSERT_TRUE(tree->Insert(KeyU32(k), "v").ok());
  }
  EXPECT_EQ(tree->num_entries(), 640u);
  ASSERT_TRUE(tree->CheckIntegrity().ok());
  // Each partition holds exactly its 10 keys.
  for (PartitionId p = 0; p < 64; ++p) {
    EXPECT_EQ(tree->subtree(p)->num_entries(), 10u) << p;
  }
}

TEST(MRBTreeEdgeTest, RandomSplitMergeFuzz) {
  BufferPool pool;
  std::unique_ptr<MRBTree> tree;
  ASSERT_TRUE(MRBTree::Create(&pool, LatchPolicy::kNone, {""}, &tree).ok());
  Rng rng(321);
  constexpr std::uint32_t kKeys = 2000;
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree->Insert(KeyU32(k), KeyU32(k)).ok());
  }
  for (int round = 0; round < 30; ++round) {
    if (tree->num_partitions() < 8 && rng.Percent(60)) {
      (void)tree->Split(
          KeyU32(static_cast<std::uint32_t>(rng.Uniform(kKeys))));
    } else if (tree->num_partitions() > 1) {
      ASSERT_TRUE(
          tree->Merge(static_cast<PartitionId>(
                          rng.Range(1, tree->num_partitions() - 1)))
              .ok());
    }
    ASSERT_TRUE(tree->CheckIntegrity().ok()) << "round " << round;
    EXPECT_EQ(tree->num_entries(), kKeys);
  }
  // Every key still probes correctly with the right value.
  std::string value;
  for (std::uint32_t k = 0; k < kKeys; k += 7) {
    ASSERT_TRUE(tree->Probe(KeyU32(k), &value).ok()) << k;
    EXPECT_EQ(DecodeU32(value), k);
  }
}

}  // namespace
}  // namespace plp
