#include "src/txn/txn_manager.h"

#include "src/common/clock.h"

namespace plp {

TxnManager::TxnManager(LogManager* log, LockManager* locks,
                       TxnManagerConfig config, MetricsRegistry* metrics)
    : log_(log), locks_(locks), config_(config), metrics_(metrics) {
  MetricsRegistry* m =
      metrics_ != nullptr ? metrics_ : MetricsRegistry::Scratch();
  begins_metric_ = m->counter("txn.begins");
  commits_metric_ = m->counter("txn.commits");
  aborts_metric_ = m->counter("txn.aborts");
  if (metrics_ != nullptr) {
    metrics_->RegisterGaugeProvider(this, [this](const GaugeSink& sink) {
      sink("txn.active", static_cast<std::int64_t>(active_count()));
    });
  }
}

TxnManager::~TxnManager() {
  if (metrics_ != nullptr) metrics_->UnregisterGaugeProvider(this);
}

Transaction* TxnManager::Begin() {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();

  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = id;
  const Lsn begin_lsn = log_->Append(rec);
  raw->set_last_lsn(begin_lsn);
  raw->set_begin_lsn(begin_lsn);

  {
    TrackedMutexLock g(table_mu_);
    active_.emplace(id, std::move(txn));
  }
  begins_metric_->Increment();
  return raw;
}

Status TxnManager::Commit(Transaction* txn) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = txn->id();
  const Lsn lsn = log_->Append(rec);
  txn->set_last_lsn(lsn);
  if (txn->trace() != nullptr) {
    TxnTimeline::Stamp(txn->trace()->append_ns, NowNanos());
  }
  if (config_.durable_commits) {
    log_->FlushTo(lsn);
    // durable_ns only when commit actually waited for the fsync: the
    // trace's fsync stage then measures the group-commit round trip.
    if (txn->trace() != nullptr) {
      TxnTimeline::Stamp(txn->trace()->durable_ns, NowNanos());
    }
  }
  txn->set_state(TxnState::kCommitted);
  if (locks_ != nullptr) {
    locks_->ReleaseAll(txn->id(), txn->held_locks());
  }
  committed_.fetch_add(1, std::memory_order_relaxed);
  commits_metric_->Increment();
  Retire(txn);
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  Status undo_status = txn->RunUndo();

  LogRecord rec;
  rec.type = LogType::kAbort;
  rec.txn = txn->id();
  txn->set_last_lsn(log_->Append(rec));
  txn->set_state(TxnState::kAborted);
  if (locks_ != nullptr) {
    locks_->ReleaseAll(txn->id(), txn->held_locks());
  }
  aborted_.fetch_add(1, std::memory_order_relaxed);
  aborts_metric_->Increment();
  Retire(txn);
  return undo_status;
}

void TxnManager::Retire(Transaction* txn) {
  TrackedMutexLock g(table_mu_);
  active_.erase(txn->id());
}

std::size_t TxnManager::active_count() {
  TrackedMutexLock g(table_mu_);
  return active_.size();
}

std::vector<std::pair<TxnId, Lsn>> TxnManager::ActiveSnapshot() {
  std::vector<std::pair<TxnId, Lsn>> out;
  TrackedMutexLock g(table_mu_);
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    out.emplace_back(id, txn->begin_lsn());
  }
  return out;
}

void TxnManager::EnsureNextIdAtLeast(TxnId id) {
  TxnId expected = next_txn_id_.load(std::memory_order_relaxed);
  while (expected < id && !next_txn_id_.compare_exchange_weak(
                              expected, id, std::memory_order_relaxed)) {
  }
}

}  // namespace plp
