// Shared helpers for the figure/table reproduction harnesses.
#ifndef PLP_BENCH_BENCH_COMMON_H_
#define PLP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"
#include "src/workload/workload_driver.h"

namespace plp::bench {

/// Builds and starts an engine for one experiment.
inline std::unique_ptr<Engine> MakeEngine(SystemDesign design,
                                          int workers = 4,
                                          bool use_mrbt = false,
                                          bool enable_sli = true) {
  EngineConfig config;
  config.design = design;
  config.num_workers = workers;
  config.use_mrbt = use_mrbt;
  config.enable_sli = enable_sli;
  auto engine = CreateEngine(config);
  engine->Start();
  return engine;
}

/// Scales bench durations via PLP_BENCH_MS (default 300ms per window).
inline std::chrono::milliseconds WindowMs() {
  const char* env = std::getenv("PLP_BENCH_MS");
  return std::chrono::milliseconds(env ? std::atoi(env) : 300);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n  (reproduces %s)\n", title, paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintCsBreakdownRow(const std::string& label,
                                const CsCounts& delta,
                                std::uint64_t committed) {
  if (committed == 0) return;
  const double inv = 1.0 / static_cast<double>(committed);
  std::printf("%-16s", label.c_str());
  for (int c = 0; c < kNumCsCategories; ++c) {
    std::printf(" %9.2f", static_cast<double>(delta.entries[c]) * inv);
  }
  std::printf(" | total %9.2f contended %7.2f\n",
              static_cast<double>(delta.TotalEntries()) * inv,
              static_cast<double>(delta.TotalContended()) * inv);
}

inline void PrintCsBreakdownHeader() {
  std::printf("%-16s", "design");
  for (int c = 0; c < kNumCsCategories; ++c) {
    std::printf(" %9.9s", CsCategoryName(static_cast<CsCategory>(c)));
  }
  std::printf(" |   (CS entries per transaction)\n");
}

}  // namespace plp::bench

#endif  // PLP_BENCH_BENCH_COMMON_H_
