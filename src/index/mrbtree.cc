#include "src/index/mrbtree.h"

#include <cassert>

#include "src/index/persistent/index_log.h"

namespace plp {

MRBTree::MRBTree(BufferPool* pool, LatchPolicy policy)
    : pool_(pool), policy_(policy) {}

Status MRBTree::Create(BufferPool* pool, LatchPolicy policy,
                       std::vector<std::string> boundaries,
                       std::unique_ptr<MRBTree>* out, IndexLogger* logger,
                       bool log_creation) {
  if (boundaries.empty() || !boundaries.front().empty()) {
    return Status::InvalidArgument(
        "boundaries[0] must be the empty (-inf) key");
  }
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    if (!(Slice(boundaries[i - 1]) < Slice(boundaries[i]))) {
      return Status::InvalidArgument("boundaries must be strictly sorted");
    }
  }
  auto tree = std::unique_ptr<MRBTree>(new MRBTree(pool, policy));
  tree->logger_ = logger;
  tree->placeholder_ = logger != nullptr && !log_creation;
  tree->table_ = std::make_unique<PartitionTable>(pool);
  // Placeholder sub-trees are never logged: recovery replaces them (and
  // frees their pages) through AdoptPartitions.
  IndexLogger* sub_logger = tree->placeholder_ ? nullptr : logger;
  std::vector<PartitionTable::Entry> entries;
  for (auto& b : boundaries) {
    auto sub = std::make_unique<BTree>(pool, policy, sub_logger);
    entries.push_back({b, sub->root()});
    tree->subtrees_.push_back(std::move(sub));
  }
  tree->boundaries_ = std::move(boundaries);
  PLP_RETURN_IF_ERROR(tree->table_->SetEntries(std::move(entries)));
  if (sub_logger != nullptr) {
    sub_logger->LogPartitionTable(tree->PartitionEntries());
  }
  *out = std::move(tree);
  return Status::OK();
}

std::vector<std::pair<std::string, PageId>> MRBTree::PartitionEntries()
    const {
  ReaderMutexLock lk(mu_);
  std::vector<std::pair<std::string, PageId>> out;
  out.reserve(subtrees_.size());
  for (std::size_t i = 0; i < subtrees_.size(); ++i) {
    out.emplace_back(boundaries_[i], subtrees_[i]->root());
  }
  return out;
}

Status MRBTree::AdoptPartitions(
    const std::vector<std::pair<std::string, PageId>>& parts) {
  if (parts.empty() || !parts.front().first.empty()) {
    return Status::InvalidArgument("adopted partitions must start at -inf");
  }
  WriterMutexLock lk(mu_);
  if (placeholder_) {
    // First adoption on a restart placeholder: drop the never-used empty
    // roots so they neither leak frames nor shadow recovered pages.
    for (auto& sub : subtrees_) pool_->FreePage(sub->root());
    placeholder_ = false;
  }
  boundaries_.clear();
  subtrees_.clear();
  std::vector<PartitionTable::Entry> entries;
  for (const auto& [start_key, root] : parts) {
    boundaries_.push_back(start_key);
    subtrees_.push_back(
        std::unique_ptr<BTree>(new BTree(pool_, policy_, root, logger_)));
    entries.push_back({start_key, root});
  }
  lk.Unlock();
  return table_->SetEntries(std::move(entries));
}

void MRBTree::RecountEntries() {
  ReaderMutexLock lk(mu_);
  for (auto& sub : subtrees_) sub->RecountEntries();
}

BTree* MRBTree::subtree(PartitionId p) {
  ReaderMutexLock lk(mu_);
  assert(p < subtrees_.size());
  return subtrees_[p].get();
}

std::string MRBTree::boundary(PartitionId p) const {
  ReaderMutexLock lk(mu_);
  assert(p < boundaries_.size());
  return boundaries_[p];
}

std::vector<std::string> MRBTree::boundaries() const {
  ReaderMutexLock lk(mu_);
  return boundaries_;
}

Status MRBTree::Insert(Slice key, Slice value, TxnId txn) {
  return subtree(table_->PartitionFor(key))->Insert(key, value, txn);
}

Status MRBTree::Probe(Slice key, std::string* value) {
  return subtree(table_->PartitionFor(key))->Probe(key, value);
}

Status MRBTree::Update(Slice key, Slice value, TxnId txn) {
  return subtree(table_->PartitionFor(key))->Update(key, value, txn);
}

Status MRBTree::Delete(Slice key, TxnId txn) {
  return subtree(table_->PartitionFor(key))->Delete(key, txn);
}

Status MRBTree::ScanFrom(Slice start,
                         const std::function<bool(Slice, Slice)>& fn) {
  // Scan the containing partition, then stitch following partitions in
  // boundary order until the callback stops us.
  PartitionId p = table_->PartitionFor(start);
  bool keep_going = true;
  for (std::size_t i = p; keep_going; ++i) {
    BTree* sub;
    {
      ReaderMutexLock lk(mu_);
      if (i >= subtrees_.size()) break;
      sub = subtrees_[i].get();
    }
    Slice from = i == p ? start : Slice();
    PLP_RETURN_IF_ERROR(sub->ScanFrom(from, [&](Slice k, Slice v) {
      keep_going = fn(k, v);
      return keep_going;
    }));
  }
  return Status::OK();
}

Status MRBTree::Split(Slice split_key) {
  WriterMutexLock lk(mu_);
  const PartitionId p = table_->PartitionFor(split_key);
  if (boundaries_[p] == split_key.view()) {
    return Status::AlreadyExists("partition already starts at split key");
  }
  // Persistent mode: the post-slice layout travels inside the slice's
  // atomic kIndexRepartition record (mu_ is held; the callback runs
  // synchronously inside SliceOff on this thread).
  BTree::PartitionPayloadFn parts;
  if (logger_ != nullptr) {
    parts = [&](PageId right_root) {
      std::vector<std::pair<std::string, PageId>> out;
      for (std::size_t i = 0; i < subtrees_.size(); ++i) {
        out.emplace_back(boundaries_[i], subtrees_[i]->root());
        if (i == p) out.emplace_back(split_key.ToString(), right_root);
      }
      return out;
    };
  }
  std::unique_ptr<BTree> right;
  PLP_RETURN_IF_ERROR(subtrees_[p]->SliceOff(split_key, &right, parts));
  boundaries_.insert(boundaries_.begin() + p + 1, split_key.ToString());
  subtrees_.insert(subtrees_.begin() + p + 1, std::move(right));
  lk.Unlock();
  return PersistTable();
}

Status MRBTree::Merge(PartitionId p) {
  WriterMutexLock lk(mu_);
  if (p == 0 || p >= subtrees_.size()) {
    return Status::InvalidArgument("cannot merge the -inf partition");
  }
  BTree* left = subtrees_[p - 1].get();
  BTree* right = subtrees_[p].get();
  BTree::PartitionPayloadFn parts;
  if (logger_ != nullptr) {
    parts = [&](PageId merged_root) {
      std::vector<std::pair<std::string, PageId>> out;
      for (std::size_t i = 0; i < subtrees_.size(); ++i) {
        if (i == p) continue;  // absorbed partition disappears
        out.emplace_back(boundaries_[i], i == p - 1
                                             ? merged_root
                                             : subtrees_[i]->root());
      }
      return out;
    };
  }
  PLP_RETURN_IF_ERROR(left->Meld(right, boundaries_[p], parts));
  boundaries_.erase(boundaries_.begin() + p);
  subtrees_.erase(subtrees_.begin() + p);
  lk.Unlock();
  return PersistTable();
}

Status MRBTree::PersistTable() {
  ReaderMutexLock lk(mu_);
  std::vector<PartitionTable::Entry> entries;
  entries.reserve(subtrees_.size());
  for (std::size_t i = 0; i < subtrees_.size(); ++i) {
    entries.push_back({boundaries_[i], subtrees_[i]->root()});
  }
  lk.Unlock();
  // No WAL record here: slice/meld already logged the new layout inside
  // their atomic kIndexRepartition record (the only callers), so the
  // routing pages are pure in-memory bookkeeping.
  return table_->SetEntries(std::move(entries));
}

std::uint64_t MRBTree::num_entries() const {
  ReaderMutexLock lk(mu_);
  std::uint64_t n = 0;
  for (const auto& sub : subtrees_) n += sub->num_entries();
  return n;
}

std::uint64_t MRBTree::smo_count() const {
  ReaderMutexLock lk(mu_);
  std::uint64_t n = 0;
  for (const auto& sub : subtrees_) n += sub->smo_count();
  return n;
}

Status MRBTree::CheckIntegrity() {
  ReaderMutexLock lk(mu_);
  for (std::size_t i = 0; i < subtrees_.size(); ++i) {
    PLP_RETURN_IF_ERROR(subtrees_[i]->CheckIntegrity());
    // Every key must fall inside its partition's range.
    Status range_ok = Status::OK();
    const Slice lo(boundaries_[i]);
    subtrees_[i]->ForEachEntry([&](Slice k, Slice) {
      if (k < lo) range_ok = Status::Corruption("key below partition start");
      if (i + 1 < boundaries_.size() && !(k < Slice(boundaries_[i + 1]))) {
        range_ok = Status::Corruption("key beyond partition end");
      }
    });
    PLP_RETURN_IF_ERROR(range_ok);
  }
  return Status::OK();
}

}  // namespace plp
