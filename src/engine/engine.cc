#include "src/engine/engine.h"

#include <cstdio>

#include "src/common/clock.h"

namespace plp {

Engine::Engine(EngineConfig config)
    : config_(config),
      gate_(config.max_inflight),
      db_(config.db),
      trace_sinks_(db_.metrics()) {
  MetricsRegistry* m = db_.metrics();
  gate_.BindMetrics(m->counter("admission.blocked"),
                    m->histogram("admission.wait_us"));
  m->RegisterGaugeProvider(this, [this](const GaugeSink& sink) {
    sink("admission.inflight", static_cast<std::int64_t>(gate_.inflight()));
    sink("admission.peak_inflight",
         static_cast<std::int64_t>(gate_.peak()));
    sink("admission.limit", static_cast<std::int64_t>(gate_.limit()));
    sink("admission.admitted", static_cast<std::int64_t>(gate_.admitted()));
    sink("admission.rejected", static_cast<std::int64_t>(gate_.rejected()));
  });
  if (config_.dedicated_callback_thread) {
    callback_executor_ = std::make_unique<CallbackExecutor>();
  }
  if (config_.stats_interval.count() > 0) {
    stats_thread_ = std::thread([this] { StatsReporterLoop(); });
  }
}

Engine::~Engine() {
  if (stats_thread_.joinable()) {
    {
      MutexLock g(stats_mu_);
      stats_stop_ = true;
    }
    stats_cv_.notify_all();
    stats_thread_.join();
  }
  db_.metrics()->UnregisterGaugeProvider(this);
}

void Engine::StatsReporterLoop() {
  // Monotonic reporter uptime: consumers (tools/plp_top.py) delta the
  // cumulative counters between consecutive [stats] lines and need the
  // exact window length, which wall-clock arrival times misstate under
  // pipe buffering.
  Gauge* uptime_ms = db_.metrics()->gauge("stats.uptime_ms");
  const std::uint64_t loop_start_ns = NowNanos();
  MutexLock lk(stats_mu_);
  for (;;) {
    // Interval sleep, cut short by the stop flag; spurious wakeups simply
    // re-arm the timer (an extra [stats] line, never a missed stop).
    if (!stats_stop_) (void)lk.WaitFor(stats_cv_, config_.stats_interval);
    const bool stopped = stats_stop_;
    lk.Unlock();
    // A final snapshot is always emitted on the way out, so even programs
    // shorter than one interval produce a [stats] line.
    uptime_ms->Set(
        static_cast<std::int64_t>((NowNanos() - loop_start_ns) / 1000000));
    const std::string json = db_.metrics()->Snapshot().ToJson();
    std::printf("[stats] %s\n", json.c_str());
    std::fflush(stdout);
    if (stopped) return;
    lk.Lock();
  }
}

TxnHandle Engine::Submit(TxnRequest req, TxnOptions options) {
  auto state = std::make_shared<internal::TxnShared>();
  state->callback = std::move(options.on_complete);
  state->executor = callback_executor_.get();
  if (options.trace) {
    state->trace = std::make_unique<TxnTimeline>();
    state->trace_sinks = &trace_sinks_;
    state->trace->submit_ns.store(NowNanos(), std::memory_order_relaxed);
  }
  TxnHandle handle(state);
  if (!gate_.Acquire(options.on_full == TxnOptions::OnFull::kBlock)) {
    internal::ResolveTxn(state, Status::Retry("engine at max_inflight"));
    return handle;
  }
  if (state->trace != nullptr) {
    state->trace->admitted_ns.store(NowNanos(), std::memory_order_relaxed);
  }
  state->gate = &gate_;
  SubmitImpl(std::move(req), TxnToken(std::move(state)));
  return handle;
}

}  // namespace plp
