// The conventional shared-everything design: each client thread executes
// whole transactions against latched pages with centralized locking,
// optionally sped up with Speculative Lock Inheritance (Section 4.1 (a)).
#ifndef PLP_ENGINE_CONVENTIONAL_ENGINE_H_
#define PLP_ENGINE_CONVENTIONAL_ENGINE_H_

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/buffer/page_cleaner.h"
#include "src/engine/engine.h"
#include "src/lock/sli.h"

namespace plp {

class ConventionalEngine : public Engine {
 public:
  explicit ConventionalEngine(EngineConfig config);
  ~ConventionalEngine() override;

  Status Execute(TxnRequest& req) override;

  Result<Table*> CreateTable(const std::string& name,
                             std::vector<std::string> boundaries,
                             bool clustered = false) override;

  void Start() override;
  void Stop() override;

 private:
  /// Per-worker-thread SLI cache, owned by the engine (so caches cannot
  /// outlive the lock manager they reference); created lazily.
  SliCache* ThreadSli();

  std::atomic<TxnId> next_pseudo_txn_{1ull << 62};
  std::unique_ptr<PageCleaner> cleaner_;

  std::mutex sli_mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<SliCache>> sli_caches_;
};

}  // namespace plp

#endif  // PLP_ENGINE_CONVENTIONAL_ENGINE_H_
