// Engine tests, parameterized over all five system designs (Section 4.1):
// identical logical behaviour, different physical disciplines.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/common/key_encoding.h"
#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"

namespace plp {
namespace {

class EngineTest : public ::testing::TestWithParam<SystemDesign> {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.design = GetParam();
    config.num_workers = 4;
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    engine_ = std::move(created).value();
    engine_->Start();
    auto result = engine_->CreateTable(
        "t", {"", KeyU32(250), KeyU32(500), KeyU32(750)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    table_ = result.value();
  }

  void TearDown() override { engine_->Stop(); }

  Status Insert(std::uint32_t k, const std::string& value) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, value](ExecContext& ctx) {
      return ctx.Insert(key, value);
    });
    return engine_->Execute(req);
  }

  Status Read(std::uint32_t k, std::string* out) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    auto holder = std::make_shared<std::string>();
    req.Add(0, "t", key, [key, holder](ExecContext& ctx) {
      return ctx.Read(key, holder.get());
    });
    Status st = engine_->Execute(req);
    *out = *holder;
    return st;
  }

  Status Update(std::uint32_t k, const std::string& value) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, value](ExecContext& ctx) {
      return ctx.Update(key, value);
    });
    return engine_->Execute(req);
  }

  Status Delete(std::uint32_t k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key,
            [key](ExecContext& ctx) { return ctx.Delete(key); });
    return engine_->Execute(req);
  }

  std::unique_ptr<Engine> engine_;
  Table* table_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, EngineTest,
    ::testing::Values(SystemDesign::kConventional, SystemDesign::kLogical,
                      SystemDesign::kPlpRegular, SystemDesign::kPlpPartition,
                      SystemDesign::kPlpLeaf),
    [](const auto& info) {
      switch (info.param) {
        case SystemDesign::kConventional: return "Conventional";
        case SystemDesign::kLogical: return "Logical";
        case SystemDesign::kPlpRegular: return "PlpRegular";
        case SystemDesign::kPlpPartition: return "PlpPartition";
        case SystemDesign::kPlpLeaf: return "PlpLeaf";
      }
      return "Unknown";
    });

TEST_P(EngineTest, InsertReadRoundTrip) {
  ASSERT_TRUE(Insert(10, "hello").ok());
  std::string out;
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST_P(EngineTest, ReadMissingFails) {
  std::string out;
  EXPECT_FALSE(Read(404, &out).ok());
}

TEST_P(EngineTest, DuplicateInsertAbortsTransaction) {
  ASSERT_TRUE(Insert(10, "v1").ok());
  EXPECT_TRUE(Insert(10, "v2").IsAlreadyExists());
  std::string out;
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_EQ(out, "v1");
}

TEST_P(EngineTest, UpdatePersists) {
  ASSERT_TRUE(Insert(10, "v1").ok());
  ASSERT_TRUE(Update(10, "v2").ok());
  std::string out;
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_EQ(out, "v2");
}

TEST_P(EngineTest, DeleteRemoves) {
  ASSERT_TRUE(Insert(10, "v").ok());
  ASSERT_TRUE(Delete(10).ok());
  std::string out;
  EXPECT_FALSE(Read(10, &out).ok());
}

TEST_P(EngineTest, KeysLandInEveryPartition) {
  for (std::uint32_t k : {1u, 300u, 600u, 900u}) {
    ASSERT_TRUE(Insert(k, "p").ok());
  }
  // Each partition's subtree holds exactly one key when the index is
  // multi-rooted (PLP designs).
  if (GetParam() != SystemDesign::kConventional &&
      GetParam() != SystemDesign::kLogical) {
    ASSERT_EQ(table_->primary()->num_partitions(), 4u);
    for (PartitionId p = 0; p < 4; ++p) {
      EXPECT_EQ(table_->primary()->subtree(p)->num_entries(), 1u);
    }
  }
  EXPECT_EQ(table_->primary()->num_entries(), 4u);
}

TEST_P(EngineTest, MultiActionTransactionAllOrNothing) {
  // Second action fails (duplicate); the first action's insert must be
  // compensated.
  ASSERT_TRUE(Insert(700, "pre-existing").ok());
  TxnRequest req;
  const std::string k1 = KeyU32(100), k2 = KeyU32(700);
  req.Add(0, "t", k1,
          [k1](ExecContext& ctx) { return ctx.Insert(k1, "new"); });
  req.Add(1, "t", k2,
          [k2](ExecContext& ctx) { return ctx.Insert(k2, "dup"); });
  EXPECT_FALSE(engine_->Execute(req).ok());

  std::string out;
  EXPECT_FALSE(Read(100, &out).ok()) << "aborted insert must be undone";
  ASSERT_TRUE(Read(700, &out).ok());
  EXPECT_EQ(out, "pre-existing");
}

TEST_P(EngineTest, MultiPhaseDataflow) {
  ASSERT_TRUE(Insert(42, "answer").ok());
  auto state = std::make_shared<std::string>();
  TxnRequest req;
  const std::string k1 = KeyU32(42), k2 = KeyU32(800);
  req.Add(0, "t", k1, [k1, state](ExecContext& ctx) {
    return ctx.Read(k1, state.get());
  });
  req.Add(1, "t", k2, [k2, state](ExecContext& ctx) {
    return ctx.Insert(k2, "copied-" + *state);
  });
  ASSERT_TRUE(engine_->Execute(req).ok());
  std::string out;
  ASSERT_TRUE(Read(800, &out).ok());
  EXPECT_EQ(out, "copied-answer");
}

TEST_P(EngineTest, ScanRangeWithinPartition) {
  for (std::uint32_t k = 100; k < 120; ++k) {
    ASSERT_TRUE(Insert(k, "s" + std::to_string(k)).ok());
  }
  auto seen = std::make_shared<std::vector<std::uint32_t>>();
  TxnRequest req;
  const std::string lo = KeyU32(105), hi = KeyU32(110);
  req.Add(0, "t", lo, [lo, hi, seen](ExecContext& ctx) {
    return ctx.ScanRange(lo, hi, [&](Slice k, Slice) {
      seen->push_back(DecodeU32(k));
      return true;
    });
  });
  ASSERT_TRUE(engine_->Execute(req).ok());
  EXPECT_EQ(*seen, (std::vector<std::uint32_t>{105, 106, 107, 108, 109}));
}

TEST_P(EngineTest, ManyInsertsSurviveSplitsEverywhere) {
  for (std::uint32_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(Insert(k, std::string(64, 'd')).ok());
  }
  EXPECT_EQ(table_->primary()->num_entries(), 3000u);
  ASSERT_TRUE(table_->primary()->CheckIntegrity().ok());
  std::string out;
  for (std::uint32_t k = 0; k < 3000; k += 131) {
    ASSERT_TRUE(Read(k, &out).ok()) << k;
  }
}

TEST_P(EngineTest, HeapOwnershipDisciplineEnforced) {
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(Insert(k, std::string(100, 'h')).ok());
  }
  switch (GetParam()) {
    case SystemDesign::kPlpPartition: {
      // Every heap page is owned by exactly one partition uid.
      BufferPool* pool = engine_->db().pool();
      for (PageId pid : table_->heap()->AllPages()) {
        Page* page = pool->FixUnlocked(pid);
        ASSERT_NE(page, nullptr);
        EXPECT_NE(page->owner_tag(), UINT32_MAX);
      }
      break;
    }
    case SystemDesign::kPlpLeaf: {
      // Records reachable via the index live on pages owned by the leaf
      // that points at them.
      MRBTree* primary = table_->primary();
      BufferPool* pool = engine_->db().pool();
      for (PartitionId p = 0; p < primary->num_partitions(); ++p) {
        BTree* sub = primary->subtree(p);
        sub->ForEachEntry([&](Slice key, Slice rid_bytes) {
          Rid rid;
          std::memcpy(&rid.page_id, rid_bytes.data(), 4);
          std::memcpy(&rid.slot, rid_bytes.data() + 4, 2);
          Page* heap_page = pool->FixUnlocked(rid.page_id);
          ASSERT_NE(heap_page, nullptr);
          const std::uint32_t owner_leaf =
              *reinterpret_cast<const std::uint32_t*>(heap_page->data() + 8);
          EXPECT_EQ(owner_leaf, sub->LeafFor(key))
              << "heap page must be owned by the pointing leaf";
        });
      }
      break;
    }
    default:
      break;
  }
}

TEST_P(EngineTest, PlpDesignsAcquireNoIndexLatches) {
  CsProfiler::Global().Reset();
  for (std::uint32_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(Insert(k, "x").ok());
  }
  std::string out;
  for (std::uint32_t k = 0; k < 500; k += 7) {
    ASSERT_TRUE(Read(k, &out).ok());
  }
  CsCounts counts = CsProfiler::Global().Collect();
  const std::uint64_t idx =
      counts.latches[static_cast<int>(PageClass::kIndex)];
  const std::uint64_t heap =
      counts.latches[static_cast<int>(PageClass::kHeap)];
  switch (GetParam()) {
    case SystemDesign::kConventional:
    case SystemDesign::kLogical:
      EXPECT_GT(idx, 0u);
      EXPECT_GT(heap, 0u);
      break;
    case SystemDesign::kPlpRegular:
      EXPECT_EQ(idx, 0u);
      EXPECT_GT(heap, 0u);  // heap still latched
      break;
    case SystemDesign::kPlpPartition:
    case SystemDesign::kPlpLeaf:
      EXPECT_EQ(idx, 0u);
      EXPECT_EQ(heap, 0u);  // fully latch-free data access
      break;
  }
}

TEST_P(EngineTest, SecondaryIndexMaintained) {
  // Secondary key = first byte of the payload.
  ASSERT_TRUE(table_
                  ->AddSecondary("by_prefix",
                                 [](Slice, Slice payload) {
                                   return std::string(1, payload.data()[0]);
                                 })
                  .ok());
  ASSERT_TRUE(Insert(1, "apple").ok());
  ASSERT_TRUE(Insert(2, "avocado").ok());
  ASSERT_TRUE(Insert(3, "banana").ok());

  Table::Secondary* sec = table_->secondary("by_prefix");
  ASSERT_NE(sec, nullptr);
  int a_count = 0;
  ASSERT_TRUE(sec->index->ScanFrom("a", [&](Slice k, Slice) {
    if (k.data()[0] != 'a') return false;
    ++a_count;
    return true;
  }).ok());
  EXPECT_EQ(a_count, 2);

  ASSERT_TRUE(Delete(2).ok());
  a_count = 0;
  ASSERT_TRUE(sec->index->ScanFrom("a", [&](Slice k, Slice) {
    if (k.data()[0] != 'a') return false;
    ++a_count;
    return true;
  }).ok());
  EXPECT_EQ(a_count, 1);
}

TEST_P(EngineTest, GetStatsReflectsWork) {
  const StatsSnapshot before = engine_->GetStats();
  ASSERT_TRUE(Insert(10, "v").ok());
  ASSERT_TRUE(Update(10, "v2").ok());
  std::string out;
  ASSERT_TRUE(Read(10, &out).ok());
  EXPECT_FALSE(Read(404, &out).ok());  // aborts

  const StatsSnapshot stats = engine_->GetStats();
  // The four Executes above went through the admission gate; everything
  // drained, so nothing is still in flight.
  EXPECT_EQ(stats.gauge("admission.admitted") -
                before.gauge("admission.admitted"),
            4);
  EXPECT_EQ(stats.gauge("admission.inflight"), 0);
  EXPECT_GE(stats.counter("txn.commits") - before.counter("txn.commits"), 3u);
  EXPECT_GE(stats.counter("txn.aborts") - before.counter("txn.aborts"), 1u);
  // After drain every begun transaction resolved one way or the other.
  EXPECT_EQ(stats.counter("txn.begins"),
            stats.counter("txn.commits") + stats.counter("txn.aborts"));
  EXPECT_EQ(stats.gauge("txn.active"), 0);
  EXPECT_GT(stats.counter("buffer_pool.hits"), 0u);
  // In-memory pools never steal frames, so no index slot can leak.
  EXPECT_EQ(stats.counter("buffer_pool.leaked_index_slots"), 0u);
  if (GetParam() != SystemDesign::kConventional) {
    // Partitioned designs route through the partition manager; these
    // single-action transactions all stay single-site.
    EXPECT_GE(stats.counter("partition.txns") -
                  before.counter("partition.txns"),
              4u);
    EXPECT_EQ(stats.counter("partition.cross_site_txns") -
                  before.counter("partition.cross_site_txns"),
              0u);
    EXPECT_GE(stats.gauge("partition.workers"), 1);
  }
}

}  // namespace
}  // namespace plp
