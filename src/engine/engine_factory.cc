#include "src/engine/conventional_engine.h"
#include "src/engine/engine.h"
#include "src/engine/partitioned_engine.h"

namespace plp {

const char* SystemDesignName(SystemDesign d) {
  switch (d) {
    case SystemDesign::kConventional: return "Conv.";
    case SystemDesign::kLogical: return "Logical";
    case SystemDesign::kPlpRegular: return "PLP-Reg";
    case SystemDesign::kPlpPartition: return "PLP-Part";
    case SystemDesign::kPlpLeaf: return "PLP-Leaf";
  }
  return "?";
}

std::unique_ptr<Engine> CreateEngine(EngineConfig config) {
  if (config.design == SystemDesign::kConventional) {
    return std::make_unique<ConventionalEngine>(config);
  }
  return std::make_unique<PartitionedEngine>(config);
}

}  // namespace plp
